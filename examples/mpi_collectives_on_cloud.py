#!/usr/bin/env python3
"""MPI collective operations on an EC2-like virtual cluster (paper Fig 7).

Compares the paper's three EC2 arms — Baseline (MPICH binomial), Heuristics
(direct mean of measurements) and RPCA — on broadcast and scatter over a
replayed calibration trace, reporting means normalized to Baseline plus the
broadcast CDF quartiles.

Run:  python examples/mpi_collectives_on_cloud.py [n_machines]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import BaselineStrategy, HeuristicStrategy, RPCAStrategy, TraceConfig, generate_trace
from repro.experiments.harness import ReplayContext, collective_comparison
from repro.experiments.report import format_table

MB = 1024 * 1024


def main(n_machines: int = 24) -> None:
    trace = generate_trace(
        TraceConfig(n_machines=n_machines, n_snapshots=30), seed=2014
    )
    ctx = ReplayContext(trace=trace, time_step=10, nbytes=8 * MB)
    arms = [
        BaselineStrategy(),
        HeuristicStrategy("mean"),
        RPCAStrategy("apg", time_step=10),
    ]

    bcast = collective_comparison(
        ctx, arms, op="broadcast", nbytes=8 * MB, repetitions=80, seed=1
    )
    scat = collective_comparison(
        ctx, arms, op="scatter", nbytes=8 * MB / n_machines, repetitions=80, seed=2
    )

    rpca = next(a for a in arms if isinstance(a, RPCAStrategy))
    print(f"cluster: {n_machines} VMs | Norm(N_E) = {rpca.norm_ne:.3f}")
    print()
    rows = [
        (name, bcast.normalized_means()[name], scat.normalized_means()[name])
        for name in bcast.times
    ]
    print(
        format_table(
            ["strategy", "broadcast (norm.)", "scatter (norm.)"],
            rows,
            title="Average elapsed time normalized to Baseline (lower is better)",
        )
    )

    print()
    print("Broadcast CDF quartiles (seconds):")
    qrows = []
    for name, times in bcast.times.items():
        q = np.percentile(times, [25, 50, 75, 95])
        qrows.append((name, *q))
    print(format_table(["strategy", "p25", "p50", "p75", "p95"], qrows))

    print()
    print(
        f"RPCA vs Baseline:   {bcast.improvement('RPCA', 'Baseline'):+.1%}"
        "   (paper: 20-40%)"
    )
    print(
        f"RPCA vs Heuristics: {bcast.improvement('RPCA', 'Heuristics'):+.1%}"
        "   (paper: 8-20%)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 24)
