"""Unit tests for the Algorithm-1 runtime session."""

import numpy as np
import pytest

from repro.cloudsim.bands import BandTiers
from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.trace import CalibrationTrace
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.maintenance import MaintenanceDecision
from repro.errors import ValidationError
from repro.mapping.taskgraph import random_task_graph
from repro.runtime.session import TraceSession

MB = 1024 * 1024


class TestSessionBasics:
    def test_initial_calibration_charged(self, small_trace):
        s = TraceSession(small_trace, time_step=10, calibration_cost=33.0,
                         solver="row_constant")
        assert s.stats.overhead_seconds == 33.0
        assert s.stats.operations == 0
        assert 0.0 <= s.norm_ne < 1.0
        assert s.verdict in ("stable", "moderately-stable", "dynamic", "too-dynamic")

    def test_collectives_advance_and_account(self, small_trace):
        s = TraceSession(small_trace, time_step=10, calibration_cost=0.0,
                         solver="row_constant")
        r1 = s.broadcast(root=0)
        r2 = s.scatter(root=3, block_bytes=1 * MB)
        assert r1.snapshot == 10 and r2.snapshot == 11
        assert s.stats.operations == 2
        assert s.stats.communication_seconds == pytest.approx(
            r1.elapsed + r2.elapsed
        )
        assert r1.expected > 0 and r1.elapsed > 0

    def test_cursor_wraps(self, small_trace):
        s = TraceSession(small_trace, time_step=10, calibration_cost=0.0,
                         solver="row_constant", threshold=1e9)
        snaps = [s.broadcast().snapshot for _ in range(20)]
        assert max(snaps) == small_trace.n_snapshots - 1
        assert snaps.count(10) >= 2  # wrapped back to the window start

    def test_all_ops_supported(self, small_trace):
        s = TraceSession(small_trace, time_step=10, calibration_cost=0.0,
                         solver="row_constant", threshold=1e9)
        for record in (s.broadcast(), s.scatter(), s.reduce(), s.gather()):
            assert record.elapsed > 0

    def test_map_tasks(self, small_trace):
        s = TraceSession(small_trace, time_step=10, calibration_cost=0.0,
                         solver="row_constant", threshold=1e9)
        g = random_task_graph(8, seed=0)
        mapping, elapsed = s.map_tasks(g)
        assert len(set(mapping.tolist())) == 8
        assert elapsed > 0
        assert s.stats.history[-1].op == "mapping"

    def test_too_large_graph_rejected(self, small_trace):
        s = TraceSession(small_trace, time_step=10, solver="row_constant")
        with pytest.raises(ValidationError):
            s.map_tasks(random_task_graph(9, seed=0))

    def test_short_trace_rejected(self, tiny_trace):
        with pytest.raises(ValidationError):
            TraceSession(tiny_trace, time_step=10)

    def test_subcluster_operation(self, small_trace):
        # Algorithm 1 line 3: run the operation on C' ⊆ C with the full
        # cluster's constant component.
        s = TraceSession(small_trace, time_step=10, solver="row_constant",
                         calibration_cost=0.0, threshold=1e9)
        rec = s.run_collective("broadcast", root=0, machines=[0, 2, 4, 6])
        assert rec.elapsed > 0 and rec.expected > 0
        # A 4-machine broadcast is cheaper than the full 8-machine one.
        full = s.run_collective("broadcast", root=0)
        assert rec.elapsed < full.elapsed

    def test_subcluster_validation(self, small_trace):
        s = TraceSession(small_trace, time_step=10, solver="row_constant")
        with pytest.raises(ValidationError):
            s.run_collective("broadcast", machines=[0])
        with pytest.raises(ValidationError):
            s.run_collective("broadcast", machines=[0, 0, 1])
        with pytest.raises(ValidationError):
            s.run_collective("broadcast", machines=[0, 99])

    def test_communicator_bridges_to_mpisim(self, small_trace):
        s = TraceSession(small_trace, time_step=10, solver="row_constant",
                         calibration_cost=0.0)
        comm = s.communicator()
        assert comm.size == 8
        out = comm.bcast(np.arange(5), root=2)
        assert len(out) == 8 and comm.elapsed > 0
        # Snapshot override and bounds checking.
        comm2 = s.communicator(snapshot=12)
        assert comm2.size == 8
        with pytest.raises(ValidationError):
            s.communicator(snapshot=99)


class TestSessionMaintenance:
    def _two_regime_trace(self):
        dyn = DynamicsConfig(
            volatility_sigma=0.03, spike_probability=0.0, hotspot_probability=0.0
        )
        a = generate_trace(
            TraceConfig(n_machines=8, n_snapshots=15, dynamics=dyn), seed=1
        )
        b = generate_trace(
            TraceConfig(
                n_machines=8,
                n_snapshots=15,
                dynamics=dyn,
                tiers=BandTiers(
                    same_rack_bandwidth=125e6 / 4, cross_rack_bandwidth=50e6 / 4
                ),
            ),
            seed=2,
        )
        return CalibrationTrace(
            alpha=np.concatenate([a.alpha, b.alpha]),
            beta=np.concatenate([a.beta, b.beta]),
            timestamps=np.arange(30, dtype=float) * 1800.0,
        )

    def test_recalibrates_on_regime_change(self):
        trace = self._two_regime_trace()
        s = TraceSession(trace, time_step=10, threshold=1.0,
                         calibration_cost=10.0, solver="row_constant")
        decisions = [s.broadcast().decision for _ in range(12)]
        assert MaintenanceDecision.RECALIBRATE in decisions
        assert s.stats.recalibrations >= 1
        # The estimate adapts: post-recalibration expectations track reality.
        last = s.stats.history[-1]
        assert abs(last.elapsed - last.expected) / last.expected < 1.0

    def test_no_recalibration_on_stationary_trace(self, calm_trace):
        s = TraceSession(calm_trace, time_step=10, threshold=1.0,
                         calibration_cost=10.0, solver="row_constant")
        for _ in range(10):
            s.broadcast()
        assert s.stats.recalibrations == 0
        # Only the initial calibration was charged.
        assert s.stats.overhead_seconds == 10.0

    def test_average_total(self, calm_trace):
        s = TraceSession(calm_trace, time_step=10, threshold=1e9,
                         calibration_cost=5.0, solver="row_constant")
        for _ in range(5):
            s.broadcast()
        assert s.stats.average_total_seconds == pytest.approx(
            (s.stats.communication_seconds + 5.0) / 5
        )
