"""The SVD kernel layer: backend parity, rank prediction, zero-allocation.

Three classes of guarantee are pinned here:

* **Bit identity of the default** — ``svd_backend="exact"`` takes the
  historical code path untouched, so cold solves reproduce the pre-kernel
  outputs bit for bit (the solver-level tests compare against calls that
  never mention a backend).
* **Parity of the partial backends** — ``gram``/``randomized``/``auto``
  re-order floating point and compute fewer triplets, but the thresholded
  rank is exact by construction (no undershoot) and solver outputs agree
  with ``exact`` to solver tolerance on masked and unmasked, warm and cold
  solves.
* **The performance contract** — under ``auto`` on wide TP-shaped
  matrices, steady-state iterations perform no full-width SVD and allocate
  no new ``m × n`` temporaries; both are instrumentation-counter
  assertions, not timing assertions.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.apg import rpca_apg
from repro.core.decompose import decompose
from repro.core.engine import DecompositionEngine
from repro.core.ialm import rpca_ialm
from repro.core.kernels import (
    SVD_BACKENDS,
    RankPredictor,
    SolveWorkspace,
    SVTKernel,
    validate_backend,
)
from repro.core.matrices import TPMatrix
from repro.core.svd_ops import (
    singular_value_threshold,
    soft_threshold,
    spectral_norm,
)
from repro.errors import ValidationError
from repro.observability import Instrumentation, instrumented

SOLVERS = {"apg": rpca_apg, "ialm": rpca_ialm}


def _rpca_problem(m=10, n=800, rank=1, sparsity=0.05, seed=0):
    """A wide low-rank + sparse matrix shaped like the paper's TP-matrices."""
    rng = np.random.default_rng(seed)
    low = np.zeros((m, n))
    for _ in range(rank):
        low += np.outer(rng.standard_normal(m), rng.standard_normal(n))
    sparse = (rng.random((m, n)) < sparsity) * rng.standard_normal((m, n)) * 3.0
    return low + sparse


def _mask(shape, missing=0.1, seed=3):
    rng = np.random.default_rng(seed)
    mask = rng.random(shape) > missing
    mask[0, 0] = True  # keep at least one observation
    return mask


# ---------------------------------------------------------------------------
# validate_backend / RankPredictor
# ---------------------------------------------------------------------------


def test_validate_backend_accepts_all_known():
    for backend in SVD_BACKENDS:
        assert validate_backend(backend) == backend


def test_validate_backend_rejects_unknown():
    with pytest.raises(ValidationError, match="unknown SVD backend"):
        validate_backend("lanczos")


def test_rank_predictor_starts_at_lin_et_al_default():
    assert RankPredictor(min_dim=38416).predict() == 10
    assert RankPredictor(min_dim=4).predict() == 4
    assert RankPredictor.for_shape((10, 38416)).predict() == 10


def test_rank_predictor_shrinks_toward_surviving_rank():
    p = RankPredictor(min_dim=1000)
    p.observe(1)  # steady-state TP-matrix behavior: rank 1 survives
    assert p.predict() == 2  # rank + 1: enough to prove the rank next time


def test_rank_predictor_grows_when_saturated():
    p = RankPredictor(min_dim=100)
    sv = p.predict()
    p.observe(sv)  # every computed triplet survived
    assert p.predict() > sv


def test_rank_predictor_rejects_bad_min_dim():
    with pytest.raises(ValidationError):
        RankPredictor(min_dim=0)


@given(
    min_dim=st.integers(1, 200),
    survivors=st.lists(st.integers(0, 200), min_size=1, max_size=30),
)
@settings(max_examples=200, deadline=None)
def test_rank_predictor_never_undershoots(min_dim, survivors):
    """The next prediction always exceeds the observed rank unless clamped.

    A prediction equal to the surviving rank could not prove the rank was
    not larger; the heuristic must always leave one triplet of headroom
    (or be pinned at the full decomposition).
    """
    p = RankPredictor(min_dim=min_dim)
    for surviving in survivors:
        surviving = min(surviving, min_dim)
        p.observe(surviving)
        assert 1 <= p.predict() <= min_dim
        assert p.predict() > surviving or p.predict() == min_dim


# ---------------------------------------------------------------------------
# spectral_norm / soft_threshold workspace spelling
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shape", [(6, 40), (40, 6), (8, 8)])
def test_spectral_norm_matches_lapack_gram_path(shape):
    # Short side <= 64: Gram eigendecomposition, LAPACK-exact.
    rng = np.random.default_rng(7)
    a = rng.standard_normal(shape)
    expected = float(np.linalg.norm(a, 2))
    assert spectral_norm(a) == pytest.approx(expected, rel=1e-8)


def test_spectral_norm_power_iteration_near_degenerate_spectrum():
    # A gapless Gaussian spectrum is power iteration's worst case; the
    # estimate still lands within ~1e-4 relative — far more than enough for
    # its only consumer, the solvers' mu initialization.
    rng = np.random.default_rng(7)
    a = rng.standard_normal((100, 300))
    expected = float(np.linalg.norm(a, 2))
    assert spectral_norm(a) == pytest.approx(expected, rel=1e-3)


def test_spectral_norm_zero_matrix():
    assert spectral_norm(np.zeros((5, 9))) == 0.0


def test_spectral_norm_large_short_side_power_iteration():
    # Short side > 64 exercises the power-iteration branch.
    rng = np.random.default_rng(11)
    a = rng.standard_normal((80, 120))
    assert spectral_norm(a) == pytest.approx(float(np.linalg.norm(a, 2)), rel=1e-6)


def test_soft_threshold_out_matches_allocating_path():
    rng = np.random.default_rng(2)
    x = rng.standard_normal((12, 50)) * 3.0
    out = np.empty_like(x)
    res = soft_threshold(x, 0.7, out=out)
    assert res is out
    np.testing.assert_array_equal(out, soft_threshold(x, 0.7))


# ---------------------------------------------------------------------------
# SVTKernel: construction + backend parity at the kernel level
# ---------------------------------------------------------------------------


def test_kernel_rejects_unknown_backend():
    with pytest.raises(ValidationError):
        SVTKernel((4, 10), "cholesky")


def test_kernel_rejects_mismatched_predictor():
    with pytest.raises(ValidationError, match="min_dim"):
        SVTKernel((4, 10), "auto", rank_predictor=RankPredictor(min_dim=9))


def test_kernel_exact_is_bit_identical_to_svd_ops():
    a = _rpca_problem(seed=4)
    d_ref, rank_ref, top_ref = singular_value_threshold(a, 0.5)
    d, rank, top = SVTKernel(a.shape, "exact").svt(a, 0.5)
    np.testing.assert_array_equal(d, d_ref)
    assert (rank, top) == (rank_ref, top_ref)


@pytest.mark.parametrize("backend", ["gram", "randomized"])
@pytest.mark.parametrize("transpose", [False, True], ids=["wide", "tall"])
@pytest.mark.parametrize("tau_scale", [0.9, 0.3, 0.02, 2.0])
def test_kernel_partial_backends_match_exact(backend, transpose, tau_scale):
    a = _rpca_problem(m=8, n=300, rank=2, seed=5)
    if transpose:
        a = a.T.copy()
    top = float(np.linalg.norm(a, 2))
    tau = tau_scale * top
    d_ref, rank_ref, _ = singular_value_threshold(a, tau)
    d, rank, top_k = SVTKernel(a.shape, backend).svt(a, tau)
    assert rank == rank_ref  # exact rank, never an undershoot
    np.testing.assert_allclose(d, d_ref, atol=1e-8 * max(top, 1.0))
    assert top_k == pytest.approx(top, rel=1e-6)


def test_kernel_writes_into_out_buffer():
    a = _rpca_problem(seed=6)
    out = np.full(a.shape, np.nan)
    d, _, _ = SVTKernel(a.shape, "gram").svt(a, 0.4, out=out)
    assert d is out
    assert np.isfinite(out).all()


def test_kernel_randomized_regrows_instead_of_undershooting():
    """A tiny threshold keeps many triplets; the first sketch cannot prove
    the rank and must regrow until it can."""
    a = _rpca_problem(m=40, n=400, rank=25, sparsity=0.0, seed=8)
    tau = 1e-9
    instr = Instrumentation("t")
    kernel = SVTKernel(a.shape, "randomized")
    with instrumented(instr):
        _, rank, _ = kernel.svt(a, tau)
    _, rank_ref, _ = singular_value_threshold(a, tau)
    assert rank == rank_ref
    assert instr.counters.get("kernel.svt.regrow", 0) >= 1


@given(seed=st.integers(0, 1000), tau_scale=st.floats(0.01, 1.5))
@settings(max_examples=25, deadline=None)
def test_kernel_rank_is_exact_for_all_backends(seed, tau_scale):
    """Property: partial backends return the exact thresholded rank.

    Except at floating-point ties: when τ lands within a few ulps of a
    singular value (hypothesis loves ``tau_scale=1.0``, which makes τ
    bitwise equal to σ₁), "the" thresholded rank is ill-defined — gesdd
    and the Gram route compute σ in different operation orders and may
    disagree in the last ulp about which side of zero σ−τ falls on. Those
    measure-zero examples are rejected, not asserted on.
    """
    a = _rpca_problem(m=6, n=120, rank=2, seed=seed)
    sigma = np.linalg.svd(a, compute_uv=False)
    tau = tau_scale * float(sigma[0])
    assume(float(np.abs(sigma - tau).min()) > 1e-9 * float(sigma[0]))
    _, rank_ref, _ = singular_value_threshold(a, tau)
    for backend in ("gram", "randomized"):
        _, rank, _ = SVTKernel(a.shape, backend).svt(a, tau)
        assert rank == rank_ref


def test_auto_policy_prefers_gram_on_tp_shapes():
    assert SVTKernel((10, 38416), "auto").choose() == "gram"


def test_auto_policy_uses_randomized_when_rank_far_below_short_side():
    kernel = SVTKernel((500, 600), "auto")
    assert kernel.predictor.predict() == 10
    assert kernel.choose() == "randomized"


def test_auto_policy_falls_back_to_exact_when_rank_saturates():
    kernel = SVTKernel(
        (100, 120), "auto", rank_predictor=RankPredictor(min_dim=100, sv=80)
    )
    assert kernel.choose() == "exact"


# ---------------------------------------------------------------------------
# SolveWorkspace
# ---------------------------------------------------------------------------


def test_workspace_reuses_buffers_by_name():
    ws = SolveWorkspace((4, 9))
    a = ws.buf("D")
    assert ws.buf("D") is a
    assert ws.allocated == 1
    b, c = ws.bufs("E", "D")
    assert c is a and b is not a
    assert ws.allocated == 2


def test_workspace_counts_allocations():
    instr = Instrumentation("t")
    with instrumented(instr):
        ws = SolveWorkspace((3, 7))
        ws.bufs("D", "E", "D", "E")
    assert instr.counters["kernel.workspace.alloc_mn"] == 2


# ---------------------------------------------------------------------------
# Solver-level parity: exact vs partial backends, masked/unmasked, warm/cold
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_exact_backend_is_bit_identical_to_default(solver):
    """``svd_backend="exact"`` must be the historical path, bit for bit."""
    a = _rpca_problem(seed=10)
    fn = SOLVERS[solver]
    ref = fn(a)
    res = fn(a, svd_backend="exact")
    np.testing.assert_array_equal(res.low_rank, ref.low_rank)
    np.testing.assert_array_equal(res.sparse, ref.sparse)
    assert res.iterations == ref.iterations
    assert res.residual == ref.residual


@pytest.mark.parametrize("solver", sorted(SOLVERS))
@pytest.mark.parametrize("backend", ["gram", "randomized", "auto"])
@pytest.mark.parametrize("masked", [False, True], ids=["unmasked", "masked"])
def test_partial_backends_match_exact_solves(solver, backend, masked):
    a = _rpca_problem(seed=11)
    fn = SOLVERS[solver]
    kwargs = {"mask": _mask(a.shape)} if masked else {}
    ref = fn(a, **kwargs)
    res = fn(a, svd_backend=backend, **kwargs)
    assert res.converged == ref.converged
    assert res.iterations == ref.iterations
    assert res.rank == ref.rank
    scale = float(np.linalg.norm(a))
    assert np.linalg.norm(res.low_rank - ref.low_rank) <= 1e-6 * scale
    assert np.linalg.norm(res.sparse - ref.sparse) <= 1e-6 * scale


@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_partial_backend_warm_start_matches_exact_warm_start(solver):
    a = _rpca_problem(seed=12)
    fn = SOLVERS[solver]
    seed = fn(a)
    b = a + 0.01 * np.outer(np.ones(a.shape[0]), np.random.default_rng(1).standard_normal(a.shape[1]))
    ref = fn(b, warm_start=seed)
    res = fn(b, warm_start=seed, svd_backend="auto")
    assert res.warm_started and ref.warm_started
    assert res.iterations == ref.iterations
    scale = float(np.linalg.norm(b))
    assert np.linalg.norm(res.low_rank - ref.low_rank) <= 1e-6 * scale


@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_solver_rejects_unknown_backend(solver):
    a = _rpca_problem(seed=13)
    with pytest.raises(ValidationError, match="unknown SVD backend"):
        SOLVERS[solver](a, svd_backend="lanczos")


def test_shared_predictor_carries_rank_across_solves():
    a = _rpca_problem(seed=14)
    predictor = RankPredictor.for_shape(a.shape)
    rpca_apg(a, svd_backend="auto", rank_predictor=predictor)
    first = predictor.observations
    assert first > 0
    rpca_apg(a, svd_backend="auto", rank_predictor=predictor)
    assert predictor.observations > first
    # Steady state on a rank-1-dominated problem: prediction near 2, not 10.
    assert predictor.predict() <= 3


# ---------------------------------------------------------------------------
# The performance contract, as counters (not timing)
# ---------------------------------------------------------------------------


def _auto_solve_counters(max_iter):
    a = _rpca_problem(m=10, n=1500, seed=15)
    instr = Instrumentation("t")
    with instrumented(instr):
        res = rpca_apg(a, svd_backend="auto", max_iter=max_iter, tol=0.0)
    assert res.iterations == max_iter
    return instr.counters


def test_auto_steady_state_no_full_width_svd_and_no_mn_allocations():
    """ISSUE acceptance: under ``auto`` on the paper's wide shape, steady
    state does zero full-width SVDs, and the m×n allocation count does not
    grow with the iteration count."""
    short = _auto_solve_counters(max_iter=10)
    long = _auto_solve_counters(max_iter=40)
    assert short.get("kernel.svt.full_width", 0) == 0
    assert long.get("kernel.svt.full_width", 0) == 0
    assert long["kernel.svt.gram"] == 40
    assert long["kernel.workspace.alloc_mn"] == short["kernel.workspace.alloc_mn"]


# ---------------------------------------------------------------------------
# decompose / engine integration
# ---------------------------------------------------------------------------


def _tp(seed=16, m=10, n_machines=14):
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.5, 2.0, size=(n_machines, n_machines))
    rows = np.stack(
        [
            (base + 0.02 * rng.standard_normal(base.shape)).reshape(-1)
            for _ in range(m)
        ]
    )
    return TPMatrix(data=rows, n_machines=n_machines, timestamps=np.arange(m, dtype=float))


def test_decompose_accepts_svd_backend():
    tp = _tp()
    ref = decompose(tp, solver="apg")
    dec = decompose(tp, solver="apg", svd_backend="auto")
    np.testing.assert_allclose(
        dec.constant.row, ref.constant.row, rtol=0, atol=1e-8 * abs(ref.constant.row).max()
    )
    assert dec.norm_ne == pytest.approx(ref.norm_ne, abs=1e-9)


def test_decompose_rejects_backend_for_non_svt_solver():
    tp = _tp()
    with pytest.raises(ValidationError, match="does not take an SVD backend"):
        decompose(tp, solver="pca", svd_backend="auto")


def test_engine_rejects_backend_for_non_svt_solver():
    with pytest.raises(ValidationError, match="does not take an SVD backend"):
        DecompositionEngine(
            _FakeSource(), nbytes=8.0, solver="pca", svd_backend="auto"
        )


class _FakeSource:
    """Minimal WindowSource over a synthetic near-constant network."""

    n_machines = 12
    n_snapshots = 30

    def __init__(self):
        rng = np.random.default_rng(21)
        base = rng.uniform(0.5, 2.0, size=(self.n_machines, self.n_machines))
        self._rows = [
            (base + 0.02 * rng.standard_normal(base.shape)).reshape(-1)
            for _ in range(self.n_snapshots)
        ]

    def snapshot_row(self, k, nbytes):
        return self._rows[k]

    def timestamp(self, k):
        return float(k)


def test_engine_threads_predictor_through_recalibrations():
    engine = DecompositionEngine(
        _FakeSource(), nbytes=8.0, time_step=10, svd_backend="auto"
    )
    engine.calibrate(10)
    assert len(engine._predictors) == 1
    predictor = next(iter(engine._predictors.values()))
    first = predictor.observations
    engine.calibrate(12)
    assert next(iter(engine._predictors.values())) is predictor
    assert predictor.observations > first


def test_engine_warm_state_round_trips_predictors():
    import pickle

    engine = DecompositionEngine(
        _FakeSource(), nbytes=8.0, time_step=10, svd_backend="auto"
    )
    engine.calibrate(10)
    engine.calibrate(12)
    state = pickle.loads(pickle.dumps(engine.export_warm_state()))
    other = DecompositionEngine(
        _FakeSource(), nbytes=8.0, time_step=10, svd_backend="auto"
    )
    other.import_warm_state(state)
    assert other._predictors == engine._predictors
    ref = engine.calibrate(14)
    res = other.calibrate(14)
    np.testing.assert_array_equal(res.constant.row, ref.constant.row)


def test_engine_exact_backend_solves_unchanged():
    ref_engine = DecompositionEngine(_FakeSource(), nbytes=8.0, time_step=10)
    exact_engine = DecompositionEngine(
        _FakeSource(), nbytes=8.0, time_step=10, svd_backend="exact"
    )
    ref = ref_engine.calibrate(10)
    res = exact_engine.calibrate(10)
    np.testing.assert_array_equal(res.constant.row, ref.constant.row)
