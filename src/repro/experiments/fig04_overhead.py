"""Fig 4 — overhead of calibrating a temporal performance matrix.

The paper reports near-linear growth with the number of instances: just
under 4 minutes at 64 instances and about 10 minutes at 196, for time step
10. The driver evaluates the calibration cost model over a sweep of cluster
sizes and also verifies the schedule's round count (the model's N term).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calibration.overhead import CalibrationCostModel, calibration_overhead_seconds
from ..calibration.schedule import pairing_rounds

__all__ = ["Fig04Result", "run"]

DEFAULT_SIZES = (16, 32, 64, 96, 128, 160, 196)


@dataclass(frozen=True)
class Fig04Result:
    """Series of (n_instances, overhead_seconds) plus schedule round counts."""

    sizes: tuple[int, ...]
    overhead_seconds: tuple[float, ...]
    schedule_rounds: tuple[int, ...]
    time_step: int

    def as_rows(self) -> list[tuple[int, float, float, int]]:
        return [
            (n, s, s / 60.0, r)
            for n, s, r in zip(self.sizes, self.overhead_seconds, self.schedule_rounds)
        ]


def run(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    *,
    time_step: int = 10,
    model: CalibrationCostModel | None = None,
) -> Fig04Result:
    """Evaluate calibration overhead for each cluster size."""
    overheads = tuple(
        calibration_overhead_seconds(n, time_step, model) for n in sizes
    )
    rounds = tuple(pairing_rounds(n).n_rounds for n in sizes)
    return Fig04Result(
        sizes=tuple(sizes),
        overhead_seconds=overheads,
        schedule_rounds=rounds,
        time_step=time_step,
    )
