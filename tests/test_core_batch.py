"""Batched stacked-solver tests: bit parity, dropout, fallback, workspaces.

The batched path's contract is exact: slice ``b`` of a float64 batched
solve is **bit-identical** to the single-matrix ``svd_backend="gram"``
solve of matrix ``b``, for any batch composition, because every stacked
operation (batched matmul, stacked eigh, broadcast scalars) is per-slice
bit-invariant and per-slice reductions reuse the single-matrix kernels.
Every parity assertion here is therefore ``np.array_equal``, never
``allclose`` — unconditionally, on every platform.
"""

import numpy as np
import pytest

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.decompose import decompose
from repro.core.batch import (
    BATCH_DTYPES,
    BatchedSolveWorkspace,
    solve_rpca_batch,
    validate_batch_dtype,
)
from repro.core.engine import BatchDecompositionEngine
from repro.core.kernels import BatchRankPredictor, RankPredictor
from repro.core.matrices import TPMatrix
from repro.core.solvers import solve_rpca
from repro.errors import ValidationError
from repro.observability import Instrumentation, instrumented

MB = 1024 * 1024


def _tp(seed, *, n_machines=6, n_snapshots=8, masked=False):
    trace = generate_trace(
        TraceConfig(n_machines=n_machines, n_snapshots=n_snapshots), seed=seed
    )
    tp = trace.tp_matrix(8 * MB)
    if not masked:
        return tp
    rng = np.random.default_rng(seed + 1000)
    mask = rng.random(tp.data.shape) > 0.12
    return TPMatrix(
        data=tp.data, n_machines=tp.n_machines, timestamps=tp.timestamps, mask=mask
    )


def _stack(seeds, **kwargs):
    tps = [_tp(s, **kwargs) for s in seeds]
    return [tp.data for tp in tps], [tp.mask for tp in tps], tps


def _single(a, mask, solver):
    kwargs = {"svd_backend": "gram"}
    if mask is not None:
        kwargs["mask"] = mask
    return solve_rpca(a, solver=solver, **kwargs)


class TestBitParity:
    """The headline contract: batched slices == per-matrix gram solves."""

    @pytest.mark.parametrize("solver", ["apg", "ialm"])
    def test_unmasked_batch_matches_per_matrix(self, solver):
        mats, _, _ = _stack(range(5))
        results = solve_rpca_batch(mats, solver=solver)
        iters = set()
        for a, res in zip(mats, results):
            ref = _single(a, None, solver)
            assert np.array_equal(res.low_rank, ref.low_rank)
            assert np.array_equal(res.sparse, ref.sparse)
            assert res.iterations == ref.iterations
            assert res.rank == ref.rank
            assert res.residual == ref.residual
            assert res.converged and ref.converged
            iters.add(res.iterations)
        # The stack genuinely exercised dropout: convergence was ragged.
        assert len(iters) > 1

    @pytest.mark.parametrize("solver", ["apg", "ialm"])
    def test_masked_and_mixed_batch_matches_per_matrix(self, solver):
        mats, masks, _ = _stack(range(4), masked=True)
        um, _, _ = _stack([90, 91])
        all_mats = mats + um
        all_masks = masks + [None, None]
        results = solve_rpca_batch(all_mats, all_masks, solver=solver)
        for a, mk, res in zip(all_mats, all_masks, results):
            ref = _single(np.where(mk, a, 0.0) if mk is not None else a, mk, solver)
            assert np.array_equal(res.low_rank, ref.low_rank)
            assert np.array_equal(res.sparse, ref.sparse)
            assert res.iterations == ref.iterations

    def test_batch_composition_invariance(self):
        """A slice's bits cannot depend on which other slices ride along."""
        mats, _, _ = _stack(range(6))
        full = solve_rpca_batch(mats)
        subset = solve_rpca_batch([mats[4], mats[1]])
        assert np.array_equal(full[4].low_rank, subset[0].low_rank)
        assert np.array_equal(full[1].low_rank, subset[1].low_rank)
        solo = solve_rpca_batch([mats[2]])
        assert np.array_equal(full[2].low_rank, solo[0].low_rank)
        assert np.array_equal(full[2].sparse, solo[0].sparse)

    @pytest.mark.parametrize("solver", ["apg", "ialm"])
    def test_batched_matches_exact_to_tolerance(self, solver):
        mats, _, _ = _stack(range(3))
        results = solve_rpca_batch(mats, solver=solver)
        for a, res in zip(mats, results):
            exact = solve_rpca(a, solver=solver)
            scale = float(np.abs(exact.low_rank).max())
            diff = float(np.abs(res.low_rank - exact.low_rank).max())
            assert diff <= 1e-5 * scale


class TestSweepParity:
    """Batched fleet sweeps vs the serial reference: bit-for-bit P_D."""

    def test_parallel_sweep_matches_serial_bitwise(self):
        from repro import sweep_fleet
        from repro.fleet import ClusterSpec

        clusters = [
            ClusterSpec(
                name=f"c{i}",
                trace=generate_trace(
                    TraceConfig(n_machines=6, n_snapshots=12), seed=300 + i
                ),
            )
            for i in range(5)
        ]
        serial = sweep_fleet(clusters, serial=True, batch_size=2, window=8)
        parallel = sweep_fleet(clusters, n_workers=2, batch_size=2, window=8)
        assert set(serial.clusters) == set(parallel.clusters)
        for name in serial.clusters:
            s, p = serial.clusters[name], parallel.clusters[name]
            assert np.array_equal(s.constant_row, p.constant_row)
            assert s.iterations == p.iterations
            assert s.rank == p.rank
            assert s.residual == p.residual

    def test_serial_sweep_matches_per_cluster_decompose(self):
        from repro import sweep_fleet
        from repro.fleet import ClusterSpec

        traces = [
            generate_trace(TraceConfig(n_machines=6, n_snapshots=12), seed=400 + i)
            for i in range(3)
        ]
        clusters = [ClusterSpec(name=f"c{i}", trace=t) for i, t in enumerate(traces)]
        report = sweep_fleet(clusters, serial=True, batch_size=3, window=8)
        for i, trace in enumerate(traces):
            tp = trace.tp_matrix(8.0 * MB, start=trace.n_snapshots - 8, count=8)
            ref = decompose(tp, svd_backend="gram")
            assert np.array_equal(report.clusters[f"c{i}"].constant_row, ref.constant.row)


class TestFloat32Mode:
    def test_f32_refinement_close_to_f64(self):
        mats, _, _ = _stack(range(3))
        sink = Instrumentation("f32")
        with instrumented(sink):
            rough = solve_rpca_batch(mats, dtype="float32")
        ref = solve_rpca_batch(mats, dtype="float64")
        for r, f in zip(rough, ref):
            assert r.low_rank.dtype == np.float64
            scale = float(np.abs(f.low_rank).max())
            diff = float(np.abs(r.low_rank - f.low_rank).max())
            # The refinement pass warm-starts, and APG-with-continuation is
            # path-dependent at roughly warm-start tolerance (worse on tiny
            # windows like these); f32 is a speed mode, not a parity mode.
            assert diff <= 2e-2 * scale
            # Iterations account for both phases.
            assert r.iterations > f.iterations / 4
        assert sink.counters["kernel.batch.refine_passes"] == 1

    def test_validate_batch_dtype(self):
        for name in BATCH_DTYPES:
            assert validate_batch_dtype(name) == name
        with pytest.raises(ValidationError, match="batch dtype"):
            validate_batch_dtype("float16")


class TestDropoutCounters:
    def test_dropout_accounting(self):
        mats, _, _ = _stack(range(5))
        sink = Instrumentation("drop")
        with instrumented(sink):
            results = solve_rpca_batch(mats)
        c = sink.counters
        assert c["kernel.batch.solves"] == 1
        assert c["kernel.batch.matrices"] == 5
        slice_iters = sum(r.iterations for r in results)
        assert c["kernel.batch.active_iterations"] == slice_iters
        # Ragged convergence means the batch loop outlived some slices, but
        # dropout compaction means the idle tail was never iterated.
        loop_iters = c["kernel.batch.iterations"]
        assert loop_iters == max(r.iterations for r in results)
        assert c["kernel.batch.dropout_iterations"] == loop_iters * 5 - slice_iters
        assert c["kernel.batch.dropout_iterations"] > 0
        assert "kernel.batch.solve_seconds" in sink.timers

    def test_spans_emitted_per_slice(self):
        mats, _, _ = _stack(range(3))
        sink = Instrumentation("spans")
        with instrumented(sink):
            solve_rpca_batch(mats, context="unit")
        assert len(sink.spans) == 3
        assert all(s.context == "unit" for s in sink.spans)


class TestWorkspace:
    def test_reuse_allocates_once(self):
        mats, _, _ = _stack(range(3))
        ws = BatchedSolveWorkspace((3, *mats[0].shape))
        sink = Instrumentation("ws")
        with instrumented(sink):
            first = solve_rpca_batch(mats, workspace=ws)
            allocated = ws.allocated
            second = solve_rpca_batch(mats, workspace=ws)
        assert ws.allocated == allocated  # steady state: no new buffers
        assert sink.counters["kernel.batch.workspace.alloc_bmn"] == allocated
        for a, b in zip(first, second):
            assert np.array_equal(a.low_rank, b.low_rank)

    def test_shape_and_dtype_guards(self):
        ws = BatchedSolveWorkspace((2, 4, 9))
        with pytest.raises(ValidationError, match="does not match"):
            solve_rpca_batch([np.ones((3, 9)), np.ones((3, 9))], workspace=ws)
        buf = ws.buf("x")
        assert buf.shape == (2, 4, 9) and buf.dtype == np.float64
        with pytest.raises(ValidationError, match="requested"):
            ws.buf("x", dtype=np.float32)
        with pytest.raises(ValidationError, match="positive"):
            BatchedSolveWorkspace((0, 4, 9))


class TestFallback:
    def test_unsupported_solver_falls_back(self):
        mats, _, _ = _stack(range(2))
        sink = Instrumentation("fb")
        with instrumented(sink):
            results = solve_rpca_batch(mats, solver="row_constant")
        assert sink.counters["kernel.batch.fallback"] == 2
        for a, res in zip(mats, results):
            ref = solve_rpca(a, solver="row_constant")
            assert np.array_equal(res.low_rank, ref.low_rank)

    def test_unsupported_kwarg_falls_back_bitwise(self):
        mats, _, _ = _stack(range(2))
        results = solve_rpca_batch(mats, solver="apg", svd_backend="exact")
        for a, res in zip(mats, results):
            ref = solve_rpca(a, solver="apg", svd_backend="exact")
            assert np.array_equal(res.low_rank, ref.low_rank)

    def test_wide_short_side_falls_back(self):
        rng = np.random.default_rng(7)
        mats = [rng.normal(size=(70, 80)) for _ in range(2)]
        sink = Instrumentation("fb2")
        with instrumented(sink):
            solve_rpca_batch(mats, max_iter=5)
        assert sink.counters["kernel.batch.fallback"] == 2

    def test_fallback_false_raises_with_reason(self):
        mats, _, _ = _stack(range(2))
        with pytest.raises(ValidationError, match="row_constant"):
            solve_rpca_batch(mats, solver="row_constant", fallback=False)
        with pytest.raises(ValidationError, match="keyword"):
            solve_rpca_batch(mats, solver="apg", warm_start=None, fallback=False)


class TestInputValidation:
    def test_empty_batch(self):
        with pytest.raises(ValidationError, match="at least one"):
            solve_rpca_batch([])

    def test_ragged_shapes(self):
        with pytest.raises(ValidationError, match="shape-homogeneous"):
            solve_rpca_batch([np.ones((4, 9)), np.ones((5, 9))])

    def test_mask_count_mismatch(self):
        with pytest.raises(ValidationError, match="masks"):
            solve_rpca_batch([np.ones((4, 9))], masks=[None, None])

    def test_3d_array_input(self):
        mats, _, _ = _stack(range(2))
        stacked = np.stack(mats)
        a = solve_rpca_batch(stacked)
        b = solve_rpca_batch(mats)
        for x, y in zip(a, b):
            assert np.array_equal(x.low_rank, y.low_rank)


class TestBatchRankPredictor:
    def test_matches_scalar_predictor_elementwise(self):
        shape = (4, 10, 25)
        batch = BatchRankPredictor.for_stack(shape)
        singles = [RankPredictor.for_shape(shape[1:]) for _ in range(4)]
        rng = np.random.default_rng(3)
        for _ in range(12):
            surviving = rng.integers(1, 11, size=4)
            batch.observe(surviving.astype(np.int64))
            for s, k in zip(singles, surviving):
                s.observe(int(k))
            assert np.array_equal(
                batch.predict(), np.array([s.predict() for s in singles])
            )

    def test_slots_remap_observations(self):
        batch = BatchRankPredictor.for_stack((3, 10, 25))
        before = batch.predict()
        # Only slot 2 is active; its observation must land at position 2.
        batch.observe(np.array([3]), slots=np.array([2]))
        after = batch.predict()
        assert after[0] == before[0] and after[1] == before[1]
        assert after[2] == 4  # shrink rule: surviving + 1


class TestBatchEngine:
    def test_engine_matches_decompose_and_groups_shapes(self):
        tps = [_tp(s) for s in range(3)]
        tps += [_tp(s, n_machines=5, n_snapshots=6) for s in (50, 51)]
        tps.append(_tp(60, masked=True))
        engine = BatchDecompositionEngine()
        decs = engine.decompose_batch(tps)
        assert len(decs) == len(tps)
        for tp, dec in zip(tps, decs):
            ref = decompose(tp, svd_backend="gram")
            assert np.array_equal(dec.constant.row, ref.constant.row)
            assert dec.solver_iterations == ref.solver_iterations
            assert dec.report.verdict == ref.report.verdict
        assert engine.instrumentation.counters["engine.batch.windows"] == len(tps)
        # 6x8 windows (masked + unmasked share a group) and 5x6 windows.
        assert engine.instrumentation.counters["engine.batch.groups"] == 2

    def test_engine_workspaces_stable_across_sweeps(self):
        tps = [_tp(s) for s in range(4)]
        engine = BatchDecompositionEngine()
        engine.decompose_batch(tps)
        allocated = {k: ws.allocated for k, ws in engine._workspaces.items()}
        engine.decompose_batch(tps)
        assert {k: ws.allocated for k, ws in engine._workspaces.items()} == allocated

    def test_engine_validates_inputs(self):
        with pytest.raises(ValidationError, match="at least one"):
            BatchDecompositionEngine().decompose_batch([])
        with pytest.raises(ValidationError, match="TPMatrix"):
            BatchDecompositionEngine().decompose_batch([np.ones((4, 9))])
        with pytest.raises(ValidationError, match="batch dtype"):
            BatchDecompositionEngine(dtype="float16")
        with pytest.raises(TypeError):
            BatchDecompositionEngine(nonsense_kwarg=1)

    def test_engine_f32_mode(self):
        tps = [_tp(s) for s in range(2)]
        fast = BatchDecompositionEngine(dtype="float32").decompose_batch(tps)
        ref = BatchDecompositionEngine().decompose_batch(tps)
        for f, r in zip(fast, ref):
            scale = float(np.abs(r.constant.row).max())
            assert float(np.abs(f.constant.row - r.constant.row).max()) <= 2e-2 * scale
