"""Unit tests for PerformanceMatrix / TPMatrix / TCMatrix / TEMatrix."""

import numpy as np
import pytest

from repro.core.matrices import PerformanceMatrix, TCMatrix, TEMatrix, TPMatrix
from repro.errors import ValidationError


def weights(n, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.uniform(0.5, 2.0, size=(n, n))
    np.fill_diagonal(w, 0.0)
    return w


class TestPerformanceMatrix:
    def test_roundtrip_flatten(self):
        pm = PerformanceMatrix(weights=weights(5), timestamp=3.0)
        back = PerformanceMatrix.from_flat(pm.flatten(), timestamp=3.0)
        np.testing.assert_array_equal(back.weights, pm.weights)
        assert back.timestamp == 3.0

    def test_rejects_nonzero_diagonal(self):
        w = weights(3)
        w[1, 1] = 0.5
        with pytest.raises(ValidationError, match="diagonal"):
            PerformanceMatrix(weights=w)

    def test_rejects_nonpositive_offdiagonal(self):
        w = weights(3)
        w[0, 1] = 0.0
        with pytest.raises(ValidationError, match="positive"):
            PerformanceMatrix(weights=w)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValidationError):
            PerformanceMatrix(weights=np.ones((2, 3)))

    def test_rejects_bad_flat_length(self):
        with pytest.raises(ValidationError, match="perfect square"):
            PerformanceMatrix.from_flat(np.ones(5))

    def test_immutability(self):
        pm = PerformanceMatrix(weights=weights(4))
        with pytest.raises(ValueError):
            pm.weights[0, 1] = 9.0

    def test_restrict(self):
        pm = PerformanceMatrix(weights=weights(6))
        sub = pm.restrict([1, 3, 5])
        assert sub.n_machines == 3
        assert sub.weights[0, 1] == pm.weights[1, 3]
        assert sub.weights[2, 0] == pm.weights[5, 1]

    def test_restrict_rejects_duplicates(self):
        pm = PerformanceMatrix(weights=weights(4))
        with pytest.raises(ValidationError, match="distinct"):
            pm.restrict([1, 1])

    def test_restrict_rejects_out_of_range(self):
        pm = PerformanceMatrix(weights=weights(4))
        with pytest.raises(ValidationError):
            pm.restrict([0, 9])

    def test_single_machine_allowed(self):
        pm = PerformanceMatrix(weights=np.zeros((1, 1)))
        assert pm.n_machines == 1


class TestTPMatrix:
    def test_from_snapshots_orders_by_time(self):
        s1 = PerformanceMatrix(weights=weights(3, 1), timestamp=10.0)
        s2 = PerformanceMatrix(weights=weights(3, 2), timestamp=5.0)
        tp = TPMatrix.from_snapshots([s1, s2])
        assert tp.timestamps[0] == 5.0 and tp.timestamps[1] == 10.0
        np.testing.assert_array_equal(tp.snapshot(0).weights, s2.weights)

    def test_shape_validation(self):
        with pytest.raises(ValidationError, match="columns"):
            TPMatrix(data=np.ones((2, 10)), n_machines=3)

    def test_default_timestamps(self):
        tp = TPMatrix(data=np.ones((4, 9)), n_machines=3)
        np.testing.assert_array_equal(tp.timestamps, [0, 1, 2, 3])

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(ValidationError, match="non-decreasing"):
            TPMatrix(data=np.ones((2, 4)), n_machines=2, timestamps=[2.0, 1.0])

    def test_mismatched_snapshot_sizes_rejected(self):
        s1 = PerformanceMatrix(weights=weights(3))
        s2 = PerformanceMatrix(weights=weights(4))
        with pytest.raises(ValidationError, match="same size"):
            TPMatrix.from_snapshots([s1, s2])

    def test_head(self):
        tp = TPMatrix(data=np.arange(12, dtype=float).reshape(3, 4) + 1, n_machines=2)
        h = tp.head(2)
        assert h.n_snapshots == 2
        np.testing.assert_array_equal(h.data, tp.data[:2])

    def test_head_bounds(self):
        tp = TPMatrix(data=np.ones((3, 4)), n_machines=2)
        with pytest.raises(ValidationError):
            tp.head(0)
        with pytest.raises(ValidationError):
            tp.head(4)

    def test_snapshot_out_of_range(self):
        tp = TPMatrix(data=np.ones((2, 4)), n_machines=2)
        with pytest.raises(ValidationError):
            tp.snapshot(5)

    def test_empty_snapshots_rejected(self):
        with pytest.raises(ValidationError):
            TPMatrix.from_snapshots([])


class TestTCMatrix:
    def test_as_matrix_rank_one(self):
        row = np.array([0.0, 1.0, 2.0, 0.0])
        tc = TCMatrix(row=row, n_rows=5, n_machines=2)
        m = tc.as_matrix()
        assert m.shape == (5, 4)
        assert np.linalg.matrix_rank(m) == 1

    def test_performance_matrix_zeroes_diagonal(self):
        row = np.array([0.3, 1.0, 2.0, 0.3])  # dirty diagonal from a solver
        tc = TCMatrix(row=row, n_rows=2, n_machines=2)
        pm = tc.performance_matrix()
        assert pm.weights[0, 0] == 0.0 and pm.weights[1, 1] == 0.0
        assert pm.weights[0, 1] == 1.0

    def test_performance_matrix_clips_negative(self):
        row = np.array([0.0, -0.5, 2.0, 0.0])
        tc = TCMatrix(row=row, n_rows=1, n_machines=2)
        pm = tc.performance_matrix()
        assert pm.weights[0, 1] > 0.0

    def test_all_nonpositive_rejected(self):
        row = np.array([0.0, -1.0, -2.0, 0.0])
        tc = TCMatrix(row=row, n_rows=1, n_machines=2)
        with pytest.raises(ValidationError, match="no positive"):
            tc.performance_matrix()

    def test_row_length_validated(self):
        with pytest.raises(ValidationError):
            TCMatrix(row=np.ones(5), n_machines=2, n_rows=3)


class TestTEMatrix:
    def test_construction(self):
        te = TEMatrix(data=np.zeros((3, 9)) + 0.5, n_machines=3)
        assert te.n_rows == 3 and te.n_machines == 3

    def test_shape_validated(self):
        with pytest.raises(ValidationError):
            TEMatrix(data=np.ones((2, 5)), n_machines=2)
