"""Max-min fair bandwidth allocation by progressive filling (water-filling).

Given the set of active flows (each a multiset-free list of directed link
ids) and per-link capacities, all flows' rates rise together until some link
saturates; flows crossing a saturated link freeze at their current rate, the
saturated capacity is withdrawn, and the remaining flows keep rising. The
fixed point is the unique max-min fair allocation — the standard fluid
abstraction of long-lived TCP sharing used by flow-level simulators.

The implementation is incidence-matrix vectorized: each filling round is a
couple of numpy reductions over an F×L boolean matrix, so the per-event cost
of the simulator stays small even with hundreds of concurrent flows.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

__all__ = ["max_min_fair_rates", "build_incidence"]

_EPS = 1e-12


def build_incidence(
    paths: list[tuple[int, ...]], n_links: int
) -> np.ndarray:
    """F×L boolean incidence matrix for the given flow paths."""
    f = len(paths)
    inc = np.zeros((f, n_links), dtype=bool)
    for i, path in enumerate(paths):
        for l in path:
            if not 0 <= l < n_links:
                raise SimulationError(f"link id {l} out of range")
            inc[i, l] = True
    return inc


def max_min_fair_rates(
    incidence: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """Compute max-min fair rates for flows given link capacities.

    Parameters
    ----------
    incidence:
        F×L boolean matrix; ``incidence[f, l]`` marks flow *f* on link *l*.
        Every flow must traverse at least one link.
    capacities:
        Length-L positive capacities (bytes/second).

    Returns
    -------
    numpy.ndarray
        Length-F rates. Guaranteed feasible (no link over capacity beyond
        floating-point slack) and max-min fair.
    """
    inc = np.asarray(incidence, dtype=bool)
    caps = np.asarray(capacities, dtype=np.float64)
    if inc.ndim != 2:
        raise SimulationError("incidence must be 2-D")
    f, l = inc.shape
    if caps.shape != (l,):
        raise SimulationError("capacities length must match link count")
    if f == 0:
        return np.zeros(0)
    if np.any(caps <= 0):
        raise SimulationError("capacities must be positive")
    if not inc.any(axis=1).all():
        raise SimulationError("every flow must traverse at least one link")

    rates = np.zeros(f)
    active = np.ones(f, dtype=bool)
    cap_rem = caps.copy()

    inc_f = inc.astype(np.float64)  # bool @ bool is logical, not a count
    # Each round saturates >= 1 link, so <= L rounds.
    for _ in range(l + 1):
        counts = active.astype(np.float64) @ inc_f  # active flows per link
        loaded = counts > 0
        if not loaded.any():
            break
        delta = float(np.min(cap_rem[loaded] / counts[loaded]))
        rates[active] += delta
        cap_rem[loaded] -= delta * counts[loaded]
        saturated = loaded & (cap_rem <= _EPS * caps)
        if not saturated.any():
            # Numerical guard: force the tightest link saturated.
            tight = np.flatnonzero(loaded)[
                int(np.argmin(cap_rem[loaded] / counts[loaded]))
            ]
            saturated = np.zeros(l, dtype=bool)
            saturated[tight] = True
        frozen = active & inc[:, saturated].any(axis=1)
        active &= ~frozen
        if not active.any():
            break
    else:  # pragma: no cover - defensive
        raise SimulationError("progressive filling failed to terminate")
    return rates
