"""Fig 10 — impact of ``Norm(N_E)`` on optimization effectiveness.

The paper injects noise into the EC2 trace until the decomposition's
relative error norm reaches each predefined level, then measures the
*expected* improvement of RPCA over Baseline (Fig 10a, for broadcast,
scatter and topology mapping) and over Heuristics (Fig 10b, broadcast).
Shape to reproduce: improvement over Baseline decays as Norm(N_E) grows —
>40% below 0.1, <20% beyond 0.2 — while the RPCA-vs-Heuristics margin is
small on stable networks, peaks around 0.2, and both collapse when the
network is hopelessly dynamic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cloudsim.noise import inject_noise_to_target
from ..cloudsim.trace import CalibrationTrace
from ..mapping.taskgraph import random_task_graph
from ..utils.seeding import derive_seed, spawn_rng
from .fig07_overall_ec2 import default_strategies
from .harness import ReplayContext, collective_comparison, mapping_comparison

__all__ = ["NePoint", "Fig10Result", "run"]


@dataclass(frozen=True, slots=True)
class NePoint:
    """Improvements at one achieved Norm(N_E) level."""

    target_norm_ne: float
    achieved_norm_ne: float
    broadcast_vs_baseline: float
    scatter_vs_baseline: float
    mapping_vs_baseline: float
    broadcast_vs_heuristics: float


@dataclass(frozen=True)
class Fig10Result:
    points: tuple[NePoint, ...]

    def series_vs_baseline(self, app: str) -> list[tuple[float, float]]:
        attr = f"{app}_vs_baseline"
        return [(p.achieved_norm_ne, getattr(p, attr)) for p in self.points]

    def series_vs_heuristics(self) -> list[tuple[float, float]]:
        return [(p.achieved_norm_ne, p.broadcast_vs_heuristics) for p in self.points]

    def as_rows(self) -> list[tuple[float, float, float, float, float]]:
        return [
            (
                p.achieved_norm_ne,
                p.broadcast_vs_baseline,
                p.scatter_vs_baseline,
                p.mapping_vs_baseline,
                p.broadcast_vs_heuristics,
            )
            for p in self.points
        ]


def run(
    trace: CalibrationTrace,
    *,
    targets: tuple[float, ...] = (0.05, 0.1, 0.2, 0.3, 0.5),
    time_step: int = 10,
    nbytes: float = 8.0 * 1024 * 1024,
    repetitions: int = 60,
    solver: str = "apg",
    seed: int = 0,
) -> Fig10Result:
    """Sweep target Norm(N_E) levels by noise injection on one base trace."""
    points: list[NePoint] = []
    for target in targets:
        noised, achieved = inject_noise_to_target(
            trace, target, nbytes=nbytes, seed=derive_seed(seed, "noise", int(target * 1000))
        )
        ctx = ReplayContext(trace=noised, time_step=time_step, nbytes=nbytes)
        strategies = default_strategies(solver=solver, time_step=time_step)
        bcast = collective_comparison(
            ctx, strategies, op="broadcast", nbytes=nbytes,
            repetitions=repetitions, seed=derive_seed(seed, "b", int(target * 1000)),
        )
        scat = collective_comparison(
            ctx, strategies, op="scatter", nbytes=nbytes / noised.n_machines,
            repetitions=repetitions, seed=derive_seed(seed, "s", int(target * 1000)),
        )
        rng = spawn_rng(derive_seed(seed, "g", int(target * 1000)))
        graphs = [
            random_task_graph(noised.n_machines, seed=rng)
            for _ in range(max(10, repetitions // 4))
        ]
        mapping = mapping_comparison(
            ctx, strategies, graphs, seed=derive_seed(seed, "m", int(target * 1000))
        )
        points.append(
            NePoint(
                target_norm_ne=target,
                achieved_norm_ne=achieved,
                broadcast_vs_baseline=bcast.improvement("RPCA", "Baseline"),
                scatter_vs_baseline=scat.improvement("RPCA", "Baseline"),
                mapping_vs_baseline=mapping.improvement("RPCA", "Baseline"),
                broadcast_vs_heuristics=bcast.improvement("RPCA", "Heuristics"),
            )
        )
    return Fig10Result(points=tuple(points))
