"""Cluster-wide trace statistics (the paper's Appendix-A style study).

Summarizes a calibration trace the way the paper characterizes its EC2
measurements: every link has a *band* (robust center) and *volatility*
(relative spread), bands differ widely across links (the heterogeneity that
makes link selection pay), and samples are unpredictable within the band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cloudsim.trace import CalibrationTrace
from ..core.decompose import decompose
from ..errors import ValidationError
from ..netmodel.linkstats import LinkSeriesStats, summarize_link_series

__all__ = ["TraceStabilityReport", "link_band_table", "trace_stability_report"]


@dataclass(frozen=True)
class TraceStabilityReport:
    """Cluster-level stability summary of one trace.

    Attributes
    ----------
    n_machines, n_snapshots:
        Trace dimensions.
    norm_ne:
        ``Norm(N_E)`` of an exact row-constant decomposition of the trace's
        weight TP-matrix at the probe message size.
    band_spread:
        Ratio p90/p10 of per-link band centers — the *cross-link*
        heterogeneity available for optimizers to exploit.
    median_volatility:
        Median per-link relative spread — the *within-link* unpredictability.
    spike_fraction:
        Mean fraction of samples flagged as spikes across links.
    verdict:
        The :class:`~repro.core.metrics.StabilityReport` bucket.
    """

    n_machines: int
    n_snapshots: int
    norm_ne: float
    band_spread: float
    median_volatility: float
    spike_fraction: float
    verdict: str


def link_band_table(
    trace: CalibrationTrace, nbytes: float = 8 * 1024 * 1024
) -> list[tuple[int, int, LinkSeriesStats]]:
    """Per-link band statistics: ``(src, dst, stats)`` for every ordered pair."""
    n = trace.n_machines
    tp = trace.tp_matrix(nbytes)
    out: list[tuple[int, int, LinkSeriesStats]] = []
    cube = tp.data.reshape(tp.n_snapshots, n, n)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            out.append((i, j, summarize_link_series(cube[:, i, j])))
    return out


def trace_stability_report(
    trace: CalibrationTrace, nbytes: float = 8 * 1024 * 1024
) -> TraceStabilityReport:
    """Build a :class:`TraceStabilityReport` for *trace*."""
    if trace.n_machines < 2:
        raise ValidationError("need at least 2 machines to analyze links")
    dec = decompose(trace.tp_matrix(nbytes), solver="row_constant")
    links = link_band_table(trace, nbytes)
    centers = np.array([s.center for _, _, s in links])
    vols = np.array([s.volatility for _, _, s in links])
    spikes = np.array([s.spike_fraction for _, _, s in links])
    p10, p90 = np.percentile(centers, [10, 90])
    return TraceStabilityReport(
        n_machines=trace.n_machines,
        n_snapshots=trace.n_snapshots,
        norm_ne=dec.norm_ne,
        band_spread=float(p90 / p10) if p10 > 0 else np.inf,
        median_volatility=float(np.median(vols)),
        spike_fraction=float(spikes.mean()),
        verdict=dec.report.verdict,
    )
