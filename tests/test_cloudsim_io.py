"""Unit tests for trace persistence and CSV import."""

import numpy as np
import pytest

from repro.cloudsim.io import (
    TRACE_FORMAT_VERSION,
    load_trace,
    load_trace_csv,
    save_trace,
)
from repro.errors import ValidationError


class TestRoundtrip:
    def test_save_load_identity(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(tiny_trace, path)
        back = load_trace(path)
        np.testing.assert_array_equal(back.alpha, tiny_trace.alpha)
        np.testing.assert_array_equal(back.beta, tiny_trace.beta)
        np.testing.assert_array_equal(back.timestamps, tiny_trace.timestamps)

    def test_loaded_trace_usable(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(tiny_trace, path)
        back = load_trace(path)
        tp = back.tp_matrix(8 << 20)
        assert tp.n_machines == tiny_trace.n_machines

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, alpha=np.zeros((1, 2, 2)))
        with pytest.raises(ValidationError, match="missing"):
            load_trace(path)

    def test_wrong_version_rejected(self, tiny_trace, tmp_path):
        path = tmp_path / "v99.npz"
        np.savez(
            path,
            format_version=np.int64(99),
            alpha=tiny_trace.alpha,
            beta=tiny_trace.beta,
            timestamps=tiny_trace.timestamps,
        )
        with pytest.raises(ValidationError, match="version"):
            load_trace(path)

    def test_format_version_constant(self):
        assert TRACE_FORMAT_VERSION == 1


def write_csv(path, rows, header="snapshot,src,dst,alpha_s,beta_Bps"):
    path.write_text(header + "\n" + "\n".join(rows) + "\n")
    return str(path)


def full_csv_rows(t=2, n=3, beta=1e8):
    rows = []
    for k in range(t):
        for i in range(n):
            for j in range(n):
                if i != j:
                    rows.append(f"{k},{i},{j},0.001,{beta * (1 + i + j + k)}")
    return rows


class TestCsvImport:
    def test_complete_log_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "m.csv", full_csv_rows())
        trace = load_trace_csv(path)
        assert trace.n_machines == 3 and trace.n_snapshots == 2
        assert trace.beta[0, 0, 1] == pytest.approx(2e8)
        assert trace.beta[1, 2, 1] == pytest.approx(4e8 + 1e8)
        assert np.all(np.isinf(np.diagonal(trace.beta, axis1=1, axis2=2)))

    def test_pipeline_runs_on_imported_trace(self, tmp_path):
        from repro.core.decompose import decompose

        path = write_csv(tmp_path / "m.csv", full_csv_rows(t=5, n=4))
        trace = load_trace_csv(path)
        dec = decompose(trace.tp_matrix(8 << 20), solver="row_constant")
        assert 0.0 <= dec.norm_ne < 1.0

    def test_timestamp_column_used(self, tmp_path):
        rows = []
        for k, ts in ((0, 100.0), (1, 400.0)):
            for i in range(2):
                for j in range(2):
                    if i != j:
                        rows.append(f"{k},{i},{j},0.001,1e8,{ts}")
        path = write_csv(
            tmp_path / "m.csv", rows,
            header="snapshot,src,dst,alpha_s,beta_Bps,timestamp",
        )
        trace = load_trace_csv(path)
        np.testing.assert_array_equal(trace.timestamps, [100.0, 400.0])

    def test_missing_pair_rejected(self, tmp_path):
        rows = full_csv_rows()[:-1]  # drop one measurement
        path = write_csv(tmp_path / "m.csv", rows)
        with pytest.raises(ValidationError, match="missing"):
            load_trace_csv(path)

    def test_self_measurement_rejected(self, tmp_path):
        rows = full_csv_rows() + ["0,1,1,0.001,1e8"]
        path = write_csv(tmp_path / "m.csv", rows)
        with pytest.raises(ValidationError, match="self"):
            load_trace_csv(path)

    def test_bad_header_rejected(self, tmp_path):
        path = write_csv(tmp_path / "m.csv", ["0,0,1,0.001"], header="a,b,c,d")
        with pytest.raises(ValidationError, match="columns"):
            load_trace_csv(path)

    def test_nonpositive_bandwidth_rejected(self, tmp_path):
        rows = full_csv_rows()
        rows[0] = "0,0,1,0.001,0"
        path = write_csv(tmp_path / "m.csv", rows)
        with pytest.raises(ValidationError, match="beta"):
            load_trace_csv(path)

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("snapshot,src,dst,alpha_s,beta_Bps\n")
        with pytest.raises(ValidationError, match="no measurements"):
            load_trace_csv(str(path))


class TestRobustLoading:
    def test_corrupted_file_raises_validation_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is definitely not a zip archive")
        with pytest.raises(ValidationError, match="unreadable"):
            load_trace(path)

    def test_truncated_file_raises_validation_error(self, tiny_trace, tmp_path):
        path = tmp_path / "ok.npz"
        save_trace(tiny_trace, path)
        blob = path.read_bytes()
        trunc = tmp_path / "trunc.npz"
        trunc.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ValidationError, match="unreadable"):
            load_trace(trunc)

    def test_missing_file_keeps_oserror(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.npz")

    def test_nonfinite_values_rejected_by_default(self, tiny_trace, tmp_path):
        alpha = tiny_trace.alpha.copy()
        alpha[0, 1, 2] = np.nan
        path = tmp_path / "nf.npz"
        np.savez_compressed(
            path,
            format_version=np.int64(TRACE_FORMAT_VERSION),
            alpha=alpha,
            beta=tiny_trace.beta,
            timestamps=tiny_trace.timestamps,
        )
        with pytest.raises(ValidationError, match="non-finite"):
            load_trace(path)

    def test_allow_missing_masks_nonfinite_values(self, tiny_trace, tmp_path):
        alpha = tiny_trace.alpha.copy()
        beta = tiny_trace.beta.copy()
        alpha[0, 1, 2] = np.nan
        beta[1, 0, 3] = -5.0
        path = tmp_path / "nf.npz"
        np.savez_compressed(
            path,
            format_version=np.int64(TRACE_FORMAT_VERSION),
            alpha=alpha,
            beta=beta,
            timestamps=tiny_trace.timestamps,
        )
        back = load_trace(path, allow_missing=True)
        assert back.mask is not None
        assert not back.mask[0, 1, 2]
        assert not back.mask[1, 0, 3]
        assert back.alpha[0, 1, 2] == 0.0  # benign placeholder
        assert np.isinf(back.beta[1, 0, 3])

    def test_mask_round_trips(self, tiny_trace, tmp_path):
        mask = np.ones(tiny_trace.alpha.shape, dtype=bool)
        mask[2, 0, 1] = False
        masked = type(tiny_trace)(
            alpha=tiny_trace.alpha,
            beta=tiny_trace.beta,
            timestamps=tiny_trace.timestamps,
            mask=mask,
        )
        path = tmp_path / "masked.npz"
        save_trace(masked, path)
        back = load_trace(path)
        assert back.mask is not None
        np.testing.assert_array_equal(back.mask, masked.mask)

    def test_full_trace_archive_has_no_mask_array(self, tiny_trace, tmp_path):
        path = tmp_path / "full.npz"
        save_trace(tiny_trace, path)
        with np.load(path) as data:
            assert "mask" not in data.files


class TestSchemaHardening:
    """Malformed archives must fail loud with ValidationError, not load."""

    def _write(self, path, tiny_trace, **overrides):
        arrays = dict(
            format_version=np.int64(TRACE_FORMAT_VERSION),
            alpha=tiny_trace.alpha,
            beta=tiny_trace.beta,
            timestamps=tiny_trace.timestamps,
        )
        arrays.update(overrides)
        np.savez_compressed(path, **arrays)
        return path

    def test_mask_shape_mismatch_rejected(self, tiny_trace, tmp_path):
        bad_mask = np.ones(
            (tiny_trace.n_snapshots + 1,) + tiny_trace.alpha.shape[1:], dtype=bool
        )
        path = self._write(tmp_path / "badmask.npz", tiny_trace, mask=bad_mask)
        with pytest.raises(ValidationError, match="mask shape"):
            load_trace(path)

    def test_alpha_beta_shape_mismatch_rejected(self, tiny_trace, tmp_path):
        path = self._write(
            tmp_path / "badbeta.npz", tiny_trace, beta=tiny_trace.beta[:-1]
        )
        with pytest.raises(ValidationError, match="shape mismatch"):
            load_trace(path)

    def test_future_schema_version_rejected(self, tiny_trace, tmp_path):
        path = self._write(
            tmp_path / "v2.npz",
            tiny_trace,
            format_version=np.int64(TRACE_FORMAT_VERSION + 1),
        )
        with pytest.raises(ValidationError, match="unsupported trace format"):
            load_trace(path)

    def test_fractional_version_rejected_not_truncated(self, tiny_trace, tmp_path):
        # int(1.5) == 1 would silently accept a file written by nobody.
        path = self._write(
            tmp_path / "v15.npz", tiny_trace, format_version=np.float64(1.5)
        )
        with pytest.raises(ValidationError, match="malformed trace format"):
            load_trace(path)

    def test_non_scalar_version_rejected(self, tiny_trace, tmp_path):
        path = self._write(
            tmp_path / "varr.npz",
            tiny_trace,
            format_version=np.array([1, 1], dtype=np.int64),
        )
        with pytest.raises(ValidationError, match="malformed trace format"):
            load_trace(path)

    def test_non_numeric_version_rejected(self, tiny_trace, tmp_path):
        path = self._write(
            tmp_path / "vstr.npz", tiny_trace, format_version=np.str_("one")
        )
        with pytest.raises(ValidationError, match="malformed trace format"):
            load_trace(path)


class TestCsvPartialLogs:
    def test_missing_pair_allowed_when_opted_in(self, tmp_path):
        rows = full_csv_rows()[:-1]  # drop one measurement
        path = write_csv(tmp_path / "m.csv", rows)
        trace = load_trace_csv(path, allow_missing=True)
        assert trace.mask is not None
        assert (~trace.mask).sum() == 1

    def test_nan_reading_rejected_by_default(self, tmp_path):
        rows = full_csv_rows()
        rows[0] = "0,0,1,nan,1e8"
        path = write_csv(tmp_path / "m.csv", rows)
        with pytest.raises(ValidationError, match="non-finite"):
            load_trace_csv(path)

    def test_nan_reading_masked_when_opted_in(self, tmp_path):
        rows = full_csv_rows()
        rows[0] = "0,0,1,nan,1e8"
        path = write_csv(tmp_path / "m.csv", rows)
        trace = load_trace_csv(path, allow_missing=True)
        assert trace.mask is not None
        assert not trace.mask[0, 0, 1]
        assert trace.observed_fraction < 1.0

    def test_partial_log_decomposes(self, tmp_path):
        rows = [r for r in full_csv_rows(t=8, n=4) if not r.startswith("3,0,1")]
        path = write_csv(tmp_path / "m.csv", rows)
        trace = load_trace_csv(path, allow_missing=True)
        from repro.core.decompose import decompose

        dec = decompose(trace.tp_matrix(8 << 20), solver="apg")
        assert dec.solver_converged
