"""Fault injection for the measurement and calibration plane.

Seeded, composable models of the failure modes a real IaaS measurement
campaign hits — lost probes, stragglers, corrupted readings, VM and rack
outages — plus injectors that apply them to a replayed
:class:`~repro.cloudsim.trace.CalibrationTrace` or a live measurement
substrate. Faults only touch what the calibrator *observes*; the underlying
network (and hence live operation pricing) is unaffected, matching reality.
"""

from .inject import (
    FAULT_PROFILES,
    FaultySubstrate,
    InjectedTrace,
    inject_faults,
    parse_fault_spec,
)
from .models import (
    CorruptedReadings,
    CrashFault,
    FaultEvent,
    FaultModel,
    FaultSchedule,
    ProbeLoss,
    ProbeStraggler,
    RackOutage,
    VMOutage,
    materialize_faults,
)

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultModel",
    "ProbeLoss",
    "ProbeStraggler",
    "CorruptedReadings",
    "VMOutage",
    "RackOutage",
    "CrashFault",
    "materialize_faults",
    "InjectedTrace",
    "inject_faults",
    "FaultySubstrate",
    "FAULT_PROFILES",
    "parse_fault_spec",
]
