#!/usr/bin/env python3
"""Quickstart: the paper's core loop in 60 lines.

1. Calibrate a virtual cluster (here: a synthetic EC2-like trace).
2. Decompose the temporal performance matrix with RPCA into a constant
   component plus a sparse error component (paper Fig 2).
3. Read the stability verdict from Norm(N_E).
4. Build a Fastest-Node-First broadcast tree from the constant component
   (paper Fig 1) and compare it against the MPICH binomial baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import TraceConfig, binomial_tree, decompose, fnf_tree, generate_trace
from repro.collectives.exec_model import broadcast_time
from repro.experiments.report import format_table

MB = 1024 * 1024


def main() -> None:
    # --- 1. Calibrate -----------------------------------------------------
    # 16 VMs, 20 calibration snapshots 30 minutes apart (a synthetic stand-in
    # for the paper's SKaMPI ping-pong campaign on Amazon EC2).
    trace = generate_trace(TraceConfig(n_machines=16, n_snapshots=20), seed=7)
    tp = trace.tp_matrix(nbytes=8 * MB, start=0, count=10)  # time step = 10
    print(f"TP-matrix: {tp.n_snapshots} snapshots x {tp.n_machines}^2 links")

    # --- 2. Decompose ------------------------------------------------------
    dec = decompose(tp, solver="apg")
    print(
        f"RPCA ({dec.solver}): {dec.solver_iterations} iterations, "
        f"converged={dec.solver_converged}"
    )

    # --- 3. Stability verdict ----------------------------------------------
    print(f"Norm(N_E) = {dec.norm_ne:.3f}  ->  network is {dec.report.verdict!r}")
    print("(paper: Amazon EC2 measured ~0.1 — network-aware optimization pays off)")

    # --- 4. Optimize and compare -------------------------------------------
    weights = dec.performance_matrix().weights
    rows = []
    for root in (0, 5, 11):
        fnf = fnf_tree(weights, root)
        bino = binomial_tree(trace.n_machines, root)
        # Price both trees on a *live* snapshot the optimizer never saw.
        live_a, live_b = trace.alpha[15], trace.beta[15]
        t_fnf = broadcast_time(fnf, live_a, live_b, 8 * MB)
        t_bin = broadcast_time(bino, live_a, live_b, 8 * MB)
        rows.append((root, t_bin, t_fnf, 1.0 - t_fnf / t_bin))
    print()
    print(
        format_table(
            ["root", "binomial (s)", "FNF on constant (s)", "improvement"],
            rows,
            title="8 MB broadcast, priced on a held-out live snapshot",
        )
    )

    mean_gain = float(np.mean([r[3] for r in rows]))
    print(f"\nMean improvement: {mean_gain:.1%} (paper reports 20-40% on EC2)")


if __name__ == "__main__":
    main()
