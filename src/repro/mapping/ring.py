"""Ring (identity) mapping — the paper's topology-mapping Baseline.

"We use the ring mapping algorithm, which maps each vertex in the task graph
to a vertex in the machine graph one by one like a ring" (Sec V-A): task *i*
goes to machine *i*, with an optional offset for experiments that randomize
the starting point.
"""

from __future__ import annotations

import numpy as np

from ..errors import MappingError

__all__ = ["ring_mapping"]


def ring_mapping(n_tasks: int, n_machines: int, *, offset: int = 0) -> np.ndarray:
    """``mapping[task] = (task + offset) mod n_machines``, distinct per task."""
    if n_tasks < 1:
        raise MappingError("n_tasks must be >= 1")
    if n_machines < n_tasks:
        raise MappingError(f"{n_tasks} tasks cannot map onto {n_machines} machines")
    return (np.arange(n_tasks, dtype=np.intp) + int(offset)) % n_machines
