"""Streaming fold latency vs batch recalibration at 196 instances.

The v1.1 tentpole claim: with ``mode="streaming"`` the engine folds each
new calibration snapshot into the live L/S decomposition in O(row) —
amortized ≥5x faster than the full batch recalibration it replaces — while
every fallback to the batch path stays a *certified* oracle (bit-identical
to a cold solve of the same window).

Two arms over the same paper-scale trace (196 instances, ``10 × 38416``
windows):

* **batch** — cold ``calibrate()`` per slide, the historical Algorithm-1
  re-calibration cost;
* **streaming** — one seeding ``calibrate()`` then ``stream_fold()`` per
  slide, with per-fold wall time amortized over every attempted slide
  (fallback-triggered re-solves charge their batch cost to the streaming
  arm, so the speedup is honest about fallback frequency).

The run writes ``BENCH_stream.json`` at the repo root under the shared
:mod:`repro.observability.benchrecord` schema. Certified-fallback parity
is asserted **unconditionally**; the ≥5x amortized speedup target is only
an assertion under ``REPRO_PERF_STRICT=1`` (recorded and skipped
otherwise), like every other perf gate in this suite.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.decompose import decompose
from repro.core.engine import DecompositionEngine
from repro.observability import Instrumentation
from repro.observability.benchrecord import bench_record, write_bench_json

MB = 1024 * 1024
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

N_INSTANCES = 196
WINDOW = 10
N_SNAPSHOTS = 34  # seeds at 10, then 24 single-snapshot slides
SEED = 1960
SPEEDUP_TARGET = 5.0
BATCH_SAMPLE = 4  # cold batch solves timed for the baseline


@pytest.fixture(scope="module")
def trace_196():
    return generate_trace(
        TraceConfig(n_machines=N_INSTANCES, n_snapshots=N_SNAPSHOTS), seed=SEED
    )


def _engine(trace, **kwargs):
    return DecompositionEngine(
        trace, nbytes=8 * MB, time_step=WINDOW, warm_start=False, **kwargs
    )


def test_stream_fold_latency_and_emit(trace_196, emit):
    ends = range(WINDOW + 1, N_SNAPSHOTS + 1)

    # -- batch baseline: cold re-solve per slide (sampled) --------------
    batch = _engine(trace_196)
    batch_times = []
    for end in list(ends)[:BATCH_SAMPLE]:
        batch.reset_warm_state()
        t0 = time.perf_counter()
        batch.calibrate(end)
        batch_times.append(time.perf_counter() - t0)
    batch_mean = float(np.mean(batch_times))

    # -- streaming arm: seed once, then fold every slide ----------------
    sink = Instrumentation("stream-bench")
    stream = _engine(trace_196, mode="streaming", instrumentation=sink)
    stream.calibrate(WINDOW)
    folds = fallbacks = 0
    slide_times = []  # per-slide cost, fallback re-solves included
    for end in ends:
        t0 = time.perf_counter()
        if stream.stream_plan(end) == "fold":
            dec, reason = stream.stream_fold(end)
        else:
            dec, reason = None, "plan"
        if dec is None:
            fallbacks += 1
            recal = stream.calibrate(end)
            # Certified fallback: bit-identical to a cold solve of the
            # same window, streaming history notwithstanding. Asserted
            # unconditionally on every fallback the run produces.
            oracle = decompose(
                trace_196.tp_matrix(8 * MB, start=end - WINDOW, count=WINDOW),
                solver=stream.solver,
            )
            assert np.array_equal(recal.constant.row, oracle.constant.row), (
                f"fallback ({reason}) at end={end} diverged from the "
                "cold batch oracle"
            )
        else:
            folds += 1
            assert dec.constant.row.size == N_INSTANCES * N_INSTANCES
        slide_times.append(time.perf_counter() - t0)
    assert folds + fallbacks == len(slide_times)
    assert folds > 0, "streaming arm never folded (seed failed?)"

    # Streaming accuracy: the last in-service P_D tracks a cold re-solve
    # of the same window within the drift ceiling (it is an incremental
    # estimate, not the oracle — the oracle guarantee is the fallback's).
    final = stream.last
    oracle = decompose(
        trace_196.tp_matrix(8 * MB, start=N_SNAPSHOTS - WINDOW, count=WINDOW),
        solver=stream.solver,
    )
    scale = float(np.abs(oracle.constant.row).max())
    drift = float(np.abs(final.constant.row - oracle.constant.row).max())
    assert drift <= stream.stream_config.tolerance * scale

    amortized = float(np.mean(slide_times))
    fold_only = sink.timers.get("kernel.stream.update_seconds", 0.0) / max(folds, 1)
    speedup = batch_mean / amortized

    record = bench_record(
        "stream_fold_latency_196_instances",
        seeds=[SEED],
        backend="exact",
        matrix_shape=[WINDOW, N_INSTANCES * N_INSTANCES],
        slides=len(slide_times),
        folds=folds,
        fallbacks=fallbacks,
        batch_sample=BATCH_SAMPLE,
        batch_mean_seconds=batch_mean,
        amortized_slide_seconds=amortized,
        fold_mean_seconds=fold_only,
        speedup_amortized_vs_batch=speedup,
        speedup_target=SPEEDUP_TARGET,
        stream_counters={
            k: int(v) for k, v in sink.counters.items()
            if k.startswith("kernel.stream.")
        },
        final_drift_rel=drift / scale if scale else None,
        parity="bitwise-on-fallback",
    )
    write_bench_json(BENCH_JSON, record)

    emit(
        "\n".join(
            [
                f"streaming fold latency ({N_INSTANCES} instances, "
                f"{len(slide_times)} slides):",
                f"  batch recal  {batch_mean * 1e3:9.1f} ms/slide  "
                f"({BATCH_SAMPLE} sampled)",
                f"  streaming    {amortized * 1e3:9.1f} ms/slide amortized  "
                f"({fold_only * 1e3:.1f} ms/fold, {folds} folds, "
                f"{fallbacks} fallback(s))",
                f"  speedup {speedup:.1f}x  (target >= {SPEEDUP_TARGET}x, "
                f"wrote {BENCH_JSON.name})",
            ]
        )
    )

    if os.environ.get("REPRO_PERF_STRICT") == "1":
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x amortized streaming speedup, "
            f"measured {speedup:.2f}x ({fallbacks} fallbacks over "
            f"{len(slide_times)} slides)"
        )
    elif speedup < SPEEDUP_TARGET:
        pytest.skip(
            f"speedup {speedup:.1f}x below {SPEEDUP_TARGET}x target but "
            "REPRO_PERF_STRICT not set (recorded, not enforced)"
        )


def test_certified_fallback_bit_parity():
    """A forced drift fallback re-solves bit-identically to the cold oracle.

    The big run above asserts parity on whatever fallbacks it happens to
    produce; this one *guarantees* the code path runs by setting the drift
    ceiling so low every fold trips it (small scale — correctness, not
    timing).
    """
    trace = generate_trace(TraceConfig(n_machines=24, n_snapshots=20), seed=7)
    eng = DecompositionEngine(
        trace, nbytes=8 * MB, time_step=WINDOW, warm_start=False,
        mode="streaming", stream_tolerance=1e-6,
    )
    eng.calibrate(WINDOW)
    fallbacks = 0
    for end in range(WINDOW + 1, 21):
        dec, reason = (
            eng.stream_fold(end)
            if eng.stream_plan(end) == "fold"
            else (None, "plan")
        )
        if dec is not None:
            continue
        fallbacks += 1
        recal = eng.calibrate(end)
        oracle = decompose(
            trace.tp_matrix(8 * MB, start=end - WINDOW, count=WINDOW),
            solver=eng.solver,
        )
        assert np.array_equal(recal.constant.row, oracle.constant.row), (
            f"fallback ({reason}) at end={end} diverged from the cold oracle"
        )
    assert fallbacks > 0, "drift ceiling of 1e-6 never tripped a fallback"
