"""Ablation — Heuristics variants (paper Sec V-A discussion).

The paper states that minimal-value and exponentially-weighted averages
"obtain similar results to the Heuristics approach" (the column mean), all
being per-link estimators. This bench verifies that claim and that RPCA
matches-or-beats the whole family on average.
"""

import numpy as np

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.experiments.harness import ReplayContext, collective_comparison
from repro.experiments.report import format_table
from repro.strategies import BaselineStrategy, HeuristicStrategy, RPCAStrategy

MB = 1024 * 1024
SEEDS = (21, 22, 23)


def run_all():
    norm_means = []
    for seed in SEEDS:
        trace = generate_trace(TraceConfig(n_machines=48, n_snapshots=30), seed=seed)
        ctx = ReplayContext(trace=trace, time_step=10)
        arms = [
            BaselineStrategy(),
            HeuristicStrategy("mean"),
            HeuristicStrategy("min"),
            HeuristicStrategy("ewma", ewma_alpha=0.3),
            RPCAStrategy("apg", time_step=10),
        ]
        res = collective_comparison(ctx, arms, repetitions=80, seed=seed)
        norm_means.append(res.normalized_means())
    return norm_means


def test_ablation_heuristic_variants(benchmark, emit):
    norm_means = benchmark.pedantic(run_all, rounds=1, iterations=1)

    names = list(norm_means[0])
    mean_norm = {n: float(np.mean([m[n] for m in norm_means])) for n in names}
    emit(
        format_table(
            ["strategy", "broadcast time (normalized to Baseline)"],
            sorted(mean_norm.items(), key=lambda kv: kv[1]),
            title=f"Ablation: heuristic variants, 48 VMs x {len(SEEDS)} traces",
        )
    )

    # The paper's claim: the three per-link heuristics behave similarly.
    heuristics = [mean_norm["Heuristics"], mean_norm["Heuristics-min"],
                  mean_norm["Heuristics-ewma"]]
    assert max(heuristics) - min(heuristics) < 0.12
    # All beat Baseline; RPCA at least matches the best heuristic.
    for h in heuristics:
        assert h < 1.0
    assert mean_norm["RPCA"] <= min(heuristics) * 1.03
