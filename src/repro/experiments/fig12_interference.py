"""Fig 12 — background traffic vs ``Norm(N_E)`` in the simulated cluster.

Two sweeps on the ns-2-substitute: (a) fix the background message size at
100 MB and vary the expected waiting time λ from 1 to 30 s — Norm(N_E)
falls as λ grows (rarer interference = calmer network); (b) fix λ = 5 s and
vary the message size 10→500 MB — Norm(N_E) grows roughly linearly with the
size. Together they establish that Norm(N_E) tracks the interference level,
which is what licenses using it as an effectiveness predictor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.decompose import decompose
from ..netsim.background import BackgroundConfig
from ..utils.seeding import derive_seed
from .netsim_support import build_scenario, calibrate_netsim_trace

__all__ = ["InterferencePoint", "Fig12Result", "run_lambda_sweep", "run_msgsize_sweep"]

MB = 1024 * 1024


@dataclass(frozen=True, slots=True)
class InterferencePoint:
    x: float
    norm_ne: float


@dataclass(frozen=True)
class Fig12Result:
    points: tuple[InterferencePoint, ...]
    x_name: str

    def as_rows(self) -> list[tuple[float, float]]:
        return [(p.x, p.norm_ne) for p in self.points]

    def norms(self) -> tuple[float, ...]:
        return tuple(p.norm_ne for p in self.points)


def _measure_norm_ne(
    *,
    background: BackgroundConfig,
    n_racks: int,
    servers_per_rack: int,
    cluster_size: int,
    n_snapshots: int,
    gap_seconds: float,
    probe_bytes: float,
    solver: str,
    core_bandwidth: float | None,
    seed: int,
) -> float:
    scenario = build_scenario(
        n_racks=n_racks,
        servers_per_rack=servers_per_rack,
        cluster_size=cluster_size,
        background=background,
        core_bandwidth=core_bandwidth,
        seed=seed,
    )
    trace = calibrate_netsim_trace(
        scenario,
        n_snapshots=n_snapshots,
        gap_seconds=gap_seconds,
        probe_bytes=probe_bytes,
    )
    tp = trace.tp_matrix(probe_bytes)
    return decompose(tp, solver=solver).norm_ne


def run_lambda_sweep(
    *,
    lambdas: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 30.0),
    message_bytes: float = 100.0 * MB,
    n_pairs: int = 64,
    n_racks: int = 32,
    servers_per_rack: int = 32,
    cluster_size: int = 32,
    n_snapshots: int = 10,
    gap_seconds: float = 30.0,
    probe_bytes: float = 8.0 * MB,
    solver: str = "row_constant",
    core_bandwidth: float | None = None,
    seed: int = 0,
) -> Fig12Result:
    """Fig 12(a): Norm(N_E) vs expected background waiting time λ."""
    points = []
    for lam in lambdas:
        bg = BackgroundConfig(
            n_pairs=n_pairs, message_bytes=message_bytes, mean_wait_seconds=lam
        )
        ne = _measure_norm_ne(
            background=bg,
            n_racks=n_racks,
            servers_per_rack=servers_per_rack,
            cluster_size=cluster_size,
            n_snapshots=n_snapshots,
            gap_seconds=gap_seconds,
            probe_bytes=probe_bytes,
            solver=solver,
            core_bandwidth=core_bandwidth,
            seed=derive_seed(seed, "lam", int(lam * 100)),
        )
        points.append(InterferencePoint(x=lam, norm_ne=ne))
    return Fig12Result(points=tuple(points), x_name="lambda_seconds")


def run_msgsize_sweep(
    *,
    message_sizes: tuple[float, ...] = (10 * MB, 50 * MB, 100 * MB, 250 * MB, 500 * MB),
    mean_wait_seconds: float = 5.0,
    n_pairs: int = 64,
    n_racks: int = 32,
    servers_per_rack: int = 32,
    cluster_size: int = 32,
    n_snapshots: int = 10,
    gap_seconds: float = 30.0,
    probe_bytes: float = 8.0 * MB,
    solver: str = "row_constant",
    core_bandwidth: float | None = None,
    seed: int = 0,
) -> Fig12Result:
    """Fig 12(b): Norm(N_E) vs background message size at λ = 5 s."""
    points = []
    for msg in message_sizes:
        bg = BackgroundConfig(
            n_pairs=n_pairs, message_bytes=msg, mean_wait_seconds=mean_wait_seconds
        )
        ne = _measure_norm_ne(
            background=bg,
            n_racks=n_racks,
            servers_per_rack=servers_per_rack,
            cluster_size=cluster_size,
            n_snapshots=n_snapshots,
            gap_seconds=gap_seconds,
            probe_bytes=probe_bytes,
            solver=solver,
            core_bandwidth=core_bandwidth,
            seed=derive_seed(seed, "msg", int(msg // MB)),
        )
        points.append(InterferencePoint(x=float(msg), norm_ne=ne))
    return Fig12Result(points=tuple(points), x_name="message_bytes")
