"""Shared argument-validation helpers.

These helpers centralize the shape/dtype/range checks that the public API
performs before handing data to vectorized numpy kernels, so error messages
are consistent across the package and the hot paths stay branch-free.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .errors import ValidationError

__all__ = [
    "as_float_matrix",
    "as_square_matrix",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_in_range",
    "check_index",
]


def as_float_matrix(a: object, name: str = "a") -> np.ndarray:
    """Coerce *a* to a 2-D float64 C-contiguous array or raise."""
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    return np.ascontiguousarray(arr)


def as_square_matrix(a: object, name: str = "a") -> np.ndarray:
    """Coerce *a* to a square 2-D float64 array or raise."""
    arr = as_float_matrix(a, name)
    if arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_positive(value: float, name: str) -> float:
    v = float(value)
    if not np.isfinite(v) or v <= 0:
        raise ValidationError(f"{name} must be a positive finite number, got {value!r}")
    return v


def check_nonnegative(value: float, name: str) -> float:
    v = float(value)
    if not np.isfinite(v) or v < 0:
        raise ValidationError(f"{name} must be a non-negative finite number, got {value!r}")
    return v


def check_probability(value: float, name: str) -> float:
    v = float(value)
    if not np.isfinite(v) or not 0.0 <= v <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return v


def check_in_range(value: float, lo: float, hi: float, name: str) -> float:
    v = float(value)
    if not np.isfinite(v) or not lo <= v <= hi:
        raise ValidationError(f"{name} must lie in [{lo}, {hi}], got {value!r}")
    return v


def check_index(value: int, n: int, name: str) -> int:
    v = int(value)
    if not 0 <= v < n:
        raise ValidationError(f"{name} must lie in [0, {n}), got {value!r}")
    return v


def check_distinct(values: Sequence[int], name: str) -> None:
    if len(set(values)) != len(values):
        raise ValidationError(f"{name} must contain distinct values")
