"""The decomposition engine: rolling windows, warm starts, instrumentation.

Algorithm 1 keeps re-running "calibrate a window, RPCA it" as the trace
advances, and historically every layer re-derived the TP-matrix from scratch
(``trace.tp_matrix(...)``) and solved cold each time. The
:class:`DecompositionEngine` owns that loop for long-running operation:

* a **rolling window cache** — per-snapshot weight rows are computed once
  and stitched into TP-matrix windows, byte-identical to
  ``trace.tp_matrix(nbytes, start, count)``, so successive overlapping
  windows share all their unchanged rows;
* **warm-started recalibration** — when the registered solver supports it
  (see :class:`~repro.core.solvers.SolverSpec.supports_warm_start`), each
  solve is initialized from the previous window's solution, cutting the
  iteration count of APG/IALM re-solves;
* **instrumentation** — every solve lands a
  :class:`~repro.observability.SolveSpan` plus warm/cold and cache-hit
  counters in the engine's :class:`~repro.observability.Instrumentation`
  (and any outer sink activated via
  :func:`~repro.observability.instrumented`).

The engine reads snapshots through the small :class:`WindowSource` protocol;
a :class:`~repro.cloudsim.trace.CalibrationTrace` is adapted automatically,
and :meth:`repro.calibration.calibrator.Calibrator.engine` adapts a live
measurement substrate.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

from .._validation import check_nonnegative, check_probability
from ..errors import CalibrationError, ValidationError
from ..observability import Instrumentation, instrumented
from .batch import BatchedSolveWorkspace, solve_rpca_batch, validate_batch_dtype
from .decompose import Decomposition, decompose, decomposition_from_result
from .elementwise import (
    check_ew_svd_compatible,
    ensure_ew_backend_available,
)
from .kernels import BatchRankPredictor, RankPredictor, validate_backend
from .matrices import TPMatrix
from .solvers import solver_spec
from .streaming import (
    StreamingConfig,
    StreamingDecomposer,
    StreamState,
    validate_mode,
)

__all__ = [
    "WindowSource",
    "TraceWindowSource",
    "DecompositionEngine",
    "BatchDecompositionEngine",
    "EngineWarmState",
]


@dataclass(frozen=True)
class EngineWarmState:
    """Picklable capsule of an engine's warm state.

    Everything a :class:`DecompositionEngine` accumulates across solves that
    is worth shipping to another process: the rolling row cache (LRU order
    preserved by dict insertion order) and the last decomposition — the
    warm-start seed. Both are plain numpy arrays and frozen dataclasses, so
    the capsule round-trips losslessly through ``pickle`` (and therefore
    through multiprocessing queues); a solve resumed from an imported
    capsule is bit-identical to one that never crossed the process
    boundary. The fleet scheduler round-trips this between ticks so any
    worker can pick up any cluster's next window.

    ``predictors`` carries the per-shape
    :class:`~repro.core.kernels.RankPredictor` state (keyed by the short
    side of the solved matrices) when the engine runs a partial SVD
    backend, so a resumed engine's steady-state rank prediction is as warm
    as its warm-start seed. Capsules from older releases lack the field;
    :meth:`DecompositionEngine.import_warm_state` treats that as "no
    predictor state".
    """

    rows: dict[int, tuple[np.ndarray, np.ndarray | None]]
    last: Decomposition | None
    predictors: dict[int, RankPredictor] = field(default_factory=dict)
    # Streaming-mode subspace state (None for batch engines and capsules
    # from releases that predate the streaming path).
    stream: StreamState | None = None


@runtime_checkable
class WindowSource(Protocol):
    """Anything the engine can read calibration snapshots from."""

    @property
    def n_machines(self) -> int:
        """Number of machines per snapshot."""
        ...

    @property
    def n_snapshots(self) -> int:
        """Number of snapshots addressable by :meth:`snapshot_row`."""
        ...

    def snapshot_row(self, k: int, nbytes: float) -> np.ndarray:
        """Snapshot *k* as a flattened ``N²`` weight row for *nbytes*."""
        ...

    def timestamp(self, k: int) -> float:
        """Measurement time of snapshot *k* in seconds."""
        ...

    # Sources backed by unreliable measurements may additionally expose
    #     snapshot_mask(k) -> np.ndarray | None
    # returning a flattened N² boolean observation mask for snapshot *k*
    # (True = observed), or None when the snapshot is complete. The engine
    # calls it immediately after snapshot_row(k, ...) for the same k, so a
    # source can memoize one measurement to answer both consistently.


class TraceWindowSource:
    """Adapt a :class:`~repro.cloudsim.trace.CalibrationTrace` to :class:`WindowSource`.

    Row values are computed exactly as ``trace.tp_matrix`` computes them
    (same elementwise operations on the same α/β entries), so windows
    assembled from these rows are byte-identical to the direct call.
    """

    def __init__(self, trace: Any) -> None:
        for attr in ("alpha", "beta", "timestamps", "n_machines", "n_snapshots"):
            if not hasattr(trace, attr):
                raise ValidationError(
                    f"trace-like source must expose {attr!r}; got {type(trace).__name__}"
                )
        self.trace = trace
        self._off = ~np.eye(trace.n_machines, dtype=bool)

    @property
    def n_machines(self) -> int:
        return int(self.trace.n_machines)

    @property
    def n_snapshots(self) -> int:
        return int(self.trace.n_snapshots)

    def snapshot_row(self, k: int, nbytes: float) -> np.ndarray:
        a = self.trace.alpha[k]
        b = self.trace.beta[k]
        w = np.zeros_like(a)
        w[self._off] = a[self._off] + nbytes / b[self._off]
        return w.reshape(-1)

    def snapshot_mask(self, k: int) -> np.ndarray | None:
        """Flattened observation mask for snapshot *k*, if the trace has one."""
        mask = getattr(self.trace, "mask", None)
        if mask is None:
            return None
        return np.asarray(mask[k], dtype=bool).reshape(-1)

    def timestamp(self, k: int) -> float:
        return float(self.trace.timestamps[k])


class DecompositionEngine:
    """Warm-started decomposition over rolling windows of a snapshot source.

    Parameters
    ----------
    source:
        A :class:`WindowSource`, or a
        :class:`~repro.cloudsim.trace.CalibrationTrace` (adapted
        automatically).
    nbytes:
        Message size the TP-matrix windows are built for.
    time_step:
        Calibration window length (paper default 10).
    solver:
        Registered solver name; validated at construction.
    extraction:
        Constant-row extraction rule (see
        :func:`~repro.core.decompose.constant_row`).
    warm_start:
        Initialize each solve from the previous window's solution when the
        solver supports it. Disable for bitwise cold-path reproduction.
    svd_backend:
        SVD kernel for the solver's singular value thresholding — one of
        :data:`repro.core.kernels.SVD_BACKENDS` (default ``"exact"``, the
        historical bit-identical path). With a partial backend the engine
        additionally keeps one
        :class:`~repro.core.kernels.RankPredictor` per solved shape and
        threads it through successive solves, so warm re-calibrations skip
        the rank ramp-up. Requires a solver that takes ``svd_backend``
        (APG/IALM).
    elementwise_backend:
        Elementwise kernel for the solver's step recurrences and the
        streaming fold's shrinkage — one of
        :data:`repro.core.elementwise.EW_BACKENDS` (default
        ``"reference"``, the historical ufunc chains). ``"fused"`` is
        bit-identical to ``"reference"``; ``"jit"`` needs numba and is
        tolerance-certified. Anything but ``"reference"`` requires a
        non-``exact`` *svd_backend* and a solver that takes the kwarg
        (APG/IALM).
    mode:
        ``"batch"`` (default) — every :meth:`calibrate` is a full window
        solve, the historical path. ``"streaming"`` — :meth:`calibrate`
        runs a **cold** batch solve and seeds a
        :class:`~repro.core.streaming.StreamingDecomposer`; single-snapshot
        window slides then fold in O(row) via :meth:`stream_fold`, with any
        rank-growth/drift/masked-row fallback routing back to a cold batch
        solve bit-identical to :func:`~repro.core.decompose.decompose` on
        the same window (the certified-oracle contract).
    stream_tolerance:
        Streaming drift ceiling (see
        :class:`~repro.core.streaming.StreamingConfig.tolerance`); only
        meaningful with ``mode="streaming"``.
    stream_refresh_every:
        Streaming re-orthonormalization cadence in folds; only meaningful
        with ``mode="streaming"``.
    instrumentation:
        Sink for counters and solve spans; a fresh one is created if omitted.
    max_cached_rows:
        Bound on the per-snapshot row cache (LRU eviction); ``None`` keeps
        every row ever computed — right for replays that wrap around.
    min_snapshot_observed:
        Minimum off-diagonal observed fraction a single snapshot must reach
        for a window containing it to be usable; below it :meth:`window`
        raises :class:`~repro.errors.CalibrationError`. 0.0 (default)
        accepts any snapshot with at least one observation.
    min_window_observed:
        Same threshold for the window as a whole.
    **solver_kwargs:
        Forwarded to every solve (``tol``, ``max_iter``, ...); validated
        against the solver's :class:`~repro.core.solvers.SolverSpec`.
    """

    def __init__(
        self,
        source: Any,
        *,
        nbytes: float,
        time_step: int = 10,
        solver: str = "apg",
        extraction: str = "mean",
        warm_start: bool = True,
        svd_backend: str = "exact",
        elementwise_backend: str = "reference",
        mode: str = "batch",
        stream_tolerance: float | None = None,
        stream_refresh_every: int | None = None,
        instrumentation: Instrumentation | None = None,
        max_cached_rows: int | None = None,
        min_snapshot_observed: float = 0.0,
        min_window_observed: float = 0.0,
        **solver_kwargs: Any,
    ) -> None:
        if not isinstance(source, WindowSource):
            source = TraceWindowSource(source)
        self.source: WindowSource = source
        check_nonnegative(nbytes, "nbytes")
        if int(time_step) < 1:
            raise ValidationError("time_step must be >= 1")
        if max_cached_rows is not None and int(max_cached_rows) < 1:
            raise ValidationError("max_cached_rows must be >= 1 or None")
        self.nbytes = float(nbytes)
        self.time_step = int(time_step)
        self.solver = solver
        self.spec = solver_spec(solver)  # fails fast on unknown names
        self.spec.validate_kwargs(solver_kwargs)
        self.extraction = extraction
        self.warm_start = bool(warm_start)
        self.svd_backend = validate_backend(svd_backend)
        if svd_backend != "exact" and not (
            self.spec.accepts_any_kwargs or "svd_backend" in self.spec.accepted_kwargs
        ):
            raise ValidationError(
                f"solver {solver!r} does not take an SVD backend; "
                "only SVT-based solvers such as 'apg' or 'ialm' do"
            )
        self.elementwise_backend = ensure_ew_backend_available(elementwise_backend)
        # A solver that cannot take the knob at all beats the exact-conflict
        # message — it is the more actionable error of the two.
        if elementwise_backend != "reference" and not (
            self.spec.accepts_any_kwargs
            or "elementwise_backend" in self.spec.accepted_kwargs
        ):
            raise ValidationError(
                f"solver {solver!r} does not take an elementwise backend; "
                "only SVT-based solvers such as 'apg' or 'ialm' do"
            )
        check_ew_svd_compatible(svd_backend, elementwise_backend)
        self.mode = validate_mode(mode)
        if self.mode != "streaming" and (
            stream_tolerance is not None or stream_refresh_every is not None
        ):
            raise ValidationError(
                "stream_tolerance/stream_refresh_every require mode='streaming'"
            )
        stream_overrides: dict[str, Any] = {}
        if stream_tolerance is not None:
            stream_overrides["tolerance"] = float(stream_tolerance)
        if stream_refresh_every is not None:
            stream_overrides["refresh_every"] = int(stream_refresh_every)
        self.stream_config = StreamingConfig(**stream_overrides)
        self._streamer: StreamingDecomposer | None = None
        self.solver_kwargs = dict(solver_kwargs)
        self.instrumentation = (
            instrumentation if instrumentation is not None else Instrumentation("engine")
        )
        self.max_cached_rows = max_cached_rows
        self.min_snapshot_observed = check_probability(
            min_snapshot_observed, "min_snapshot_observed"
        )
        self.min_window_observed = check_probability(
            min_window_observed, "min_window_observed"
        )
        # Insertion order == LRU order; values are (row, mask_row | None).
        self._rows: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}
        self._last: Decomposition | None = None
        # Per-shape adaptive rank prediction (partial SVD backends only),
        # keyed by the short side of the solved matrix and threaded through
        # every solve so recalibrations keep the steady-state rank.
        self._predictors: dict[int, RankPredictor] = {}
        # Shared all-True mask row, allocated once and reused by every
        # partially-masked window instead of per call.
        self._full_mask_row: np.ndarray | None = None

    # -- state ------------------------------------------------------------
    @property
    def last(self) -> Decomposition | None:
        """The most recent decomposition (the warm-start seed), if any."""
        return self._last

    def reset_warm_state(self) -> None:
        """Forget the previous solution; the next solve starts cold.

        In streaming mode this also drops the streaming subspace state, so
        a regime-shift cold re-calibration reseeds the stream from scratch.
        """
        self._last = None
        if self._streamer is not None:
            self._streamer.state = None

    def restore_warm_state(self, dec: Decomposition) -> None:
        """Seed the warm-start chain with a restored decomposition.

        The recovery path re-materializes the checkpointed decomposition and
        hands it back here, so post-recovery re-calibrations warm-start from
        exactly the solution the crashed process would have used.
        """
        self._last = dec

    def snapshot_residual(self, k: int) -> float:
        """Relative L1 residual of snapshot *k* against the constant in service.

        ``||row_k − c||₁ / ||row_k||₁`` over observed entries — the
        per-snapshot analogue of ``Norm(N_E)``, fed to the
        :class:`~repro.core.maintenance.CusumRegimeDetector`. Requires a
        previous solve (the constant row ``c`` comes from :attr:`last`).
        """
        if self._last is None:
            raise ValidationError("no decomposition yet; calibrate first")
        row, mask_row = self._row(int(k))
        c = self._last.constant.row
        if mask_row is not None:
            row = row[mask_row]
            c = c[mask_row]
        denom = float(np.abs(row).sum())
        if denom == 0.0:
            return 0.0
        return float(np.abs(row - c).sum()) / denom

    # -- persistence -------------------------------------------------------
    def export_cache(self) -> dict[int, tuple[np.ndarray, np.ndarray | None]]:
        """The rolling row cache, LRU order preserved (oldest first)."""
        return dict(self._rows)

    def export_warm_state(self) -> EngineWarmState:
        """Everything warm about this engine, as a picklable capsule."""
        return EngineWarmState(
            rows=self.export_cache(),
            last=self._last,
            predictors=dict(self._predictors),
            stream=self.export_stream_state(),
        )

    def import_warm_state(self, state: EngineWarmState) -> None:
        """Adopt a capsule exported (possibly in another process) by
        :meth:`export_warm_state`; subsequent solves are bit-identical to
        the exporting engine's."""
        self.import_cache(state.rows)
        self._last = state.last
        # Older capsules predate predictor state; keep whatever we have.
        predictors = getattr(state, "predictors", None)
        if predictors:
            self._predictors = dict(predictors)
        stream = getattr(state, "stream", None)
        if stream is not None:
            self.import_stream_state(stream)

    def export_stream_state(self) -> StreamState | None:
        """Streaming subspace state, if seeded (always None in batch mode)."""
        return self._streamer.export_state() if self._streamer is not None else None

    def import_stream_state(self, state: StreamState | None) -> None:
        """Restore streaming state captured by :meth:`export_stream_state`.

        Folds after the import are bit-identical to the exporting engine's
        — the property the SIGKILL chaos harness pins.
        """
        if self.mode != "streaming":
            raise ValidationError("import_stream_state requires mode='streaming'")
        if state is None:
            if self._streamer is not None:
                self._streamer.state = None
            return
        shape = (int(state.sparse.shape[0]), int(state.sparse.shape[1]))
        self._streamer_for(shape).import_state(state)

    def import_cache(
        self, rows: dict[int, tuple[np.ndarray, np.ndarray | None]]
    ) -> None:
        """Replace the row cache with a restored one (insertion order = LRU)."""
        restored: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}
        for k, (row, mask_row) in rows.items():
            row = np.asarray(row, dtype=np.float64)
            row.setflags(write=False)
            if mask_row is not None:
                mask_row = np.asarray(mask_row, dtype=bool)
                mask_row.setflags(write=False)
            restored[int(k)] = (row, mask_row)
        self._rows = restored

    # -- rolling window cache ---------------------------------------------
    def _row(self, k: int) -> tuple[np.ndarray, np.ndarray | None]:
        entry = self._rows.pop(k, None)
        if entry is None:
            self.instrumentation.count("engine.window.miss")
            row = np.asarray(self.source.snapshot_row(k, self.nbytes), dtype=np.float64)
            row.setflags(write=False)
            mask_fn = getattr(self.source, "snapshot_mask", None)
            mask_row = mask_fn(k) if callable(mask_fn) else None
            if mask_row is not None:
                mask_row = np.asarray(mask_row, dtype=bool).reshape(-1)
                if mask_row.all():
                    mask_row = None
                else:
                    mask_row.setflags(write=False)
                    self.instrumentation.count("engine.window.masked_rows")
            entry = (row, mask_row)
        else:
            self.instrumentation.count("engine.window.hit")
        self._rows[k] = entry  # re-insert: most recently used
        if self.max_cached_rows is not None and len(self._rows) > self.max_cached_rows:
            self._rows.pop(next(iter(self._rows)))  # least recently used
        return entry

    def window(self, start: int, stop: int) -> TPMatrix:
        """TP-matrix for snapshots ``[start, stop)`` from cached rows.

        Byte-identical to ``trace.tp_matrix(nbytes, start=start,
        count=stop-start)`` for trace-backed sources.

        Raises
        ------
        CalibrationError
            When the source reports unobserved entries and a snapshot (or
            the window as a whole) falls below the configured completeness
            thresholds.
        """
        t = self.source.n_snapshots
        if not 0 <= start < stop <= t:
            raise ValidationError(f"invalid window [{start}, {stop}) for {t} snapshots")
        row_list: list[np.ndarray] = []
        mask_list: list[np.ndarray | None] = []
        has_mask = False
        for k in range(start, stop):
            row, mask_row = self._row(k)
            row_list.append(row)
            mask_list.append(mask_row)
            has_mask = has_mask or mask_row is not None
        rows = np.stack(row_list)
        ts = np.array([self.source.timestamp(k) for k in range(start, stop)])
        # Fully-observed windows (every cached mask None) short-circuit to
        # mask=None — no per-call mask allocation on the fleet hot loop.
        mask = None
        if has_mask:
            full = self._full_mask_row
            if full is None or full.shape[0] != rows.shape[1]:
                full = np.ones(rows.shape[1], dtype=bool)
                full.setflags(write=False)
                self._full_mask_row = full
            mask = np.stack([full if m is None else m for m in mask_list])
        tp = TPMatrix(
            data=rows, n_machines=self.source.n_machines, timestamps=ts, mask=mask
        )
        if tp.mask is not None:
            fractions = tp.row_observed_fractions()
            worst = int(np.argmin(fractions))
            if fractions[worst] < self.min_snapshot_observed:
                self.instrumentation.count("engine.window.rejected")
                raise CalibrationError(
                    f"snapshot {start + worst} is only "
                    f"{fractions[worst]:.1%} observed "
                    f"(< {self.min_snapshot_observed:.1%} required)"
                )
            if tp.observed_fraction < self.min_window_observed:
                self.instrumentation.count("engine.window.rejected")
                raise CalibrationError(
                    f"window [{start}, {stop}) is only "
                    f"{tp.observed_fraction:.1%} observed "
                    f"(< {self.min_window_observed:.1%} required)"
                )
        return tp

    # -- solving -----------------------------------------------------------
    def solve(self, tp: TPMatrix) -> Decomposition:
        """Decompose *tp*, warm-starting from the previous solve if possible."""
        kwargs = dict(self.solver_kwargs)
        seed = self._last.solver_result if self._last is not None else None
        warm = (
            self.warm_start
            and self.spec.supports_warm_start
            and seed is not None
            and seed.shape == tp.data.shape
        )
        if warm:
            kwargs["warm_start"] = seed
        if self.svd_backend != "exact":
            kwargs["svd_backend"] = self.svd_backend
            min_dim = min(tp.data.shape)
            predictor = self._predictors.get(min_dim)
            if predictor is None:
                predictor = RankPredictor.for_shape(tp.data.shape)
                self._predictors[min_dim] = predictor
            kwargs["rank_predictor"] = predictor
        if self.elementwise_backend != "reference":
            kwargs["elementwise_backend"] = self.elementwise_backend
        self.instrumentation.count(
            "engine.solve.warm" if warm else "engine.solve.cold"
        )
        if tp.mask is not None:
            self.instrumentation.count("engine.solve.masked")
        with instrumented(self.instrumentation):
            with self.instrumentation.timed("engine.solve_seconds"):
                dec = decompose(
                    tp, solver=self.solver, extraction=self.extraction, **kwargs
                )
        self._last = dec
        return dec

    def calibrate(self, end: int) -> Decomposition:
        """Solve the trailing ``time_step`` window ending at snapshot *end*.

        The Algorithm-1 re-calibration primitive: windows from successive
        calls overlap, so rows come from the cache and the solve warm-starts
        from the previous solution.

        In streaming mode every calibrate is the *certified oracle*: the
        warm-start chain is dropped first, so the solve is bit-identical to
        a cold :func:`~repro.core.decompose.decompose` of the same window,
        and the streaming subspace is (re)seeded from its result.
        """
        start = max(0, end - self.time_step)
        if self.mode != "streaming":
            return self.solve(self.window(start, end))
        self._last = None  # certified: streaming-mode batch solves are cold
        tp = self.window(start, end)
        dec = self.solve(tp)
        self._seed_stream(end, tp, dec)
        return dec

    # -- streaming ---------------------------------------------------------
    def _streamer_for(self, shape: tuple[int, int]) -> StreamingDecomposer:
        if self._streamer is None or self._streamer.shape != tuple(shape):
            self._streamer = StreamingDecomposer(
                shape,
                self.stream_config,
                elementwise_backend=self.elementwise_backend,
            )
        return self._streamer

    def _seed_stream(self, end: int, tp: TPMatrix, dec: Decomposition) -> None:
        sr = dec.solver_result
        if tp.mask is not None or sr is None:
            # Partially-observed windows (and solvers returning no raw
            # result) stay on the batch path: the stream is left unseeded
            # and stream_plan keeps answering "solve".
            if self._streamer is not None:
                self._streamer.state = None
            return
        streamer = self._streamer_for(tp.data.shape)
        with instrumented(self.instrumentation):
            streamer.seed(
                end=end, data=tp.data, low_rank=sr.low_rank, sparse=sr.sparse
            )

    def stream_plan(self, end: int) -> str:
        """How to serve the window ending at *end*: ``"fold"`` or ``"solve"``.

        ``"fold"`` only when seeded streaming state covers the immediately
        preceding full-length window — a single-snapshot forward slide.
        Anything else (unseeded, gap, trace wraparound, short boot window)
        needs a batch solve via :meth:`calibrate`.
        """
        if self.mode != "streaming":
            raise ValidationError("stream_plan requires mode='streaming'")
        st = self._streamer.state if self._streamer is not None else None
        end = int(end)
        if (
            st is None
            or end - st.end != 1
            or st.end < self.time_step
            or end > self.source.n_snapshots
        ):
            return "solve"
        return "fold"

    def stream_fold(self, end: int) -> tuple[Decomposition | None, str | None]:
        """Fold the single-snapshot slide to window end *end* in O(row).

        Returns ``(decomposition, None)`` on success — the decomposition is
        now in service (with ``solver_result=None``: it can never seed a
        warm start). On fallback returns ``(None, reason)`` with streaming
        state dropped; the caller must :meth:`calibrate`, which re-solves
        cold and reseeds.
        """
        if self.stream_plan(end) != "fold":
            raise ValidationError(
                f"window ending at {end} cannot fold; call calibrate() instead"
            )
        assert self._streamer is not None
        k = int(end) - 1
        row, mask_row = self._row(k)
        if mask_row is not None:
            self._stream_fallback("masked")
            return None, "masked"
        with instrumented(self.instrumentation):
            with self.instrumentation.timed("kernel.stream.update_seconds"):
                reason = self._streamer.fold(k, row)
                if reason is not None:
                    self._stream_fallback(reason)
                    return None, reason
                tp = self.window(end - self.time_step, end)
                dec = decomposition_from_result(
                    tp,
                    self._streamer.as_result(),
                    solver=self.solver,
                    extraction=self.extraction,
                )
        self.instrumentation.count("kernel.stream.updates")
        self._last = dec
        return dec, None

    def _stream_fallback(self, reason: str) -> None:
        if self._streamer is not None:
            self._streamer.state = None
        self.instrumentation.count("kernel.stream.fallbacks")
        self.instrumentation.count(f"kernel.stream.fallback_{reason}")


class BatchDecompositionEngine:
    """Decompose many TP-matrices at once through stacked batched solves.

    The fleet-facing counterpart of :class:`DecompositionEngine`: instead of
    one rolling window per engine, it takes a whole sweep's worth of
    TP-matrices (one per cluster) and solves them as ``(B, m, n)`` stacks
    through :func:`~repro.core.batch.solve_rpca_batch`, grouping by shape so
    heterogeneous fleets still batch whatever they can. Per
    ``(B, m, n)`` combination it keeps one
    :class:`~repro.core.batch.BatchedSolveWorkspace` (so steady-state sweeps
    run allocation-free) and one
    :class:`~repro.core.kernels.BatchRankPredictor` (so successive sweeps
    keep their converged-rank estimate).

    Slice *b* of a batched float64 solve is bit-identical to the
    single-matrix ``svd_backend="gram"`` solve of the same matrix, so
    decompositions from this engine match per-cluster
    :func:`~repro.core.decompose.decompose` calls exactly — batching is an
    execution strategy, not a semantic change.

    Parameters
    ----------
    solver:
        ``"apg"`` or ``"ialm"`` run batched; other registered solvers run
        through the per-matrix fallback (see *fallback*).
    extraction:
        Constant-row extraction rule, as in :func:`~repro.core.decompose.decompose`.
    dtype:
        Batch iterate dtype — ``"float64"`` (default, the bit-parity mode)
        or ``"float32"`` (fast iterate + float64 refinement).
    elementwise_backend:
        Elementwise kernel for the stacked step recurrences — one of
        :data:`repro.core.elementwise.EW_BACKENDS`. ``"fused"`` is
        bit-identical to the default ``"reference"``; ``"jit"`` needs
        numba. Ignored by per-matrix fallback solves (like *dtype*).
    fallback:
        Forwarded to :func:`~repro.core.batch.solve_rpca_batch`: permit the
        certified per-matrix fallback when the batched loop cannot serve a
        group. ``False`` raises instead.
    instrumentation:
        Sink for ``kernel.batch.*`` counters and solve spans; a fresh one is
        created if omitted.
    **solver_kwargs:
        Iteration controls forwarded to every solve (``tol``, ``max_iter``,
        ...); validated against the solver's spec.
    """

    def __init__(
        self,
        *,
        solver: str = "apg",
        extraction: str = "mean",
        dtype: str = "float64",
        elementwise_backend: str = "reference",
        fallback: bool = True,
        instrumentation: Instrumentation | None = None,
        **solver_kwargs: Any,
    ) -> None:
        self.solver = solver
        self.spec = solver_spec(solver)  # fails fast on unknown names
        self.spec.validate_kwargs(solver_kwargs)
        self.extraction = extraction
        self.dtype = validate_batch_dtype(dtype)
        self.elementwise_backend = ensure_ew_backend_available(elementwise_backend)
        self.fallback = bool(fallback)
        self.solver_kwargs = dict(solver_kwargs)
        self.instrumentation = (
            instrumentation
            if instrumentation is not None
            else Instrumentation("batch-engine")
        )
        self._workspaces: dict[tuple[int, int, int], BatchedSolveWorkspace] = {}
        self._predictors: dict[tuple[int, int, int], BatchRankPredictor] = {}

    def workspace_for(self, shape: tuple[int, int, int]) -> BatchedSolveWorkspace:
        """The reusable workspace for stacked shape ``(B, m, n)``."""
        key = tuple(int(s) for s in shape)
        ws = self._workspaces.get(key)
        if ws is None:
            ws = BatchedSolveWorkspace(key)
            self._workspaces[key] = ws
        return ws

    def _predictor_for(self, shape: tuple[int, int, int]) -> BatchRankPredictor:
        key = tuple(int(s) for s in shape)
        pred = self._predictors.get(key)
        if pred is None:
            pred = BatchRankPredictor.for_stack(key)
            self._predictors[key] = pred
        return pred

    def decompose_batch(self, tps: Sequence[TPMatrix]) -> list[Decomposition]:
        """Decompose every TP-matrix in *tps*; results return in input order.

        Matrices are grouped by data shape; each group solves as one stacked
        batch (masked and unmasked windows may share a group — the batched
        solver partitions them internally).
        """
        tps = list(tps)
        if not tps:
            raise ValidationError("decompose_batch needs at least one TP-matrix")
        for i, tp in enumerate(tps):
            if not isinstance(tp, TPMatrix):
                raise ValidationError(
                    f"tps[{i}] must be a TPMatrix, got {type(tp).__name__}"
                )
        groups: dict[tuple[int, int], list[int]] = {}
        for i, tp in enumerate(tps):
            groups.setdefault(tp.data.shape, []).append(i)
        out: list[Decomposition | None] = [None] * len(tps)
        self.instrumentation.count("engine.batch.windows", len(tps))
        self.instrumentation.count("engine.batch.groups", len(groups))
        with instrumented(self.instrumentation):
            with self.instrumentation.timed("engine.batch_seconds"):
                for shape, idxs in groups.items():
                    stacked = (len(idxs), *shape)
                    mats = [tps[i].data for i in idxs]
                    mask_list = [tps[i].mask for i in idxs]
                    masks = (
                        None if all(mk is None for mk in mask_list) else mask_list
                    )
                    results = solve_rpca_batch(
                        mats,
                        masks,
                        solver=self.solver,
                        dtype=self.dtype,
                        elementwise_backend=self.elementwise_backend,
                        workspace=self.workspace_for(stacked),
                        rank_predictor=self._predictor_for(stacked),
                        context="batch-engine",
                        fallback=self.fallback,
                        **self.solver_kwargs,
                    )
                    for i, res in zip(idxs, results):
                        out[i] = decomposition_from_result(
                            tps[i], res, solver=self.solver, extraction=self.extraction
                        )
        return out  # type: ignore[return-value]  # every slot filled above
