"""Savings analysis: what a network-aware strategy is worth in dollars.

Combines per-strategy elapsed times (from a comparison run or an
application's :class:`~repro.apps.breakdown.TimeBreakdown`) with a price
sheet, charging each strategy its own overhead (calibration + analysis) so
the verdict is net: a strategy only "saves money" if its time gain survives
billing rounding and pays for its calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_nonnegative
from .pricing import InstancePricing, run_cost_usd

__all__ = ["SavingsReport", "savings_report"]


@dataclass(frozen=True, slots=True)
class SavingsReport:
    """Cost comparison of one strategy against the baseline.

    All monetary values in USD for the full cluster.
    """

    strategy: str
    baseline_cost: float
    strategy_cost: float

    @property
    def savings(self) -> float:
        return self.baseline_cost - self.strategy_cost

    @property
    def savings_fraction(self) -> float:
        return self.savings / self.baseline_cost if self.baseline_cost else 0.0

    @property
    def pays_off(self) -> bool:
        return self.savings > 0.0


def savings_report(
    *,
    strategy: str,
    baseline_elapsed_seconds: float,
    strategy_elapsed_seconds: float,
    strategy_overhead_seconds: float = 0.0,
    n_instances: int,
    pricing: InstancePricing | None = None,
) -> SavingsReport:
    """Price a strategy against the baseline, overhead included.

    Parameters
    ----------
    strategy:
        Display name.
    baseline_elapsed_seconds:
        Wall-clock of the unoptimized run.
    strategy_elapsed_seconds:
        Wall-clock of the optimized run (communication + computation).
    strategy_overhead_seconds:
        Calibration + analysis time the strategy spent; the cluster is
        billed for it too.
    n_instances:
        Cluster size (all instances are billed for the whole run).
    pricing:
        Price sheet (2013 m1.medium hourly default).
    """
    check_nonnegative(baseline_elapsed_seconds, "baseline_elapsed_seconds")
    check_nonnegative(strategy_elapsed_seconds, "strategy_elapsed_seconds")
    check_nonnegative(strategy_overhead_seconds, "strategy_overhead_seconds")
    p = pricing if pricing is not None else InstancePricing()
    return SavingsReport(
        strategy=strategy,
        baseline_cost=run_cost_usd(baseline_elapsed_seconds, n_instances, p),
        strategy_cost=run_cost_usd(
            strategy_elapsed_seconds + strategy_overhead_seconds, n_instances, p
        ),
    )
