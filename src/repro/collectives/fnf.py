"""Fastest-Node-First tree construction (Banikazemi, Moorthy & Panda [3]).

The paper's running example (Fig 1): given an all-link weight matrix (lower
weight = better link), grow the tree from the root in iterations. Every
iteration walks the already-selected machines *in the order they were added*
and lets each pick the unselected machine with its best link; the picked
machine is removed from the candidate pool immediately (so two senders never
pick the same receiver within an iteration) and joins the selected set at the
end of the iteration. Each node therefore gains at most one child per
iteration — the same doubling structure as a binomial tree, but with
network-aware link choices.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_square_matrix, check_index
from ..errors import ValidationError
from .trees import CommTree

__all__ = ["fnf_tree"]


def fnf_tree(weights: np.ndarray, root: int = 0) -> CommTree:
    """Build the FNF communication tree for *weights* rooted at *root*.

    Parameters
    ----------
    weights:
        N×N link-weight matrix; ``weights[i, j]`` is the cost of the directed
        link i→j and smaller is better. The diagonal is ignored.
    root:
        Root machine (the collective's root process).

    Returns
    -------
    CommTree
        Children are recorded in the order they were attached, which is also
        the send order the FNF schedule implies.

    Notes
    -----
    The selection scan is vectorized: for each sender the argmin over the
    remaining pool is one masked ``argmin`` over a weight row rather than a
    Python loop over candidates, so the construction is O(N² ) numpy work
    for the O(N log N) picks.
    """
    w = as_square_matrix(weights, "weights")
    n = w.shape[0]
    check_index(root, n, "root")
    if n == 1:
        return CommTree(root=root, parent=np.array([-1]), children=((),))
    if not np.all(np.isfinite(w[~np.eye(n, dtype=bool)])):
        raise ValidationError("weights must be finite off-diagonal")

    parent = np.full(n, -1, dtype=np.intp)
    children: list[list[int]] = [[] for _ in range(n)]
    selected: list[int] = [root]  # S, in insertion order
    in_pool = np.ones(n, dtype=bool)  # U membership mask
    in_pool[root] = False
    remaining = n - 1

    while remaining > 0:
        added_this_iter: list[int] = []
        for s in selected:
            if remaining == 0:
                break
            row = np.where(in_pool, w[s], np.inf)
            r = int(np.argmin(row))
            parent[r] = s
            children[s].append(r)
            in_pool[r] = False
            remaining -= 1
            added_this_iter.append(r)
        selected.extend(added_this_iter)

    return CommTree(
        root=root, parent=parent, children=tuple(tuple(c) for c in children)
    )
