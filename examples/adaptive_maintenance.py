#!/usr/bin/env python3
"""Adaptive update maintenance (paper Algorithm 1, Fig 6).

Glues two network regimes together — mid-trace, the cluster's links degrade
sharply (think: VMs migrated behind a congested aggregation switch) — and
drives a :class:`repro.TraceSession` through it. The session keeps using the
constant component while reality matches expectations, detects the regime
change from the expected-vs-real gap, re-calibrates, and recovers.

Run:  python examples/adaptive_maintenance.py
"""

from __future__ import annotations

import numpy as np

from repro import TraceConfig, TraceSession, generate_trace
from repro.cloudsim.bands import BandTiers
from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.trace import CalibrationTrace
from repro.core.maintenance import MaintenanceDecision


def two_regime_trace() -> CalibrationTrace:
    dyn = DynamicsConfig(volatility_sigma=0.05, spike_probability=0.01,
                         hotspot_probability=0.01)
    calm = generate_trace(
        TraceConfig(n_machines=12, n_snapshots=20, dynamics=dyn), seed=1
    )
    degraded = generate_trace(
        TraceConfig(
            n_machines=12,
            n_snapshots=20,
            dynamics=dyn,
            tiers=BandTiers(
                same_rack_bandwidth=125e6 / 4, cross_rack_bandwidth=50e6 / 4
            ),
        ),
        seed=2,
    )
    return CalibrationTrace(
        alpha=np.concatenate([calm.alpha, degraded.alpha]),
        beta=np.concatenate([calm.beta, degraded.beta]),
        timestamps=np.arange(40, dtype=float) * 1800.0,
    )


def main() -> None:
    trace = two_regime_trace()
    session = TraceSession(
        trace, time_step=10, threshold=1.0, solver="apg", calibration_cost=45.0
    )
    print(f"initial calibration: Norm(N_E)={session.norm_ne:.3f} "
          f"({session.verdict}); threshold=100% (paper default)\n")
    print(f"{'op':>3}  {'snapshot':>8}  {'expected':>9}  {'observed':>9}  decision")
    rng = np.random.default_rng(0)
    for i in range(25):
        rec = session.broadcast(root=int(rng.integers(12)))
        marker = "  <-- RE-CALIBRATED" if rec.decision is MaintenanceDecision.RECALIBRATE else ""
        print(
            f"{i:>3}  {rec.snapshot:>8}  {rec.expected:>8.3f}s  "
            f"{rec.elapsed:>8.3f}s  {rec.decision.value}{marker}"
        )
    s = session.stats
    print(
        f"\n{s.operations} operations, {s.recalibrations} re-calibration(s); "
        f"communication {s.communication_seconds:.1f}s + maintenance overhead "
        f"{s.overhead_seconds:.1f}s"
    )
    print("(the regime change at snapshot 20 triggers exactly the Fig 6 loop)")


if __name__ == "__main__":
    main()
