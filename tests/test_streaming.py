"""Unit tests for the streaming RPCA layer (``repro.core.streaming``).

Covers the decomposer itself (seed/fold/refresh/rank growth/fallback
reasons), the persistence payload round-trip, mode validation across every
config surface, and the engine-level certification plumbing (cold-oracle
parity, warm-start quarantine of streaming results).
"""

import numpy as np
import pytest

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.decompose import decompose, decomposition_from_result
from repro.core.engine import DecompositionEngine
from repro.core.result import SolverResult
from repro.core.streaming import (
    ENGINE_MODES,
    StreamingConfig,
    StreamingDecomposer,
    StreamResult,
    stream_state_from_payload,
    stream_state_to_payload,
    validate_mode,
)
from repro.errors import ValidationError
from repro.observability import Instrumentation, instrumented

MB = 1024 * 1024


def _rank1_stream(m=6, n=40, total=30, noise=1e-4, seed=0):
    """Synthetic near-rank-1 rows: a fixed profile scaled per snapshot."""
    rng = np.random.default_rng(seed)
    profile = 1.0 + rng.random(n)
    scales = 1.0 + 0.05 * rng.standard_normal(total)
    rows = scales[:, None] * profile[None, :]
    rows += noise * rng.standard_normal((total, n))
    return rows


def _seeded(rows, m=6, config=None):
    """Decomposer seeded from a batch solve of the first *m* rows."""
    window = rows[:m]
    res = decompose_window(window)
    dec = StreamingDecomposer((m, rows.shape[1]), config)
    dec.seed(end=m, data=window, low_rank=res[0], sparse=res[1])
    return dec


def decompose_window(window):
    from repro.core.solvers import solve_rpca

    res = solve_rpca(window, solver="apg")
    return res.low_rank, res.sparse


class TestModeValidation:
    def test_known_modes(self):
        assert ENGINE_MODES == ("batch", "streaming")
        for mode in ENGINE_MODES:
            assert validate_mode(mode) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError, match="unknown engine mode"):
            validate_mode("online")

    @pytest.mark.parametrize("bad", [
        {"tolerance": 0.0},
        {"tolerance": -1.0},
        {"refresh_every": 0},
        {"passes": 0},
        {"growth_tol": -0.1},
    ])
    def test_config_validation(self, bad):
        with pytest.raises(ValidationError):
            StreamingConfig(**bad)

    def test_engine_rejects_knobs_in_batch_mode(self, tiny_trace):
        with pytest.raises(ValidationError, match="require mode='streaming'"):
            DecompositionEngine(
                tiny_trace, nbytes=MB, time_step=4, stream_tolerance=0.1
            )
        with pytest.raises(ValidationError, match="require mode='streaming'"):
            DecompositionEngine(
                tiny_trace, nbytes=MB, time_step=4, stream_refresh_every=4
            )


class TestStreamResultQuarantine:
    def test_stream_result_is_not_a_solver_result(self):
        r = StreamResult(
            low_rank=np.ones((2, 4)), sparse=np.zeros((2, 4)),
            rank=1, iterations=2, converged=True, residual=0.0,
        )
        assert not isinstance(r, SolverResult)
        assert r.shape == (2, 4)

    def test_decomposition_from_stream_result_cannot_seed_warm_start(
        self, tiny_trace
    ):
        tp = tiny_trace.tp_matrix(MB, start=0, count=4)
        low_rank, sparse = decompose_window(tp.data)
        r = StreamResult(
            low_rank=low_rank, sparse=sparse, rank=1,
            iterations=2, converged=True, residual=0.0,
        )
        dec = decomposition_from_result(tp, r, solver="apg")
        assert dec.solver_result is None


class TestFold:
    def test_folds_track_a_stable_stream(self):
        rows = _rank1_stream()
        dec = _seeded(rows)
        for k in range(6, rows.shape[0]):
            assert dec.fold(k, rows[k]) is None
        st = dec.state
        assert st.end == rows.shape[0]
        assert st.updates == rows.shape[0] - 6
        assert list(st.keys) == list(range(rows.shape[0] - 6, rows.shape[0]))
        assert st.drift <= dec.config.tolerance

    def test_fold_reconstruction_explains_the_window(self):
        rows = _rank1_stream()
        dec = _seeded(rows)
        for k in range(6, rows.shape[0]):
            assert dec.fold(k, rows[k]) is None
        res = dec.as_result()
        window = rows[-6:]
        unexplained = window - res.low_rank - res.sparse
        rel = np.abs(unexplained).sum() / np.abs(window).sum()
        assert rel <= dec.config.tolerance

    def test_sparse_spike_lands_in_sparse_not_subspace(self):
        rows = _rank1_stream()
        spiked = rows[6].copy()
        spiked[3] *= 50.0  # one-entry interference burst
        # 3 projection/shrinkage alternations: enough for a burst this hard
        # to converge into the sparse term (2, the default, suffices for
        # trace-scale spikes but lets an extreme one leak into a rank-1
        # growth instead — still safe, just not what this test pins).
        dec = _seeded(rows, config=StreamingConfig(passes=3))
        rank_before = dec.state.rank
        assert dec.fold(6, spiked) is None
        st = dec.state
        assert st.rank == rank_before  # no subspace pollution
        assert abs(st.sparse[-1, 3]) > 1.0  # absorbed as sparse

    def test_refresh_cadence_and_counter(self):
        rows = _rank1_stream(total=30)
        dec = _seeded(rows, config=StreamingConfig(refresh_every=4))
        sink = Instrumentation("t")
        with instrumented(sink):
            for k in range(6, 18):
                assert dec.fold(k, rows[k]) is None
        assert sink.counters["kernel.stream.refreshes"] == 3

    def test_rank_growth_within_predictor_bound(self):
        rows = _rank1_stream(noise=0.0)
        dec = _seeded(rows)
        # A direction orthogonal to the near-rank-1 profile, large enough
        # to exceed growth_tol but structured (not sparse): rank must grow.
        novel = rows[6].copy()
        novel[: 20] *= 1.5
        rank_before = dec.state.rank
        sink = Instrumentation("t")
        with instrumented(sink):
            reason = dec.fold(6, novel)
        assert reason is None
        assert dec.state.rank == rank_before + 1
        assert sink.counters["kernel.stream.rank_growths"] == 1

    def test_rank_fallback_past_predictor_bound(self):
        rows = _rank1_stream(noise=0.0)
        dec = _seeded(rows)
        rng = np.random.default_rng(5)
        reason = None
        # Keep injecting fresh orthogonal structure; the predictor's bound
        # (seed rank + 1 until a refresh re-observes) must eventually trip.
        for k in range(6, 12):
            novel = rows[k] * (1.0 + 0.8 * rng.random(rows.shape[1]))
            reason = dec.fold(k, novel)
            if reason is not None:
                break
        assert reason == "rank"
        assert dec.state is None

    def test_drift_fallback(self):
        rows = _rank1_stream()
        dec = _seeded(rows, config=StreamingConfig(tolerance=1e-9))
        reason = dec.fold(6, rows[6])
        assert reason == "drift"
        assert dec.state is None

    def test_fold_without_seed_raises(self):
        dec = StreamingDecomposer((4, 10))
        with pytest.raises(ValidationError, match="not seeded"):
            dec.fold(4, np.ones(10))
        with pytest.raises(ValidationError, match="not seeded"):
            dec.as_result()


class TestStatePersistence:
    def test_payload_round_trip_is_bit_exact(self):
        rows = _rank1_stream()
        dec = _seeded(rows)
        for k in range(6, 10):
            dec.fold(k, rows[k])
        st = dec.export_state()
        arrays, meta = stream_state_to_payload(st)
        back = stream_state_from_payload(
            {k: v.copy() for k, v in arrays.items()}, dict(meta)
        )
        for name in ("basis", "coeffs", "sparse", "keys", "row_err"):
            assert getattr(back, name).tobytes() == getattr(st, name).tobytes()
        assert back.end == st.end and back.updates == st.updates
        assert back.predictor.sv == st.predictor.sv
        assert back.predictor.observations == st.predictor.observations

    def test_imported_state_folds_bit_identically(self):
        rows = _rank1_stream(total=30)
        a = _seeded(rows)
        for k in range(6, 12):
            assert a.fold(k, rows[k]) is None
        arrays, meta = stream_state_to_payload(a.export_state())
        b = StreamingDecomposer(a.shape, a.config)
        b.import_state(stream_state_from_payload(arrays, meta))
        for k in range(12, rows.shape[0]):
            assert a.fold(k, rows[k]) is None
            assert b.fold(k, rows[k]) is None
        ra, rb = a.as_result(), b.as_result()
        assert np.array_equal(ra.low_rank, rb.low_rank)
        assert np.array_equal(ra.sparse, rb.sparse)

    def test_import_rejects_wrong_shape(self):
        rows = _rank1_stream()
        dec = _seeded(rows)
        other = StreamingDecomposer((6, 13))
        with pytest.raises(ValidationError, match="does not fit"):
            other.import_state(dec.export_state())


@pytest.fixture()
def stream_trace():
    return generate_trace(
        TraceConfig(n_machines=6, n_snapshots=20), seed=11
    )


class TestEngineStreaming:
    def test_plan_lifecycle(self, stream_trace):
        eng = DecompositionEngine(
            stream_trace, nbytes=MB, time_step=8, mode="streaming"
        )
        assert eng.stream_plan(9) == "solve"  # unseeded
        eng.calibrate(8)
        assert eng.stream_plan(9) == "fold"
        assert eng.stream_plan(11) == "solve"  # gap
        assert eng.stream_plan(21) == "solve"  # past the trace
        with pytest.raises(ValidationError, match="cannot fold"):
            eng.stream_fold(11)

    def test_plan_requires_streaming_mode(self, stream_trace):
        eng = DecompositionEngine(stream_trace, nbytes=MB, time_step=8)
        with pytest.raises(ValidationError, match="mode='streaming'"):
            eng.stream_plan(9)

    def test_fold_matches_oracle_within_tolerance_and_counts(self, stream_trace):
        sink = Instrumentation("t")
        eng = DecompositionEngine(
            stream_trace, nbytes=MB, time_step=8, mode="streaming",
            instrumentation=sink,
        )
        eng.calibrate(8)
        folds = 0
        for end in range(9, 21):
            if eng.stream_plan(end) != "fold":
                eng.calibrate(end)
                continue
            dec, reason = eng.stream_fold(end)
            if dec is None:
                eng.calibrate(end)
                continue
            folds += 1
            assert dec.solver_result is None
            oracle = decompose(
                stream_trace.tp_matrix(MB, start=end - 8, count=8)
            )
            scale = float(np.abs(oracle.constant.row).max())
            diff = float(np.abs(dec.constant.row - oracle.constant.row).max())
            assert diff <= eng.stream_config.tolerance * scale
        assert folds > 0
        assert sink.counters["kernel.stream.updates"] == folds
        assert sink.timers["kernel.stream.update_seconds"] > 0.0

    def test_fallback_calibrate_is_bit_identical_to_cold_oracle(
        self, stream_trace
    ):
        eng = DecompositionEngine(
            stream_trace, nbytes=MB, time_step=8, mode="streaming",
            stream_tolerance=1e-9,  # every fold trips the drift ceiling
        )
        eng.calibrate(8)
        dec, reason = eng.stream_fold(9)
        assert dec is None and reason == "drift"
        recal = eng.calibrate(9)
        oracle = decompose(stream_trace.tp_matrix(MB, start=1, count=8))
        assert np.array_equal(recal.constant.row, oracle.constant.row)

    def test_reset_warm_state_drops_stream(self, stream_trace):
        eng = DecompositionEngine(
            stream_trace, nbytes=MB, time_step=8, mode="streaming"
        )
        eng.calibrate(8)
        assert eng.export_stream_state() is not None
        eng.reset_warm_state()
        assert eng.export_stream_state() is None
        assert eng.stream_plan(9) == "solve"

    def test_import_stream_state_requires_streaming_mode(self, stream_trace):
        streaming = DecompositionEngine(
            stream_trace, nbytes=MB, time_step=8, mode="streaming"
        )
        streaming.calibrate(8)
        batch = DecompositionEngine(stream_trace, nbytes=MB, time_step=8)
        with pytest.raises(ValidationError, match="streaming"):
            batch.import_stream_state(streaming.export_stream_state())
