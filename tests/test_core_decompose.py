"""Unit tests for the high-level TP → (TC, TE) decomposition."""

import numpy as np
import pytest

from repro.core.decompose import Decomposition, constant_row, decompose
from repro.core.matrices import TPMatrix
from repro.errors import ValidationError


def make_tp(n=5, rows=12, noise=0.05, seed=0):
    """Row-constant ground truth + mild noise, as a TPMatrix."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.5, 2.0, size=(n, n))
    np.fill_diagonal(base, 0.0)
    flat = base.ravel()
    data = np.tile(flat, (rows, 1))
    data += noise * rng.standard_normal(data.shape) * (flat > 0)
    data = np.abs(data)
    return TPMatrix(data=data, n_machines=n), flat


class TestConstantRow:
    def test_mean_of_row_constant(self):
        row = np.array([1.0, 2.0, 3.0])
        d = np.tile(row, (4, 1))
        np.testing.assert_allclose(constant_row(d, method="mean"), row)

    def test_top_sv_of_row_constant(self):
        row = np.array([1.0, 2.0, 3.0])
        d = np.tile(row, (4, 1))
        np.testing.assert_allclose(constant_row(d, method="top_sv"), row, atol=1e-12)

    def test_top_sv_of_zero(self):
        np.testing.assert_array_equal(constant_row(np.zeros((3, 4)), method="top_sv"), 0)

    def test_unknown_method(self):
        with pytest.raises(ValidationError):
            constant_row(np.ones((2, 2)), method="magic")

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            constant_row(np.ones(5))

    def test_methods_agree_on_near_rank_one(self):
        rng = np.random.default_rng(1)
        row = rng.uniform(1, 2, size=10)
        d = np.tile(row, (6, 1)) * rng.uniform(0.99, 1.01, size=(6, 1))
        a = constant_row(d, method="mean")
        b = constant_row(d, method="top_sv")
        assert np.linalg.norm(a - b) / np.linalg.norm(a) < 0.02


class TestDecompose:
    @pytest.mark.parametrize("solver", ["apg", "ialm", "row_constant"])
    def test_recovers_constant_row(self, solver):
        tp, truth = make_tp()
        dec = decompose(tp, solver=solver)
        off = truth > 0
        rel = np.abs(dec.constant.row[off] - truth[off]) / truth[off]
        assert np.median(rel) < 0.05

    def test_residual_identity(self):
        tp, _ = make_tp(seed=2)
        dec = decompose(tp, solver="row_constant")
        np.testing.assert_allclose(
            dec.constant.as_matrix() + dec.error.data, tp.data, atol=1e-12
        )

    def test_norm_ne_scales_with_noise(self):
        tp_low, _ = make_tp(noise=0.02, seed=3)
        tp_high, _ = make_tp(noise=0.3, seed=3)
        lo = decompose(tp_low, solver="row_constant").norm_ne
        hi = decompose(tp_high, solver="row_constant").norm_ne
        assert lo < hi

    def test_performance_matrix_is_valid(self):
        tp, _ = make_tp(seed=4)
        pm = decompose(tp).performance_matrix()
        assert pm.n_machines == tp.n_machines
        off = ~np.eye(pm.n_machines, dtype=bool)
        assert np.all(pm.weights[off] > 0)

    def test_result_metadata(self):
        tp, _ = make_tp(seed=5)
        dec = decompose(tp, solver="apg")
        assert isinstance(dec, Decomposition)
        assert dec.solver == "apg"
        assert dec.solver_iterations >= 1

    def test_extraction_choice_passed(self):
        tp, _ = make_tp(seed=6)
        a = decompose(tp, extraction="mean").constant.row
        b = decompose(tp, extraction="top_sv").constant.row
        # Both near the truth, not identical.
        assert np.linalg.norm(a - b) / np.linalg.norm(a) < 0.05

    def test_error_defined_against_used_component(self):
        # Norm(N_E) must reflect the row-constant matrix used downstream,
        # not the solver's internal (possibly higher-rank) D.
        tp, _ = make_tp(noise=0.1, seed=7)
        dec = decompose(tp, solver="apg")
        expected = np.abs(tp.data - dec.constant.as_matrix()).sum() / np.abs(tp.data).sum()
        assert dec.norm_ne == pytest.approx(expected)
