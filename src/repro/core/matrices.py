"""Matrix containers of paper Sec III.

``PerformanceMatrix``
    One all-link snapshot: an N×N matrix of link weights (transfer times —
    lower is better), zero diagonal.
``TPMatrix``
    The temporal performance matrix ``N_A``: ``n`` snapshots flattened
    row-major into an ``n × N²`` matrix, rows ordered by measurement time.
``TCMatrix`` / ``TEMatrix``
    The constant and error components produced by decomposition; a TC-matrix
    is rank one with all rows equal by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_float_matrix, as_square_matrix
from ..errors import ValidationError

__all__ = ["PerformanceMatrix", "TPMatrix", "TCMatrix", "TEMatrix"]


@dataclass(frozen=True)
class PerformanceMatrix:
    """One snapshot of pair-wise link weights for an N-machine virtual cluster.

    Entry ``(i, j)`` is the measured/estimated cost of the directed link from
    machine *i* to machine *j* (seconds for the calibration message size).
    The diagonal is identically zero. Off-diagonal weights must be positive —
    a zero off-diagonal weight would make greedy link selection degenerate.

    Parameters
    ----------
    weights:
        Square array of link weights.
    timestamp:
        Measurement time (seconds since trace start); purely informational.
    """

    weights: np.ndarray
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        w = as_square_matrix(self.weights, "weights")
        if np.any(np.diagonal(w) != 0.0):
            raise ValidationError("PerformanceMatrix diagonal must be zero")
        off = ~np.eye(w.shape[0], dtype=bool)
        if w.shape[0] > 1 and np.any(w[off] <= 0.0):
            raise ValidationError("off-diagonal weights must be positive")
        w.setflags(write=False)
        object.__setattr__(self, "weights", w)
        object.__setattr__(self, "timestamp", float(self.timestamp))

    @property
    def n_machines(self) -> int:
        return self.weights.shape[0]

    def flatten(self) -> np.ndarray:
        """Row-major flattening into an ``N²`` vector (paper's layout)."""
        return self.weights.ravel().copy()

    @classmethod
    def from_flat(cls, vec: np.ndarray, timestamp: float = 0.0) -> "PerformanceMatrix":
        """Inverse of :meth:`flatten` — reshape an ``N²`` vector to N×N."""
        v = np.asarray(vec, dtype=np.float64).ravel()
        n = int(round(np.sqrt(v.size)))
        if n * n != v.size:
            raise ValidationError(f"vector length {v.size} is not a perfect square")
        return cls(weights=v.reshape(n, n), timestamp=timestamp)

    def restrict(self, machines: np.ndarray | list[int]) -> "PerformanceMatrix":
        """Sub-matrix for a virtual sub-cluster ``C' ⊆ C`` (paper Alg. 1 line 3)."""
        idx = np.asarray(machines, dtype=np.intp)
        if idx.size == 0:
            raise ValidationError("machines must be non-empty")
        if len(set(idx.tolist())) != idx.size:
            raise ValidationError("machines must be distinct")
        if idx.min() < 0 or idx.max() >= self.n_machines:
            raise ValidationError("machine index out of range")
        return PerformanceMatrix(
            weights=self.weights[np.ix_(idx, idx)], timestamp=self.timestamp
        )


@dataclass(frozen=True)
class TPMatrix:
    """Temporal performance matrix ``N_A`` (paper Sec III).

    ``data[k]`` is the row-major flattening of the k-th snapshot; rows are
    ordered by measurement time (``timestamps`` must be non-decreasing).

    ``mask`` marks which entries were actually *observed* (``True``) versus
    lost to probe failures or VM outages (``False``). ``None`` — the default
    and the historical behavior — means fully observed. Masked-out entries
    still hold a finite placeholder value (conventionally 0.0) so the array
    stays dense; solvers that understand masks ignore those values, and
    everything else must refuse a partially-observed matrix rather than
    treat the placeholders as measurements.
    """

    data: np.ndarray
    n_machines: int
    timestamps: np.ndarray = field(default=None)  # type: ignore[assignment]
    mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        d = as_float_matrix(self.data, "data")
        n = int(self.n_machines)
        if n <= 0:
            raise ValidationError("n_machines must be positive")
        if d.shape[1] != n * n:
            raise ValidationError(
                f"TPMatrix has {d.shape[1]} columns; expected n_machines²={n * n}"
            )
        if self.timestamps is None:
            ts = np.arange(d.shape[0], dtype=np.float64)
        else:
            ts = np.asarray(self.timestamps, dtype=np.float64).ravel()
            if ts.size != d.shape[0]:
                raise ValidationError("timestamps length must equal number of rows")
            if np.any(np.diff(ts) < 0):
                raise ValidationError("timestamps must be non-decreasing")
        mask = self.mask
        if mask is not None:
            m = np.asarray(mask)
            if m.dtype != np.bool_:
                raise ValidationError("mask must be a boolean array")
            if m.shape != d.shape:
                raise ValidationError(
                    f"mask shape {m.shape} does not match data shape {d.shape}"
                )
            if not m.any():
                raise ValidationError("mask must observe at least one entry")
            if m.all():
                mask = None  # fully observed — normalize to the unmasked form
            else:
                mask = np.ascontiguousarray(m)
                mask.setflags(write=False)
        d.setflags(write=False)
        ts.setflags(write=False)
        object.__setattr__(self, "data", d)
        object.__setattr__(self, "n_machines", n)
        object.__setattr__(self, "timestamps", ts)
        object.__setattr__(self, "mask", mask)

    @property
    def n_snapshots(self) -> int:
        return self.data.shape[0]

    @property
    def observed_fraction(self) -> float:
        """Fraction of *off-diagonal* entries that were observed (1.0 unmasked)."""
        if self.mask is None:
            return 1.0
        n = self.n_machines
        off = ~np.eye(n, dtype=bool).ravel()
        total = self.n_snapshots * int(off.sum())
        return float(self.mask[:, off].sum()) / total if total else 1.0

    def row_observed_fractions(self) -> np.ndarray:
        """Per-snapshot observed fraction over off-diagonal entries."""
        n = self.n_machines
        off = ~np.eye(n, dtype=bool).ravel()
        if self.mask is None:
            return np.ones(self.n_snapshots)
        denom = float(off.sum()) or 1.0
        return self.mask[:, off].sum(axis=1) / denom

    @classmethod
    def from_snapshots(cls, snapshots: list[PerformanceMatrix]) -> "TPMatrix":
        """Stack time-ordered :class:`PerformanceMatrix` snapshots."""
        if not snapshots:
            raise ValidationError("snapshots must be non-empty")
        n = snapshots[0].n_machines
        for s in snapshots:
            if s.n_machines != n:
                raise ValidationError("all snapshots must have the same size")
        data = np.stack([s.flatten() for s in snapshots])
        ts = np.array([s.timestamp for s in snapshots], dtype=np.float64)
        order = np.argsort(ts, kind="stable")
        return cls(data=data[order], n_machines=n, timestamps=ts[order])

    def snapshot(self, k: int) -> PerformanceMatrix:
        """Reconstruct the k-th snapshot as a :class:`PerformanceMatrix`."""
        if not 0 <= k < self.n_snapshots:
            raise ValidationError(f"snapshot index {k} out of range")
        return PerformanceMatrix.from_flat(self.data[k], timestamp=self.timestamps[k])

    def head(self, k: int) -> "TPMatrix":
        """First *k* rows — the calibration prefix for a given time step."""
        if not 1 <= k <= self.n_snapshots:
            raise ValidationError(f"head size {k} out of range")
        return TPMatrix(
            data=self.data[:k].copy(),
            n_machines=self.n_machines,
            timestamps=self.timestamps[:k].copy(),
            mask=None if self.mask is None else self.mask[:k].copy(),
        )


def _component_matrix_post_init(self: object, d: np.ndarray, n: int) -> None:
    if d.shape[1] != n * n:
        raise ValidationError(
            f"component matrix has {d.shape[1]} columns; expected {n * n}"
        )
    d.setflags(write=False)
    object.__setattr__(self, "data", d)
    object.__setattr__(self, "n_machines", n)


@dataclass(frozen=True)
class TCMatrix:
    """Temporal constant matrix ``N_D``: the rank-one long-term component.

    Constructed from the single constant row; materializing the full
    ``n × N²`` matrix is never needed except for residual checks, so the
    container stores ``row`` plus the intended number of snapshot rows.
    """

    row: np.ndarray
    n_rows: int
    n_machines: int

    def __post_init__(self) -> None:
        r = np.asarray(self.row, dtype=np.float64).ravel().copy()
        n = int(self.n_machines)
        if n <= 0:
            raise ValidationError("n_machines must be positive")
        if r.size != n * n:
            raise ValidationError(f"row length {r.size} != n_machines²={n * n}")
        if not np.all(np.isfinite(r)):
            raise ValidationError("constant row contains non-finite values")
        if int(self.n_rows) <= 0:
            raise ValidationError("n_rows must be positive")
        r.setflags(write=False)
        object.__setattr__(self, "row", r)
        object.__setattr__(self, "n_rows", int(self.n_rows))
        object.__setattr__(self, "n_machines", n)

    def as_matrix(self) -> np.ndarray:
        """Materialize the full rank-one matrix (all rows equal)."""
        return np.broadcast_to(self.row, (self.n_rows, self.row.size)).copy()

    def performance_matrix(self, *, clip_floor: float | None = None) -> PerformanceMatrix:
        """The constant component as an optimizer-ready weight matrix ``P_D``.

        RPCA solvers can produce tiny non-positive weights on links whose true
        weight is near zero; *clip_floor* (default: smallest positive entry
        ×1e-3) keeps the result a valid :class:`PerformanceMatrix`.
        """
        w = self.row.reshape(self.n_machines, self.n_machines).copy()
        np.fill_diagonal(w, 0.0)
        off = ~np.eye(self.n_machines, dtype=bool)
        if self.n_machines > 1:
            positive = w[off][w[off] > 0]
            if positive.size == 0:
                raise ValidationError("constant component has no positive weights")
            floor = clip_floor if clip_floor is not None else float(positive.min()) * 1e-3
            w[off] = np.maximum(w[off], floor)
        return PerformanceMatrix(weights=w)


@dataclass(frozen=True)
class TEMatrix:
    """Temporal error matrix ``N_E``: the sparse transient component."""

    data: np.ndarray
    n_machines: int

    def __post_init__(self) -> None:
        d = as_float_matrix(self.data, "data")
        _component_matrix_post_init(self, d, int(self.n_machines))

    @property
    def n_rows(self) -> int:
        return self.data.shape[0]
