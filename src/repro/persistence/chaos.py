"""Kill-and-recover chaos harness for the crash-safe session runtime.

The acceptance test for the persistence layer is behavioral, not unit-level:
SIGKILL a session process mid-run — no ``atexit``, no ``finally`` — recover
it, kill it again, and when it finally runs to completion the constant
component ``P_D`` must be *bit-identical* to an uninterrupted run of the
same workload. :func:`kill_and_recover` drives exactly that, as real
subprocesses of the ``repro`` CLI:

1. ``repro replay --checkpoint-dir D --crash-after K₀`` — the child arms a
   :class:`~repro.faults.CrashFault` against itself and dies by SIGKILL at
   operation K₀.
2. ``repro resume D --crash-after Kᵢ`` for each further kill point — each
   child recovers its predecessor's state and dies in turn.
3. ``repro resume D`` — the survivor runs to the operation target and emits
   its ``--json`` summary.
4. ``repro replay`` with no persistence at all — the uninterrupted
   reference.

The harness then compares the two summaries' ``constant_row`` (and
operation/communication accounting) for parity.

Run it directly for the CI chaos job::

    python -m repro.persistence.chaos TRACE WORKDIR --kill-at 7,19 --operations 40
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import PersistenceError

__all__ = ["ChaosResult", "kill_and_recover", "main"]

# SIGKILL shows up as -9 (POSIX waitpid) or 137 (shell-style) depending on
# how the platform reports it; anything else means the child didn't die the
# way the harness scheduled.
_KILLED_CODES = (-9, 137)


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of one kill-and-recover round-trip.

    ``parity`` is the headline: the recovered run's constant component is
    exactly equal to the uninterrupted reference's. ``max_abs_diff`` is 0.0
    when parity holds and quantifies the divergence when it does not.
    """

    parity: bool
    kills: int
    max_abs_diff: float
    reference: dict[str, Any]
    recovered: dict[str, Any]


def _python_env() -> dict[str, str]:
    """Child environment that can import this very ``repro`` package."""
    env = dict(os.environ)
    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return env


def _run_cli(cli_args: Sequence[str], *, expect_kill: bool) -> dict[str, Any] | None:
    """Run one ``repro`` CLI child; parse its JSON summary unless killed."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *cli_args],
        env=_python_env(),
        capture_output=True,
        text=True,
    )
    if expect_kill:
        if proc.returncode not in _KILLED_CODES:
            raise PersistenceError(
                f"child was supposed to die by SIGKILL but exited "
                f"{proc.returncode}: {proc.stderr.strip()[:500]}"
            )
        return None
    if proc.returncode != 0:
        raise PersistenceError(
            f"child failed ({proc.returncode}): {proc.stderr.strip()[:500]}"
        )
    return json.loads(proc.stdout)


def kill_and_recover(
    trace_path: str | os.PathLike,
    workdir: str | os.PathLike,
    *,
    kill_at: Sequence[int] = (7,),
    operations: int = 40,
    time_step: int = 8,
    op: str = "broadcast",
    threshold: float = 1.0,
    checkpoint_every: int = 5,
    faults: str | None = None,
    fault_seed: int = 0,
    regime: bool | str | None = False,
) -> ChaosResult:
    """SIGKILL a session at each *kill_at* operation, recover, assert parity.

    ``kill_at`` must be strictly increasing and below *operations*; each
    entry is an operation index (over the whole session lifetime) at which
    one child process is killed. The checkpoint directory is
    ``workdir/checkpoints``; *workdir* must not already contain one.
    """
    kills = [int(k) for k in kill_at]
    if kills != sorted(set(kills)):
        raise PersistenceError("kill_at must be strictly increasing")
    if kills and kills[-1] >= int(operations):
        raise PersistenceError("kill points must lie before the operation target")
    trace_path = os.fspath(trace_path)
    ckpt_dir = os.path.join(os.fspath(workdir), "checkpoints")
    if os.path.exists(ckpt_dir):
        raise PersistenceError(f"{ckpt_dir!r} already exists; use a fresh workdir")

    common = ["--op", op, "--operations", str(operations), "--json"]
    fault_args: list[str] = []
    if faults is not None:
        fault_args = ["--faults", faults]
    # True selects the default detector by name so the child CLI never hits
    # the deprecated bare-flag path; a string is a registered detector name.
    regime_name = "cusum" if regime is True else (regime or None)

    replay = [
        "replay", trace_path,
        "--time-step", str(time_step),
        "--threshold", str(threshold),
        "--fault-seed", str(fault_seed),
        *fault_args,
        *(["--regime", regime_name] if regime_name else []),
        *common,
    ]
    # The uninterrupted reference: same workload, no persistence, no kills.
    reference = _run_cli(replay, expect_kill=False)

    # Round 1: a fresh persisted session that self-destructs at kills[0]
    # (or survives outright when no kill points were requested).
    persisted = [
        *replay,
        "--checkpoint-dir", ckpt_dir,
        "--checkpoint-every", str(checkpoint_every),
    ]
    if kills:
        _run_cli([*persisted, "--crash-after", str(kills[0])], expect_kill=True)
    else:
        recovered = _run_cli(persisted, expect_kill=False)
        return _compare(reference, recovered, kills=0)

    # Rounds 2..n: each resume recovers the previous corpse and dies at the
    # next kill point; the final resume runs to the operation target.
    resume = ["resume", ckpt_dir, *fault_args, *common]
    for k in kills[1:]:
        _run_cli([*resume, "--crash-after", str(k)], expect_kill=True)
    recovered = _run_cli(resume, expect_kill=False)
    return _compare(reference, recovered, kills=len(kills))


def _compare(
    reference: dict[str, Any], recovered: dict[str, Any], *, kills: int
) -> ChaosResult:
    ref_row = reference["constant_row"]
    rec_row = recovered["constant_row"]
    if len(ref_row) != len(rec_row):
        max_diff = float("inf")
    else:
        max_diff = max(
            (abs(a - b) for a, b in zip(ref_row, rec_row)), default=0.0
        )
    parity = (
        max_diff == 0.0
        and reference["operations"] == recovered["operations"]
        and reference["recalibrations"] == recovered["recalibrations"]
        and reference["communication_seconds"] == recovered["communication_seconds"]
    )
    return ChaosResult(
        parity=parity,
        kills=kills,
        max_abs_diff=max_diff,
        reference=reference,
        recovered=recovered,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CI entry point: run one kill-and-recover round-trip, exit 0 on parity."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.persistence.chaos",
        description="SIGKILL a session mid-run, recover it, assert P_D parity",
    )
    parser.add_argument("trace", help="trace .npz path")
    parser.add_argument("workdir", help="fresh working directory for checkpoints")
    parser.add_argument("--kill-at", default="7",
                        help="comma-separated operation indices to kill at")
    parser.add_argument("--operations", type=int, default=40)
    parser.add_argument("--time-step", type=int, default=8)
    parser.add_argument("--op", default="broadcast",
                        choices=["broadcast", "scatter", "reduce", "gather"])
    parser.add_argument("--threshold", type=float, default=1.0)
    parser.add_argument("--checkpoint-every", type=int, default=5)
    parser.add_argument("--faults", default=None)
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument("--regime", nargs="?", const="cusum", default=None,
                        metavar="DETECTOR",
                        help="run with the named regime detector "
                             "(bare flag selects cusum)")
    args = parser.parse_args(argv)

    kill_at = [int(tok) for tok in args.kill_at.split(",") if tok.strip()]
    result = kill_and_recover(
        args.trace,
        args.workdir,
        kill_at=kill_at,
        operations=args.operations,
        time_step=args.time_step,
        op=args.op,
        threshold=args.threshold,
        checkpoint_every=args.checkpoint_every,
        faults=args.faults,
        fault_seed=args.fault_seed,
        regime=args.regime,
    )
    print(
        f"chaos: {result.kills} kill(s), parity={result.parity}, "
        f"max |dP_D|={result.max_abs_diff:.3e}, "
        f"ops={result.recovered['operations']}, "
        f"recals={result.recovered['recalibrations']}"
    )
    return 0 if result.parity else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
