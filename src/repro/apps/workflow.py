"""Scientific workflows (the paper's stated future work, Sec VI).

"…evaluate our approach with more complicated workloads such as scientific
workflows [44]." A workflow is a DAG of stages; each stage computes locally
and ships its outputs to dependent stages over the cluster network. The
network-aware lever is the *stage-to-machine assignment*: treating the DAG's
data-flow volumes as a task graph and mapping it with the greedy heuristic
on the RPCA constant component puts heavy DAG edges on fast links.

The makespan model is list scheduling over the DAG: a stage starts when all
its inputs have arrived; an input arrives when the predecessor finished
computing and the transfer (α-β priced on the live snapshot) completed.
Transfers of distinct edges proceed in parallel (they use distinct link
pairs in the common case); stages assigned to the same machine run
sequentially in topological order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from .._validation import check_nonnegative, check_positive
from ..errors import ValidationError
from ..mapping.taskgraph import TaskGraph
from ..utils.seeding import spawn_rng

__all__ = ["WorkflowStage", "Workflow", "montage_like_workflow", "workflow_makespan"]

MB = 1024 * 1024


@dataclass(frozen=True, slots=True)
class WorkflowStage:
    """One DAG node: local computation plus named outputs."""

    name: str
    computation_seconds: float

    def __post_init__(self) -> None:
        check_nonnegative(self.computation_seconds, "computation_seconds")


@dataclass
class Workflow:
    """A DAG of stages with data-volume edges (bytes)."""

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def add_stage(self, stage: WorkflowStage) -> None:
        if stage.name in self.graph:
            raise ValidationError(f"duplicate stage {stage.name!r}")
        self.graph.add_node(stage.name, stage=stage)

    def add_edge(self, src: str, dst: str, volume_bytes: float) -> None:
        if src not in self.graph or dst not in self.graph:
            raise ValidationError("both stages must exist before adding an edge")
        check_positive(volume_bytes, "volume_bytes")
        self.graph.add_edge(src, dst, volume=float(volume_bytes))
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_edge(src, dst)
            raise ValidationError(f"edge {src}->{dst} would create a cycle")

    @property
    def n_stages(self) -> int:
        return self.graph.number_of_nodes()

    def stages(self) -> list[str]:
        """Stage names in a deterministic topological order."""
        return list(nx.lexicographical_topological_sort(self.graph))

    def task_graph(self) -> tuple[TaskGraph, list[str]]:
        """The DAG's volumes as a dense :class:`TaskGraph` (+ index order)."""
        order = self.stages()
        index = {name: i for i, name in enumerate(order)}
        vols = np.zeros((len(order), len(order)))
        for s, d, data in self.graph.edges(data=True):
            vols[index[s], index[d]] = data["volume"]
        return TaskGraph(volumes=vols), order


def montage_like_workflow(
    width: int = 6,
    *,
    project_seconds: float = 20.0,
    overlap_seconds: float = 5.0,
    combine_seconds: float = 60.0,
    tile_bytes: float = 50.0 * MB,
    seed: int | np.random.Generator | None = None,
) -> Workflow:
    """A Montage-shaped synthetic workflow: fan-out → pairwise → fan-in.

    *width* parallel projection stages each produce a tile; adjacent tiles
    feed overlap-fitting stages; everything funnels into a final mosaic
    stage. Volumes get mild lognormal jitter so mappings are non-trivial.
    """
    if width < 2:
        raise ValidationError("width must be >= 2")
    rng = spawn_rng(seed)
    wf = Workflow()
    wf.add_stage(WorkflowStage("stage_in", computation_seconds=1.0))
    for i in range(width):
        wf.add_stage(WorkflowStage(f"project_{i}", computation_seconds=project_seconds))
        wf.add_edge("stage_in", f"project_{i}", tile_bytes * 0.2)
    for i in range(width - 1):
        wf.add_stage(WorkflowStage(f"overlap_{i}", computation_seconds=overlap_seconds))
        for j in (i, i + 1):
            wf.add_edge(
                f"project_{j}",
                f"overlap_{i}",
                tile_bytes * float(rng.lognormal(0.0, 0.2)),
            )
    wf.add_stage(WorkflowStage("mosaic", computation_seconds=combine_seconds))
    for i in range(width - 1):
        wf.add_edge(
            f"overlap_{i}", "mosaic", tile_bytes * float(rng.lognormal(0.0, 0.2))
        )
    return wf


def workflow_makespan(
    workflow: Workflow,
    assignment: dict[str, int] | np.ndarray,
    alpha: np.ndarray,
    beta: np.ndarray,
) -> float:
    """Makespan of *workflow* under a stage-to-machine *assignment*.

    Parameters
    ----------
    workflow:
        The DAG.
    assignment:
        ``{stage_name: machine}`` or an array indexed by the workflow's
        topological stage order (as returned by :meth:`Workflow.task_graph`).
    alpha, beta:
        Live α-β matrices used to price every cross-machine transfer;
        same-machine transfers are free.
    """
    order = workflow.stages()
    if isinstance(assignment, dict):
        missing = set(order) - set(assignment)
        if missing:
            raise ValidationError(f"assignment missing stages: {sorted(missing)}")
        where = {name: int(assignment[name]) for name in order}
    else:
        arr = np.asarray(assignment, dtype=np.intp)
        if arr.size != len(order):
            raise ValidationError("assignment length must equal stage count")
        where = {name: int(arr[i]) for i, name in enumerate(order)}

    n = np.asarray(alpha).shape[0]
    for name, m in where.items():
        if not 0 <= m < n:
            raise ValidationError(f"stage {name!r} assigned outside the cluster")

    finish: dict[str, float] = {}
    machine_free = np.zeros(n)
    for name in order:
        stage: WorkflowStage = workflow.graph.nodes[name]["stage"]
        m = where[name]
        ready = 0.0
        for pred in workflow.graph.predecessors(name):
            volume = workflow.graph.edges[pred, name]["volume"]
            pm = where[pred]
            if pm == m:
                arrive = finish[pred]
            else:
                b = beta[pm, m]
                if not b > 0:
                    raise ValidationError(f"non-positive bandwidth on ({pm}, {m})")
                arrive = finish[pred] + alpha[pm, m] + volume / b
            ready = max(ready, arrive)
        start = max(ready, machine_free[m])
        finish[name] = start + stage.computation_seconds
        machine_free[m] = finish[name]
    return max(finish.values()) if finish else 0.0
