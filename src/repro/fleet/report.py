"""Result objects returned by a fleet run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "ClusterReport",
    "FleetReport",
    "FleetSweepReport",
    "SweepClusterResult",
]


@dataclass(frozen=True)
class ClusterReport:
    """Final state of one cluster after its operation budget ran out.

    ``constant_row`` is the flattened constant component ``P_D`` of the
    cluster's latest decomposition — the fleet's headline per-cluster
    output, and the quantity the throughput benchmark checks for
    bit-identity against a serial run.
    """

    name: str
    operations: int
    constant_row: np.ndarray
    norm_ne: float
    verdict: str
    recalibrations: int
    worker_batches: int

    def summary(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "operations": self.operations,
            "norm_ne": round(float(self.norm_ne), 6),
            "verdict": self.verdict,
            "recalibrations": self.recalibrations,
            "worker_batches": self.worker_batches,
        }


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one :meth:`FleetScheduler.run` call."""

    clusters: dict[str, ClusterReport]
    n_workers: int
    elapsed_s: float
    total_operations: int
    total_batches: int
    instrumentation: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_ops_s(self) -> float:
        """Fleet-wide completed operations per wall-clock second."""
        return self.total_operations / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def constant_rows(self) -> dict[str, np.ndarray]:
        return {name: rep.constant_row for name, rep in self.clusters.items()}

    def summary(self) -> dict[str, Any]:
        return {
            "n_workers": self.n_workers,
            "elapsed_s": round(self.elapsed_s, 3),
            "total_operations": self.total_operations,
            "total_batches": self.total_batches,
            "throughput_ops_s": round(self.throughput_ops_s, 2),
            "clusters": [
                self.clusters[name].summary() for name in sorted(self.clusters)
            ],
        }


@dataclass(frozen=True)
class SweepClusterResult:
    """One cluster's trailing-window decomposition from a fleet sweep.

    ``constant_row`` is the flattened constant component ``P_D`` — the
    quantity the sweep benchmark checks for bit-identity between the
    batched parallel run and the serial reference.
    """

    name: str
    constant_row: np.ndarray
    norm_ne: float
    verdict: str
    rank: int
    iterations: int
    converged: bool
    residual: float

    def summary(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "norm_ne": round(float(self.norm_ne), 6),
            "verdict": self.verdict,
            "rank": int(self.rank),
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
        }


@dataclass(frozen=True)
class FleetSweepReport:
    """Aggregate outcome of one :meth:`FleetScheduler.run_sweep` call."""

    clusters: dict[str, SweepClusterResult]
    n_workers: int
    elapsed_s: float
    total_shards: int
    batch_size: int
    batch_dtype: str
    instrumentation: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_solves_s(self) -> float:
        """Cluster windows decomposed per wall-clock second."""
        return len(self.clusters) / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def constant_rows(self) -> dict[str, np.ndarray]:
        return {name: res.constant_row for name, res in self.clusters.items()}

    def summary(self) -> dict[str, Any]:
        return {
            "n_workers": self.n_workers,
            "elapsed_s": round(self.elapsed_s, 3),
            "total_shards": self.total_shards,
            "batch_size": self.batch_size,
            "batch_dtype": self.batch_dtype,
            "throughput_solves_s": round(self.throughput_solves_s, 2),
            "clusters": [
                self.clusters[name].summary() for name in sorted(self.clusters)
            ],
        }
