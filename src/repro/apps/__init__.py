"""Real-world applications of the paper's evaluation: N-body and CG.

Both applications are *communication-profiled*: the app produces a per-step
profile (which collectives run, with what payload, plus local computation
time), and a shared runner executes the profile against a strategy's trees
priced on live trace snapshots. The numerics are real — a vectorized O(n²)
gravity integrator and an actual conjugate-gradient solve on a sparse SPD
system (iteration counts come from genuinely running CG) — while the
distributed execution is simulated, matching how the paper replays traces.
"""

from .breakdown import TimeBreakdown, StepProfile, AppRunner
from .nbody import NBodyConfig, NBodySimulation, nbody_profile
from .cg import CGConfig, build_spd_system, run_cg_numerics, cg_profile
from .workflow import (
    Workflow,
    WorkflowStage,
    montage_like_workflow,
    workflow_makespan,
)

__all__ = [
    "TimeBreakdown",
    "StepProfile",
    "AppRunner",
    "NBodyConfig",
    "NBodySimulation",
    "nbody_profile",
    "CGConfig",
    "build_spd_system",
    "run_cg_numerics",
    "cg_profile",
    "Workflow",
    "WorkflowStage",
    "montage_like_workflow",
    "workflow_makespan",
]
