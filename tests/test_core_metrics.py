"""Unit tests for Norm(N_E) and related metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    StabilityReport,
    l1_norm,
    pseudo_l0_norm,
    relative_difference,
    relative_error_norm,
    stability_report,
)
from repro.errors import ValidationError


class TestPseudoL0:
    def test_zero_array(self):
        assert pseudo_l0_norm(np.zeros((3, 3))) == 0

    def test_counts_above_threshold(self):
        x = np.array([1.0, 0.0005, 0.5, 0.0])
        assert pseudo_l0_norm(x, rel_tol=1e-3) == 2

    def test_all_significant(self):
        assert pseudo_l0_norm(np.ones(7)) == 7

    def test_rel_tol_validated(self):
        with pytest.raises(ValidationError):
            pseudo_l0_norm(np.ones(3), rel_tol=0.0)

    def test_scale_invariance(self):
        x = np.array([5.0, 0.001, 2.0])
        assert pseudo_l0_norm(x) == pseudo_l0_norm(x * 1e6)


class TestRelativeErrorNorm:
    def test_zero_error(self):
        a = np.ones((4, 4))
        assert relative_error_norm(np.zeros_like(a), a) == 0.0

    def test_equal_error(self):
        a = np.ones((4, 4))
        assert relative_error_norm(a, a) == pytest.approx(1.0)

    def test_l1_ratio(self):
        a = np.full((2, 2), 2.0)
        e = np.full((2, 2), 0.5)
        assert relative_error_norm(e, a, kind="l1") == pytest.approx(0.25)

    def test_l0_kind(self):
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        e = np.array([[1.0, 0.0], [0.0, 0.0]])
        assert relative_error_norm(e, a, kind="l0") == pytest.approx(0.25)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            relative_error_norm(np.ones((2, 2)), np.ones((3, 3)))

    def test_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            relative_error_norm(np.ones((2, 2)), np.ones((2, 2)), kind="l7")

    def test_zero_data(self):
        assert relative_error_norm(np.zeros((2, 2)), np.zeros((2, 2))) == 0.0


class TestRelativeDifference:
    def test_identical(self):
        x = np.array([1.0, 2.0, 3.0])
        assert relative_difference(x, x) == 0.0

    def test_known_value(self):
        assert relative_difference(np.array([1.5]), np.array([1.0])) == pytest.approx(0.5)

    def test_symmetric_in_shape_only(self):
        # The denominator is the oracle, so the function is not symmetric.
        p, o = np.array([2.0]), np.array([1.0])
        assert relative_difference(p, o) != relative_difference(o, p)

    def test_zero_oracle(self):
        assert relative_difference(np.zeros(3), np.zeros(3)) == 0.0
        assert relative_difference(np.ones(3), np.zeros(3)) == np.inf

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_difference(np.ones(3), np.ones(4))


class TestStabilityReport:
    def test_verdict_stable(self):
        a = np.full((3, 3), 10.0)
        e = np.full((3, 3), 0.5)  # ratio 0.05
        rep = stability_report(e, a, rank=1)
        assert rep.verdict == "stable"
        assert rep.norm_ne == pytest.approx(0.05)

    def test_verdict_moderate(self):
        a = np.full((3, 3), 10.0)
        rep = stability_report(np.full((3, 3), 1.5), a, rank=1)
        assert rep.verdict == "moderately-stable"

    def test_verdict_dynamic(self):
        a = np.full((3, 3), 10.0)
        rep = stability_report(np.full((3, 3), 3.0), a, rank=1)
        assert rep.verdict == "dynamic"

    def test_verdict_too_dynamic(self):
        a = np.full((3, 3), 10.0)
        rep = stability_report(np.full((3, 3), 6.0), a, rank=1)
        assert rep.verdict == "too-dynamic"

    def test_thresholds_documented(self):
        assert StabilityReport.STABLE_BELOW == 0.1
        assert StabilityReport.MODERATE_BELOW == 0.2
        assert StabilityReport.USEFUL_BELOW == 0.5

    def test_l1_norm(self):
        assert l1_norm(np.array([-1.0, 2.0, -3.0])) == 6.0
