"""Calibration trace container and replay.

A :class:`CalibrationTrace` stores the raw (α, β) measurements of every
ordered pair at every snapshot — the artifact the paper's one-week EC2
calibration campaign produced and that all detailed studies replay
(Sec V-D3). Replay means: for a given message size, convert each snapshot to
a weight matrix under the α-β model and evaluate operations against the
*measured* matrix of the moment while strategies only see calibration
prefixes or derived estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_nonnegative
from ..core.matrices import PerformanceMatrix, TPMatrix
from ..errors import ValidationError
from ..netmodel.alphabeta import transfer_time_matrix

__all__ = ["CalibrationTrace"]


@dataclass(frozen=True)
class CalibrationTrace:
    """Time series of all-link (α, β) measurements for one virtual cluster.

    Attributes
    ----------
    alpha:
        ``(T, N, N)`` latencies in seconds; diagonal 0.
    beta:
        ``(T, N, N)`` bandwidths in bytes/second; diagonal +inf.
    timestamps:
        ``(T,)`` non-decreasing measurement times in seconds.
    mask:
        Optional ``(T, N, N)`` boolean observation mask (``True`` =
        measured). ``None`` — the default and historical behavior — means
        every entry was observed. Masked-out entries still hold *some*
        value in ``alpha``/``beta`` (ground truth for injected faults,
        benign placeholders for imported partial logs); the mask is the
        source of truth for what a decomposition may trust. The diagonal is
        always considered observed.
    """

    alpha: np.ndarray
    beta: np.ndarray
    timestamps: np.ndarray
    mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        a = np.asarray(self.alpha, dtype=np.float64)
        b = np.asarray(self.beta, dtype=np.float64)
        ts = np.asarray(self.timestamps, dtype=np.float64).ravel()
        if a.ndim != 3 or a.shape[1] != a.shape[2]:
            raise ValidationError(f"alpha must be (T, N, N), got {a.shape}")
        if b.shape != a.shape:
            raise ValidationError("alpha/beta shape mismatch")
        if ts.size != a.shape[0]:
            raise ValidationError("timestamps length must match T")
        if np.any(np.diff(ts) < 0):
            raise ValidationError("timestamps must be non-decreasing")
        a = np.ascontiguousarray(a)
        b = np.ascontiguousarray(b)
        ts = np.ascontiguousarray(ts)
        mask = self.mask
        if mask is not None:
            m = np.asarray(mask)
            if m.dtype != np.bool_:
                raise ValidationError("mask must be a boolean array")
            if m.shape != a.shape:
                raise ValidationError(
                    f"mask shape {m.shape} does not match trace shape {a.shape}"
                )
            if m.all():
                mask = None  # fully observed — normalize to the unmasked form
            else:
                mask = np.ascontiguousarray(m).copy()
                for k in range(mask.shape[0]):
                    np.fill_diagonal(mask[k], True)
                if mask.all():
                    # Only self-pairs were unobserved; forcing the diagonal
                    # made the mask trivial, so normalize like the m.all()
                    # case — otherwise an all-True mask survives here but
                    # collapses to None after one persistence round-trip.
                    mask = None
                else:
                    mask.setflags(write=False)
        for arr in (a, b, ts):
            arr.setflags(write=False)
        object.__setattr__(self, "alpha", a)
        object.__setattr__(self, "beta", b)
        object.__setattr__(self, "timestamps", ts)
        object.__setattr__(self, "mask", mask)

    @property
    def n_snapshots(self) -> int:
        return self.alpha.shape[0]

    @property
    def n_machines(self) -> int:
        return self.alpha.shape[1]

    @property
    def observed_fraction(self) -> float:
        """Fraction of off-diagonal entries that were observed (1.0 unmasked)."""
        if self.mask is None:
            return 1.0
        off = ~np.eye(self.n_machines, dtype=bool)
        total = self.n_snapshots * int(off.sum())
        return float(self.mask[:, off].sum()) / total if total else 1.0

    def weights_at(self, k: int, nbytes: float) -> PerformanceMatrix:
        """Snapshot *k* as a weight matrix for a message of *nbytes*."""
        if not 0 <= k < self.n_snapshots:
            raise ValidationError(f"snapshot index {k} out of range")
        check_nonnegative(nbytes, "nbytes")
        w = transfer_time_matrix(self.alpha[k], self.beta[k], nbytes)
        return PerformanceMatrix(weights=w, timestamp=float(self.timestamps[k]))

    def tp_matrix(
        self, nbytes: float, *, start: int = 0, count: int | None = None
    ) -> TPMatrix:
        """Build the TP-matrix for snapshots ``[start, start+count)``.

        *count* defaults to "through the end of the trace". The conversion is
        fully vectorized across snapshots: with T rows and N machines it is a
        single ``(T, N, N)`` broadcast, not a per-row loop.
        """
        check_nonnegative(nbytes, "nbytes")
        t = self.n_snapshots
        if not 0 <= start < t:
            raise ValidationError(f"start {start} out of range")
        stop = t if count is None else start + int(count)
        if not start < stop <= t:
            raise ValidationError(f"count {count} out of range")
        a = self.alpha[start:stop]
        b = self.beta[start:stop]
        n = self.n_machines
        off = ~np.eye(n, dtype=bool)
        w = np.zeros_like(a)
        w[:, off] = a[:, off] + nbytes / b[:, off]
        mask = None
        if self.mask is not None:
            mask = self.mask[start:stop].reshape(stop - start, n * n).copy()
        return TPMatrix(
            data=w.reshape(stop - start, n * n),
            n_machines=n,
            timestamps=self.timestamps[start:stop].copy(),
            mask=mask,
        )

    def restrict(self, machines: np.ndarray | list[int]) -> "CalibrationTrace":
        """Sub-trace over a subset of machines (virtual sub-cluster)."""
        idx = np.asarray(machines, dtype=np.intp)
        if idx.size == 0:
            raise ValidationError("machines must be non-empty")
        if len(set(idx.tolist())) != idx.size:
            raise ValidationError("machines must be distinct")
        if idx.min() < 0 or idx.max() >= self.n_machines:
            raise ValidationError("machine index out of range")
        sel = np.ix_(np.arange(self.n_snapshots), idx, idx)
        return CalibrationTrace(
            alpha=self.alpha[sel].copy(),
            beta=self.beta[sel].copy(),
            timestamps=self.timestamps.copy(),
            mask=None if self.mask is None else self.mask[sel].copy(),
        )

    def window(self, start: int, stop: int) -> "CalibrationTrace":
        """Sub-trace over snapshots ``[start, stop)``."""
        if not 0 <= start < stop <= self.n_snapshots:
            raise ValidationError(f"invalid window [{start}, {stop})")
        return CalibrationTrace(
            alpha=self.alpha[start:stop].copy(),
            beta=self.beta[start:stop].copy(),
            timestamps=self.timestamps[start:stop].copy(),
            mask=None if self.mask is None else self.mask[start:stop].copy(),
        )

    def with_multiplicative_noise(
        self, factors_beta: np.ndarray, factors_alpha: np.ndarray | None = None
    ) -> "CalibrationTrace":
        """New trace with per-entry multiplicative factors applied.

        ``factors_beta`` divides bandwidth (factor > 1 slows a link);
        ``factors_alpha`` (default: same factors) multiplies latency.
        Diagonals are re-normalized afterwards.
        """
        fb = np.asarray(factors_beta, dtype=np.float64)
        if fb.shape != self.alpha.shape:
            raise ValidationError("factor array must match trace shape")
        if np.any(fb <= 0):
            raise ValidationError("factors must be positive")
        fa = fb if factors_alpha is None else np.asarray(factors_alpha, dtype=np.float64)
        if fa.shape != self.alpha.shape:
            raise ValidationError("factor array must match trace shape")
        alpha = self.alpha * fa
        beta = self.beta / fb
        for k in range(self.n_snapshots):
            np.fill_diagonal(alpha[k], 0.0)
            np.fill_diagonal(beta[k], np.inf)
        return CalibrationTrace(
            alpha=alpha,
            beta=beta,
            timestamps=self.timestamps.copy(),
            mask=None if self.mask is None else self.mask.copy(),
        )
