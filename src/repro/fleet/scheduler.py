"""Fleet-scale parallel decomposition scheduling.

One :class:`FleetScheduler` drives many independent Algorithm-1 sessions —
one per virtual cluster — concurrently across a pool of worker processes:

* Each cluster's trace is copied into a shared-memory block **once**
  (:class:`~repro.fleet.shm.SharedTraceBlock`); workers map views. The only
  per-batch IPC is the operation specs going out and the session capsule
  coming back.
* Work is shipped in batches of ``batch_size`` operations, at most
  ``n_workers + queue_depth`` in flight fleet-wide (backpressure, not
  unbounded buffering). Each worker reads from its **own** task queue —
  the scheduler assigns to the least-loaded live worker — so a worker
  killed mid-``get()`` cannot wedge its siblings on a shared queue lock.
* At most one batch per cluster is in flight at a time (the capsule is the
  cluster's single warm-state token), and completed clusters re-enter the
  ready queue at the **back**. Together these give round-robin fairness: a
  straggler cluster — say one whose network is too dynamic and re-solves
  every window — occupies at most one worker while the rest of the fleet
  flows around it.
* Results are deterministic by construction: each cluster's operations run
  sequentially in order, and the capsule round-trip is lossless, so per-
  cluster ``P_D`` is bit-identical to a serial run regardless of worker
  count or which worker served which batch. :meth:`FleetScheduler.run_serial`
  is that reference run (also the throughput baseline).

Self-healing (see ``docs/fleet_failures.md``): the scheduler supervises its
workers. A worker that dies mid-task is respawned (bounded by
``max_worker_restarts``) and the lost task is requeued from the cluster's
last capsule — deterministic replay makes the retried task bit-identical to
a never-failed one, so a surviving report matches a failure-free run
exactly. Worker-side exceptions are retried per task with capped attempts
and exponential backoff; ``task_timeout_s`` puts a deadline on each attempt
(the stuck worker is killed and replaced); and ``on_error="degrade"``
quarantines a cluster that exhausts its retries into the report with a
per-cluster ``status`` instead of aborting the whole run.
"""

from __future__ import annotations

import heapq
import itertools
import json
import multiprocessing as mp
import os
import queue as queue_mod
import time
import traceback
from multiprocessing import resource_tracker
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..core.elementwise import check_ew_svd_compatible, ensure_ew_backend_available
from ..errors import FleetError, ValidationError
from ..observability import Instrumentation, instrumented
from ..persistence import CheckpointStore
from ..runtime.session import OperationSpec, SessionCapsule, TraceSession
from .config import ClusterSpec, FleetConfig
from .report import ClusterReport, FleetReport, FleetSweepReport, SweepClusterResult
from .shm import SharedStackBlock, SharedTraceBlock
from .worker import (
    BatchTask,
    SweepTask,
    TaskStarted,
    solve_shard,
    worker_main,
)

__all__ = ["FleetScheduler", "SweepShard"]

# A timed-out or lost task's retry backoff never exceeds this.
_MAX_BACKOFF_S = 30.0
# Supervision cadence: the longest a dead worker or blown deadline can go
# unnoticed, whether the result queue is quiet or busy.
_POLL_S = 0.1


@dataclass
class _ClusterState:
    """Scheduler-side bookkeeping for one cluster."""

    spec: ClusterSpec
    remaining: int
    capsule: SessionCapsule | None = None
    inflight: bool = False
    batches: int = 0
    store: CheckpointStore | None = None
    attempt: int = -1  # id of the current (most recent) dispatched attempt
    failures: int = 0  # failed attempts of the current batch; reset on success
    retries: int = 0  # total task retries over the run
    finished: bool = False
    status: str = "ok"
    error: str | None = None


@dataclass
class _ShardState:
    """Scheduler-side bookkeeping for one batched-sweep shard."""

    shard: "SweepShard"
    block: SharedStackBlock | None = None
    attempt: int = -1
    failures: int = 0
    retries: int = 0
    finished: bool = False


@dataclass
class _Inflight:
    """One dispatched-but-unfinished attempt.

    ``key`` is the cluster name (session runs) or shard index (sweeps);
    ``worker_pid`` is filled in when the worker's :class:`TaskStarted`
    ack arrives (diagnostics — task→worker attribution itself lives in
    the pool's assignment map, which is authoritative even when a worker
    dies before its ack flushes).
    """

    key: object
    dispatched_at: float
    worker_pid: int | None = None


@dataclass(frozen=True)
class SweepShard:
    """One unit of batched sweep work: B same-shape cluster windows.

    Produced by :meth:`FleetScheduler.plan_sweep`; ``tps[i]`` is cluster
    ``names[i]``'s trailing calibration window.
    """

    index: int
    names: tuple[str, ...]
    tps: tuple[object, ...]  # TPMatrix per cluster, shape-homogeneous


class _Worker:
    """One worker process plus its private task queue and assigned attempts."""

    __slots__ = ("proc", "queue", "attempts")

    def __init__(self, proc: mp.process.BaseProcess, queue) -> None:
        self.proc = proc
        self.queue = queue
        self.attempts: set[int] = set()


class _WorkerPool:
    """A supervised pool of fleet worker processes.

    Each worker reads from its **own** task queue (the scheduler is the
    sole writer, the worker the sole reader). That topology is what makes
    SIGKILL survivable: a worker killed while blocked in ``get()`` dies
    holding only its private queue's reader lock, so the corpse cannot
    wedge any sibling — the failure mode a single shared task queue has.
    It also makes task→worker attribution exact: the pool knows every
    attempt a dead worker held, with no ack protocol in the loop.

    The scheduler drives supervision by calling :meth:`poll` periodically
    and consuming buffered death records with :meth:`take_deaths`. A dead
    worker is replaced while the fleet-wide restart budget lasts
    (deliberate kills — blown deadlines — are always replaced and never
    charged against the budget); past the budget the pool just shrinks.
    """

    def __init__(self, ctx, result_queue, *, max_restarts: int, sink: Instrumentation) -> None:
        self._ctx = ctx
        self._result_queue = result_queue
        self._max_restarts = int(max_restarts)
        self._sink = sink
        self.workers: list[_Worker] = []
        self.restarts = 0
        self._spawned = 0
        self._expected_kills: set[int] = set()
        self._by_attempt: dict[int, _Worker] = {}
        self._deaths: list[tuple[int | None, int | None, bool, tuple[int, ...]]] = []

    def start(self, n: int) -> None:
        for _ in range(n):
            self._spawn()

    def _spawn(self) -> None:
        task_queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=worker_main,
            args=(task_queue, self._result_queue),
            daemon=True,
            name=f"repro-fleet-worker-{self._spawned}",
        )
        self._spawned += 1
        proc.start()
        self.workers.append(_Worker(proc, task_queue))

    @property
    def n_alive(self) -> int:
        return sum(1 for w in self.workers if w.proc.is_alive())

    def assign(self, attempt: int, task) -> None:
        """Dispatch ``task`` to the live worker with the lightest load."""
        live = [w for w in self.workers if w.proc.is_alive()]
        if not live:
            self.poll()
            live = [w for w in self.workers if w.proc.is_alive()]
            if not live:
                raise FleetError(
                    "no live fleet workers left to dispatch to (restart "
                    f"budget {self._max_restarts} exhausted)"
                )
        worker = min(live, key=lambda w: (len(w.attempts), w.proc.pid))
        worker.attempts.add(attempt)
        self._by_attempt[attempt] = worker
        worker.queue.put(task)

    def complete(self, attempt: int) -> None:
        """Forget an attempt whose result arrived (accepted or stale)."""
        worker = self._by_attempt.pop(attempt, None)
        if worker is not None:
            worker.attempts.discard(attempt)

    def poll(self) -> None:
        """Reap dead workers, respawn within policy, buffer death records.

        Each record carries the exact attempts the corpse held; its
        orphaned private queue is dropped with it (nothing else reads it).
        """
        dead = [w for w in self.workers if not w.proc.is_alive()]
        for worker in dead:
            self.workers.remove(worker)
            pid = worker.proc.pid
            expected = pid in self._expected_kills
            self._expected_kills.discard(pid)
            lost = tuple(sorted(worker.attempts))
            for attempt in worker.attempts:
                self._by_attempt.pop(attempt, None)
            worker.attempts.clear()
            worker.queue.close()
            self._deaths.append((pid, worker.proc.exitcode, expected, lost))
            if expected or self.restarts < self._max_restarts:
                if not expected:
                    self.restarts += 1
                self._sink.count("fleet.worker.restarts")
                self._spawn()

    def take_deaths(self) -> list[tuple[int | None, int | None, bool, tuple[int, ...]]]:
        deaths, self._deaths = self._deaths, []
        return deaths

    def kill_attempt_owner(self, attempt: int) -> None:
        """SIGKILL the worker holding ``attempt`` (deadline enforcement)."""
        worker = self._by_attempt.get(attempt)
        if worker is not None and worker.proc.is_alive():
            self._expected_kills.add(worker.proc.pid)
            worker.proc.kill()

    def stop(self) -> None:
        """Graceful teardown: one sentinel per worker's own queue, then join."""
        for worker in self.workers:
            worker.queue.put(None)
        for worker in self.workers:
            worker.proc.join(timeout=30.0)

    def shutdown(self) -> None:
        """Escalating teardown: ``terminate -> join(5) -> kill -> join``.

        Safe to call after :meth:`stop` (already-exited workers are
        no-ops); guarantees no worker outlives the run, even one that
        ignores SIGTERM.
        """
        for worker in self.workers:
            if worker.proc.is_alive():
                worker.proc.terminate()
        for worker in self.workers:
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join()


class FleetScheduler:
    """Run many clusters' calibration/maintenance loops across a process pool.

    Parameters
    ----------
    clusters:
        The fleet. Cluster names must be unique.
    config:
        Fleet-wide settings; defaults to ``FleetConfig()``.
    instrumentation:
        Fleet-level sink. Per-cluster engine counters, timers and solve
        spans (accumulated worker-side, carried home inside each capsule)
        are merged into it at the end of :meth:`run`, alongside the
        scheduler's own ``fleet.*`` counters — including the self-healing
        set: ``fleet.worker.restarts``, ``fleet.task.retries``,
        ``fleet.task.timeouts``, ``fleet.cluster.quarantined``.
    """

    def __init__(
        self,
        clusters: list[ClusterSpec] | tuple[ClusterSpec, ...],
        config: FleetConfig | None = None,
        *,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        clusters = tuple(clusters)
        if not clusters:
            raise ValidationError("fleet needs at least one cluster")
        names = [c.name for c in clusters]
        if len(set(names)) != len(names):
            raise ValidationError("cluster names must be unique")
        self.clusters = clusters
        self.config = config if config is not None else FleetConfig()
        self.instrumentation = (
            instrumentation if instrumentation is not None else Instrumentation("fleet")
        )
        self._attempt_seq = itertools.count(1)
        self._defer_seq = itertools.count()

    # -- planning ------------------------------------------------------

    def _session_kwargs(self) -> dict[str, object]:
        cfg = self.config
        # Fail in the scheduler, not inside a worker's TraceSession: an
        # unusable elementwise backend (jit without numba) or the exact×ew
        # conflict would otherwise surface as per-cluster retry storms.
        ensure_ew_backend_available(cfg.elementwise_backend)
        check_ew_svd_compatible(cfg.svd_backend, cfg.elementwise_backend)
        return {
            "nbytes": cfg.nbytes,
            "time_step": cfg.window,
            "threshold": cfg.threshold,
            "consecutive": cfg.consecutive,
            "solver": cfg.solver,
            "warm_start": cfg.warm_start,
            "svd_backend": cfg.svd_backend,
            "elementwise_backend": cfg.elementwise_backend,
            "mode": cfg.mode,
            "stream_tolerance": cfg.stream_tolerance,
            "stream_refresh_every": cfg.stream_refresh_every,
            "regime": cfg.regime_detector,
            "regime_params": cfg.regime_params,
        }

    def _operations_for(self, spec: ClusterSpec) -> int:
        return int(
            spec.operations if spec.operations is not None else self.config.operations
        )

    def _next_specs(self, state: _ClusterState) -> tuple[OperationSpec, ...]:
        n = min(int(self.config.batch_size), state.remaining)
        return tuple(OperationSpec(op=self.config.op) for _ in range(n))

    def _make_store(self, name: str) -> CheckpointStore | None:
        root = self.config.checkpoint_root
        if root is None:
            return None
        directory = os.path.join(os.fspath(root), name)
        os.makedirs(directory, exist_ok=True)
        return CheckpointStore(directory, keep=self.config.keep_checkpoints)

    def _write_manifest(self) -> None:
        root = self.config.checkpoint_root
        if root is None:
            return
        os.makedirs(root, exist_ok=True)
        manifest = {
            "clusters": sorted(c.name for c in self.clusters),
            "n_workers": self.config.n_workers,
            "window": self.config.window,
            "threshold": self.config.threshold,
            "solver": self.config.solver,
            "svd_backend": self.config.svd_backend,
            "elementwise_backend": self.config.elementwise_backend,
            "mode": self.config.mode,
            "op": self.config.op,
            "on_error": self.config.on_error,
            "regime_detector": self.config.regime_detector,
        }
        with open(os.path.join(root, "fleet.json"), "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)

    # -- serial reference ---------------------------------------------

    def run_serial(self) -> FleetReport:
        """Run the identical plan in-process, one cluster after another.

        The determinism oracle and the throughput baseline: per-cluster
        results must (and do) match :meth:`run` bit for bit. Under
        ``on_error="degrade"`` a cluster whose session raises is
        quarantined (without retries — the error is deterministic
        in-process) and the rest of the fleet still reports.
        """
        t0 = time.perf_counter()
        cfg = self.config
        kwargs = self._session_kwargs()
        reports: dict[str, ClusterReport] = {}
        total_ops = 0
        total_batches = 0
        for spec in self.clusters:
            ops = self._operations_for(spec)
            try:
                session = TraceSession(spec.trace, **kwargs)
                op_spec = OperationSpec(op=self.config.op)
                batches = 0
                for start in range(0, ops, int(self.config.batch_size)):
                    for _ in range(min(int(self.config.batch_size), ops - start)):
                        session.step(op_spec)
                    batches += 1
            except Exception:
                if cfg.on_error != "degrade":
                    raise
                self.instrumentation.count("fleet.cluster.quarantined")
                reports[spec.name] = self._unavailable_report(
                    spec.name, status="quarantined", error=traceback.format_exc()
                )
                continue
            session.instrumentation.count("fleet.worker.batches", batches)
            capsule = session.capture_capsule()
            self.instrumentation.merge(capsule.meta["instrumentation"])
            state = _ClusterState(spec=spec, remaining=0, capsule=capsule,
                                  batches=batches)
            reports[spec.name] = self._cluster_report(spec.name, state)
            total_ops += ops
            total_batches += batches
        elapsed = time.perf_counter() - t0
        self._account(n_workers=1, elapsed=elapsed, ops=total_ops, batches=total_batches)
        return FleetReport(
            clusters=reports,
            n_workers=1,
            elapsed_s=elapsed,
            total_operations=total_ops,
            total_batches=total_batches,
            instrumentation=self.instrumentation.state_dict(),
        )

    # -- parallel run --------------------------------------------------

    def run(self) -> FleetReport:
        """Run the fleet across ``n_workers`` processes; returns the report."""
        cfg = self.config
        t0 = time.perf_counter()
        self._write_manifest()
        states = {
            spec.name: _ClusterState(
                spec=spec,
                remaining=self._operations_for(spec),
                store=self._make_store(spec.name),
            )
            for spec in self.clusters
        }
        n_workers = min(int(cfg.n_workers), len(self.clusters))
        ctx = mp.get_context()
        result_queue = ctx.Queue()
        blocks: dict[str, SharedTraceBlock] = {}
        pool = _WorkerPool(
            ctx, result_queue,
            max_restarts=cfg.max_worker_restarts, sink=self.instrumentation,
        )
        try:
            # The shared-memory resource tracker must exist before the first
            # fork, or each forked worker spawns its own tracker and "cleans
            # up" segments the scheduler still owns.
            resource_tracker.ensure_running()
            for spec in self.clusters:
                blocks[spec.name] = SharedTraceBlock.create(spec.trace)
            pool.start(n_workers)
            total_batches = self._drive(states, blocks, result_queue, pool)
            pool.stop()
        finally:
            pool.shutdown()
            for block in blocks.values():
                block.unlink()

        reports: dict[str, ClusterReport] = {}
        total_ops = 0
        for name, state in states.items():
            if state.capsule is not None:
                self.instrumentation.merge(state.capsule.meta["instrumentation"])
            reports[name] = self._cluster_report(name, state)
            total_ops += reports[name].operations
        elapsed = time.perf_counter() - t0
        self._account(
            n_workers=n_workers, elapsed=elapsed, ops=total_ops, batches=total_batches
        )
        return FleetReport(
            clusters=reports,
            n_workers=n_workers,
            elapsed_s=elapsed,
            total_operations=total_ops,
            total_batches=total_batches,
            instrumentation=self.instrumentation.state_dict(),
        )

    def _drive(
        self,
        states: dict[str, _ClusterState],
        blocks: dict[str, SharedTraceBlock],
        result_queue,
        pool: _WorkerPool,
    ) -> int:
        """The supervised scheduler loop: dispatch, drain, heal.

        ``ready`` is a FIFO deque — clusters rejoin at the back after each
        completed batch, so with one batch in flight per cluster the fleet
        round-robins and no cluster can starve another. ``deferred`` holds
        clusters sleeping out a retry backoff; ``inflight`` maps attempt
        ids to dispatched tasks and is the source of truth for what is
        outstanding. Worker deaths requeue the lost attempts, deadline
        violations kill-and-replace the stuck worker, and results from
        superseded attempts are discarded by attempt id.
        """
        cfg = self.config
        kwargs = self._session_kwargs()
        ready: deque[str] = deque(sorted(states))
        deferred: list[tuple[float, int, str]] = []
        inflight: dict[int, _Inflight] = {}
        done = 0
        total_batches = 0

        def dispatch(name: str) -> None:
            state = states[name]
            attempt = next(self._attempt_seq)
            state.attempt = attempt
            state.inflight = True
            task = BatchTask(
                cluster=name,
                descriptor=blocks[name].descriptor,
                specs=self._next_specs(state),
                capsule=state.capsule,
                session_kwargs={} if state.capsule is not None else dict(kwargs),
                attempt=attempt,
            )
            inflight[attempt] = _Inflight(key=name, dispatched_at=time.monotonic())
            pool.assign(attempt, task)

        def fail(name: str, error_text: str, *, kind: str) -> None:
            nonlocal done
            state = states[name]
            state.inflight = False
            state.failures += 1
            if state.failures <= cfg.max_task_retries:
                state.retries += 1
                self.instrumentation.count("fleet.task.retries")
                delay = min(
                    float(cfg.retry_backoff_s) * (2 ** (state.failures - 1)),
                    _MAX_BACKOFF_S,
                )
                heapq.heappush(
                    deferred,
                    (time.monotonic() + delay, next(self._defer_seq), name),
                )
                return
            if cfg.on_error == "degrade":
                state.finished = True
                state.status = "quarantined" if kind == "error" else "failed"
                state.error = error_text
                counter = (
                    "fleet.cluster.quarantined" if kind == "error"
                    else "fleet.cluster.failed"
                )
                self.instrumentation.count(counter)
                done += 1
                return
            raise FleetError(
                f"cluster {name!r} failed after {state.failures} attempt(s) "
                f"({kind})",
                cluster=name,
                worker_traceback=error_text,
            )

        def lost(entry: _Inflight) -> None:
            # A worker died holding this attempt: requeue from the cluster's
            # last capsule. Deterministic replay makes the rerun
            # bit-identical, so this is not charged as a task retry.
            dispatch(str(entry.key))

        def timed_out(entry: _Inflight) -> None:
            name = str(entry.key)
            fail(
                name,
                f"task deadline exceeded ({self.config.task_timeout_s}s) on "
                f"attempt {states[name].failures + 1}",
                kind="timeout",
            )

        last_tick = time.monotonic()
        while done < len(states):
            now = time.monotonic()
            if now - last_tick >= _POLL_S:
                # Supervision runs on a cadence, not only when the queue is
                # quiet: a steady result stream must not starve death
                # detection or deadline enforcement.
                self._supervise(
                    pool, inflight,
                    on_lost=lost, on_timeout=timed_out,
                    describe=lambda key: str(key),
                )
                last_tick = now
            while deferred and deferred[0][0] <= now:
                ready.append(heapq.heappop(deferred)[2])
            while ready and len(inflight) < cfg.max_inflight:
                dispatch(ready.popleft())

            timeout = _POLL_S
            if not inflight and deferred:
                timeout = min(_POLL_S, max(0.01, deferred[0][0] - now))
            try:
                msg = result_queue.get(timeout=timeout)
            except queue_mod.Empty:
                self._supervise(
                    pool, inflight,
                    on_lost=lost, on_timeout=timed_out,
                    describe=lambda key: str(key),
                )
                last_tick = time.monotonic()
                continue

            if isinstance(msg, TaskStarted):
                entry = inflight.get(msg.attempt)
                if entry is not None:
                    entry.worker_pid = msg.worker_pid
                continue

            result = msg
            pool.complete(result.attempt)
            state = states[result.cluster]
            if (
                result.attempt not in inflight
                or state.attempt != result.attempt
                or state.finished
            ):
                # Superseded attempt (requeued after a death or deadline):
                # the current attempt's result is the one that counts.
                self.instrumentation.count("fleet.task.stale_results")
                continue
            del inflight[result.attempt]
            state.inflight = False

            if result.error is not None:
                fail(result.cluster, result.error, kind="error")
                continue

            state.failures = 0
            state.capsule = result.capsule
            state.remaining -= result.operations
            state.batches += 1
            total_batches += 1
            if state.store is not None:
                state.store.save(result.capsule.arrays, result.capsule.meta)
            if state.remaining > 0:
                ready.append(result.cluster)
            else:
                state.finished = True
                done += 1
        return total_batches

    # -- supervision ---------------------------------------------------

    def _supervise(
        self,
        pool: _WorkerPool,
        inflight: dict[int, _Inflight],
        *,
        on_lost,
        on_timeout,
        describe,
    ) -> None:
        """One supervision tick: reap deaths, requeue lost work, enforce deadlines.

        Runs whenever the result queue is quiet. ``on_lost(entry)`` must
        redispatch the attempt (not charged as a retry); ``on_timeout(entry)``
        must route it through the retry/give-up path. ``describe(key)``
        renders an in-flight key (cluster name / shard index) for the
        no-workers-left :class:`FleetError`.
        """
        pool.poll()
        deaths = pool.take_deaths()
        lost: set[int] = set()
        for _pid, _code, _expected, attempts in deaths:
            lost.update(a for a in attempts if a in inflight)
        if pool.n_alive == 0:
            # _supervise only runs while work remains, so an empty pool is
            # fatal whether or not this tick saw the deaths itself.
            codes = sorted({code for _pid, code, _exp, _a in deaths}, key=repr)
            stuck = sorted(describe(e.key) for e in inflight.values())
            raise FleetError(
                f"fleet worker(s) exited (exit codes {codes or 'seen earlier'}) "
                f"with no live workers left and the restart budget "
                f"({self.config.max_worker_restarts}) exhausted; stuck: "
                f"{', '.join(stuck) or 'none in flight'}"
            )
        for attempt in sorted(lost):
            on_lost(inflight.pop(attempt))
        timeout_s = self.config.task_timeout_s
        if timeout_s is not None:
            now = time.monotonic()
            expired = [
                attempt
                for attempt, entry in inflight.items()
                if now - entry.dispatched_at > float(timeout_s)
            ]
            for attempt in expired:
                entry = inflight.pop(attempt)
                self.instrumentation.count("fleet.task.timeouts")
                # The assigned worker is presumed stuck on this attempt:
                # kill it (replaced at the next poll, not charged to the
                # budget) and forget the assignment.
                pool.kill_attempt_owner(attempt)
                pool.complete(attempt)
                on_timeout(entry)

    # -- reporting -----------------------------------------------------

    def _cluster_report(self, name: str, state: _ClusterState) -> ClusterReport:
        capsule = state.capsule
        if capsule is None:
            return self._unavailable_report(
                name, status=state.status, error=state.error,
                retries=state.retries, batches=state.batches,
            )
        return ClusterReport(
            name=name,
            operations=capsule.operations,
            constant_row=capsule.constant_row,
            norm_ne=capsule.norm_ne,
            verdict=capsule.verdict,
            recalibrations=int(capsule.meta["stats"]["recalibrations"]),
            worker_batches=state.batches,
            status=state.status,
            error=state.error,
            retries=state.retries,
            regime_shifts=int(capsule.meta["stats"]["regime_shifts"]),
            regime_spikes=int(capsule.meta["stats"]["regime_spikes"]),
            stream_updates=int(capsule.meta["stats"].get("stream_updates", 0)),
            stream_fallbacks=int(capsule.meta["stats"].get("stream_fallbacks", 0)),
        )

    @staticmethod
    def _unavailable_report(
        name: str,
        *,
        status: str,
        error: str | None,
        retries: int = 0,
        batches: int = 0,
    ) -> ClusterReport:
        return ClusterReport(
            name=name,
            operations=0,
            constant_row=np.empty(0),
            norm_ne=float("nan"),
            verdict="unavailable",
            recalibrations=0,
            worker_batches=batches,
            status=status,
            error=error,
            retries=retries,
        )

    def _account(self, *, n_workers: int, elapsed: float, ops: int, batches: int) -> None:
        sink = self.instrumentation
        sink.count("fleet.clusters", len(self.clusters))
        sink.count("fleet.operations", ops)
        sink.count("fleet.batches", batches)
        sink.count("fleet.workers", n_workers)
        sink.add_time("fleet.elapsed", elapsed)

    # -- batched sweep -------------------------------------------------

    def plan_sweep(self) -> list[SweepShard]:
        """Partition the fleet's trailing windows into batched shards.

        Each cluster contributes its trailing ``window``-snapshot TP-matrix
        at the configured ``nbytes``. Clusters are grouped by matrix shape
        (shape-heterogeneous fleets still batch whatever matches), ordered
        by name within a group, and chunked into shards of at most
        ``batch_size`` — the ``(B, m, n)`` unit one batched solve handles
        and one shared stack block transports. The plan is deterministic:
        it depends only on the fleet's specs and config, never on timing.
        """
        cfg = self.config
        windows: dict[tuple[int, int], list[tuple[str, object]]] = {}
        for spec in self.clusters:
            trace = spec.trace
            count = min(int(cfg.window), int(trace.n_snapshots))
            start = int(trace.n_snapshots) - count
            tp = trace.tp_matrix(cfg.nbytes, start=start, count=count)
            windows.setdefault(tp.data.shape, []).append((spec.name, tp))
        shards: list[SweepShard] = []
        width = int(cfg.batch_size)
        for shape in sorted(windows):
            group = sorted(windows[shape], key=lambda item: item[0])
            for lo in range(0, len(group), width):
                chunk = group[lo : lo + width]
                shards.append(
                    SweepShard(
                        index=len(shards),
                        names=tuple(name for name, _ in chunk),
                        tps=tuple(tp for _, tp in chunk),
                    )
                )
        return shards

    def _quarantine_shard(
        self,
        shard: SweepShard,
        results: dict[str, SweepClusterResult],
        error_text: str,
        *,
        kind: str,
    ) -> None:
        status = "quarantined" if kind == "error" else "failed"
        counter = (
            "fleet.cluster.quarantined" if kind == "error" else "fleet.cluster.failed"
        )
        for name in shard.names:
            self.instrumentation.count(counter)
            results[name] = SweepClusterResult(
                name=name,
                constant_row=np.empty(0),
                norm_ne=float("nan"),
                verdict="unavailable",
                rank=0,
                iterations=0,
                converged=False,
                residual=float("nan"),
                status=status,
                error=error_text,
            )

    def run_sweep_serial(self) -> FleetSweepReport:
        """Solve the identical sweep plan in-process, one shard at a time.

        The determinism oracle for :meth:`run_sweep`: per-cluster ``P_D``
        must (and does) match the parallel run bit for bit. Under
        ``on_error="degrade"`` a shard whose solve raises is quarantined
        (all its clusters) while the remaining shards still solve.
        """
        t0 = time.perf_counter()
        cfg = self.config
        ensure_ew_backend_available(cfg.elementwise_backend)
        shards = self.plan_sweep()
        results: dict[str, SweepClusterResult] = {}
        workspaces: dict[tuple[int, int, int], object] = {}
        with instrumented(self.instrumentation):
            for shard in shards:
                try:
                    shard_results = solve_shard(
                        shard.names,
                        list(shard.tps),
                        solver=cfg.solver,
                        dtype=cfg.batch_dtype,
                        elementwise_backend=cfg.elementwise_backend,
                        workspaces=workspaces,
                    )
                except Exception:
                    if cfg.on_error != "degrade":
                        raise
                    self._quarantine_shard(
                        shard, results, traceback.format_exc(), kind="error"
                    )
                    continue
                for res in shard_results:
                    results[res.name] = res
        elapsed = time.perf_counter() - t0
        self._account_sweep(n_workers=1, elapsed=elapsed, shards=len(shards))
        return FleetSweepReport(
            clusters=results,
            n_workers=1,
            elapsed_s=elapsed,
            total_shards=len(shards),
            batch_size=int(cfg.batch_size),
            batch_dtype=cfg.batch_dtype,
            instrumentation=self.instrumentation.state_dict(),
        )

    def run_sweep(self) -> FleetSweepReport:
        """Solve every cluster's trailing window as batched shards in parallel.

        Shards ship to workers as :class:`~repro.fleet.shm.SharedStackBlock`
        segments (stacked ``(B, m, n)`` windows, zero pickled matrix bytes);
        each worker solves its shard through one stacked iteration loop and
        sends back per-cluster results plus its instrumentation
        ``state_dict``, which is merged — ``kernel.batch.*`` counters and
        all — into the fleet sink. The same supervision as :meth:`run`
        applies: dead workers are respawned and their shards requeued
        (bit-identical on replay), failing shards retry with backoff, and
        ``on_error="degrade"`` quarantines an exhausted shard's clusters
        instead of aborting the sweep.
        """
        cfg = self.config
        t0 = time.perf_counter()
        # Fail here, not in every worker: per the scheduler's session path,
        # an unusable backend must not surface as per-shard retry storms.
        ensure_ew_backend_available(cfg.elementwise_backend)
        shards = self.plan_sweep()
        shard_states = [_ShardState(shard=shard) for shard in shards]
        n_workers = min(int(cfg.n_workers), len(shards))
        ctx = mp.get_context()
        result_queue = ctx.Queue()
        results: dict[str, SweepClusterResult] = {}
        pool = _WorkerPool(
            ctx, result_queue,
            max_restarts=cfg.max_worker_restarts, sink=self.instrumentation,
        )
        try:
            # Stack blocks are created lazily at dispatch (below), which is
            # *after* the fork — so the shared-memory resource tracker must
            # be running first, or each forked worker spawns its own tracker
            # and "cleans up" segments the scheduler already unlinked.
            resource_tracker.ensure_running()
            pool.start(n_workers)
            self._drive_sweep(shard_states, results, result_queue, pool)
            pool.stop()
        finally:
            pool.shutdown()
            for state in shard_states:
                if state.block is not None:
                    state.block.unlink()
                    state.block = None

        elapsed = time.perf_counter() - t0
        self._account_sweep(n_workers=n_workers, elapsed=elapsed, shards=len(shards))
        return FleetSweepReport(
            clusters=results,
            n_workers=n_workers,
            elapsed_s=elapsed,
            total_shards=len(shards),
            batch_size=int(cfg.batch_size),
            batch_dtype=cfg.batch_dtype,
            instrumentation=self.instrumentation.state_dict(),
        )

    def _drive_sweep(
        self,
        shard_states: list[_ShardState],
        results: dict[str, SweepClusterResult],
        result_queue,
        pool: _WorkerPool,
    ) -> None:
        """Supervised dispatch/drain loop for batched sweep shards.

        Mirrors :meth:`_drive`; the unit of retry is the shard. Blocks are
        created at first dispatch and unlinked as soon as the shard's
        result lands (or the shard is quarantined), so shared memory stays
        bounded by the in-flight cap, not the fleet size. A requeued shard
        reuses its existing block — the segment is immutable input.
        """
        cfg = self.config
        pending: deque[int] = deque(range(len(shard_states)))
        deferred: list[tuple[float, int, int]] = []
        inflight: dict[int, _Inflight] = {}
        finished = 0

        def dispatch(index: int) -> None:
            state = shard_states[index]
            if state.block is None:
                state.block = SharedStackBlock.create(state.shard.tps)
            attempt = next(self._attempt_seq)
            state.attempt = attempt
            task = SweepTask(
                shard=index,
                descriptor=state.block.descriptor,
                clusters=state.shard.names,
                solver=cfg.solver,
                dtype=cfg.batch_dtype,
                elementwise_backend=cfg.elementwise_backend,
                attempt=attempt,
            )
            inflight[attempt] = _Inflight(key=index, dispatched_at=time.monotonic())
            pool.assign(attempt, task)

        def finish(state: _ShardState) -> None:
            nonlocal finished
            state.finished = True
            finished += 1
            if state.block is not None:
                state.block.unlink()
                state.block = None

        def fail(index: int, error_text: str, *, kind: str) -> None:
            state = shard_states[index]
            state.failures += 1
            if state.failures <= cfg.max_task_retries:
                state.retries += 1
                self.instrumentation.count("fleet.task.retries")
                delay = min(
                    float(cfg.retry_backoff_s) * (2 ** (state.failures - 1)),
                    _MAX_BACKOFF_S,
                )
                heapq.heappush(
                    deferred,
                    (time.monotonic() + delay, next(self._defer_seq), index),
                )
                return
            if cfg.on_error == "degrade":
                self._quarantine_shard(state.shard, results, error_text, kind=kind)
                finish(state)
                return
            raise FleetError(
                f"sweep shard {index} (clusters "
                f"{', '.join(state.shard.names)}) failed after "
                f"{state.failures} attempt(s) ({kind})",
                worker_traceback=error_text,
            )

        def lost(entry: _Inflight) -> None:
            dispatch(int(entry.key))

        def timed_out(entry: _Inflight) -> None:
            index = int(entry.key)
            fail(
                index,
                f"shard deadline exceeded ({self.config.task_timeout_s}s) on "
                f"attempt {shard_states[index].failures + 1}",
                kind="timeout",
            )

        def describe(key: object) -> str:
            return f"shard {key} ({', '.join(shard_states[int(key)].shard.names)})"

        last_tick = time.monotonic()
        while finished < len(shard_states):
            now = time.monotonic()
            if now - last_tick >= _POLL_S:
                # Cadenced supervision: steady traffic must not starve
                # death detection or deadline enforcement.
                self._supervise(
                    pool, inflight,
                    on_lost=lost, on_timeout=timed_out, describe=describe,
                )
                last_tick = now
            while deferred and deferred[0][0] <= now:
                pending.append(heapq.heappop(deferred)[2])
            while pending and len(inflight) < cfg.max_inflight:
                dispatch(pending.popleft())

            timeout = _POLL_S
            if not inflight and deferred:
                timeout = min(_POLL_S, max(0.01, deferred[0][0] - now))
            try:
                msg = result_queue.get(timeout=timeout)
            except queue_mod.Empty:
                self._supervise(
                    pool, inflight,
                    on_lost=lost, on_timeout=timed_out, describe=describe,
                )
                last_tick = time.monotonic()
                continue

            if isinstance(msg, TaskStarted):
                entry = inflight.get(msg.attempt)
                if entry is not None:
                    entry.worker_pid = msg.worker_pid
                continue

            result = msg
            pool.complete(result.attempt)
            state = shard_states[result.shard]
            if (
                result.attempt not in inflight
                or state.attempt != result.attempt
                or state.finished
            ):
                self.instrumentation.count("fleet.task.stale_results")
                continue
            del inflight[result.attempt]

            if result.error is not None:
                fail(result.shard, result.error, kind="error")
                continue

            if result.instrumentation:
                self.instrumentation.merge(result.instrumentation)
            state.failures = 0
            for res in result.results:
                results[res.name] = res
            finish(state)

    def _account_sweep(self, *, n_workers: int, elapsed: float, shards: int) -> None:
        sink = self.instrumentation
        sink.count("fleet.clusters", len(self.clusters))
        sink.count("fleet.sweep.shards", shards)
        sink.count("fleet.workers", n_workers)
        sink.add_time("fleet.elapsed", elapsed)
