"""Multiple processes per machine (paper Sec II-C).

The paper assumes one process per machine and notes "the extension to
multiple processes per machine is straightforward": processes on the same
machine communicate through shared memory (effectively free next to network
transfers), and processes on different machines inherit their hosts' link
weight. This module performs that expansion — a process-level weight matrix
from a machine-level one — so FNF and the execution model run unchanged at
process granularity.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_square_matrix, check_positive
from ..errors import ValidationError

__all__ = ["expand_to_processes", "process_hosts"]


def process_hosts(procs_per_machine: list[int] | np.ndarray) -> np.ndarray:
    """``hosts[p] = machine`` for the process layout *procs_per_machine*."""
    counts = np.asarray(procs_per_machine, dtype=np.intp)
    if counts.ndim != 1 or counts.size == 0:
        raise ValidationError("procs_per_machine must be a non-empty 1-D sequence")
    if np.any(counts < 0) or counts.sum() < 1:
        raise ValidationError("process counts must be non-negative with a positive sum")
    return np.repeat(np.arange(counts.size), counts)


def expand_to_processes(
    weights: np.ndarray,
    procs_per_machine: list[int] | np.ndarray,
    *,
    intra_machine_factor: float = 1e-3,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand a machine-level weight matrix to process granularity.

    Parameters
    ----------
    weights:
        N×N machine link weights (lower = better, zero diagonal).
    procs_per_machine:
        Process count per machine (length N; zeros allowed).
    intra_machine_factor:
        Same-machine process pairs get ``intra_machine_factor × (smallest
        network weight)`` — effectively free but strictly positive, so tree
        constructors keep valid (and preferring-local) orderings.

    Returns
    -------
    (process_weights, hosts)
        The P×P process weight matrix and ``hosts[p] = machine``.
    """
    w = as_square_matrix(weights, "weights")
    check_positive(intra_machine_factor, "intra_machine_factor")
    counts = np.asarray(procs_per_machine, dtype=np.intp)
    if counts.size != w.shape[0]:
        raise ValidationError("procs_per_machine length must equal the machine count")
    hosts = process_hosts(counts)
    p = hosts.size
    off_m = ~np.eye(w.shape[0], dtype=bool)
    positive = w[off_m][w[off_m] > 0]
    if positive.size == 0 and p > counts.max():
        raise ValidationError("weights must contain positive network entries")
    local = float(positive.min()) * intra_machine_factor if positive.size else 1e-9

    pw = w[np.ix_(hosts, hosts)].astype(np.float64)
    same_host = hosts[:, None] == hosts[None, :]
    pw[same_host] = local
    np.fill_diagonal(pw, 0.0)
    return pw, hosts
