"""Worker-process side of the fleet scheduler.

A worker is a plain loop over a task queue. Each :class:`BatchTask` names a
cluster, carries a batch of :class:`~repro.runtime.session.OperationSpec`\\ s
and either the cluster's warm :class:`~repro.runtime.session.SessionCapsule`
(later batches) or the session constructor kwargs (first batch). The trace
itself never rides along — only a :class:`TraceBlockDescriptor`, which the
worker maps once per cluster and caches for the rest of its life.

Workers are deliberately stateless about *sessions*: the capsule goes back
to the scheduler with every :class:`BatchResult`, so the next batch for a
cluster can land on any worker. Because the capsule round-trip is lossless
(bit-identical resume), which worker serves which batch cannot change the
cluster's results — only its wall-clock.

Supervision protocol: every task carries a scheduler-assigned ``attempt``
id, echoed back in the result. A worker announces each pickup with a
:class:`TaskStarted` ack on the result queue *before* doing the work, so
the scheduler knows which worker owns which attempt — that attribution is
what lets it requeue exactly the lost task when a worker dies, and kill
exactly the stuck worker when an attempt blows its deadline. A result whose
attempt id is no longer the cluster's current one is stale (the task was
already requeued to another worker) and the scheduler discards it.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from typing import Any

from ..cloudsim.trace import CalibrationTrace
from ..core.batch import BatchedSolveWorkspace, solve_rpca_batch
from ..core.decompose import decomposition_from_result
from ..core.matrices import TPMatrix
from ..observability import Instrumentation, instrumented
from ..runtime.session import OperationSpec, SessionCapsule, TraceSession
from .report import SweepClusterResult
from .shm import (
    SharedStackBlock,
    SharedTraceBlock,
    StackBlockDescriptor,
    TraceBlockDescriptor,
)

__all__ = [
    "BatchResult",
    "BatchTask",
    "SweepResult",
    "SweepTask",
    "TaskStarted",
    "solve_shard",
    "worker_main",
]


@dataclass(frozen=True, slots=True)
class TaskStarted:
    """Pickup ack: worker ``worker_pid`` began executing attempt ``attempt``.

    Sent on the result queue before the work itself, so the scheduler can
    attribute in-flight attempts to worker pids for supervision (requeue on
    death, targeted kill on deadline).
    """

    attempt: int
    worker_pid: int


@dataclass(frozen=True, slots=True)
class BatchTask:
    """One scheduler tick's worth of work for one cluster."""

    cluster: str
    descriptor: TraceBlockDescriptor
    specs: tuple[OperationSpec, ...]
    capsule: SessionCapsule | None = None
    session_kwargs: dict[str, Any] = field(default_factory=dict)
    attempt: int = 0


@dataclass(frozen=True, slots=True)
class BatchResult:
    """What a worker sends back after (attempting) a batch."""

    cluster: str
    capsule: SessionCapsule | None
    operations: int
    worker_pid: int
    error: str | None = None
    attempt: int = 0


@dataclass(frozen=True, slots=True)
class SweepTask:
    """One shard of a batched fleet sweep: B same-shape cluster windows."""

    shard: int
    descriptor: StackBlockDescriptor
    clusters: tuple[str, ...]
    solver: str = "apg"
    dtype: str = "float64"
    extraction: str = "mean"
    elementwise_backend: str = "reference"
    attempt: int = 0


@dataclass(frozen=True, slots=True)
class SweepResult:
    """What a worker sends back after (attempting) a sweep shard.

    ``instrumentation`` carries the worker-side sink's ``state_dict()`` —
    the ``kernel.batch.*`` counters and solve spans accumulated while the
    shard solved — for the scheduler to fold into the fleet sink via
    :meth:`~repro.observability.Instrumentation.merge`.
    """

    shard: int
    results: tuple[SweepClusterResult, ...]
    worker_pid: int
    instrumentation: dict[str, Any] | None = None
    error: str | None = None
    attempt: int = 0


def solve_shard(
    names: tuple[str, ...] | list[str],
    tps: list[TPMatrix],
    *,
    solver: str = "apg",
    dtype: str = "float64",
    extraction: str = "mean",
    elementwise_backend: str = "reference",
    workspaces: dict[tuple[int, int, int], BatchedSolveWorkspace] | None = None,
) -> list[SweepClusterResult]:
    """Solve one shard of same-shape TP-matrices as a single stacked batch.

    The one code path both sweep modes share: the serial reference
    (:meth:`~repro.fleet.FleetScheduler.run_sweep_serial`) calls it
    in-process on the scheduler's TP-matrices, workers call it on matrices
    rebuilt from the shared stack block. Identical inputs take identical
    float64 operations, so per-cluster ``P_D`` is bit-identical across the
    two modes regardless of worker count or shard placement.

    ``workspaces`` is an optional per-shape buffer cache (keyed by the
    stacked ``(B, m, n)`` shape) so a long-lived caller reuses iteration
    buffers across same-shape shards.
    """
    if len(names) != len(tps):
        raise ValueError(f"{len(names)} names for {len(tps)} matrices")
    masks: list[Any] | None = [tp.mask for tp in tps]
    if all(m is None for m in masks):
        masks = None
    workspace = None
    if workspaces is not None and tps:
        key = (len(tps), *tps[0].data.shape)
        workspace = workspaces.get(key)
        if workspace is None:
            workspace = BatchedSolveWorkspace(key)
            workspaces[key] = workspace
    results = solve_rpca_batch(
        [tp.data for tp in tps],
        masks,
        solver=solver,
        dtype=dtype,
        elementwise_backend=elementwise_backend,
        workspace=workspace,
        context="fleet-sweep",
    )
    out: list[SweepClusterResult] = []
    for name, tp, res in zip(names, tps, results):
        dec = decomposition_from_result(tp, res, solver=solver, extraction=extraction)
        out.append(
            SweepClusterResult(
                name=name,
                constant_row=dec.constant.row,
                norm_ne=dec.norm_ne,
                verdict=dec.report.verdict,
                rank=res.rank,
                iterations=res.iterations,
                converged=res.converged,
                residual=res.residual,
            )
        )
    return out


def _run_sweep_task(
    task: SweepTask,
    workspaces: dict[tuple[int, int, int], BatchedSolveWorkspace],
    pid: int,
) -> SweepResult:
    sink = Instrumentation("sweep-worker")
    try:
        block = SharedStackBlock.attach(task.descriptor)
        try:
            tps = block.tp_matrices()
            with instrumented(sink):
                results = solve_shard(
                    task.clusters,
                    tps,
                    solver=task.solver,
                    dtype=task.dtype,
                    extraction=task.extraction,
                    elementwise_backend=task.elementwise_backend,
                    workspaces=workspaces,
                )
        finally:
            block.close()
        return SweepResult(
            shard=task.shard,
            results=tuple(results),
            worker_pid=pid,
            instrumentation=sink.state_dict(),
            attempt=task.attempt,
        )
    except BaseException:
        return SweepResult(
            shard=task.shard,
            results=(),
            worker_pid=pid,
            instrumentation=sink.state_dict(),
            error=traceback.format_exc(),
            attempt=task.attempt,
        )


def _run_batch(
    task: BatchTask, traces: dict[str, CalibrationTrace]
) -> SessionCapsule:
    trace = traces[task.descriptor.name]
    if task.capsule is None:
        session = TraceSession(trace, **task.session_kwargs)
    else:
        session = TraceSession.from_capsule(trace, task.capsule)
    for spec in task.specs:
        session.step(spec)
    session.instrumentation.count("fleet.worker.batches")
    return session.capture_capsule()


def worker_main(task_queue: Any, result_queue: Any) -> None:
    """Worker loop: consume :class:`BatchTask`\\ s until the ``None`` sentinel.

    Runs in a child process. Any exception inside a batch is caught and
    shipped back as text in :attr:`BatchResult.error` — exception *objects*
    don't survive process boundaries reliably, and a poisoned cluster must
    not take the worker (and every other cluster queued behind it) down.
    """
    pid = os.getpid()
    blocks: dict[str, SharedTraceBlock] = {}
    traces: dict[str, CalibrationTrace] = {}
    workspaces: dict[tuple[int, int, int], BatchedSolveWorkspace] = {}
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            result_queue.put(TaskStarted(attempt=task.attempt, worker_pid=pid))
            if isinstance(task, SweepTask):
                result_queue.put(_run_sweep_task(task, workspaces, pid))
                continue
            try:
                if task.descriptor.name not in blocks:
                    block = SharedTraceBlock.attach(task.descriptor)
                    blocks[task.descriptor.name] = block
                    traces[task.descriptor.name] = block.trace()
                capsule = _run_batch(task, traces)
                result = BatchResult(
                    cluster=task.cluster,
                    capsule=capsule,
                    operations=len(task.specs),
                    worker_pid=pid,
                    attempt=task.attempt,
                )
            except BaseException:
                result = BatchResult(
                    cluster=task.cluster,
                    capsule=None,
                    operations=0,
                    worker_pid=pid,
                    error=traceback.format_exc(),
                    attempt=task.attempt,
                )
            result_queue.put(result)
    finally:
        for block in blocks.values():
            block.close()
