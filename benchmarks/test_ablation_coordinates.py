"""Ablation — why not network coordinates? (paper Sec IV-B).

The paper rejects coordinate systems (Vivaldi [11], GNP [30]) for reducing
calibration cost "because the triangle condition is not satisfied" in data
center networks. This bench quantifies that on the EC2-like trace:

1. the weight matrix violates the triangle inequality pervasively,
2. Vivaldi's predicted matrix has large held-out error on DC weights while
   doing fine on genuinely Euclidean distances, and
3. feeding Vivaldi's prediction to FNF loses most of the improvement that
   full calibration + RPCA delivers.
"""

import numpy as np

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.collectives.exec_model import broadcast_time
from repro.collectives.fnf import fnf_tree
from repro.collectives.trees import binomial_tree
from repro.core.decompose import decompose
from repro.experiments.report import format_table
from repro.netmodel.coordinates import triangle_violation_stats, vivaldi_embedding

MB = 1024 * 1024


def euclidean_matrix(n, dims=3, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 10, size=(n, dims))
    return np.sqrt(((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1))


def run_study():
    n = 24
    trace = generate_trace(TraceConfig(n_machines=n, n_snapshots=30), seed=77)
    constant = decompose(
        trace.tp_matrix(8 * MB, start=0, count=10), solver="apg"
    ).performance_matrix().weights

    tri = triangle_violation_stats(constant)
    viv_dc = vivaldi_embedding(constant, sample_fraction=0.4, seed=1)
    viv_metric = vivaldi_embedding(
        euclidean_matrix(n, seed=2), sample_fraction=0.4, seed=1
    )

    # Downstream effect: FNF from Vivaldi's prediction vs from the RPCA
    # constant, priced on held-out live snapshots.
    pred = viv_dc.predicted.copy()
    off = ~np.eye(n, dtype=bool)
    pred[off] = np.maximum(pred[off], constant[off][constant[off] > 0].min() * 1e-3)
    np.fill_diagonal(pred, 0.0)

    rng = np.random.default_rng(3)
    times = {"Baseline": [], "Vivaldi": [], "RPCA": []}
    for k in range(10, trace.n_snapshots):
        root = int(rng.integers(n))
        a, b = trace.alpha[k], trace.beta[k]
        times["Baseline"].append(
            broadcast_time(binomial_tree(n, root), a, b, 8 * MB)
        )
        times["Vivaldi"].append(broadcast_time(fnf_tree(pred, root), a, b, 8 * MB))
        times["RPCA"].append(broadcast_time(fnf_tree(constant, root), a, b, 8 * MB))
    means = {k: float(np.mean(v)) for k, v in times.items()}
    return tri, viv_dc, viv_metric, means


def test_ablation_network_coordinates(benchmark, emit):
    tri, viv_dc, viv_metric, means = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )

    emit(
        format_table(
            ["quantity", "value"],
            [
                ("triangle violations (fraction of triples)", tri.violation_fraction),
                ("median violation excess", tri.median_excess),
                ("Vivaldi held-out error on DC weights", viv_dc.test_error),
                ("Vivaldi held-out error on Euclidean control", viv_metric.test_error),
            ],
            title="Ablation: are DC weights coordinate-embeddable? (Sec IV-B)",
        )
    )
    emit(
        format_table(
            ["estimate driving FNF", "mean broadcast (s)", "vs Baseline"],
            [(k, v, 1.0 - v / means["Baseline"]) for k, v in means.items()],
            title="Downstream: FNF guided by Vivaldi vs by RPCA",
        )
    )

    # DC weight matrices are far from metric.
    assert tri.violation_fraction > 0.05
    # Vivaldi generalizes clearly worse on DC weights than on a Euclidean
    # control of the same size, and its DC error is material (>15%).
    assert viv_dc.test_error > 1.3 * viv_metric.test_error
    assert viv_dc.test_error > 0.15
    # Full calibration + RPCA beats coordinate-predicted weights downstream.
    assert means["RPCA"] < means["Vivaldi"]
