"""Temporal dynamics applied on top of the constant bands.

Three processes, matching the paper's Appendix-A observations about EC2:

1. **Volatility** — every sample of every link wiggles around its band by a
   multiplicative lognormal factor ("the network performance from consecutive
   measurements forms a clear band [but] is almost unpredictable at a single
   point").
2. **Interference spikes** — sparse heavy-tailed events where a link's
   effective bandwidth collapses for one snapshot (cross-traffic bursts).
   These are exactly the sparse component RPCA is built to absorb.
3. **Machine hotspots** — a noisy neighbor or CPU-steal episode on one VM
   degrades *every* link touching that VM for a snapshot. This is the
   correlated-error structure the paper credits for RPCA's edge over
   per-link heuristics ("RPCA considers the relationship among all the
   links"): a hotspot writes an entire row+column into the error component
   at once, which a column-wise mean mistakes for bad links.
4. **Regime changes** — rare events (VM migration, Sec IV-A's example) where
   one VM's *bands* are re-drawn; the constant component itself moves, which
   is what the maintenance loop must detect.

The ``apply_*_regime`` functions at the bottom script regime changes onto an
*existing* trace — step, ramp, seasonal, and burst-noise profiles — so the
detection-quality benchmark can grade every registered
:mod:`~repro.core.detectors` detector against known change-point ground
truth (onset snapshot, change shape) instead of whatever the stochastic
migration process happened to roll.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_nonnegative, check_probability
from ..errors import ValidationError
from ..utils.seeding import spawn_rng
from .bands import BandTiers, LinkBands, derive_bands
from .placement import Placement
from .trace import CalibrationTrace

__all__ = [
    "DynamicsConfig",
    "VolatilityModel",
    "apply_step_regime",
    "apply_ramp_regime",
    "apply_seasonal_regime",
    "apply_burst_noise",
]


@dataclass(frozen=True, slots=True)
class DynamicsConfig:
    """Knobs of the temporal model.

    Attributes
    ----------
    volatility_sigma:
        σ of the per-sample lognormal wiggle (0 disables).
    spike_probability:
        Per-link, per-snapshot probability of an interference spike.
    spike_severity:
        Mean of the exponential severity; a spike divides bandwidth by
        ``1 + s`` and multiplies latency by ``1 + s`` with ``s ~ Exp(severity)``.
    hotspot_probability:
        Per-machine, per-snapshot probability of a noisy-neighbor episode
        that degrades every link touching the machine.
    hotspot_severity:
        Mean of the exponential hotspot severity (same ``1 + s`` law).
    migration_rate:
        Expected number of VM migrations per snapshot across the whole
        cluster (a Poisson thinning decides when one fires).
    """

    volatility_sigma: float = 0.05
    spike_probability: float = 0.01
    spike_severity: float = 6.0
    hotspot_probability: float = 0.02
    hotspot_severity: float = 1.5
    migration_rate: float = 0.0

    def __post_init__(self) -> None:
        check_nonnegative(self.volatility_sigma, "volatility_sigma")
        check_probability(self.spike_probability, "spike_probability")
        check_nonnegative(self.spike_severity, "spike_severity")
        check_probability(self.hotspot_probability, "hotspot_probability")
        check_nonnegative(self.hotspot_severity, "hotspot_severity")
        check_nonnegative(self.migration_rate, "migration_rate")


@dataclass
class VolatilityModel:
    """Stateful sampler producing per-snapshot (α, β) matrices.

    The model owns the *current* bands (which migrate over time) and emits
    independent noisy samples around them. Iterating the model is how a
    trace generator produces consecutive snapshots.
    """

    placement: Placement
    tiers: BandTiers
    config: DynamicsConfig
    rng: np.random.Generator
    bands: LinkBands = field(init=False)
    migration_log: list[tuple[int, int]] = field(init=False, default_factory=list)
    _snapshot_index: int = field(init=False, default=0)

    def __init__(
        self,
        placement: Placement,
        tiers: BandTiers | None = None,
        config: DynamicsConfig | None = None,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.placement = placement
        self.tiers = tiers if tiers is not None else BandTiers()
        self.config = config if config is not None else DynamicsConfig()
        self.rng = spawn_rng(seed)
        self.bands = derive_bands(placement, self.tiers, seed=self.rng)
        self.migration_log = []
        self._snapshot_index = 0

    def _maybe_migrate(self) -> None:
        """Fire 0+ migrations for this snapshot (Poisson with the configured rate)."""
        if self.config.migration_rate <= 0:
            return
        n_events = int(self.rng.poisson(self.config.migration_rate))
        if n_events == 0:
            return
        n = self.placement.n_machines
        alpha = self.bands.alpha.copy()
        beta = self.bands.beta.copy()
        fresh = derive_bands(self.placement, self.tiers, seed=self.rng)
        for _ in range(n_events):
            vm = int(self.rng.integers(n))
            self.migration_log.append((self._snapshot_index, vm))
            # The migrated VM's links to everyone are re-drawn, both directions.
            alpha[vm, :] = fresh.alpha[vm, :]
            alpha[:, vm] = fresh.alpha[:, vm]
            beta[vm, :] = fresh.beta[vm, :]
            beta[:, vm] = fresh.beta[:, vm]
        np.fill_diagonal(alpha, 0.0)
        np.fill_diagonal(beta, np.inf)
        self.bands = LinkBands(alpha=alpha, beta=beta)

    def sample(self) -> tuple[np.ndarray, np.ndarray]:
        """Produce the next snapshot's (α, β) matrices and advance time."""
        self._maybe_migrate()
        cfg = self.config
        n = self.placement.n_machines
        alpha = self.bands.alpha.copy()
        beta = self.bands.beta.copy()

        if cfg.volatility_sigma > 0:
            wa = self.rng.lognormal(0.0, cfg.volatility_sigma, size=(n, n))
            wb = self.rng.lognormal(0.0, cfg.volatility_sigma, size=(n, n))
            alpha *= wa
            beta *= wb

        if cfg.spike_probability > 0:
            hit = self.rng.random((n, n)) < cfg.spike_probability
            if np.any(hit):
                sev = 1.0 + self.rng.exponential(cfg.spike_severity, size=(n, n))
                beta = np.where(hit, beta / sev, beta)
                alpha = np.where(hit, alpha * sev, alpha)

        if cfg.hotspot_probability > 0:
            hot = self.rng.random(n) < cfg.hotspot_probability
            if np.any(hot):
                sev = np.ones(n)
                sev[hot] = 1.0 + self.rng.exponential(
                    cfg.hotspot_severity, size=int(hot.sum())
                )
                # A hotspot on machine m scales every link m touches; links
                # between two hotspots compound (both endpoints are slow).
                factor = np.maximum.outer(sev, sev)
                both = np.outer(sev, sev)
                factor = np.where(np.minimum.outer(sev, sev) > 1.0, both, factor)
                beta = beta / factor
                alpha = alpha * factor

        np.fill_diagonal(alpha, 0.0)
        np.fill_diagonal(beta, np.inf)
        self._snapshot_index += 1
        return alpha, beta


# -- scripted regime changes -------------------------------------------------
#
# Each function takes a finished trace and returns a new one whose bands
# degrade according to a known script: bandwidth divided by (latency
# multiplied by) a per-snapshot factor. Dividing beta keeps the diagonal
# convention intact for free (inf / f = inf, 0 * f = 0), and scripting on a
# finished trace keeps the underlying volatility/spike draws identical
# between the scripted and unscripted arms — the benchmark's control.


def _check_range(start: int, stop: int, n: int) -> tuple[int, int]:
    start, stop = int(start), int(stop)
    if not 0 <= start < n:
        raise ValidationError(f"start {start} out of range for {n} snapshots")
    if not start < stop <= n:
        raise ValidationError(
            f"stop must lie in ({start}, {n}], got {stop}"
        )
    return start, stop


def _scaled(trace: CalibrationTrace, factors: np.ndarray) -> CalibrationTrace:
    """Apply a per-snapshot degradation factor (>=1 slows the network)."""
    f = factors.reshape(-1, 1, 1)
    return CalibrationTrace(
        alpha=trace.alpha * f,
        beta=trace.beta / f,
        timestamps=trace.timestamps,
        mask=trace.mask,
    )


def apply_step_regime(
    trace: CalibrationTrace, *, start: int, factor: float, stop: int | None = None
) -> CalibrationTrace:
    """Abrupt sustained band change from snapshot *start* on.

    The canonical CUSUM-friendly regime shift: every link's bandwidth drops
    by *factor* (latency rises by it) at *start* and stays there (until
    *stop*, exclusive, when given). Models a VM migration landing the
    cluster on congested hosts.
    """
    n = trace.n_snapshots
    start, stop = _check_range(start, n if stop is None else stop, n)
    if float(factor) <= 0:
        raise ValidationError("factor must be > 0")
    factors = np.ones(n)
    factors[start:stop] = float(factor)
    return _scaled(trace, factors)


def apply_ramp_regime(
    trace: CalibrationTrace, *, start: int, stop: int, factor: float
) -> CalibrationTrace:
    """Slow linear degradation from *start* to *stop*, then held.

    The factor ramps linearly from 1 at *start* to *factor* at ``stop - 1``
    and stays at *factor* afterwards — the gradual-drift regime (e.g. a
    neighbor's workload slowly saturating the rack uplink) that a
    spike/shift dichotomy tuned for abrupt change under-serves.
    """
    n = trace.n_snapshots
    start, stop = _check_range(start, stop, n)
    if float(factor) <= 0:
        raise ValidationError("factor must be > 0")
    if stop - start < 2:
        raise ValidationError("ramp needs at least 2 snapshots")
    factors = np.ones(n)
    factors[start:stop] = np.linspace(1.0, float(factor), stop - start)
    factors[stop:] = float(factor)
    return _scaled(trace, factors)


def apply_seasonal_regime(
    trace: CalibrationTrace, *, period: int, amplitude: float, phase: float = 0.0
) -> CalibrationTrace:
    """Smooth periodic degradation (diurnal/weekly-style load cycles).

    The factor oscillates between 1 (no degradation) and ``1 + amplitude``
    with the given *period* in snapshots:
    ``f_k = 1 + amplitude * (1 - cos(2π (k - phase) / period)) / 2``.
    There is no true regime change — a well-tuned detector should ride the
    season without firing, so shifts here count as false recalibrations.
    """
    if int(period) < 2:
        raise ValidationError("period must be >= 2 snapshots")
    check_nonnegative(amplitude, "amplitude")
    k = np.arange(trace.n_snapshots, dtype=np.float64)
    factors = 1.0 + float(amplitude) * 0.5 * (
        1.0 - np.cos(2.0 * math.pi * (k - float(phase)) / int(period))
    )
    return _scaled(trace, factors)


def apply_burst_noise(
    trace: CalibrationTrace,
    *,
    probability: float,
    severity: float = 6.0,
    seed: int | np.random.Generator | None = None,
) -> CalibrationTrace:
    """Heavy-tailed one-snapshot interference bursts, no true regime change.

    Each off-diagonal link is hit independently per snapshot with
    *probability*; a hit divides that link's bandwidth by ``1 + s`` with
    ``s ~ Exp(severity)`` for exactly one snapshot. The stress profile for
    noise-robust detection: every shift a detector fires here is a false
    recalibration, since the bands never move.
    """
    check_probability(probability, "probability")
    check_nonnegative(severity, "severity")
    rng = spawn_rng(seed)
    t, n = trace.n_snapshots, trace.n_machines
    hit = rng.random((t, n, n)) < float(probability)
    off_diag = ~np.eye(n, dtype=bool)
    hit &= off_diag[None, :, :]
    sev = 1.0 + rng.exponential(float(severity), size=(t, n, n))
    factors = np.where(hit, sev, 1.0)
    return CalibrationTrace(
        alpha=trace.alpha * factors,
        beta=trace.beta / factors,
        timestamps=trace.timestamps,
        mask=trace.mask,
    )
