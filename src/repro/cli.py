"""Command-line interface.

Nine subcommands cover the operational loop around the library:

* ``repro generate`` — synthesize an EC2-like calibration trace to ``.npz``.
* ``repro info`` — stability report of a trace (Norm(N_E), band spread,
  volatility, verdict).
* ``repro decompose`` — run an RPCA solver on a trace's TP-matrix and print
  the decomposition summary.
* ``repro compare`` — replay the Baseline/Heuristics/RPCA comparison on a
  trace and print the normalized table (a command-line Fig 7).
* ``repro replay`` — run the adaptive Algorithm-1 session over a trace,
  optionally with injected measurement faults (``--faults``), degraded-mode
  maintenance, online regime detection (``--regime DETECTOR``), streaming
  incremental decomposition (``--mode streaming``) and crash-safe
  persistence (``--checkpoint-dir``); prints health transitions and
  accounting, or a machine-readable summary with ``--json``.
* ``repro resume`` — recover a crashed (or stopped) ``replay`` session from
  its checkpoint directory and continue it to the operation target.
* ``repro fleet`` — run many clusters' Algorithm-1 sessions concurrently
  across a process pool (traces given as files, or ``--synthesize N``);
  per-cluster results are bit-identical to serial runs (``--serial`` is the
  baseline arm).
* ``repro changepoints`` — locate offline regime changes in a trace.
* ``repro figures`` — regenerate every paper figure at quick or paper scale.

Trace-consuming commands accept ``.npz`` archives or ``.csv`` logs of real
ping-pong measurements (see :func:`repro.load_trace_csv`). ``decompose`` and
``compare`` accept ``--profile``, which activates an observability sink
around the command and prints the instrumentation report (per-solve
iteration/residual/wall-time spans, counters, timers) after the normal
output.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .errors import ReproError

__all__ = ["main", "build_parser"]

MB = 1024 * 1024


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Finding Constant from Change (SC'14) — RPCA-based network "
            "performance aware optimization toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a calibration trace")
    gen.add_argument("output", help="output .npz path")
    gen.add_argument("--machines", type=int, default=16)
    gen.add_argument("--snapshots", type=int, default=30)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--volatility", type=float, default=None,
                     help="override volatility sigma")
    gen.add_argument("--migration-rate", type=float, default=None,
                     help="override VM migration rate per snapshot")

    info = sub.add_parser("info", help="stability report of a trace")
    info.add_argument("trace", help="trace .npz path")
    info.add_argument("--message-mb", type=float, default=8.0)

    dec = sub.add_parser("decompose", help="RPCA-decompose a trace")
    dec.add_argument("trace", help="trace .npz path")
    dec.add_argument("--solver", default="apg")
    dec.add_argument("--svd-backend", default="exact",
                     choices=["exact", "gram", "randomized", "auto"],
                     help="SVD kernel for the solver's thresholding "
                          "(default exact — the bit-identical full SVD)")
    dec.add_argument("--elementwise-backend", default="reference",
                     choices=["reference", "fused", "jit"],
                     help="elementwise kernel for the solver's step "
                          "recurrences (default reference — the historical "
                          "ufunc chain; fused/jit need a non-exact "
                          "--svd-backend)")
    dec.add_argument("--time-step", type=int, default=10)
    dec.add_argument("--message-mb", type=float, default=8.0)
    dec.add_argument("--profile", action="store_true",
                     help="print the instrumentation report after the summary")

    cmp_ = sub.add_parser("compare", help="Baseline vs Heuristics vs RPCA replay")
    cmp_.add_argument("trace", help="trace .npz path")
    cmp_.add_argument("--op", default="broadcast",
                      choices=["broadcast", "scatter", "reduce", "gather"])
    cmp_.add_argument("--repetitions", type=int, default=60)
    cmp_.add_argument("--time-step", type=int, default=10)
    cmp_.add_argument("--solver", default="apg")
    cmp_.add_argument("--message-mb", type=float, default=8.0)
    cmp_.add_argument("--seed", type=int, default=0)
    cmp_.add_argument("--profile", action="store_true",
                      help="print the instrumentation report after the table")

    rep = sub.add_parser(
        "replay",
        help="adaptive session replay, optionally with injected faults",
    )
    rep.add_argument("trace", help="trace .npz or .csv path")
    rep.add_argument("--op", default="broadcast",
                     choices=["broadcast", "scatter", "reduce", "gather"])
    rep.add_argument("--operations", type=int, default=60)
    rep.add_argument("--time-step", type=int, default=10)
    rep.add_argument("--threshold", type=float, default=1.0)
    rep.add_argument("--consecutive", type=int, default=1)
    rep.add_argument("--solver", default="apg")
    rep.add_argument("--svd-backend", default="exact",
                     choices=["exact", "gram", "randomized", "auto"],
                     help="SVD kernel for re-calibration solves "
                          "(default exact — the bit-identical full SVD)")
    rep.add_argument("--elementwise-backend", default="reference",
                     choices=["reference", "fused", "jit"],
                     help="elementwise kernel for re-calibration step "
                          "recurrences (default reference; fused/jit need "
                          "a non-exact --svd-backend)")
    rep.add_argument("--message-mb", type=float, default=8.0)
    rep.add_argument("--cold", action="store_true",
                     help="disable warm-started re-calibration solves")
    rep.add_argument("--faults", default=None, metavar="SPEC",
                     help="fault spec: a profile (mild, harsh) or tokens like "
                          "probe_loss=0.1,straggler=0.05,vm_outage=3:12:2,"
                          "rack_outage=0.01")
    rep.add_argument("--fault-seed", type=int, default=0,
                     help="seed for fault materialization")
    rep.add_argument("--min-snapshot-observed", type=float, default=0.8,
                     help="per-snapshot completeness floor in resilient mode")
    rep.add_argument("--min-window-observed", type=float, default=0.5,
                     help="per-window completeness floor in resilient mode")
    rep.add_argument("--mode", default="batch",
                     choices=["batch", "streaming"],
                     help="decomposition mode: batch (full window re-solves) "
                          "or streaming (O(row) per-snapshot folds with "
                          "certified batch fallback)")
    rep.add_argument("--stream-tolerance", type=float, default=None,
                     metavar="TOL",
                     help="streaming drift ceiling (requires --mode streaming)")
    rep.add_argument("--stream-refresh-every", type=int, default=None,
                     metavar="N",
                     help="streaming re-orthonormalization cadence in folds "
                          "(requires --mode streaming)")
    rep.add_argument("--regime", nargs="?", const="__bare__", default=None,
                     metavar="DETECTOR",
                     help="enable online regime-shift detection with the "
                          "named detector (cusum, signature, noise-robust, "
                          "drift; SHIFT forces a cold re-calibration); a "
                          "detector name is required")
    rep.add_argument("--regime-params", default=None, metavar="KEY=VALUE[,...]",
                     help="detector config overrides, e.g. "
                          "decision=6.0,warmup=8 (requires --regime)")
    rep.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="enable crash-safe persistence into DIR "
                          "(write-ahead journal + periodic checkpoints)")
    rep.add_argument("--checkpoint-every", type=int, default=100,
                     help="operations between checkpoints (default 100)")
    rep.add_argument("--crash-after", type=int, default=None, metavar="OP",
                     help="SIGKILL this process at operation OP "
                          "(chaos-harness hook)")
    rep.add_argument("--json", action="store_true",
                     help="print a machine-readable JSON summary instead of text")
    rep.add_argument("--profile", action="store_true",
                     help="print the instrumentation report after the summary")

    res = sub.add_parser(
        "resume",
        help="recover a crashed replay session and continue it",
    )
    res.add_argument("directory", help="checkpoint directory of the dead session")
    res.add_argument("--trace", default=None,
                     help="trace path override (default: the path recorded "
                          "in the checkpoint)")
    res.add_argument("--op", default="broadcast",
                     choices=["broadcast", "scatter", "reduce", "gather"])
    res.add_argument("--operations", type=int, default=60,
                     help="total operation target, counting replayed ones")
    res.add_argument("--faults", default=None, metavar="SPEC",
                     help="measurement-fault override (default: the spec "
                          "recorded in the checkpoint)")
    res.add_argument("--crash-after", type=int, default=None, metavar="OP",
                     help="SIGKILL this process at operation OP "
                          "(chaos-harness hook)")
    res.add_argument("--json", action="store_true",
                     help="print a machine-readable JSON summary instead of text")

    flt = sub.add_parser(
        "fleet",
        help="run many clusters' sessions concurrently across a process pool",
    )
    flt.add_argument("traces", nargs="*",
                     help="trace .npz/.csv paths, one cluster per file")
    flt.add_argument("--synthesize", type=int, default=None, metavar="N",
                     help="synthesize N clusters instead of loading traces")
    flt.add_argument("--machines", type=int, default=8,
                     help="machines per synthesized cluster")
    flt.add_argument("--snapshots", type=int, default=24,
                     help="snapshots per synthesized cluster")
    flt.add_argument("--seed", type=int, default=0,
                     help="base seed for synthesized clusters")
    flt.add_argument("--n-workers", type=int, default=2)
    flt.add_argument("--operations", type=int, default=60,
                     help="operations per cluster")
    flt.add_argument("--op", default="broadcast",
                     choices=["broadcast", "scatter", "reduce", "gather"])
    flt.add_argument("--window", type=int, default=10,
                     help="calibration window length")
    flt.add_argument("--threshold", type=float, default=1.0)
    flt.add_argument("--solver", default="apg")
    flt.add_argument("--svd-backend", default="exact",
                     choices=["exact", "gram", "randomized", "auto"],
                     help="SVD kernel for every cluster's solver "
                          "(default exact — the bit-identical full SVD)")
    flt.add_argument("--elementwise-backend", default="reference",
                     choices=["reference", "fused", "jit"],
                     help="elementwise kernel for every cluster's step "
                          "recurrences (default reference; sessions need "
                          "a non-exact --svd-backend for fused/jit, sweeps "
                          "accept any combination)")
    flt.add_argument("--message-mb", type=float, default=8.0)
    flt.add_argument("--mode", default="batch",
                     choices=["batch", "streaming"],
                     help="decomposition mode for every cluster's session "
                          "(streaming folds snapshots incrementally with "
                          "certified batch fallback)")
    flt.add_argument("--stream-tolerance", type=float, default=None,
                     metavar="TOL",
                     help="streaming drift ceiling (requires --mode streaming)")
    flt.add_argument("--stream-refresh-every", type=int, default=None,
                     metavar="N",
                     help="streaming re-orthonormalization cadence in folds "
                          "(requires --mode streaming)")
    flt.add_argument("--batch-size", type=int, default=8,
                     help="operations shipped per scheduler tick (and, with "
                          "--sweep, cluster windows stacked per batched solve)")
    flt.add_argument("--sweep", action="store_true",
                     help="solve every cluster's trailing window as stacked "
                          "batched solves instead of running full sessions")
    flt.add_argument("--batch-dtype", default="float64",
                     choices=["float64", "float32"],
                     help="iterate dtype for --sweep solves (float64 is the "
                          "bit-parity mode; float32 adds a refinement pass)")
    flt.add_argument("--checkpoint-root", default=None, metavar="DIR",
                     help="write per-cluster checkpoints under DIR")
    flt.add_argument("--on-error", default="raise",
                     choices=["raise", "degrade"],
                     help="what to do when a cluster exhausts its retries: "
                          "abort the run (raise) or quarantine it into the "
                          "report and keep serving the rest (degrade); a "
                          "degraded report exits nonzero")
    flt.add_argument("--max-task-retries", type=int, default=2,
                     help="extra attempts per failed task")
    flt.add_argument("--retry-backoff", type=float, default=0.05,
                     metavar="SECONDS",
                     help="base retry delay; doubles per failed attempt")
    flt.add_argument("--max-worker-restarts", type=int, default=3,
                     help="fleet-wide budget of worker-process respawns")
    flt.add_argument("--task-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-attempt deadline; a stuck worker is killed "
                          "and the task retried (default: no deadline)")
    flt.add_argument("--regime", default=None, metavar="DETECTOR",
                     help="online regime-shift detector every cluster runs "
                          "(cusum, signature, noise-robust, drift)")
    flt.add_argument("--regime-params", default=None, metavar="KEY=VALUE[,...]",
                     help="detector config overrides, e.g. "
                          "decision=6.0,warmup=8 (requires --regime)")
    flt.add_argument("--serial", action="store_true",
                     help="run the identical plan in-process (baseline arm)")
    flt.add_argument("--json", action="store_true",
                     help="print a machine-readable JSON summary instead of text")
    flt.add_argument("--profile", action="store_true",
                     help="print the aggregated instrumentation report "
                          "(per-cluster counters and solve spans merged)")

    chg = sub.add_parser("changepoints", help="locate offline regime changes")
    chg.add_argument("trace", help="trace .npz path")
    chg.add_argument("--window", type=int, default=5)
    chg.add_argument("--threshold", type=float, default=0.25)

    figs = sub.add_parser("figures", help="regenerate every paper figure")
    figs.add_argument("--scale", choices=["quick", "paper"], default="quick")
    figs.add_argument("--simulation", action="store_true",
                      help="include the (slower) netsim figures 12-13")
    figs.add_argument("--seed", type=int, default=2014)
    figs.add_argument("--output", default=None,
                      help="also write the tables to this markdown file")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from .cloudsim.dynamics import DynamicsConfig
    from .cloudsim.io import save_trace
    from .cloudsim.tracegen import TraceConfig, generate_trace

    dyn_kwargs = {}
    if args.volatility is not None:
        dyn_kwargs["volatility_sigma"] = args.volatility
    if args.migration_rate is not None:
        dyn_kwargs["migration_rate"] = args.migration_rate
    cfg = TraceConfig(
        n_machines=args.machines,
        n_snapshots=args.snapshots,
        dynamics=DynamicsConfig(**dyn_kwargs),
    )
    trace = generate_trace(cfg, seed=args.seed)
    save_trace(trace, args.output)
    print(
        f"wrote {args.output}: {trace.n_machines} machines x "
        f"{trace.n_snapshots} snapshots (seed {args.seed})"
    )
    return 0


def _load_any_trace(path: str):
    """Load a trace by extension: .npz archives or .csv measurement logs."""
    from .cloudsim.io import load_trace, load_trace_csv

    if path.lower().endswith(".csv"):
        return load_trace_csv(path)
    return load_trace(path)


def _cmd_info(args: argparse.Namespace) -> int:
    from .analysis.tracestats import trace_stability_report

    trace = _load_any_trace(args.trace)
    rep = trace_stability_report(trace, nbytes=args.message_mb * MB)
    print(f"machines:          {rep.n_machines}")
    print(f"snapshots:         {rep.n_snapshots}")
    print(f"Norm(N_E):         {rep.norm_ne:.4f}")
    print(f"band spread p90/p10: {rep.band_spread:.2f}x")
    print(f"median volatility: {rep.median_volatility:.3f}")
    print(f"spike fraction:    {rep.spike_fraction:.3f}")
    print(f"verdict:           {rep.verdict}")
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    from .core.decompose import decompose

    trace = _load_any_trace(args.trace)
    count = min(args.time_step, trace.n_snapshots)
    tp = trace.tp_matrix(args.message_mb * MB, start=0, count=count)
    backend = None if args.svd_backend == "exact" else args.svd_backend
    ew = (None if args.elementwise_backend == "reference"
          else args.elementwise_backend)
    dec = decompose(tp, solver=args.solver, svd_backend=backend,
                    elementwise_backend=ew)
    print(f"solver:     {dec.solver} ({dec.solver_iterations} iterations, "
          f"converged={dec.solver_converged})")
    print(f"rank(D):    {dec.report.rank}")
    print(f"Norm(N_E):  {dec.norm_ne:.4f} (l0 variant {dec.report.norm_ne_l0:.4f})")
    print(f"verdict:    {dec.report.verdict}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .experiments.harness import ReplayContext, collective_comparison
    from .experiments.report import format_table
    from .strategies import BaselineStrategy, HeuristicStrategy, RPCAStrategy

    trace = _load_any_trace(args.trace)
    nbytes = args.message_mb * MB
    ctx = ReplayContext(trace=trace, time_step=args.time_step, nbytes=nbytes)
    op_bytes = nbytes / trace.n_machines if args.op in ("scatter", "gather") else nbytes
    arms = [
        BaselineStrategy(),
        HeuristicStrategy("mean"),
        RPCAStrategy(args.solver, time_step=args.time_step),
    ]
    res = collective_comparison(
        ctx, arms, op=args.op, nbytes=op_bytes,
        repetitions=args.repetitions, seed=args.seed,
    )
    rpca = next(a for a in arms if isinstance(a, RPCAStrategy))
    rows = [(name, res.mean(name), res.normalized_means()[name])
            for name in res.times]
    print(format_table(
        ["strategy", "mean elapsed (s)", "normalized"],
        rows,
        title=f"{args.op}, {args.repetitions} reps, Norm(N_E)={rpca.norm_ne:.3f}",
    ))
    print(f"RPCA vs Baseline:   {res.improvement('RPCA', 'Baseline'):+.1%}")
    print(f"RPCA vs Heuristics: {res.improvement('RPCA', 'Heuristics'):+.1%}")
    return 0


def _resolve_regime_args(args: argparse.Namespace) -> tuple[str | None, dict | None]:
    """Turn ``--regime`` / ``--regime-params`` into session kwargs.

    The bare ``--regime`` flag (no value) was a one-release deprecated
    alias for the CUSUM default; as of v1.1 it is a hard error — same
    retirement policy as the facade's legacy keyword spellings.
    """
    from .core.detectors import detector_names, parse_detector_params
    from .errors import ValidationError

    regime = args.regime
    if regime == "__bare__":
        raise ValidationError(
            "--regime requires a detector name as of v1.1; "
            f"choose one of: {', '.join(detector_names())}"
        )
    params = parse_detector_params(args.regime_params) or None
    return regime, params


def _session_summary(session, *, recovered_at: int | None = None) -> dict:
    """Machine-readable session summary (the ``--json`` payload).

    ``constant_row`` carries the full constant component so external
    harnesses (CI chaos job, kill-and-recover tests) can assert bit-level
    ``P_D`` parity across crash/recovery boundaries.
    """
    stats = session.stats
    return {
        "operations": stats.operations,
        "epochs": stats.epochs,
        "communication_seconds": stats.communication_seconds,
        "overhead_seconds": stats.overhead_seconds,
        "recalibrations": stats.recalibrations,
        "failed_recalibrations": stats.failed_recalibrations,
        "deferred_recalibrations": stats.deferred_recalibrations,
        "holdover_operations": stats.holdover_operations,
        "regime_shifts": stats.regime_shifts,
        "regime_spikes": stats.regime_spikes,
        "mode": session.mode,
        "stream_updates": stats.stream_updates,
        "stream_fallbacks": stats.stream_fallbacks,
        "regime_detector": (
            None
            if session.regime_detector is None
            else session.regime_detector.name
        ),
        "health": session.health_state.value,
        "staleness": session.staleness,
        "fault_events": len(session.fault_events),
        "norm_ne": session.norm_ne,
        "verdict": session.verdict,
        "n_machines": session.trace.n_machines,
        "constant_row": [float(v) for v in session.decomposition.constant.row],
        "recovered_at": recovered_at,
    }


def _print_session_summary(
    session, *, show_faults: bool, recovered_at: int | None = None
) -> None:
    stats = session.stats
    if recovered_at is not None:
        print(f"recovered:         at operation {recovered_at}")
    print(f"operations:        {stats.operations} "
          f"({stats.epochs} trace epoch(s))")
    print(f"communication:     {stats.communication_seconds:.3f} s")
    print(f"overhead:          {stats.overhead_seconds:.3f} s")
    print(f"recalibrations:    {stats.recalibrations}")
    if session.mode == "streaming":
        print(f"stream updates:    {stats.stream_updates} "
              f"({stats.stream_fallbacks} fallback(s))")
    if session.regime_detector is not None:
        print(f"regime detector:   {session.regime_detector.name}")
        print(f"regime shifts:     {stats.regime_shifts} "
              f"({stats.regime_spikes} transient spike(s))")
    if show_faults:
        print(f"failed recals:     {stats.failed_recalibrations}")
        print(f"deferred recals:   {stats.deferred_recalibrations}")
        print(f"degraded/holdover operations: {stats.holdover_operations}")
        print(f"fault events:      {len(session.fault_events)}")
        print(f"final health:      {session.health_state.value} "
              f"(staleness {session.staleness} ops)")
        transitions = session.health_transitions
        if transitions:
            print("health transitions:")
            for t in transitions:
                print(f"  op {t.operation:4d}: {t.previous.value} -> "
                      f"{t.state.value}  ({t.reason})")
    print(f"Norm(N_E):         {session.norm_ne:.4f}")
    print(f"verdict:           {session.verdict}")


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from .core.maintenance import ResilienceConfig
    from .persistence import PersistenceConfig
    from .runtime import TraceSession

    trace = _load_any_trace(args.trace)
    regime, regime_params = _resolve_regime_args(args)
    resilience = None
    if args.faults is not None:
        resilience = ResilienceConfig(
            min_snapshot_observed=args.min_snapshot_observed,
            min_window_observed=args.min_window_observed,
        )
    persistence = None
    if args.checkpoint_dir is not None:
        persistence = PersistenceConfig(
            directory=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            trace_path=args.trace,
        )
    session = TraceSession(
        trace,
        nbytes=args.message_mb * MB,
        time_step=args.time_step,
        threshold=args.threshold,
        consecutive=args.consecutive,
        solver=args.solver,
        warm_start=not args.cold,
        svd_backend=args.svd_backend,
        elementwise_backend=args.elementwise_backend,
        mode=args.mode,
        stream_tolerance=args.stream_tolerance,
        stream_refresh_every=args.stream_refresh_every,
        faults=args.faults,
        fault_seed=args.fault_seed,
        resilience=resilience,
        persistence=persistence,
        regime=regime,
        regime_params=regime_params,
        crash_after=args.crash_after,
    )
    for _ in range(args.operations):
        session.run_collective(args.op, root=0)
    session.close()
    if args.json:
        print(json.dumps(_session_summary(session)))
    else:
        _print_session_summary(session, show_faults=args.faults is not None)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    import json

    from .runtime import TraceSession

    trace = None if args.trace is None else _load_any_trace(args.trace)
    session = TraceSession.resume(
        args.directory,
        trace=trace,
        faults=args.faults,
        crash_after=args.crash_after,
    )
    recovered_at = session.stats.operations
    while session.stats.operations < args.operations:
        session.run_collective(args.op, root=0)
    session.close()
    if args.json:
        print(json.dumps(_session_summary(session, recovered_at=recovered_at)))
    else:
        _print_session_summary(
            session,
            show_faults=session.fault_schedule is not None,
            recovered_at=recovered_at,
        )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json
    import os

    from .core.detectors import parse_detector_params
    from .fleet import ClusterSpec, FleetConfig, FleetScheduler
    from .observability import active

    if args.synthesize is not None:
        if args.traces:
            print("error: give trace files or --synthesize, not both",
                  file=sys.stderr)
            return 2
        if args.synthesize < 1:
            print("error: --synthesize must be >= 1", file=sys.stderr)
            return 2
        from .cloudsim.tracegen import TraceConfig, generate_trace

        cfg_t = TraceConfig(n_machines=args.machines, n_snapshots=args.snapshots)
        clusters = [
            ClusterSpec(
                name=f"cluster-{i:02d}",
                trace=generate_trace(cfg_t, seed=args.seed + i),
            )
            for i in range(args.synthesize)
        ]
    elif args.traces:
        clusters = []
        for i, path in enumerate(args.traces):
            stem = os.path.splitext(os.path.basename(path))[0]
            clusters.append(
                ClusterSpec(name=f"{i:02d}-{stem}", trace=_load_any_trace(path))
            )
    else:
        print("error: give trace files or --synthesize N", file=sys.stderr)
        return 2

    config = FleetConfig(
        n_workers=args.n_workers,
        window=args.window,
        threshold=args.threshold,
        nbytes=args.message_mb * MB,
        solver=args.solver,
        svd_backend=args.svd_backend,
        elementwise_backend=args.elementwise_backend,
        mode=args.mode,
        stream_tolerance=args.stream_tolerance,
        stream_refresh_every=args.stream_refresh_every,
        operations=args.operations,
        op=args.op,
        batch_size=args.batch_size,
        batch_dtype=args.batch_dtype,
        checkpoint_root=args.checkpoint_root,
        on_error=args.on_error,
        max_task_retries=args.max_task_retries,
        retry_backoff_s=args.retry_backoff,
        max_worker_restarts=args.max_worker_restarts,
        task_timeout_s=args.task_timeout,
        regime_detector=args.regime,
        regime_params=(
            parse_detector_params(args.regime_params) or None
        ),
    )
    # Under --profile the CLI sink is active: make it the fleet sink so the
    # per-cluster counters and solve spans merged back from the workers show
    # up in the final report.
    sinks = active()
    scheduler = FleetScheduler(
        clusters, config, instrumentation=sinks[0] if sinks else None
    )
    # A degraded report (any cluster not "ok") still prints in full — the
    # healthy clusters' results are complete — but the exit code goes
    # nonzero so scripts and CI notice the partial outcome.
    if args.sweep:
        report = (
            scheduler.run_sweep_serial() if args.serial else scheduler.run_sweep()
        )
        exit_code = 3 if report.degraded else 0
        if args.json:
            print(json.dumps(report.summary()))
            return exit_code
        mode = "serial" if args.serial else f"{report.n_workers} worker(s)"
        print(f"sweep:    {len(report.clusters)} cluster(s), {mode}, "
              f"dtype={report.batch_dtype}")
        print(f"shards:   {report.total_shards} "
              f"(batch size {report.batch_size})")
        print(f"elapsed:  {report.elapsed_s:.3f} s "
              f"({report.throughput_solves_s:.1f} solves/s)")
        _print_fleet_health(report)
        for name in sorted(report.clusters):
            res = report.clusters[name]
            suffix = "" if res.ok else f" status={res.status}"
            print(f"  {name}: rank={res.rank} iters={res.iterations} "
                  f"Norm(N_E)={res.norm_ne:.4f} verdict={res.verdict}{suffix}")
        return exit_code
    report = scheduler.run_serial() if args.serial else scheduler.run()
    exit_code = 3 if report.degraded else 0
    if args.json:
        print(json.dumps(report.summary()))
        return exit_code
    mode = "serial" if args.serial else f"{report.n_workers} worker(s)"
    print(f"fleet:      {len(report.clusters)} cluster(s), {mode}")
    print(f"operations: {report.total_operations} "
          f"({report.total_batches} batches)")
    print(f"elapsed:    {report.elapsed_s:.3f} s "
          f"({report.throughput_ops_s:.1f} ops/s)")
    _print_fleet_health(report)
    for name in sorted(report.clusters):
        rep = report.clusters[name]
        suffix = "" if rep.ok else f" status={rep.status}"
        print(f"  {name}: ops={rep.operations} recals={rep.recalibrations} "
              f"Norm(N_E)={rep.norm_ne:.4f} verdict={rep.verdict}{suffix}")
    return exit_code


def _print_fleet_health(report) -> None:
    """One health line, plus a degraded warning when any cluster is sick."""
    health = report.health()
    print(f"health:     restarts={health['worker_restarts']} "
          f"retries={health['task_retries']} "
          f"timeouts={health['task_timeouts']} "
          f"quarantined={health['clusters_quarantined']}")
    if health["regime_shifts"] or health["regime_spikes"]:
        print(f"regime:     shifts={health['regime_shifts']} "
              f"spikes={health['regime_spikes']} "
              f"forced_recals={health['forced_recalibrations']}")
    if report.degraded:
        sick = sorted(
            name for name, status in report.statuses().items() if status != "ok"
        )
        print(f"DEGRADED:   {len(sick)} cluster(s) did not finish healthy: "
              f"{', '.join(sick)}")


def _cmd_changepoints(args: argparse.Namespace) -> int:
    from .analysis.changepoints import detect_regime_changes

    trace = _load_any_trace(args.trace)
    changes = detect_regime_changes(
        trace, window=args.window, threshold=args.threshold
    )
    if not changes:
        print("no regime changes detected")
        return 0
    for c in changes:
        print(f"snapshot {c.snapshot}: relative shift {c.shift:.3f}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments.figures_runner import run_all_figures

    reports = run_all_figures(
        scale=args.scale,
        include_simulation=args.simulation,
        seed=args.seed,
        emit=print,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(f"# Regenerated figures (scale: {args.scale}, seed: {args.seed})\n")
            for r in reports:
                fh.write(f"\n## {r.figure}\n\n```\n{r.text}\n```\n")
        print(f"wrote {args.output}")
    print(f"regenerated {len(reports)} figures at {args.scale!r} scale")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "decompose": _cmd_decompose,
    "compare": _cmd_compare,
    "replay": _cmd_replay,
    "resume": _cmd_resume,
    "fleet": _cmd_fleet,
    "changepoints": _cmd_changepoints,
    "figures": _cmd_figures,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "profile", False):
        from .observability import Instrumentation, instrumented

        instr = Instrumentation(args.command)
        with instrumented(instr):
            code = _COMMANDS[args.command](args)
        print()
        print(instr.report())
        return code
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
