"""Unit tests for controlled Norm(N_E) noise injection."""

import numpy as np
import pytest

from repro.cloudsim.noise import inject_noise_to_target, measure_trace_norm_ne
from repro.errors import ValidationError

MB = 1024 * 1024


class TestMeasure:
    def test_calm_trace_is_stable(self, calm_trace):
        ne = measure_trace_norm_ne(calm_trace)
        assert ne < 0.01

    def test_default_trace_near_ec2_level(self, small_trace):
        # The generator's defaults are tuned to the paper's EC2 reading.
        ne = measure_trace_norm_ne(small_trace)
        assert 0.05 < ne < 0.2

    def test_time_step_restricts_rows(self, small_trace):
        full = measure_trace_norm_ne(small_trace)
        head = measure_trace_norm_ne(small_trace, time_step=5)
        assert full != head  # different windows, different norms


class TestInject:
    def test_reaches_target(self, small_trace):
        noised, achieved = inject_noise_to_target(
            small_trace, 0.3, tolerance=0.02, seed=0
        )
        assert abs(achieved - 0.3) <= 0.02
        # Re-measuring the returned trace reproduces the reported norm.
        assert measure_trace_norm_ne(noised) == pytest.approx(achieved)

    def test_monotone_targets(self, small_trace):
        _, a1 = inject_noise_to_target(small_trace, 0.2, seed=1)
        _, a2 = inject_noise_to_target(small_trace, 0.4, seed=1)
        assert a2 > a1

    def test_target_below_intrinsic_rejected(self, small_trace):
        base = measure_trace_norm_ne(small_trace)
        with pytest.raises(ValidationError, match="cannot reduce"):
            inject_noise_to_target(small_trace, base / 4.0, seed=2)

    def test_target_at_intrinsic_is_noop(self, small_trace):
        base = measure_trace_norm_ne(small_trace)
        noised, achieved = inject_noise_to_target(
            small_trace, base, tolerance=0.02, seed=3
        )
        assert achieved == pytest.approx(base)
        np.testing.assert_array_equal(noised.beta, small_trace.beta)

    def test_deterministic(self, small_trace):
        n1, a1 = inject_noise_to_target(small_trace, 0.25, seed=7)
        n2, a2 = inject_noise_to_target(small_trace, 0.25, seed=7)
        assert a1 == a2
        np.testing.assert_array_equal(n1.beta, n2.beta)

    def test_invalid_target(self, small_trace):
        with pytest.raises(ValidationError):
            inject_noise_to_target(small_trace, 1.5)

    def test_preserves_trace_shape(self, small_trace):
        noised, _ = inject_noise_to_target(small_trace, 0.3, seed=4)
        assert noised.alpha.shape == small_trace.alpha.shape
        np.testing.assert_array_equal(noised.timestamps, small_trace.timestamps)
