"""Smoke tests: every fast example script runs to completion.

Keeps the examples in README honest — they execute with the installed
package in a fresh interpreter, the way a user would run them. The two
heavyweight examples (`nbody_cg_applications`, `datacenter_simulation`)
are exercised by the benchmark suite instead.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "mpi_collectives_on_cloud.py",
    "topology_mapping.py",
    "adaptive_maintenance.py",
    "mpi_programming.py",
    "workflow_economics.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} printed nothing"


def test_all_examples_listed_or_known():
    # Every example on disk is either smoke-tested here or explicitly
    # delegated to the benchmarks.
    heavy = {"nbody_cg_applications.py", "datacenter_simulation.py"}
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | heavy
