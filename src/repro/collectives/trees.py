"""Communication-tree structure and the MPICH-order binomial tree.

A :class:`CommTree` is a rooted spanning tree over machine indices with an
explicit *send order* per parent: in the α-β store-and-forward model a parent
sends to its children one after another, so the order matters — children that
head larger subtrees should be served first (which is exactly what the
binomial construction does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError

__all__ = ["CommTree", "binomial_tree"]


@dataclass(frozen=True)
class CommTree:
    """Rooted communication tree over machines ``0..n-1``.

    Attributes
    ----------
    root:
        Root machine index.
    parent:
        ``parent[i]`` is the parent of *i* (−1 for the root).
    children:
        ``children[i]`` is the tuple of *i*'s children **in send order**.
    """

    root: int
    parent: np.ndarray
    children: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        p = np.asarray(self.parent, dtype=np.intp).copy()
        n = p.size
        if n == 0:
            raise ValidationError("tree must have at least one node")
        if not 0 <= int(self.root) < n:
            raise ValidationError("root out of range")
        if p[self.root] != -1:
            raise ValidationError("root's parent must be -1")
        if len(self.children) != n:
            raise ValidationError("children list must cover every node")
        # Validate parent/children consistency and acyclicity in one pass.
        seen_edges = 0
        for node, kids in enumerate(self.children):
            for c in kids:
                if not 0 <= c < n:
                    raise ValidationError(f"child {c} out of range")
                if p[c] != node:
                    raise ValidationError(f"child {c} disagrees with parent array")
                seen_edges += 1
        if seen_edges != n - 1:
            raise ValidationError(
                f"tree must have exactly n-1 edges, found {seen_edges}"
            )
        # Reachability from root ⇒ spanning and acyclic given the edge count.
        reached = np.zeros(n, dtype=bool)
        stack = [int(self.root)]
        reached[self.root] = True
        while stack:
            u = stack.pop()
            for c in self.children[u]:
                if reached[c]:
                    raise ValidationError("cycle detected in tree")
                reached[c] = True
                stack.append(c)
        if not reached.all():
            raise ValidationError("tree does not span all nodes")
        p.setflags(write=False)
        object.__setattr__(self, "root", int(self.root))
        object.__setattr__(self, "parent", p)
        object.__setattr__(
            self, "children", tuple(tuple(int(c) for c in k) for k in self.children)
        )

    @property
    def n_nodes(self) -> int:
        return self.parent.size

    @classmethod
    def from_parent(
        cls, root: int, parent: np.ndarray, *, child_order: str = "insertion"
    ) -> "CommTree":
        """Build from a parent array; children keep index order.

        *child_order* ``"insertion"`` keeps ascending node-index order, which
        matches how the FNF iterations append children.
        """
        p = np.asarray(parent, dtype=np.intp)
        kids: list[list[int]] = [[] for _ in range(p.size)]
        for node in range(p.size):
            if node != root:
                kids[p[node]].append(node)
        return cls(root=root, parent=p, children=tuple(tuple(k) for k in kids))

    def subtree_sizes(self) -> np.ndarray:
        """Node count of every subtree (leaf = 1), computed bottom-up."""
        n = self.n_nodes
        size = np.ones(n, dtype=np.intp)
        # Process nodes in reverse BFS order so children come before parents.
        order: list[int] = [self.root]
        for u in order:
            order.extend(self.children[u])
        for u in reversed(order):
            for c in self.children[u]:
                size[u] += size[c]
        return size

    def depth(self) -> int:
        """Number of edges on the longest root-to-leaf path."""
        depth = np.zeros(self.n_nodes, dtype=np.intp)
        order: list[int] = [self.root]
        for u in order:
            for c in self.children[u]:
                depth[c] = depth[u] + 1
                order.append(c)
        return int(depth.max())

    def edges(self) -> list[tuple[int, int]]:
        """All (parent, child) edges in BFS order."""
        out: list[tuple[int, int]] = []
        queue = [self.root]
        for u in queue:
            for c in self.children[u]:
                out.append((u, c))
                queue.append(c)
        return out

    def longest_path_weight(self, weights: np.ndarray) -> float:
        """Total weight of the heaviest root-to-leaf path (paper Fig 1 metric)."""
        w = np.asarray(weights, dtype=np.float64)
        best = 0.0
        acc = np.zeros(self.n_nodes)
        order = [self.root]
        for u in order:
            for c in self.children[u]:
                acc[c] = acc[u] + w[u, c]
                best = max(best, float(acc[c]))
                order.append(c)
        return best


def binomial_tree(n: int, root: int = 0) -> CommTree:
    """MPICH-order binomial tree over *n* ranks rooted at *root*.

    This is the Baseline structure (paper Sec V-A, "the binomial tree
    algorithm … implementations from MPICH2"). MPICH's convention: ranks are
    renumbered relative to the root; relative rank ``r`` receives from
    ``r − lsb(r)`` (its lowest set bit cleared), then sends to
    ``r + lsb(r)/2, r + lsb(r)/4, …, r + 1`` — i.e. children in descending
    subtree size, which minimizes the critical path on homogeneous links.
    """
    if n < 1:
        raise ValidationError("n must be >= 1")
    if not 0 <= root < n:
        raise ValidationError("root out of range")

    def absolute(rel: int) -> int:
        return (rel + root) % n

    parent = np.full(n, -1, dtype=np.intp)
    children: list[list[int]] = [[] for _ in range(n)]
    for rel in range(1, n):
        lsb = rel & -rel
        parent[absolute(rel)] = absolute(rel - lsb)
    # smallest power of two >= n: the root's send mask starts below it.
    pof2 = 1 << max(0, (n - 1).bit_length())
    for rel in range(n):
        mask = (rel & -rel) >> 1 if rel != 0 else pof2 >> 1
        while mask > 0:
            child_rel = rel + mask
            if child_rel < n:
                children[absolute(rel)].append(absolute(child_rel))
            mask >>= 1
    return CommTree(
        root=root, parent=parent, children=tuple(tuple(c) for c in children)
    )
