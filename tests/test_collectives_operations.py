"""Unit tests for the high-level collective entry points."""

import numpy as np
import pytest

from repro.collectives.operations import Collective, CollectiveRun, build_tree, run_collective


def uniform_net(n, beta=1.0):
    a = np.zeros((n, n))
    b = np.full((n, n), beta)
    np.fill_diagonal(b, np.inf)
    return a, b


def weights(n, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.uniform(0.5, 2.0, size=(n, n))
    np.fill_diagonal(w, 0.0)
    return w


class TestBuildTree:
    def test_binomial_ignores_weights(self):
        t1 = build_tree(8, 0, algorithm="binomial")
        t2 = build_tree(8, 0, algorithm="binomial", weights=weights(8))
        assert t1.children == t2.children

    def test_fnf_requires_weights(self):
        with pytest.raises(ValueError, match="requires"):
            build_tree(4, 0, algorithm="fnf")

    def test_fnf_weight_size_checked(self):
        with pytest.raises(ValueError, match="size"):
            build_tree(4, 0, algorithm="fnf", weights=weights(5))

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown"):
            build_tree(4, 0, algorithm="steiner")


class TestRunCollective:
    def test_accepts_enum_and_string(self):
        a, b = uniform_net(4)
        r1 = run_collective("broadcast", live_alpha=a, live_beta=b, nbytes=1.0)
        r2 = run_collective(
            Collective.BROADCAST, live_alpha=a, live_beta=b, nbytes=1.0
        )
        assert r1.elapsed_time == r2.elapsed_time
        assert isinstance(r1, CollectiveRun)

    def test_expected_from_weights(self):
        a, b = uniform_net(6)
        w = weights(6)
        r = run_collective(
            "broadcast",
            live_alpha=a,
            live_beta=b,
            nbytes=2.0,
            algorithm="fnf",
            estimate_weights=w,
        )
        assert r.expected_time is not None and r.expected_time > 0

    def test_expected_from_alphabeta_estimate(self):
        a, b = uniform_net(4)
        ea, eb = uniform_net(4, beta=2.0)
        r = run_collective(
            "broadcast",
            live_alpha=a,
            live_beta=b,
            nbytes=4.0,
            estimate_alpha=ea,
            estimate_beta=eb,
        )
        # Estimate network is 2x faster, so expectation is half the elapsed.
        assert r.expected_time == pytest.approx(r.elapsed_time / 2.0)

    def test_no_estimate_means_no_expectation(self):
        a, b = uniform_net(4)
        r = run_collective("broadcast", live_alpha=a, live_beta=b, nbytes=1.0)
        assert r.expected_time is None

    def test_perfect_estimate_matches_reality(self):
        a, b = uniform_net(5, beta=7.0)
        r = run_collective(
            "scatter",
            live_alpha=a,
            live_beta=b,
            nbytes=3.0,
            estimate_alpha=a,
            estimate_beta=b,
        )
        assert r.expected_time == pytest.approx(r.elapsed_time)

    def test_fnf_beats_binomial_on_skewed_network(self):
        # Make one "hub" machine with great links; FNF exploits it.
        n = 8
        rng = np.random.default_rng(3)
        w = rng.uniform(5.0, 10.0, size=(n, n))
        w[0, :] = w[:, 0] = 0.5
        np.fill_diagonal(w, 0.0)
        from repro.collectives.exec_model import weights_to_alphabeta

        a, b = weights_to_alphabeta(w, 1.0)
        r_fnf = run_collective(
            "broadcast", live_alpha=a, live_beta=b, nbytes=1.0,
            algorithm="fnf", estimate_weights=w,
        )
        r_bin = run_collective("broadcast", live_alpha=a, live_beta=b, nbytes=1.0)
        assert r_fnf.elapsed_time < r_bin.elapsed_time
