"""The N/2-pairs-per-round measurement schedule.

The circle method (round-robin tournament scheduling) partitions the
complete graph on N vertices into N−1 perfect matchings (N even; for odd N,
N matchings with one idle machine each). Measuring each matching in both
directions covers every ordered pair in ``2(N−1)`` (or ``2N``) rounds —
the "2 × N" cost the paper quotes — with every machine busy at most once
per round, so concurrent ping-pongs never share an endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError

__all__ = ["pairing_rounds", "PairingSchedule"]


@dataclass(frozen=True)
class PairingSchedule:
    """A full ordered-pair measurement schedule.

    Attributes
    ----------
    n_machines:
        Cluster size N.
    rounds:
        Tuple of rounds; each round is a tuple of disjoint ordered
        ``(sender, receiver)`` pairs measured concurrently.
    """

    n_machines: int
    rounds: tuple[tuple[tuple[int, int], ...], ...]

    def __post_init__(self) -> None:
        seen: set[tuple[int, int]] = set()
        for rnd in self.rounds:
            endpoints: set[int] = set()
            for s, r in rnd:
                if s == r:
                    raise ValidationError("self-pairs are not allowed")
                if s in endpoints or r in endpoints:
                    raise ValidationError("a machine appears twice in one round")
                endpoints.update((s, r))
                if (s, r) in seen:
                    raise ValidationError(f"pair {(s, r)} scheduled twice")
                seen.add((s, r))
        n = self.n_machines
        expected = n * (n - 1)
        if len(seen) != expected:
            raise ValidationError(
                f"schedule covers {len(seen)} ordered pairs, expected {expected}"
            )

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)


def pairing_rounds(n: int) -> PairingSchedule:
    """Build the circle-method schedule covering all ordered pairs of ``n`` machines.

    Returns ``2(n−1)`` rounds for even *n* and ``2n`` rounds for odd *n*
    (one idle machine per round). ``n`` must be at least 2.
    """
    if n < 2:
        raise ValidationError("need at least 2 machines to schedule pairs")
    # Circle method: fix vertex 0 (or the bye marker for odd n), rotate the rest.
    if n % 2 == 0:
        ids = list(range(n))
        bye = None
    else:
        ids = list(range(n)) + [-1]  # -1 = bye
        bye = -1
    m = len(ids)
    half = m // 2
    rounds: list[tuple[tuple[int, int], ...]] = []
    arr = ids[:]
    for _ in range(m - 1):
        fwd: list[tuple[int, int]] = []
        rev: list[tuple[int, int]] = []
        for k in range(half):
            a, b = arr[k], arr[m - 1 - k]
            if bye is not None and (a == bye or b == bye):
                continue
            fwd.append((a, b))
            rev.append((b, a))
        rounds.append(tuple(fwd))
        rounds.append(tuple(rev))
        # Rotate all but the first element.
        arr = [arr[0]] + [arr[-1]] + arr[1:-1]
    return PairingSchedule(n_machines=n, rounds=tuple(rounds))
