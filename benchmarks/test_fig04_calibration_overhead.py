"""Fig 4 — overhead of calibrating the temporal performance matrix.

Paper anchors: just under 4 minutes at 64 instances, about 10 minutes at
196, near-linear in the number of instances.
"""

import numpy as np

from repro.experiments import fig04_overhead
from repro.experiments.report import format_table


def test_fig04_calibration_overhead(benchmark, emit):
    result = benchmark(fig04_overhead.run, sizes=(16, 32, 64, 96, 128, 160, 196))

    rows = [(n, s, m, r) for n, s, m, r in result.as_rows()]
    emit(
        format_table(
            ["instances", "seconds", "minutes", "schedule rounds"],
            rows,
            title="Fig 4: calibration overhead (time step = 10)",
        )
    )

    ys = np.array(result.overhead_seconds)
    assert np.all(np.diff(ys) > 0)
    assert result.overhead_seconds[2] < 240.0  # 64 instances < 4 min
    assert 480 < result.overhead_seconds[-1] < 780  # 196 instances ≈ 10 min
