"""RPCA via the accelerated proximal gradient method with continuation.

This is the solver the paper adopts ("the approach by Ji et al. [20], their
implementation [35]" — the Accelerated Proximal Gradient sample code from the
Illinois matrix-rank page). It solves the relaxed RPCA program

    minimize   mu ||D||_* + mu λ ||E||_1 + 1/2 ||D + E - A||_F^2

driving ``mu`` down a geometric continuation schedule ``mu ← max(η·mu, mū)``
so the solution path approaches the constrained problem

    minimize   ||D||_* + λ ||E||_1   subject to   A = D + E.

The iteration is FISTA-style: momentum extrapolation ``Y = X_k + ((t_{k-1}-1)/t_k)
(X_k - X_{k-1})`` on both blocks, a gradient step on the smooth coupling term
(Lipschitz constant 2, hence the 1/2 step), then the two proximal maps —
singular value thresholding for ``D`` and soft thresholding for ``E``.

Warm starts
-----------
Algorithm-1 re-calibrations solve near-identical problems — successive
TP-matrix windows share all but one snapshot row — so
:func:`rpca_apg` accepts the previous window's ``(D, E)`` as a *warm start*.
The continuation schedule exists to get a cold start (``D = E = 0``) safely
through the high-``mu`` regime; a warm iterate does not need that ramp, so a
warm solve restarts ``mu`` at ``warm_mu_factor × σ₁`` instead of ``0.99 σ₁``
and skips the iterations the cold schedule spends decaying between the two.
Because APG-with-continuation is path-dependent, the warm split can differ
from the cold one at roughly the ``warm_mu_factor``-controlled level (about
1e-3 relative on the constant row at the 0.1 default, measured on EC2-like
traces); callers that need the bitwise cold answer simply omit ``warm_start``.

Partial observations
--------------------
Real calibration snapshots lose probes and whole VMs; ``mask`` marks which
entries of ``A`` were observed. The masked program replaces the coupling
term with ``1/2 ||P_Ω(D + E - A)||_F²`` (Ω the observed set), so the
gradient — and therefore all data pressure — vanishes on unobserved
entries: the nuclear-norm prox *completes* ``D`` there, and ``E`` is kept
supported on Ω (an unobserved entry cannot witness a transient error).
With ``mask=None`` (or an all-true mask) every operation below reduces to
the exact unmasked expressions, bit for bit.
"""

from __future__ import annotations

import numpy as np

from .. import observability
from .._validation import as_float_matrix, check_positive
from ..errors import ConvergenceError, ValidationError
from .elementwise import (
    ElementwiseKernel,
    check_ew_svd_compatible,
    validate_ew_backend,
)
from .kernels import RankPredictor, SolveWorkspace, SVTKernel, validate_backend
from .result import SolverResult
from .svd_ops import (
    singular_value_threshold,
    soft_threshold,
    spectral_norm,
    truncated_svd,
)

__all__ = ["APGResult", "rpca_apg", "default_lambda", "validate_mask"]

# Backward-compatible alias: every solver now returns the shared contract.
APGResult = SolverResult


def default_lambda(shape: tuple[int, int]) -> float:
    """The standard RPCA trade-off ``λ = 1 / sqrt(max(m, n))`` (Candès et al.)."""
    return 1.0 / np.sqrt(max(shape))


def validate_mask(
    mask: object | None, shape: tuple[int, int]
) -> np.ndarray | None:
    """Validate an observation mask against the data shape.

    Returns ``None`` when the mask is absent *or* all-true, so callers can
    gate every masked code path on ``mask is not None`` and keep the
    fully-observed path identical to the historical one. An all-false mask
    is rejected — there is nothing to decompose.
    """
    if mask is None:
        return None
    m = np.asarray(mask)
    if m.dtype != np.bool_:
        raise ValidationError("mask must be a boolean array")
    if m.shape != shape:
        raise ValidationError(f"mask shape {m.shape} does not match data {shape}")
    if m.all():
        return None
    if not m.any():
        raise ValidationError("mask must observe at least one entry")
    return np.ascontiguousarray(m)


def _unpack_warm_start(
    warm_start: object, shape: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a warm start — a :class:`SolverResult` or ``(D, E)`` pair."""
    if hasattr(warm_start, "low_rank") and hasattr(warm_start, "sparse"):
        d0, e0 = warm_start.low_rank, warm_start.sparse  # type: ignore[attr-defined]
    else:
        try:
            d0, e0 = warm_start  # type: ignore[misc]
        except (TypeError, ValueError):
            raise TypeError(
                "warm_start must be a SolverResult or a (low_rank, sparse) pair"
            ) from None
    d0 = np.asarray(d0, dtype=np.float64)
    e0 = np.asarray(e0, dtype=np.float64)
    if d0.shape != shape or e0.shape != shape:
        raise ValueError(
            f"warm_start shape {d0.shape}/{e0.shape} does not match data {shape}"
        )
    return d0.copy(), e0.copy()


def rpca_apg(
    a: np.ndarray,
    lam: float | None = None,
    *,
    tol: float = 1e-7,
    max_iter: int = 500,
    eta: float = 0.9,
    mu_floor_factor: float = 1e-9,
    raise_on_fail: bool = False,
    warm_start: object | None = None,
    warm_mu_factor: float = 0.1,
    mask: np.ndarray | None = None,
    svd_backend: str = "exact",
    elementwise_backend: str = "reference",
    rank_predictor: RankPredictor | None = None,
) -> SolverResult:
    """Decompose ``a ≈ D + E`` with the APG RPCA solver.

    Parameters
    ----------
    a:
        Data matrix (the TP-matrix in this package's use).
    mask:
        Boolean observation mask of the same shape as *a* (``True`` =
        observed). Unobserved entries of *a* are ignored — ``D`` is
        completed there by the nuclear-norm prox and ``E`` is forced to
        zero. ``None`` (or all-true) is the fully-observed path.
    lam:
        Sparsity trade-off λ; defaults to ``1/sqrt(max(m, n))``.
    tol:
        Relative stationarity tolerance on ``||S_{k+1}||_F / ||A||_F`` where
        ``S`` is the proximal-gradient stationarity gap (same criterion as
        the reference implementation).
    max_iter:
        Iteration budget.
    eta:
        Continuation decay for ``mu``; must be in (0, 1).
    mu_floor_factor:
        ``mū = mu_floor_factor × mu_0``; the continuation floor.
    raise_on_fail:
        If true, raise :class:`~repro.errors.ConvergenceError` instead of
        returning a non-converged result.
    warm_start:
        Previous solution to start from — a :class:`SolverResult` or a
        ``(low_rank, sparse)`` pair of the same shape as *a*. Intended for
        re-solving an overlapping window (Algorithm-1 re-calibration); see
        the module docstring for the fidelity/speed trade-off.
    warm_mu_factor:
        Initial ``mu`` as a fraction of ``σ₁`` when warm-starting (cold
        starts always use the reference 0.99). Smaller is faster but lets
        the warm split drift further from the cold one; must be in (0, 1).
    svd_backend:
        SVD backend under the singular value thresholding (see
        :mod:`repro.core.kernels`). ``"exact"`` (default) is the historical
        full-``gesdd`` path, bit-identical to previous releases. The
        partial backends (``"gram"``, ``"randomized"``, ``"auto"``) also
        switch the iteration loop to a preallocated workspace and replace
        the init-time full SVD with a spectral-norm computation; results
        agree with ``"exact"`` to solver tolerance, not bit-for-bit.
    elementwise_backend:
        Elementwise kernel for the non-SVD parts of each iteration (see
        :mod:`repro.core.elementwise`). ``"reference"`` (default) is the
        historical ufunc chain; ``"fused"`` is bit-identical to it with
        better cache locality; ``"jit"`` needs numba and is certified to
        the same tolerance contract as the batch float32 mode. Anything
        but ``"reference"`` requires a non-``exact`` *svd_backend* — the
        exact loop is the bit-pinned historical path.
    rank_predictor:
        Adaptive rank-prediction state shared across solves (see
        :class:`~repro.core.kernels.RankPredictor`); used only by the
        partial backends. A fresh predictor is created per solve if
        omitted — pass the previous solve's to start warm.
    """
    A = as_float_matrix(a, "a")
    m, n = A.shape
    lam_v = default_lambda((m, n)) if lam is None else check_positive(lam, "lam")
    if not 0.0 < eta < 1.0:
        raise ValueError(f"eta must be in (0, 1), got {eta}")
    if not 0.0 < warm_mu_factor < 1.0:
        raise ValueError(f"warm_mu_factor must be in (0, 1), got {warm_mu_factor}")
    if max_iter < 1:
        raise ValueError("max_iter must be >= 1")
    validate_backend(svd_backend)
    validate_ew_backend(elementwise_backend)
    check_ew_svd_compatible(svd_backend, elementwise_backend)
    omega = validate_mask(mask, A.shape)
    if omega is not None:
        A = np.where(omega, A, 0.0)  # placeholder values must carry no signal

    norm_a = np.linalg.norm(A)
    if norm_a == 0.0:
        zero = np.zeros_like(A)
        return SolverResult(zero, zero.copy(), 0, 0, True, 0.0)

    if svd_backend != "exact":
        return _rpca_apg_fast(
            A,
            lam_v,
            norm_a=norm_a,
            tol=tol,
            max_iter=max_iter,
            eta=eta,
            mu_floor_factor=mu_floor_factor,
            raise_on_fail=raise_on_fail,
            warm_start=warm_start,
            warm_mu_factor=warm_mu_factor,
            omega=omega,
            svd_backend=svd_backend,
            elementwise_backend=elementwise_backend,
            rank_predictor=rank_predictor,
        )

    # mu_0 = second singular value heuristic is common; the reference code
    # starts at 0.99 * ||A||_2 which is cheap and robust. L = 2 (two blocks).
    _, s, _ = truncated_svd(A)
    mu_top = float(s[0])
    mu_bar = mu_floor_factor * 0.99 * mu_top

    warm = warm_start is not None
    if warm:
        D, E = _unpack_warm_start(warm_start, A.shape)
        mu = max(mu_bar, warm_mu_factor * mu_top)
    else:
        D = np.zeros_like(A)
        E = np.zeros_like(A)
        mu = 0.99 * mu_top
    D_prev = D.copy()
    E_prev = E.copy()
    t, t_prev = 1.0, 1.0

    rank = 0
    residual = np.inf
    converged = False
    iterations = 0

    for iterations in range(1, max_iter + 1):
        beta = (t_prev - 1.0) / t
        YD = D + beta * (D - D_prev)
        YE = E + beta * (E - E_prev)

        # Gradient of 1/2||P_Ω(D+E-A)||_F^2 w.r.t. both blocks is
        # P_Ω(YD + YE - A); the Lipschitz constant over the joint block
        # variable is 2. Unmasked, P_Ω is the identity.
        G = 0.5 * (YD + YE - A)
        if omega is not None:
            G *= omega
        M = YD - G
        with observability.timed("kernel.svt_seconds"):
            D_new, rank, _ = singular_value_threshold(M, mu / 2.0)
        E_new = soft_threshold(YE - G, lam_v * mu / 2.0)
        if omega is not None:
            E_new *= omega  # a transient error needs a witness

        # Stationarity gap of the reference implementation:
        # S = 2(Y - X_{k+1}) + (X_{k+1} - Y) summed over blocks.
        diff = D_new + E_new - YD - YE
        if omega is not None:
            diff = diff * omega
        SD = 2.0 * (YD - D_new) + diff
        SE = 2.0 * (YE - E_new) + diff
        residual = float(
            np.sqrt(np.linalg.norm(SD) ** 2 + np.linalg.norm(SE) ** 2) / norm_a
        )

        D_prev, E_prev = D, E
        D, E = D_new, E_new
        t_prev, t = t, (1.0 + np.sqrt(1.0 + 4.0 * t * t)) / 2.0
        mu = max(eta * mu, mu_bar)

        if residual < tol:
            converged = True
            break

    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"APG RPCA did not converge in {max_iter} iterations "
            f"(residual {residual:.3e} > tol {tol:.3e})",
            iterations=iterations,
            residual=residual,
        )
    return SolverResult(
        low_rank=D,
        sparse=E,
        rank=rank,
        iterations=iterations,
        converged=converged,
        residual=residual,
        warm_started=warm,
    )


def _rpca_apg_fast(
    A: np.ndarray,
    lam_v: float,
    *,
    norm_a: float,
    tol: float,
    max_iter: int,
    eta: float,
    mu_floor_factor: float,
    raise_on_fail: bool,
    warm_start: object | None,
    warm_mu_factor: float,
    omega: np.ndarray | None,
    svd_backend: str,
    elementwise_backend: str = "reference",
    rank_predictor: RankPredictor | None,
) -> SolverResult:
    """APG iteration over the partial-SVD and elementwise kernel layers.

    Same mathematics as the exact loop above, restructured for speed:

    * singular value thresholding goes through an
      :class:`~repro.core.kernels.SVTKernel` (partial SVD + adaptive rank
      prediction) instead of a full ``gesdd``;
    * the init-time full SVD for ``σ₁`` becomes a
      :func:`~repro.core.svd_ops.spectral_norm`;
    * every iteration writes into a preallocated
      :class:`~repro.core.kernels.SolveWorkspace` — steady-state iterations
      allocate no new ``m × n`` temporaries;
    * the unmasked loop uses two algebraic identities of the exact
      expressions: with ``T = Y_D − Y_E`` the two proximal inputs are
      ``Y_D − G = (T + A)/2`` and ``Y_E − G = A − (Y_D − G)``, and the two
      stationarity blocks satisfy ``S_E = −S_D`` with
      ``S_D = T − (D₊ − E₊)``, so one ``m × n`` pass replaces six;
    * the step recurrences themselves run on an
      :class:`~repro.core.elementwise.ElementwiseKernel`, whose ``fused``
      and ``jit`` backends cut the remaining full-array passes.

    The reordered floating-point arithmetic makes results agree with the
    exact path to solver tolerance (≈ ``tol`` on the relative residual),
    not bit-for-bit — which is why this path is opt-in via *svd_backend*.
    """
    kernel = SVTKernel(A.shape, svd_backend, rank_predictor=rank_predictor)
    ew = ElementwiseKernel(elementwise_backend)
    ws = SolveWorkspace(A.shape)

    def svt_into(M: np.ndarray, tau: float, out: np.ndarray) -> int:
        return kernel.svt(M, tau, out=out)[1]

    def fro(X: np.ndarray) -> float:
        return float(np.linalg.norm(X))

    mu_top = spectral_norm(A)
    mu_bar = mu_floor_factor * 0.99 * mu_top

    warm = warm_start is not None
    if warm:
        D0, E0 = _unpack_warm_start(warm_start, A.shape)
        mu = max(mu_bar, warm_mu_factor * mu_top)
    else:
        D0 = np.zeros_like(A)
        E0 = np.zeros_like(A)
        mu = 0.99 * mu_top
    t, t_prev = 1.0, 1.0
    rank = 0
    residual = np.inf
    converged = False
    iterations = 0
    sqrt2 = float(np.sqrt(2.0))

    if omega is None:
        # Momentum state is carried through F = D − E (see docstring).
        D, E, F, Fp, T, MD, ME, Dn, En, S = ws.bufs(
            "D", "E", "F", "Fp", "T", "MD", "ME", "Dn", "En", "S"
        )
        np.copyto(D, D0)
        np.copyto(E, E0)
        np.subtract(D, E, out=F)
        np.copyto(Fp, F)
        for iterations in range(1, max_iter + 1):
            beta = (t_prev - 1.0) / t
            rank = ew.apg_step_unmasked(
                A, F, Fp, T, MD, ME, Dn, En, S,
                beta, mu / 2.0, lam_v * mu / 2.0, svt_into,
            )
            F, Fp = Fp, F
            residual = float(sqrt2 * np.linalg.norm(S) / norm_a)
            D, Dn = Dn, D
            E, En = En, E
            t_prev, t = t, (1.0 + np.sqrt(1.0 + 4.0 * t * t)) / 2.0
            mu = max(eta * mu, mu_bar)
            if residual < tol:
                converged = True
                break
    else:
        # Masked: the identities above do not survive P_Ω, so this is the
        # exact masked loop with every temporary routed through the
        # workspace (historically `E *= omega` and the gradient/diff
        # expressions re-allocated m×n arrays every iteration).
        D, Dp, Dn, E, Ep, En, YD, YE, G, M, S = ws.bufs(
            "D", "Dp", "Dn", "E", "Ep", "En", "YD", "YE", "G", "M", "S"
        )
        np.copyto(D, D0)
        np.copyto(Dp, D0)
        np.copyto(E, E0)
        np.copyto(Ep, E0)
        for iterations in range(1, max_iter + 1):
            beta = (t_prev - 1.0) / t
            rank, sd, se = ew.apg_step_masked(
                A, omega, D, Dp, E, Ep, YD, YE, G, M, S, Dn, En,
                beta, mu / 2.0, lam_v * mu / 2.0, svt_into, fro,
            )
            residual = float(np.sqrt(sd * sd + se * se) / norm_a)
            Dp, D, Dn = D, Dn, Dp
            Ep, E, En = E, En, Ep
            t_prev, t = t, (1.0 + np.sqrt(1.0 + 4.0 * t * t)) / 2.0
            mu = max(eta * mu, mu_bar)
            if residual < tol:
                converged = True
                break

    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"APG RPCA did not converge in {max_iter} iterations "
            f"(residual {residual:.3e} > tol {tol:.3e})",
            iterations=iterations,
            residual=residual,
        )
    return SolverResult(
        low_rank=D,
        sparse=E,
        rank=rank,
        iterations=iterations,
        converged=converged,
        residual=residual,
        warm_started=warm,
    )
