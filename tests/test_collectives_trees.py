"""Unit tests for CommTree and the MPICH-order binomial tree."""

import numpy as np
import pytest

from repro.collectives.trees import CommTree, binomial_tree
from repro.errors import ValidationError


class TestCommTreeValidation:
    def test_minimal_tree(self):
        t = CommTree(root=0, parent=np.array([-1]), children=((),))
        assert t.n_nodes == 1 and t.depth() == 0

    def test_edge_count_enforced(self):
        with pytest.raises(ValidationError, match="edges"):
            CommTree(root=0, parent=np.array([-1, 0, 0]), children=((1,), (), ()))

    def test_parent_children_consistency(self):
        with pytest.raises(ValidationError, match="disagrees"):
            CommTree(root=0, parent=np.array([-1, 0]), children=((), (1,)))

    def test_root_parent_must_be_minus_one(self):
        with pytest.raises(ValidationError, match="root"):
            CommTree(root=0, parent=np.array([1, -1]), children=((1,), ()))

    def test_spanning_enforced(self):
        # Node 2 is its own parent-island: 2 edges among {0,1}, none to 2.
        with pytest.raises(ValidationError):
            CommTree(
                root=0,
                parent=np.array([-1, 0, -1]),
                children=((1,), (), ()),
            )

    def test_from_parent(self):
        t = CommTree.from_parent(0, np.array([-1, 0, 0, 1]))
        assert t.children[0] == (1, 2)
        assert t.children[1] == (3,)
        assert t.depth() == 2

    def test_subtree_sizes(self):
        t = CommTree.from_parent(0, np.array([-1, 0, 0, 1, 1]))
        sizes = t.subtree_sizes()
        assert sizes[0] == 5 and sizes[1] == 3 and sizes[2] == 1

    def test_edges_bfs(self):
        t = CommTree.from_parent(0, np.array([-1, 0, 0, 1]))
        assert t.edges() == [(0, 1), (0, 2), (1, 3)]

    def test_longest_path_weight(self):
        t = CommTree.from_parent(0, np.array([-1, 0, 1]))
        w = np.array([[0, 2.0, 9], [9, 0, 3.0], [9, 9, 0]])
        assert t.longest_path_weight(w) == pytest.approx(5.0)


class TestBinomialTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 16, 31, 64])
    def test_valid_tree(self, n):
        t = binomial_tree(n, 0)
        assert t.n_nodes == n
        assert int(t.subtree_sizes()[0]) == n

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_power_of_two_depth(self, n):
        # A binomial tree on 2^k nodes has depth k.
        assert binomial_tree(n, 0).depth() == int(np.log2(n))

    def test_root_children_descending_subtrees(self):
        t = binomial_tree(16, 0)
        sizes = t.subtree_sizes()
        kid_sizes = [sizes[c] for c in t.children[0]]
        assert kid_sizes == sorted(kid_sizes, reverse=True)
        assert kid_sizes == [8, 4, 2, 1]

    def test_nonzero_root_is_relabeling(self):
        t0 = binomial_tree(8, 0)
        t3 = binomial_tree(8, 3)
        assert t3.root == 3
        # Same shape: sorted subtree sizes coincide.
        assert sorted(t0.subtree_sizes()) == sorted(t3.subtree_sizes())

    def test_structure_n8_root0(self):
        t = binomial_tree(8, 0)
        assert t.children[0] == (4, 2, 1)
        assert t.children[4] == (6, 5)
        assert t.children[2] == (3,)
        assert t.children[6] == (7,)

    def test_root_out_of_range(self):
        with pytest.raises(ValidationError):
            binomial_tree(4, 4)

    def test_n_zero_rejected(self):
        with pytest.raises(ValidationError):
            binomial_tree(0, 0)

    def test_non_power_of_two(self):
        t = binomial_tree(6, 0)
        assert t.children[0] == (4, 2, 1)
        assert t.children[4] == (5,)
        assert t.children[2] == (3,)
