"""Shape tests for the netsim-backed drivers (Figs 12–13) at small scale."""

import numpy as np
import pytest

from repro.experiments import fig12_interference, fig13_simulation
from repro.experiments.netsim_support import build_scenario, calibrate_netsim_trace
from repro.netsim.background import BackgroundConfig
from repro.netsim.topology import GBIT

MB = 1024 * 1024

SMALL = dict(n_racks=4, servers_per_rack=8, cluster_size=10)
#: Preserves the paper's 3.2:1 uplink oversubscription on 8-server racks.
SMALL_CORE = 2.5 * GBIT


class TestNetsimSupport:
    def test_scenario_geometry(self):
        sc = build_scenario(**SMALL, warmup_seconds=5.0, seed=0)
        assert sc.topology.n_machines == 32
        assert sc.n_machines == 10
        assert len(set(sc.machines)) == 10

    def test_placement_matches_topology(self):
        sc = build_scenario(**SMALL, warmup_seconds=5.0, seed=1)
        p = sc.placement()
        for i, m in enumerate(sc.machines):
            assert p.racks[i] == sc.topology.rack_of(m)

    def test_calibrated_trace_shape(self):
        sc = build_scenario(
            **SMALL,
            background=BackgroundConfig(n_pairs=8, message_bytes=20 * MB, mean_wait_seconds=2.0),
            warmup_seconds=5.0,
            seed=2,
        )
        trace = calibrate_netsim_trace(sc, n_snapshots=4, gap_seconds=5.0)
        assert trace.n_snapshots == 4
        assert trace.n_machines == 10
        off = ~np.eye(10, dtype=bool)
        assert np.all(trace.beta[:, off] > 0)
        assert np.all(np.isfinite(trace.beta[:, off]))
        assert np.all(np.diff(trace.timestamps) > 0)

    def test_deterministic(self):
        def run():
            sc = build_scenario(
                **SMALL,
                background=BackgroundConfig(n_pairs=6, message_bytes=20 * MB),
                warmup_seconds=5.0,
                seed=3,
            )
            return calibrate_netsim_trace(sc, n_snapshots=2, gap_seconds=5.0)

        t1, t2 = run(), run()
        np.testing.assert_array_equal(t1.beta, t2.beta)


class TestFig12:
    def test_lambda_sweep_decreases_ne(self):
        res = fig12_interference.run_lambda_sweep(
            lambdas=(0.5, 20.0),
            message_bytes=50 * MB,
            n_pairs=24,
            n_racks=4,
            servers_per_rack=8,
            cluster_size=10,
            n_snapshots=6,
            gap_seconds=10.0,
            core_bandwidth=SMALL_CORE,
            seed=4,
        )
        norms = res.norms()
        assert norms[0] > norms[1]  # rare interference ⇒ calmer network

    def test_msgsize_sweep_increases_ne(self):
        res = fig12_interference.run_msgsize_sweep(
            message_sizes=(5 * MB, 200 * MB),
            mean_wait_seconds=3.0,
            n_pairs=24,
            n_racks=4,
            servers_per_rack=8,
            cluster_size=10,
            n_snapshots=6,
            gap_seconds=10.0,
            core_bandwidth=SMALL_CORE,
            seed=5,
        )
        norms = res.norms()
        assert norms[-1] > norms[0]  # bigger messages ⇒ more interference

    def test_rows_render(self):
        res = fig12_interference.run_lambda_sweep(
            lambdas=(5.0,),
            n_pairs=4,
            n_racks=2,
            servers_per_rack=4,
            cluster_size=4,
            n_snapshots=2,
            gap_seconds=2.0,
            seed=6,
        )
        assert len(res.as_rows()) == 1


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_simulation.run(
            n_racks=4,
            servers_per_rack=8,
            cluster_size=12,
            background=BackgroundConfig(
                n_pairs=64, message_bytes=100 * MB, mean_wait_seconds=1.0
            ),
            n_snapshots=10,
            time_step=5,
            gap_seconds=10.0,
            repetitions=20,
            solver="row_constant",
            core_bandwidth=SMALL_CORE,
            seed=7,
        )

    def test_all_four_arms_present(self, result):
        assert set(result.broadcast.times) == {
            "Baseline",
            "Topology-aware",
            "Heuristics",
            "RPCA",
        }

    def test_rpca_beats_baseline(self, result):
        assert result.broadcast.improvement("RPCA", "Baseline") > 0.0
        assert result.scatter.improvement("RPCA", "Baseline") > 0.0

    def test_rpca_at_least_topology(self, result):
        # The paper: topology-aware ≈ baseline under dynamics; RPCA wins.
        assert result.broadcast.mean("RPCA") <= result.broadcast.mean(
            "Topology-aware"
        ) * 1.02

    def test_cdf(self, result):
        v, f = result.broadcast_cdf("Baseline")
        assert v.size == 20 and f[0] > 0
