"""Resilient calibration: retries, masked measurements, completeness floors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration.calibrator import (
    Calibrator,
    CalibratorWindowSource,
    TraceSubstrate,
)
from repro.errors import CalibrationError
from repro.faults import FaultySubstrate, ProbeLoss, VMOutage

pytestmark = pytest.mark.faults

MB = 1024 * 1024


def _faulty(trace, models, seed=0):
    return FaultySubstrate(TraceSubstrate(trace), models, seed=seed)


class TestMeasureSnapshot:
    def test_clean_substrate_matches_strict_path(self, tiny_trace):
        cal = Calibrator(TraceSubstrate(tiny_trace), resilient=True)
        strict_a, strict_b = cal.calibrate_snapshot(0)
        m = cal.measure_snapshot(0)
        assert m.complete and m.retry_waves == 0 and m.backoff_seconds == 0.0
        assert np.array_equal(m.alpha, strict_a)
        assert np.array_equal(m.beta, strict_b)

    def test_losses_become_masked_entries(self, small_trace):
        cal = Calibrator(
            _faulty(small_trace, [ProbeLoss(0.3)]),
            resilient=True, max_retries=0,
        )
        m = cal.measure_snapshot(0)
        assert not m.complete
        assert m.observed_fraction < 1.0
        # placeholders are benign: zero weight under the alpha-beta model
        assert np.all(m.alpha[~m.mask] == 0.0)
        assert np.all(np.isinf(m.beta[~m.mask]))

    def test_retries_recover_transient_losses(self, small_trace):
        no_retry = Calibrator(
            _faulty(small_trace, [ProbeLoss(0.3)], seed=1),
            resilient=True, max_retries=0,
        )
        with_retry = Calibrator(
            _faulty(small_trace, [ProbeLoss(0.3)], seed=1),
            resilient=True, max_retries=4,
        )
        f0 = no_retry.measure_snapshot(0).observed_fraction
        f4 = with_retry.measure_snapshot(0).observed_fraction
        assert f4 > f0

    def test_retries_cannot_recover_outage(self, small_trace):
        cal = Calibrator(
            _faulty(small_trace, [VMOutage(machine=1, start=0, duration=1)]),
            resilient=True, max_retries=5,
        )
        m = cal.measure_snapshot(0)
        assert not m.mask[1, 2] and not m.mask[2, 1]

    def test_backoff_grows_exponentially(self, small_trace):
        cal = Calibrator(
            _faulty(small_trace, [VMOutage(machine=1, start=0, duration=1)]),
            resilient=True, max_retries=3, retry_backoff=0.5,
        )
        m = cal.measure_snapshot(0)
        assert m.retry_waves == 3
        assert m.backoff_seconds == pytest.approx(0.5 + 1.0 + 2.0)
        assert cal.retry_seconds == pytest.approx(m.backoff_seconds)

    def test_min_observed_rejects_dark_snapshot(self, small_trace):
        cal = Calibrator(
            _faulty(small_trace, [VMOutage(machine=1, start=0, duration=1)]),
            resilient=True, max_retries=1, min_observed=0.9,
        )
        with pytest.raises(CalibrationError, match="only"):
            cal.measure_snapshot(0)
        assert cal.measure_snapshot(1).complete  # outage over

    def test_cache_pins_the_measurement(self, small_trace):
        cal = Calibrator(
            _faulty(small_trace, [ProbeLoss(0.3)]),
            resilient=True, max_retries=0, cache_snapshots=True,
        )
        a = cal.measure_snapshot(0)
        b = cal.measure_snapshot(0)
        assert a is b

    def test_strict_path_still_raises_on_nan(self, small_trace):
        cal = Calibrator(_faulty(small_trace, [ProbeLoss(0.5)]))
        with pytest.raises(CalibrationError, match="invalid measurement"):
            cal.calibrate_snapshot(0)


class TestResilientWindowSource:
    def test_row_and_mask_come_from_one_measurement(self, small_trace):
        cal = Calibrator(
            _faulty(small_trace, [ProbeLoss(0.3)]),
            resilient=True, max_retries=0,
        )
        src = CalibratorWindowSource(cal)
        row = src.snapshot_row(0, 8 * MB)
        mask = src.snapshot_mask(0)
        assert mask is not None
        # unobserved entries carry the zero-weight placeholder of the same draw
        assert np.all(row[~mask] == 0.0)

    def test_non_resilient_source_reports_no_mask(self, tiny_trace):
        cal = Calibrator(TraceSubstrate(tiny_trace))
        src = CalibratorWindowSource(cal)
        assert src.snapshot_mask(0) is None

    def test_engine_over_faulty_calibrator_solves_masked_windows(self, small_trace):
        cal = Calibrator(
            _faulty(small_trace, [ProbeLoss(0.15)], seed=2),
            resilient=True, max_retries=1, min_observed=0.5,
        )
        eng = cal.engine(nbytes=8 * MB, time_step=8, solver="apg")
        dec = eng.calibrate(8)
        assert dec.solver_converged
        assert eng.instrumentation.counters.get("engine.solve.masked", 0) >= 1

    def test_engine_threshold_raises_through_calibrator(self, small_trace):
        cal = Calibrator(
            _faulty(small_trace, [VMOutage(machine=0, start=2, duration=2)], seed=2),
            resilient=True, max_retries=1,
        )
        eng = cal.engine(
            nbytes=8 * MB, time_step=8, min_snapshot_observed=0.9
        )
        with pytest.raises(CalibrationError):
            eng.calibrate(8)


class TestValidation:
    def test_bad_parameters_rejected(self, tiny_trace):
        sub = TraceSubstrate(tiny_trace)
        with pytest.raises(CalibrationError):
            Calibrator(sub, max_retries=-1)
        with pytest.raises(Exception):
            Calibrator(sub, min_observed=1.5)
        with pytest.raises(Exception):
            Calibrator(sub, retry_backoff=-1.0)
