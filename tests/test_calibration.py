"""Unit tests for the pairing schedule, calibrator and overhead model."""

import numpy as np
import pytest

from repro.calibration.calibrator import Calibrator, TraceSubstrate
from repro.calibration.overhead import (
    CalibrationCostModel,
    calibration_overhead_seconds,
)
from repro.calibration.schedule import PairingSchedule, pairing_rounds
from repro.errors import CalibrationError, ValidationError

MB = 1024 * 1024


class TestPairingSchedule:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 9, 16, 21])
    def test_covers_all_ordered_pairs(self, n):
        sched = pairing_rounds(n)
        seen = {p for rnd in sched.rounds for p in rnd}
        assert len(seen) == n * (n - 1)

    @pytest.mark.parametrize("n", [4, 8, 16, 64])
    def test_even_round_count(self, n):
        assert pairing_rounds(n).n_rounds == 2 * (n - 1)

    @pytest.mark.parametrize("n", [3, 5, 9])
    def test_odd_round_count(self, n):
        assert pairing_rounds(n).n_rounds == 2 * n

    @pytest.mark.parametrize("n", [4, 7, 12])
    def test_no_machine_twice_per_round(self, n):
        sched = pairing_rounds(n)
        for rnd in sched.rounds:
            endpoints = [m for p in rnd for m in p]
            assert len(endpoints) == len(set(endpoints))

    def test_even_rounds_are_full_matchings(self):
        sched = pairing_rounds(8)
        for rnd in sched.rounds:
            assert len(rnd) == 4  # N/2 concurrent pairs

    def test_n1_rejected(self):
        with pytest.raises(ValidationError):
            pairing_rounds(1)

    def test_schedule_validation_catches_duplicates(self):
        with pytest.raises(ValidationError, match="twice"):
            PairingSchedule(n_machines=2, rounds=(((0, 1),), ((0, 1),)))

    def test_schedule_validation_catches_self_pair(self):
        with pytest.raises(ValidationError, match="self"):
            PairingSchedule(n_machines=2, rounds=(((0, 0),), ((1, 0),)))

    def test_schedule_validation_catches_incomplete(self):
        with pytest.raises(ValidationError, match="covers"):
            PairingSchedule(n_machines=3, rounds=(((0, 1),),))


class TestTraceSubstrate:
    def test_exact_replay(self, tiny_trace):
        sub = TraceSubstrate(tiny_trace)
        pairs = ((0, 1), (2, 3))
        res = sub.measure_round(pairs, snapshot=2)
        assert res[0] == (tiny_trace.alpha[2, 0, 1], tiny_trace.beta[2, 0, 1])
        assert res[1] == (tiny_trace.alpha[2, 2, 3], tiny_trace.beta[2, 2, 3])

    def test_measurement_noise_perturbs(self, tiny_trace):
        sub = TraceSubstrate(tiny_trace, measurement_noise=0.1, seed=0)
        (a, b), = sub.measure_round(((0, 1),), snapshot=0)
        assert a != tiny_trace.alpha[0, 0, 1] or b != tiny_trace.beta[0, 0, 1]

    def test_snapshot_bounds(self, tiny_trace):
        sub = TraceSubstrate(tiny_trace)
        with pytest.raises(CalibrationError):
            sub.measure_round(((0, 1),), snapshot=99)


class TestCalibrator:
    def test_snapshot_matches_trace(self, tiny_trace):
        cal = Calibrator(TraceSubstrate(tiny_trace))
        alpha, beta = cal.calibrate_snapshot(1)
        np.testing.assert_array_equal(alpha, tiny_trace.alpha[1])
        off = ~np.eye(4, dtype=bool)
        np.testing.assert_array_equal(beta[off], tiny_trace.beta[1][off])

    def test_calibrate_builds_tp(self, tiny_trace):
        cal = Calibrator(TraceSubstrate(tiny_trace))
        tp = cal.calibrate(range(3), nbytes=8 * MB)
        expected = tiny_trace.tp_matrix(8 * MB, start=0, count=3)
        np.testing.assert_allclose(tp.data, expected.data)

    def test_empty_snapshots_rejected(self, tiny_trace):
        cal = Calibrator(TraceSubstrate(tiny_trace))
        with pytest.raises(CalibrationError):
            cal.calibrate([], nbytes=1.0)

    def test_schedule_size_mismatch(self, tiny_trace):
        with pytest.raises(CalibrationError, match="schedule"):
            Calibrator(TraceSubstrate(tiny_trace), schedule=pairing_rounds(6))


class TestOverheadModel:
    def test_paper_magnitudes(self):
        # Fig 4: < 4 minutes at 64 instances, ~10 minutes at 196.
        at64 = calibration_overhead_seconds(64, 10)
        at196 = calibration_overhead_seconds(196, 10)
        assert 120 < at64 < 240
        assert 480 < at196 < 780

    def test_linear_in_n(self):
        xs = np.array([32, 64, 128, 196])
        ys = np.array([calibration_overhead_seconds(int(n), 10) for n in xs])
        # Linear fit residual is tiny relative to the values.
        coeffs = np.polyfit(xs, ys, 1)
        fit = np.polyval(coeffs, xs)
        assert np.max(np.abs(fit - ys) / ys) < 0.02

    def test_linear_in_time_step(self):
        one = calibration_overhead_seconds(16, 1)
        ten = calibration_overhead_seconds(16, 10)
        assert ten == pytest.approx(10 * one)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibration_overhead_seconds(1, 10)
        with pytest.raises(ValueError):
            calibration_overhead_seconds(8, 0)

    def test_cost_model_round_seconds(self):
        m = CalibrationCostModel()
        assert m.round_seconds() > 0
        faster = CalibrationCostModel(expected_bandwidth_Bps=1e12)
        assert faster.round_seconds() < m.round_seconds()

    def test_cost_model_validation(self):
        with pytest.raises(ValueError):
            CalibrationCostModel(repetitions=0)
