"""Engine layer: rolling-window cache, warm starts, registry validation.

Covers the DecompositionEngine itself, its TraceSession integration
(fixed-seed warm-vs-cold replay equivalence), the Calibrator adapter, and
the solver-registry capability metadata the engine relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import Calibrator, CalibratorWindowSource, TraceSubstrate
from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.apg import rpca_apg
from repro.core.engine import DecompositionEngine, TraceWindowSource, WindowSource
from repro.core.ialm import rpca_ialm
from repro.core.result import SolverResult
from repro.core.solvers import register_solver, solve_rpca, solver_spec
from repro.errors import CalibrationError, ValidationError
from repro.observability import Instrumentation
from repro.runtime.session import TraceSession

MB = 1024 * 1024


@pytest.fixture(scope="module")
def busy_trace():
    """A trace dynamic enough to trigger many Algorithm-1 re-calibrations."""
    cfg = TraceConfig(
        n_machines=8,
        n_snapshots=30,
        dynamics=DynamicsConfig(
            volatility_sigma=0.08,
            spike_probability=0.04,
            spike_severity=2.0,
            migration_rate=0.04,
        ),
    )
    return generate_trace(cfg, seed=99)


class TestWindowCache:
    def test_window_byte_identical_to_tp_matrix(self, small_trace):
        eng = DecompositionEngine(small_trace, nbytes=8 * MB)
        for start, stop in [(0, 10), (3, 13), (5, 24)]:
            direct = small_trace.tp_matrix(8 * MB, start=start, count=stop - start)
            win = eng.window(start, stop)
            assert win.data.tobytes() == direct.data.tobytes()
            assert win.timestamps.tolist() == direct.timestamps.tolist()
            assert win.n_machines == direct.n_machines

    def test_overlapping_windows_hit_cache(self, small_trace):
        eng = DecompositionEngine(small_trace, nbytes=8 * MB)
        eng.window(0, 10)
        assert eng.instrumentation.counters["engine.window.miss"] == 10
        eng.window(2, 12)
        assert eng.instrumentation.counters["engine.window.hit"] == 8
        assert eng.instrumentation.counters["engine.window.miss"] == 12

    def test_lru_bound_evicts(self, small_trace):
        eng = DecompositionEngine(small_trace, nbytes=8 * MB, max_cached_rows=5)
        eng.window(0, 10)
        assert len(eng._rows) == 5
        # Rows 5..9 are resident; re-reading them costs no misses.
        misses = eng.instrumentation.counters["engine.window.miss"]
        eng.window(5, 10)
        assert eng.instrumentation.counters["engine.window.miss"] == misses

    def test_invalid_window_rejected(self, small_trace):
        eng = DecompositionEngine(small_trace, nbytes=8 * MB)
        with pytest.raises(ValidationError):
            eng.window(5, 5)
        with pytest.raises(ValidationError):
            eng.window(0, small_trace.n_snapshots + 1)

    def test_trace_window_source_protocol(self, tiny_trace):
        src = TraceWindowSource(tiny_trace)
        assert isinstance(src, WindowSource)
        assert src.n_machines == tiny_trace.n_machines
        assert src.n_snapshots == tiny_trace.n_snapshots

    def test_bad_source_rejected(self):
        with pytest.raises(ValidationError, match="alpha"):
            DecompositionEngine(object(), nbytes=8 * MB)


class TestWarmStart:
    @pytest.mark.parametrize("solver", ["apg", "ialm"])
    def test_warm_uses_fewer_iterations_than_cold(self, small_trace, solver):
        """On the same rolling windows, warm re-solves iterate strictly less."""
        windows = [(0, 10), (2, 12), (4, 14), (6, 16)]

        warm = DecompositionEngine(small_trace, nbytes=8 * MB, solver=solver)
        cold = DecompositionEngine(
            small_trace, nbytes=8 * MB, solver=solver, warm_start=False
        )
        warm_iters = cold_iters = 0
        for start, stop in windows:
            warm_iters += warm.solve(warm.window(start, stop)).solver_iterations
            cold_iters += cold.solve(cold.window(start, stop)).solver_iterations
        assert warm_iters < cold_iters
        assert warm.instrumentation.counters["engine.solve.warm"] == len(windows) - 1
        assert warm.instrumentation.counters["engine.solve.cold"] == 1
        assert cold.instrumentation.counters["engine.solve.cold"] == len(windows)

    @pytest.mark.parametrize(
        "solver,tol",
        [("apg", 0.05), ("ialm", 0.2)],  # ialm trades more drift for ~2x fewer iters
    )
    def test_warm_solution_close_to_cold(self, small_trace, solver, tol):
        """Warm re-solves land within tolerance of the cold solution."""
        warm = DecompositionEngine(small_trace, nbytes=8 * MB, solver=solver)
        warm.calibrate(10)
        d_warm = warm.calibrate(12)
        d_cold = DecompositionEngine(
            small_trace, nbytes=8 * MB, solver=solver, warm_start=False
        ).calibrate(12)
        assert d_warm.solver_result.warm_started
        assert not d_cold.solver_result.warm_started
        w_warm = d_warm.performance_matrix().weights
        w_cold = d_cold.performance_matrix().weights
        drift = np.linalg.norm(w_warm - w_cold) / np.linalg.norm(w_cold)
        assert drift < tol

    def test_first_solve_is_cold(self, small_trace):
        eng = DecompositionEngine(small_trace, nbytes=8 * MB)
        dec = eng.calibrate(10)
        assert not dec.solver_result.warm_started
        assert eng.last is dec

    def test_reset_warm_state_forces_cold(self, small_trace):
        eng = DecompositionEngine(small_trace, nbytes=8 * MB)
        eng.calibrate(10)
        eng.reset_warm_state()
        assert eng.last is None
        dec = eng.calibrate(12)
        assert not dec.solver_result.warm_started

    def test_shape_change_falls_back_to_cold(self, small_trace):
        eng = DecompositionEngine(small_trace, nbytes=8 * MB, time_step=10)
        eng.calibrate(10)
        # A shorter head window (fewer rows) cannot reuse the 10-row seed.
        dec = eng.solve(eng.window(0, 6))
        assert not dec.solver_result.warm_started

    def test_exact_solver_ignores_warm_start(self, small_trace):
        """row_constant does not support warm starts; the engine stays cold."""
        eng = DecompositionEngine(small_trace, nbytes=8 * MB, solver="row_constant")
        eng.calibrate(10)
        eng.calibrate(12)
        assert eng.instrumentation.counters.get("engine.solve.warm", 0) == 0
        assert eng.instrumentation.counters["engine.solve.cold"] == 2


class TestSolverWarmStartAPI:
    def test_warm_start_accepts_result_and_pair(self, small_trace):
        a = small_trace.tp_matrix(8 * MB, start=0, count=10).data
        cold = rpca_apg(a)
        from_result = rpca_apg(a, warm_start=cold)
        from_pair = rpca_apg(a, warm_start=(cold.low_rank, cold.sparse))
        assert from_result.warm_started and from_pair.warm_started
        assert from_result.iterations == from_pair.iterations

    def test_warm_start_shape_mismatch(self, small_trace):
        a = small_trace.tp_matrix(8 * MB, start=0, count=10).data
        cold = rpca_apg(a)
        with pytest.raises(ValueError, match="shape"):
            rpca_apg(a[:5], warm_start=cold)
        with pytest.raises(ValueError, match="shape"):
            rpca_ialm(a[:5], warm_start=cold)

    def test_warm_start_bad_type(self, small_trace):
        a = small_trace.tp_matrix(8 * MB, start=0, count=10).data
        with pytest.raises(TypeError):
            rpca_apg(a, warm_start="previous")


class TestRegistryValidation:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver("apg", rpca_apg)

    def test_overwrite_allows_replacement(self):
        original = solver_spec("apg")
        try:
            register_solver("apg", rpca_apg, overwrite=True)
        finally:
            register_solver(
                "apg", original.fn, overwrite=True,
                supports_warm_start=original.supports_warm_start,
            )
        assert solver_spec("apg").supports_warm_start

    @pytest.mark.parametrize("name", ["", None, 3])
    def test_bad_names_rejected(self, name):
        with pytest.raises(ValueError, match="non-empty string"):
            register_solver(name, rpca_apg)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            register_solver("not_a_solver", 42)

    def test_unsupported_kwargs_raise(self, tiny_trace):
        a = tiny_trace.tp_matrix(8 * MB).data
        with pytest.raises(TypeError, match="does not accept"):
            solve_rpca(a, solver="pca", tol=1e-9)
        with pytest.raises(TypeError, match="warm_start"):
            solve_rpca(a, solver="row_constant", warm_start=None)

    def test_supported_kwargs_pass(self, tiny_trace):
        a = tiny_trace.tp_matrix(8 * MB).data
        res = solve_rpca(a, solver="apg", tol=1e-6, max_iter=50)
        assert isinstance(res, SolverResult)

    def test_engine_validates_at_construction(self, small_trace):
        with pytest.raises(ValueError, match="unknown RPCA solver"):
            DecompositionEngine(small_trace, nbytes=8 * MB, solver="nope")
        with pytest.raises(TypeError, match="does not accept"):
            DecompositionEngine(
                small_trace, nbytes=8 * MB, solver="pca", tol=1e-9
            )

    def test_capability_metadata(self):
        assert solver_spec("apg").supports_warm_start
        assert solver_spec("ialm").supports_warm_start
        assert solver_spec("row_constant").exact_row_constant
        assert solver_spec("pca").exact_row_constant
        assert not solver_spec("pca").supports_warm_start


class TestSessionIntegration:
    N_OPS = 120

    def _replay(self, trace, warm_start):
        session = TraceSession(trace, warm_start=warm_start)
        for i in range(self.N_OPS):
            session.broadcast(root=i % trace.n_machines)
        return session

    def test_warm_replay_matches_cold_stats(self, busy_trace):
        """Acceptance: fixed-seed replay through the warm engine reproduces
        the historical cold path's SessionStats, with >= 5 recalibrations."""
        warm = self._replay(busy_trace, warm_start=True)
        cold = self._replay(busy_trace, warm_start=False)
        assert cold.stats.recalibrations >= 5
        assert warm.stats.operations == cold.stats.operations
        assert warm.stats.recalibrations == cold.stats.recalibrations
        assert warm.stats.communication_seconds == pytest.approx(
            cold.stats.communication_seconds, abs=1e-9
        )
        assert warm.stats.overhead_seconds == cold.stats.overhead_seconds
        assert [r.decision for r in warm.stats.history] == [
            r.decision for r in cold.stats.history
        ]

    def test_warm_replay_saves_iterations(self, busy_trace):
        warm = self._replay(busy_trace, warm_start=True)
        cold = self._replay(busy_trace, warm_start=False)
        assert warm.instrumentation.warm_solves >= 5
        assert cold.instrumentation.warm_solves == 0
        assert (
            warm.instrumentation.solve_iterations
            < cold.instrumentation.solve_iterations
        )

    def test_epochs_count_cursor_wraps(self, busy_trace):
        session = self._replay(busy_trace, warm_start=True)
        # 120 ops over a 20-snapshot evaluation window wrap exactly 6 times.
        n_eval = busy_trace.n_snapshots - session.time_step
        assert session.stats.epochs == self.N_OPS // n_eval
        fresh = TraceSession(busy_trace)
        assert fresh.stats.epochs == 0

    def test_session_shares_caller_sink(self, small_trace):
        instr = Instrumentation("mine")
        session = TraceSession(small_trace, instrumentation=instr)
        assert session.instrumentation is instr
        assert instr.solves == 1  # the initial calibration


class TestCalibratorAdapter:
    def test_engine_window_matches_calibrate(self, tiny_trace):
        cal = Calibrator(TraceSubstrate(tiny_trace))
        eng = cal.engine(nbytes=8 * MB, time_step=5)
        direct = cal.calibrate(range(2, 8), 8 * MB)
        assert eng.window(2, 8).data.tobytes() == direct.data.tobytes()

    def test_snapshot_cache_stops_reprobing(self, tiny_trace):
        class CountingSubstrate(TraceSubstrate):
            rounds = 0

            def measure_round(self, pairs, snapshot):
                type(self).rounds += 1
                return super().measure_round(pairs, snapshot)

        sub = CountingSubstrate(tiny_trace)
        cal = Calibrator(sub, cache_snapshots=True)
        cal.calibrate_snapshot(0)
        taken = CountingSubstrate.rounds
        assert taken > 0
        cal.calibrate_snapshot(0)
        assert CountingSubstrate.rounds == taken

    def test_cached_snapshot_pins_noisy_measurements(self, tiny_trace):
        cal = Calibrator(
            TraceSubstrate(tiny_trace, measurement_noise=0.2, seed=0),
            cache_snapshots=True,
        )
        a1, b1 = cal.calibrate_snapshot(3)
        a2, b2 = cal.calibrate_snapshot(3)
        assert a1 is a2 and b1 is b2

    def test_missing_n_snapshots_needs_explicit(self, tiny_trace):
        class Bare:
            n_machines = tiny_trace.n_machines

            def measure_round(self, pairs, snapshot):
                a = tiny_trace.alpha[snapshot]
                b = tiny_trace.beta[snapshot]
                return [(float(a[s, r]), float(b[s, r])) for s, r in pairs]

        cal = Calibrator(Bare())
        with pytest.raises(CalibrationError, match="n_snapshots"):
            cal.engine(nbytes=8 * MB)
        eng = cal.engine(nbytes=8 * MB, n_snapshots=tiny_trace.n_snapshots)
        assert eng.source.n_snapshots == tiny_trace.n_snapshots

    def test_source_is_window_source(self, tiny_trace):
        cal = Calibrator(TraceSubstrate(tiny_trace))
        assert isinstance(CalibratorWindowSource(cal), WindowSource)


class TestWarmStatePickling:
    """Warm state must survive process boundaries losslessly (fleet contract)."""

    def test_engine_warm_state_pickle_round_trip(self, small_trace):
        import pickle

        from repro.core.engine import EngineWarmState

        a = DecompositionEngine(small_trace, nbytes=8 * MB)
        b = DecompositionEngine(small_trace, nbytes=8 * MB)
        a.calibrate(10)
        state = pickle.loads(pickle.dumps(a.export_warm_state()))
        assert isinstance(state, EngineWarmState)
        b.import_warm_state(state)

        # Continuing either engine yields bit-identical solves: same warm
        # seed, same row cache, same result arrays.
        dec_a = a.calibrate(14)
        dec_b = b.calibrate(14)
        assert np.array_equal(dec_a.constant.row, dec_b.constant.row)
        assert dec_a.norm_ne == dec_b.norm_ne
        assert dec_a.solver_iterations == dec_b.solver_iterations
        # The imported cache served the overlap: no extra window misses
        # beyond the four genuinely new snapshots.
        assert b.instrumentation.counters["engine.window.miss"] == 4

    def test_warm_vectors_through_shared_memory_views(self, small_trace):
        """An engine fed shm-backed trace views solves bit-identically."""
        from repro.fleet.shm import SharedTraceBlock

        plain = DecompositionEngine(small_trace, nbytes=8 * MB)
        with SharedTraceBlock.create(small_trace) as block:
            shm_trace = block.trace()
            shared = DecompositionEngine(shm_trace, nbytes=8 * MB)
            for start, stop in [(0, 10), (2, 12), (4, 14)]:
                dp = plain.calibrate(stop)
                ds = shared.calibrate(stop)
                assert np.array_equal(dp.constant.row, ds.constant.row)
                assert dp.norm_ne == ds.norm_ne

    def test_session_capsule_pickle_round_trip(self, busy_trace):
        import pickle

        interrupted = TraceSession(busy_trace, nbytes=8 * MB, time_step=10)
        control = TraceSession(busy_trace, nbytes=8 * MB, time_step=10)
        for _ in range(7):
            interrupted.broadcast(root=0)
            control.broadcast(root=0)

        capsule = pickle.loads(pickle.dumps(interrupted.capture_capsule()))
        resumed = TraceSession.from_capsule(busy_trace, capsule)
        assert resumed.stats.operations == 7
        for _ in range(8):
            resumed.broadcast(root=0)
            control.broadcast(root=0)

        assert np.array_equal(
            resumed.decomposition.constant.row,
            control.decomposition.constant.row,
        )
        assert resumed.stats.recalibrations == control.stats.recalibrations
        assert resumed.norm_ne == control.norm_ne
        assert [r.elapsed for r in resumed.stats.history] == [
            r.elapsed for r in control.stats.history
        ]

    def test_from_capsule_verifies_trace_hash_when_asked(self, busy_trace, tiny_trace):
        from repro.errors import PersistenceError

        session = TraceSession(busy_trace, nbytes=8 * MB, time_step=10)
        capsule = session.capture_capsule()
        with pytest.raises(PersistenceError, match="sha256 mismatch"):
            TraceSession.from_capsule(tiny_trace, capsule, verify_trace=True)


class TestWindowMaskFastPath:
    def test_unmasked_windows_carry_no_mask(self, small_trace):
        eng = DecompositionEngine(small_trace, nbytes=8 * MB)
        assert eng.window(0, 10).mask is None
        # The cached full-mask row is never materialized on the pure path.
        assert eng._full_mask_row is None

    def test_mixed_window_reuses_full_mask_row(self):
        from repro.cloudsim.trace import CalibrationTrace

        base = generate_trace(TraceConfig(n_machines=5, n_snapshots=12), seed=17)
        mask = np.ones(base.alpha.shape, dtype=bool)
        mask[3, 0, 1] = False  # exactly one partially-observed snapshot
        trace = CalibrationTrace(
            alpha=base.alpha, beta=base.beta, timestamps=base.timestamps, mask=mask
        )
        eng = DecompositionEngine(trace, nbytes=8 * MB)
        win = eng.window(0, 8)
        assert win.mask is not None
        assert not win.mask[3].all() and win.mask[0].all()
        first = eng._full_mask_row
        assert first is not None and not first.flags.writeable
        eng.window(2, 10)
        assert eng._full_mask_row is first  # reused, not reallocated
