"""RPCA via the inexact augmented Lagrange multiplier (IALM) method.

Included as an alternative to :mod:`~repro.core.apg` for the solver-ablation
study (DESIGN.md Sec 5). IALM solves the constrained convex relaxation

    minimize ||D||_* + λ ||E||_1   subject to   A = D + E

through the augmented Lagrangian ``L(D, E, Y, mu) = ||D||_* + λ||E||_1 +
<Y, A - D - E> + mu/2 ||A - D - E||_F²``, alternating exact minimizations in
``D`` (singular value thresholding) and ``E`` (soft thresholding) with a dual
ascent on ``Y`` and a geometric increase of ``mu`` (Lin, Chen & Ma 2010).

Warm starts
-----------
IALM's iteration count is governed by the penalty ramp: feasibility
``A = D + E`` is only reached once ``mu`` has grown enough that the proximal
thresholds ``1/mu`` and ``λ/mu`` stop leaving residual behind. Seeding
``(D, E)`` from a previous overlapping window's solution therefore saves
little by itself — the warm iterates get re-shrunk while ``mu`` is still
small. A warm solve instead *also* advances the penalty ``warm_mu_steps``
rho-steps up the ramp, skipping the early iterations whose only job is to
grow ``mu`` past the scale the warm iterate has already resolved. As with
any inexact path-following method the warm split can differ from the cold
one (a few percent on the constant row at the default 8 steps on EC2-like
traces); pass ``warm_mu_steps=0`` for maximum fidelity or omit
``warm_start`` for the bitwise cold answer.

Partial observations
--------------------
``mask`` switches to the RPCA-with-missing-entries program (Candès et al.
Sec 1.6): ``min ||D||_* + λ||P_Ω(E)||_1  s.t.  P_Ω(D + E) = P_Ω(A)``. The
implementation follows the standard completion trick — before each
``D``-step the unobserved entries of the working matrix are replaced by the
current iterate's own values, so the constraint (and the dual ascent) only
ever acts on Ω while the nuclear-norm shrinkage completes the holes. With
``mask=None`` every expression reduces to the unmasked original, bit for
bit.
"""

from __future__ import annotations

import numpy as np

from .. import observability
from .._validation import as_float_matrix, check_nonnegative, check_positive
from ..errors import ConvergenceError
from .apg import _unpack_warm_start, default_lambda, validate_mask
from .elementwise import (
    ElementwiseKernel,
    check_ew_svd_compatible,
    validate_ew_backend,
)
from .kernels import RankPredictor, SolveWorkspace, SVTKernel, validate_backend
from .result import SolverResult
from .svd_ops import (
    singular_value_threshold,
    soft_threshold,
    spectral_norm,
)

__all__ = ["IALMResult", "rpca_ialm"]

# Backward-compatible alias: every solver now returns the shared contract.
IALMResult = SolverResult


def rpca_ialm(
    a: np.ndarray,
    lam: float | None = None,
    *,
    tol: float = 1e-7,
    max_iter: int = 1000,
    rho: float = 1.5,
    raise_on_fail: bool = False,
    warm_start: object | None = None,
    warm_mu_steps: float = 8.0,
    mask: np.ndarray | None = None,
    svd_backend: str = "exact",
    elementwise_backend: str = "reference",
    rank_predictor: RankPredictor | None = None,
) -> SolverResult:
    """Decompose ``a ≈ D + E`` with the IALM RPCA solver.

    Parameters
    ----------
    a:
        Data matrix.
    mask:
        Boolean observation mask of the same shape as *a* (``True`` =
        observed). Unobserved entries are completed by the nuclear-norm
        shrinkage; ``E`` is kept supported on the observed set. ``None``
        (or all-true) is the fully-observed path.
    lam:
        Sparsity trade-off; defaults to ``1/sqrt(max(m, n))``.
    tol:
        Relative feasibility tolerance ``||A - D - E||_F / ||A||_F``.
    max_iter:
        Iteration budget.
    rho:
        Penalty growth factor per iteration (> 1).
    raise_on_fail:
        Raise :class:`~repro.errors.ConvergenceError` on budget exhaustion.
    warm_start:
        Previous solution to start from — a
        :class:`~repro.core.result.SolverResult` or a ``(low_rank, sparse)``
        pair of the same shape as *a*.
    warm_mu_steps:
        How many ``rho``-steps up the penalty ramp a warm solve starts
        (default 8). Larger skips more iterations but lets the warm split
        drift further from the cold one; 0 keeps the cold ramp.
    svd_backend:
        SVD kernel used for the per-iteration singular value thresholding —
        one of :data:`repro.core.kernels.SVD_BACKENDS`. ``"exact"`` (the
        default) is the historical full-``gesdd`` path, bit for bit; the
        other backends route through :class:`~repro.core.kernels.SVTKernel`
        (partial SVD + preallocated workspace) and agree to solver
        tolerance rather than bitwise.
    elementwise_backend:
        Elementwise kernel for the non-SVD parts of each iteration — one
        of :data:`repro.core.elementwise.EW_BACKENDS`. ``"reference"``
        (default) is the historical ufunc chain; ``"fused"`` is
        bit-identical with better cache locality; ``"jit"`` needs numba
        and is certified to the batch-float32 tolerance contract. Anything
        but ``"reference"`` requires a non-``exact`` *svd_backend*.
    rank_predictor:
        Optional :class:`~repro.core.kernels.RankPredictor` carried across
        solves (the engine passes one per TP-matrix shape) so warm
        recalibrations skip the rank ramp-up. Ignored by ``"exact"``.
    """
    A = as_float_matrix(a, "a")
    m, n = A.shape
    lam_v = default_lambda((m, n)) if lam is None else check_positive(lam, "lam")
    if rho <= 1.0:
        raise ValueError(f"rho must exceed 1, got {rho}")
    check_nonnegative(warm_mu_steps, "warm_mu_steps")
    validate_backend(svd_backend)
    validate_ew_backend(elementwise_backend)
    check_ew_svd_compatible(svd_backend, elementwise_backend)
    omega = validate_mask(mask, A.shape)
    if omega is not None:
        A = np.where(omega, A, 0.0)  # placeholder values must carry no signal

    norm_a = np.linalg.norm(A)
    if norm_a == 0.0:
        zero = np.zeros_like(A)
        return SolverResult(zero, zero.copy(), 0, 0, True, 0.0)

    if svd_backend != "exact":
        return _rpca_ialm_fast(
            A,
            lam_v,
            norm_a=float(norm_a),
            tol=tol,
            max_iter=max_iter,
            rho=rho,
            raise_on_fail=raise_on_fail,
            warm_start=warm_start,
            warm_mu_steps=warm_mu_steps,
            omega=omega,
            svd_backend=svd_backend,
            elementwise_backend=elementwise_backend,
            rank_predictor=rank_predictor,
        )

    # Standard IALM initialization (Lin et al. 2010): Y = A / J(A) where
    # J(A) = max(||A||_2, ||A||_inf / λ) makes the initial dual feasible.
    norm_two = float(np.linalg.norm(A, 2))
    norm_inf = float(np.abs(A).max()) / lam_v
    Y = A / max(norm_two, norm_inf)
    mu = 1.25 / norm_two
    mu_bar = mu * 1e7

    warm = warm_start is not None
    if warm:
        D, E = _unpack_warm_start(warm_start, A.shape)
        mu = min(mu * rho**warm_mu_steps, mu_bar)
    else:
        D = np.zeros_like(A)
        E = np.zeros_like(A)
    rank = 0
    residual = np.inf
    converged = False
    iterations = 0

    for iterations in range(1, max_iter + 1):
        if omega is None:
            M = A - E + Y / mu
            with observability.timed("kernel.svt_seconds"):
                D, rank, _ = singular_value_threshold(M, 1.0 / mu)
            E = soft_threshold(A - D + Y / mu, lam_v / mu)
            Z = A - D - E
        else:
            # Completion trick: off Ω the working matrix carries the current
            # iterate's own values, so the D-step sees no spurious zeros and
            # the constraint only binds on observed entries.
            A_work = np.where(omega, A, D + E)
            M = A_work - E + Y / mu
            with observability.timed("kernel.svt_seconds"):
                D, rank, _ = singular_value_threshold(M, 1.0 / mu)
            E = soft_threshold(A - D + Y / mu, lam_v / mu)
            E *= omega
            Z = (A - D - E) * omega
        Y = Y + mu * Z
        mu = min(mu * rho, mu_bar)
        residual = float(np.linalg.norm(Z) / norm_a)
        if residual < tol:
            converged = True
            break

    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"IALM RPCA did not converge in {max_iter} iterations "
            f"(residual {residual:.3e} > tol {tol:.3e})",
            iterations=iterations,
            residual=residual,
        )
    return SolverResult(
        low_rank=D,
        sparse=E,
        rank=rank,
        iterations=iterations,
        converged=converged,
        residual=residual,
        warm_started=warm,
    )


def _rpca_ialm_fast(
    A: np.ndarray,
    lam_v: float,
    *,
    norm_a: float,
    tol: float,
    max_iter: int,
    rho: float,
    raise_on_fail: bool,
    warm_start: object | None,
    warm_mu_steps: float,
    omega: np.ndarray | None,
    svd_backend: str,
    elementwise_backend: str = "reference",
    rank_predictor: RankPredictor | None,
) -> SolverResult:
    """IALM iteration over the partial-SVD and elementwise kernel layers.

    Same mathematics as the exact loop above with four changes:

    * singular value thresholding goes through an
      :class:`~repro.core.kernels.SVTKernel` instead of a full ``gesdd``;
    * the init-time ``||A||₂`` full SVD becomes a
      :func:`~repro.core.svd_ops.spectral_norm`;
    * the dual is carried as ``Ȳ = Y/μ`` (the only form the proximal steps
      consume), whose ascent folds into
      ``Ȳ_{k+1} = (μ_k/μ_{k+1})·(Ȳ_k + Z_k)`` — algebraically identical to
      ``Y ← Y + μZ`` followed by the division, but with every update
      written in place into a preallocated
      :class:`~repro.core.kernels.SolveWorkspace`, so steady-state
      iterations allocate no new ``m × n`` temporaries;
    * the step recurrences run on an
      :class:`~repro.core.elementwise.ElementwiseKernel`, whose ``fused``
      and ``jit`` backends cut the remaining full-array passes.

    The reordered floating-point arithmetic agrees with the exact path to
    solver tolerance, not bit-for-bit — which is why this path is opt-in
    via *svd_backend*.
    """
    kernel = SVTKernel(A.shape, svd_backend, rank_predictor=rank_predictor)
    ew = ElementwiseKernel(elementwise_backend)
    ws = SolveWorkspace(A.shape)

    def svt_into(M: np.ndarray, tau: float, out: np.ndarray) -> int:
        return kernel.svt(M, tau, out=out)[1]

    norm_two = spectral_norm(A)
    norm_inf = float(np.abs(A).max()) / lam_v
    mu = 1.25 / norm_two
    mu_bar = mu * 1e7

    D, E, Yinv, M, Z = ws.bufs("D", "E", "Yinv", "M", "Z")

    warm = warm_start is not None
    if warm:
        D0, E0 = _unpack_warm_start(warm_start, A.shape)
        np.copyto(D, D0)
        np.copyto(E, E0)
        mu = min(mu * rho**warm_mu_steps, mu_bar)
    else:
        D[...] = 0.0
        E[...] = 0.0
    # Ȳ₀ = Y₀/μ₀ with the *ramped* μ — the exact path's Y is fixed at A/J
    # while a warm solve starts further up the penalty ramp.
    np.multiply(A, 1.0 / (max(norm_two, norm_inf) * mu), out=Yinv)
    rank = 0
    residual = np.inf
    converged = False
    iterations = 0

    if omega is not None:
        W = ws.buf("W")

    for iterations in range(1, max_iter + 1):
        # The dual ascent is folded into the step (see module docstring),
        # so the next penalty value is fixed before the step runs.
        mu_next = min(mu * rho, mu_bar)
        if omega is None:
            rank = ew.ialm_step_unmasked(
                A, D, E, Yinv, M, Z,
                1.0 / mu, lam_v / mu, mu / mu_next, svt_into,
            )
        else:
            rank = ew.ialm_step_masked(
                A, omega, D, E, W, Yinv, M, Z,
                1.0 / mu, lam_v / mu, mu / mu_next, svt_into,
            )
        mu = mu_next
        residual = float(np.linalg.norm(Z) / norm_a)
        if residual < tol:
            converged = True
            break

    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"IALM RPCA did not converge in {max_iter} iterations "
            f"(residual {residual:.3e} > tol {tol:.3e})",
            iterations=iterations,
            residual=residual,
        )
    return SolverResult(
        low_rank=D,
        sparse=E,
        rank=rank,
        iterations=iterations,
        converged=converged,
        residual=residual,
        warm_started=warm,
    )
