"""Vivaldi network coordinates and triangle-inequality diagnostics.

Paper Sec IV-B: "There have been some network coordinate algorithms (e.g.,
[11], [30]) to obtain the all-link network performance with a smaller number
of cell measurements. Those approaches are not applicable to data center
networks, because the triangle condition is not satisfied."

This module implements both halves of that argument:

* :func:`vivaldi_embedding` — the decentralized spring-relaxation algorithm
  of Dabek et al. [11], fitting low-dimensional coordinates (plus a height,
  modeling the access-link component) to a *subset* of pairwise distances
  and predicting the rest.
* :func:`triangle_violation_stats` — how often and how badly a distance
  matrix violates ``d(i,k) ≤ d(i,j) + d(j,k)``; metric-embedding methods
  can only be accurate when violations are rare and mild.

The ablation bench shows datacenter weight matrices violate the triangle
condition pervasively, and Vivaldi's predicted matrix misleads the FNF
optimizer — which is why the paper measures all links instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_square_matrix, check_positive
from ..errors import ValidationError
from ..utils.seeding import spawn_rng

__all__ = [
    "TriangleStats",
    "triangle_violation_stats",
    "VivaldiResult",
    "vivaldi_embedding",
]


@dataclass(frozen=True, slots=True)
class TriangleStats:
    """Triangle-inequality diagnostics of a distance matrix.

    ``violation_fraction`` is the share of ordered triples (i, j, k) with
    ``d(i,k) > d(i,j) + d(j,k)``; ``median_excess`` the median relative
    excess ``d(i,k) / (d(i,j) + d(j,k)) − 1`` over the violating triples.
    """

    violation_fraction: float
    median_excess: float
    n_triples: int


def triangle_violation_stats(d: np.ndarray) -> TriangleStats:
    """Scan all ordered triples of *d* for triangle violations (vectorized)."""
    m = as_square_matrix(d, "d")
    n = m.shape[0]
    if n < 3:
        raise ValidationError("need at least 3 nodes for triangles")
    # direct[i, k] vs detour[i, j, k] = d[i, j] + d[j, k], j distinct.
    detour = m[:, :, None] + m[None, :, :]  # (i, j, k)
    direct = m[:, None, :]  # broadcast over j
    i_idx, j_idx, k_idx = np.ogrid[:n, :n, :n]
    distinct = (i_idx != j_idx) & (j_idx != k_idx) & (i_idx != k_idx)
    viol = (direct > detour) & distinct
    n_triples = int(distinct.sum())
    frac = float(viol.sum()) / n_triples
    if viol.any():
        excess = direct / np.where(detour > 0, detour, np.inf) - 1.0
        median_excess = float(np.median(excess[viol]))
    else:
        median_excess = 0.0
    return TriangleStats(
        violation_fraction=frac, median_excess=median_excess, n_triples=n_triples
    )


@dataclass(frozen=True)
class VivaldiResult:
    """Fitted coordinates and the predicted distance matrix."""

    coordinates: np.ndarray  # (n, dims)
    heights: np.ndarray  # (n,)
    predicted: np.ndarray  # (n, n) symmetric distances
    fit_error: float  # median relative error on the *training* pairs
    test_error: float  # median relative error on the held-out pairs


def vivaldi_embedding(
    d: np.ndarray,
    *,
    dims: int = 3,
    sample_fraction: float = 0.3,
    iterations: int = 200,
    step: float = 0.25,
    seed: int | np.random.Generator | None = None,
) -> VivaldiResult:
    """Fit Vivaldi height-vector coordinates to a sample of *d*.

    Parameters
    ----------
    d:
        Ground-truth symmetric distance matrix (asymmetric input is
        symmetrized by averaging, as coordinate systems require).
    dims:
        Euclidean dimensionality (3 is the classic choice).
    sample_fraction:
        Fraction of node pairs observed during fitting — the whole point of
        coordinates is predicting the rest.
    iterations:
        Full passes over the sampled pairs.
    step:
        Adaptive step-size ceiling (Vivaldi's cc).
    seed:
        Drives pair sampling and initialization.
    """
    m = as_square_matrix(d, "d")
    m = (m + m.T) / 2.0
    n = m.shape[0]
    if n < 3:
        raise ValidationError("need at least 3 nodes")
    check_positive(sample_fraction, "sample_fraction")
    if sample_fraction > 1.0:
        raise ValidationError("sample_fraction must be <= 1")
    rng = spawn_rng(seed)

    iu, ju = np.triu_indices(n, k=1)
    n_pairs = iu.size
    n_train = max(n, int(round(sample_fraction * n_pairs)))
    order = rng.permutation(n_pairs)
    train = order[:n_train]
    test = order[n_train:]

    # Centralized batch spring relaxation: Vivaldi's springs are exactly
    # gradient descent on the squared stress Σ (dist − rtt)²; the batch form
    # converges deterministically, which suits an offline fit.
    scale = float(np.median(m[iu, ju]))
    x = rng.standard_normal((n, dims)) * (scale / 10.0)
    h = np.full(n, scale / 20.0)

    train_i, train_j = iu[train], ju[train]
    rtt = m[train_i, train_j]
    valid = rtt > 0
    train_i, train_j, rtt = train_i[valid], train_j[valid], rtt[valid]
    counts = np.bincount(train_i, minlength=n) + np.bincount(train_j, minlength=n)
    counts = np.maximum(counts, 1)

    for t in range(int(iterations)):
        diff = x[train_i] - x[train_j]
        norm = np.sqrt((diff * diff).sum(axis=1))
        safe = np.maximum(norm, 1e-12)
        dist = norm + h[train_i] + h[train_j]
        err = dist - rtt  # positive = too far apart in the embedding
        direction = diff / safe[:, None]
        eta = step / (1.0 + t / 50.0)
        # Spring force on each endpoint, averaged over its incident pairs.
        grad_x = np.zeros_like(x)
        force = (err / scale)[:, None] * direction
        np.add.at(grad_x, train_i, -force)
        np.add.at(grad_x, train_j, force)
        grad_h = np.zeros(n)
        np.add.at(grad_h, train_i, -err / scale)
        np.add.at(grad_h, train_j, -err / scale)
        x += eta * scale * grad_x / counts[:, None]
        h = np.maximum(0.0, h + 0.5 * eta * scale * grad_h / counts)

    diffs = x[:, None, :] - x[None, :, :]
    euclid = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
    predicted = euclid + h[:, None] + h[None, :]
    np.fill_diagonal(predicted, 0.0)

    def median_rel_error(pair_idx: np.ndarray) -> float:
        if pair_idx.size == 0:
            return 0.0
        ii, jj = iu[pair_idx], ju[pair_idx]
        truth = m[ii, jj]
        ok = truth > 0
        return float(
            np.median(np.abs(predicted[ii, jj][ok] - truth[ok]) / truth[ok])
        )

    return VivaldiResult(
        coordinates=x,
        heights=h,
        predicted=predicted,
        fit_error=median_rel_error(train),
        test_error=median_rel_error(test),
    )
