"""Fig 5 — relative difference of long-term performance vs time step.

For each candidate time step *s*, decompose only the first *s* snapshots and
compare the predicted constant row ``P_D`` against the oracle ``P'_D``
obtained from the whole trace; the y-axis is the relative difference
``Norm(P_D)``. The paper selects the smallest time step whose difference is
within 10% — ten, on its EC2 trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cloudsim.trace import CalibrationTrace
from ..core.decompose import decompose
from ..core.metrics import relative_difference
from ..errors import ValidationError

__all__ = ["Fig05Result", "run", "select_time_step"]


@dataclass(frozen=True)
class Fig05Result:
    """Series of (time_step, relative_difference) plus the selected step."""

    time_steps: tuple[int, ...]
    relative_differences: tuple[float, ...]
    selected: int
    tolerance: float

    def as_rows(self) -> list[tuple[int, float]]:
        return list(zip(self.time_steps, self.relative_differences))


def select_time_step(
    steps: tuple[int, ...], diffs: tuple[float, ...], tolerance: float
) -> int:
    """Smallest step whose relative difference is within *tolerance*."""
    for s, d in zip(steps, diffs):
        if d <= tolerance:
            return s
    return steps[-1]


def run(
    trace: CalibrationTrace,
    *,
    time_steps: tuple[int, ...] = (2, 4, 6, 8, 10, 15, 20, 30),
    nbytes: float = 8.0 * 1024 * 1024,
    solver: str = "apg",
    tolerance: float = 0.10,
) -> Fig05Result:
    """Sweep calibration time steps against the whole-trace oracle."""
    usable = tuple(s for s in time_steps if s <= trace.n_snapshots)
    if not usable:
        raise ValidationError("no time step fits within the trace")
    tp_full = trace.tp_matrix(nbytes)
    oracle = decompose(tp_full, solver=solver).constant.row
    diffs: list[float] = []
    for s in usable:
        tp = trace.tp_matrix(nbytes, start=0, count=s)
        predicted = decompose(tp, solver=solver).constant.row
        diffs.append(relative_difference(predicted, oracle))
    diffs_t = tuple(float(d) for d in diffs)
    return Fig05Result(
        time_steps=usable,
        relative_differences=diffs_t,
        selected=select_time_step(usable, diffs_t, tolerance),
        tolerance=tolerance,
    )
