#!/usr/bin/env python3
"""MPI-style programming against the simulated communicator.

Writes a real distributed algorithm — power iteration for the dominant
eigenvalue, built from scatter / allgather-style exchanges and reduces —
against :class:`repro.mpisim.SimComm`. The numerics are exact; the
communicator additionally accounts the simulated communication time under
the α-β model. Running the same program with a Baseline communicator and a
network-aware one (FNF trees on the RPCA constant component) shows the
paper's gain at the programming-model level: same code, same results,
different simulated wall clock.

Run:  python examples/mpi_programming.py
"""

from __future__ import annotations

import numpy as np

from repro import TraceConfig, decompose, generate_trace
from repro.mpisim import SimComm

MB = 1024 * 1024


def power_iteration(comm: SimComm, a_blocks: list[np.ndarray], n: int, iters: int = 30):
    """Distributed power iteration: each rank owns a block of rows of A."""
    x = np.ones(n) / np.sqrt(n)
    for _ in range(iters):
        # Everyone needs the full vector (the all-to-all of the paper's apps).
        comm.bcast(x, root=0)
        partials = [blk @ x for blk in a_blocks]
        # Reassemble y from the gathered partials.
        gathered = comm.gather(None, root=0, all_values=partials)
        y = np.concatenate(gathered)
        norm = comm.reduce(
            [float(p @ p) for p in partials], op=lambda u, v: u + v, root=0
        )
        x = y / np.sqrt(norm)
    # Rayleigh quotient: each rank contributes its slice of xᵀAx.
    comm.bcast(x, root=0)
    partials = [blk @ x for blk in a_blocks]
    y = np.concatenate(comm.gather(None, root=0, all_values=partials))
    lam = float(x @ y)
    return lam, x


def main() -> None:
    n_ranks, n = 8, 1600
    rng = np.random.default_rng(3)
    # Symmetric matrix with a planted, well-separated dominant eigenpair so
    # 30 power iterations genuinely converge.
    m = rng.standard_normal((n, n))
    a = (m + m.T) / 2.0
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    a += 150.0 * np.outer(v, v)
    a_blocks = np.array_split(a, n_ranks, axis=0)
    truth = float(np.max(np.abs(np.linalg.eigvalsh(a))))

    trace = generate_trace(TraceConfig(n_machines=n_ranks, n_snapshots=20), seed=5)
    live_a, live_b = trace.alpha[15], trace.beta[15]
    constant = decompose(
        trace.tp_matrix(8 * MB, start=0, count=10), solver="apg"
    ).performance_matrix().weights

    results = {}
    for label, weights in (("Baseline (binomial)", None), ("RPCA (FNF)", constant)):
        comm = SimComm(live_a, live_b, weights=weights)
        lam, _ = power_iteration(comm, a_blocks, n)
        results[label] = (lam, comm.elapsed, dict(comm.stats.per_op_seconds))

    print(f"dominant |eigenvalue|: truth {truth:.4f}")
    for label, (lam, elapsed, per_op) in results.items():
        ops = ", ".join(f"{k} {v:.2f}s" for k, v in per_op.items())
        print(f"  {label:<22} estimate {abs(lam):.4f}  comm {elapsed:.2f}s  ({ops})")
    base = results["Baseline (binomial)"][1]
    aware = results["RPCA (FNF)"][1]
    print(f"\nsame numerics, {1 - aware / base:.0%} less simulated communication time")


if __name__ == "__main__":
    main()
