"""Unit tests for task graphs, greedy/ring mapping and evaluation."""

import numpy as np
import pytest

from repro.errors import MappingError, ValidationError
from repro.mapping.evaluate import (
    bandwidth_from_weights,
    mapping_bottleneck_time,
    mapping_total_time,
)
from repro.mapping.greedy import greedy_mapping
from repro.mapping.ring import ring_mapping
from repro.mapping.taskgraph import (
    TaskGraph,
    random_task_graph,
    ring_task_graph,
    stencil_task_graph,
)

MB = 1024 * 1024


class TestTaskGraph:
    def test_random_volumes_in_range(self):
        g = random_task_graph(12, density=0.4, seed=0)
        nz = g.volumes[g.volumes > 0]
        assert np.all(nz >= 5 * MB) and np.all(nz <= 10 * MB)

    def test_random_no_isolated_vertices(self):
        g = random_task_graph(20, density=0.02, seed=1)
        touched = (g.volumes.sum(axis=0) + g.volumes.sum(axis=1)) > 0
        assert touched.all()

    def test_random_deterministic(self):
        g1 = random_task_graph(8, seed=5)
        g2 = random_task_graph(8, seed=5)
        np.testing.assert_array_equal(g1.volumes, g2.volumes)

    def test_ring_structure(self):
        g = ring_task_graph(5, volume_bytes=3.0)
        assert g.n_edges == 5
        assert g.volumes[4, 0] == 3.0
        assert g.volumes[0, 1] == 3.0

    def test_stencil_edge_count(self):
        g = stencil_task_graph(3, 4)
        # 2*(rows*(cols-1) + cols*(rows-1)) directed edges.
        assert g.n_edges == 2 * (3 * 3 + 4 * 2)

    def test_vertex_weights(self):
        g = ring_task_graph(4, volume_bytes=1.0)
        np.testing.assert_array_equal(g.vertex_weights(), [2.0, 2.0, 2.0, 2.0])

    def test_diagonal_rejected(self):
        v = np.ones((3, 3))
        with pytest.raises(ValidationError, match="diagonal"):
            TaskGraph(volumes=v)

    def test_negative_rejected(self):
        v = np.zeros((3, 3))
        v[0, 1] = -1.0
        with pytest.raises(ValidationError):
            TaskGraph(volumes=v)

    def test_density_validated(self):
        with pytest.raises(ValidationError):
            random_task_graph(5, density=1.5)


class TestRingMapping:
    def test_identity(self):
        np.testing.assert_array_equal(ring_mapping(4, 4), [0, 1, 2, 3])

    def test_offset_wraps(self):
        np.testing.assert_array_equal(ring_mapping(4, 4, offset=2), [2, 3, 0, 1])

    def test_injective_with_more_machines(self):
        m = ring_mapping(3, 10, offset=8)
        assert len(set(m.tolist())) == 3

    def test_too_few_machines(self):
        with pytest.raises(MappingError):
            ring_mapping(5, 3)


class TestGreedyMapping:
    def test_injective(self):
        g = random_task_graph(10, seed=2)
        bw = np.random.default_rng(3).uniform(1, 5, size=(10, 10))
        m = greedy_mapping(g, bw)
        assert len(set(m.tolist())) == 10

    def test_heaviest_task_gets_heaviest_machine(self):
        # Star task graph: task 0 talks to everyone → heaviest.
        v = np.zeros((4, 4))
        v[0, 1:] = 10.0
        g = TaskGraph(volumes=v)
        # Machine 2 has the best total bandwidth.
        bw = np.ones((4, 4))
        bw[2, :] = bw[:, 2] = 10.0
        np.fill_diagonal(bw, 0.0)
        m = greedy_mapping(g, bw)
        assert m[0] == 2

    def test_heavy_edge_lands_on_fast_link(self):
        v = np.zeros((3, 3))
        v[0, 1] = 100.0
        v[0, 2] = 1.0
        g = TaskGraph(volumes=v)
        bw = np.array(
            [
                [0.0, 9.0, 1.0],
                [9.0, 0.0, 1.0],
                [1.0, 1.0, 0.0],
            ]
        )
        m = greedy_mapping(g, bw)
        # Tasks 0 and 1 (the heavy pair) take machines 0 and 1 (the fast link).
        assert {m[0], m[1]} == {0, 1}

    def test_more_machines_than_tasks(self):
        g = random_task_graph(4, seed=4)
        bw = np.random.default_rng(5).uniform(1, 2, size=(9, 9))
        m = greedy_mapping(g, bw)
        assert m.size == 4 and m.max() < 9

    def test_too_few_machines(self):
        g = random_task_graph(5, seed=6)
        with pytest.raises(MappingError):
            greedy_mapping(g, np.ones((3, 3)))

    def test_disconnected_components_handled(self):
        v = np.zeros((4, 4))
        v[0, 1] = 5.0
        v[2, 3] = 4.0
        g = TaskGraph(volumes=v)
        m = greedy_mapping(g, np.random.default_rng(7).uniform(1, 2, (4, 4)))
        assert len(set(m.tolist())) == 4

    def test_beats_ring_on_skewed_network(self):
        rng = np.random.default_rng(8)
        g = random_task_graph(8, seed=8)
        alpha = np.zeros((8, 8))
        beta = rng.uniform(1e6, 1e8, size=(8, 8))
        np.fill_diagonal(beta, np.inf)
        w = np.zeros((8, 8))
        off = ~np.eye(8, dtype=bool)
        w[off] = 1.0 / beta[off]
        greedy = greedy_mapping(g, bandwidth_from_weights(w))
        ring = ring_mapping(8, 8)
        assert mapping_total_time(g, greedy, alpha, beta) < mapping_total_time(
            g, ring, alpha, beta
        )


class TestEvaluate:
    def test_total_time_formula(self):
        v = np.zeros((2, 2))
        v[0, 1] = 10.0
        g = TaskGraph(volumes=v)
        alpha = np.array([[0.0, 0.5], [0.5, 0.0]])
        beta = np.array([[np.inf, 2.0], [2.0, np.inf]])
        assert mapping_total_time(g, np.array([0, 1]), alpha, beta) == pytest.approx(5.5)

    def test_bottleneck(self):
        v = np.zeros((3, 3))
        v[0, 1] = 10.0
        v[1, 2] = 2.0
        g = TaskGraph(volumes=v)
        alpha = np.zeros((3, 3))
        beta = np.full((3, 3), 1.0)
        np.fill_diagonal(beta, np.inf)
        assert mapping_bottleneck_time(g, np.array([0, 1, 2]), alpha, beta) == 10.0

    def test_non_injective_rejected(self):
        g = ring_task_graph(3)
        with pytest.raises(MappingError, match="injective"):
            mapping_total_time(g, np.array([0, 0, 1]), np.zeros((3, 3)), np.ones((3, 3)))

    def test_out_of_range_rejected(self):
        g = ring_task_graph(3)
        with pytest.raises(MappingError):
            mapping_total_time(g, np.array([0, 1, 7]), np.zeros((3, 3)), np.ones((3, 3)))

    def test_bandwidth_from_weights(self):
        w = np.array([[0.0, 2.0], [4.0, 0.0]])
        bw = bandwidth_from_weights(w)
        assert bw[0, 1] == pytest.approx(0.5)
        assert bw[1, 0] == pytest.approx(0.25)
        assert bw[0, 0] == 0.0

    def test_bandwidth_from_weights_validates(self):
        with pytest.raises(MappingError):
            bandwidth_from_weights(np.zeros((2, 2)))

    def test_empty_graph_costs_zero(self):
        g = TaskGraph(volumes=np.zeros((2, 2)))
        assert mapping_total_time(g, np.array([0, 1]), np.zeros((2, 2)), np.ones((2, 2))) == 0.0
        assert mapping_bottleneck_time(g, np.array([0, 1]), np.zeros((2, 2)), np.ones((2, 2))) == 0.0
