"""Proximal operators and SVD helpers shared by the RPCA solvers.

Two proximal maps do all the work in RPCA:

* :func:`soft_threshold` — the prox of the (elementwise) L1 norm; shrinks
  every entry toward zero by ``tau`` and produces the sparse component.
* :func:`singular_value_threshold` — the prox of the nuclear norm; soft-
  thresholds the singular values and produces the low-rank component.

``truncated_svd`` wraps the thin-SVD call (``full_matrices=False``) that the
scientific-Python optimization guide singles out: for the tall-skinny or
short-fat matrices RPCA sees (``n_snapshots × N²`` with n_snapshots ≈ 10),
the thin SVD is orders of magnitude cheaper than the full decomposition.

``spectral_norm`` computes ``σ₁ = ||A||₂`` without a full SVD — the
solvers only need the top singular value at initialization (APG's
continuation start, IALM's dual scaling), and paying a whole ``gesdd`` for
one number is the kind of waste the kernel layer (:mod:`repro.core.kernels`)
exists to remove.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from .._validation import as_float_matrix, check_nonnegative

__all__ = [
    "soft_threshold",
    "soft_threshold_into",
    "singular_value_threshold",
    "spectral_norm",
    "truncated_svd",
]


def soft_threshold_into(
    x: np.ndarray, tau: float | np.ndarray, out: np.ndarray
) -> np.ndarray:
    """In-place soft threshold: the fixed four-pass ``out=`` spelling.

    Unvalidated hot-loop core shared by :func:`soft_threshold` and the
    batched solver path (:mod:`repro.core.batch`): *tau* may be a scalar or
    any array broadcastable against *x* — per-matrix ``(B, 1, 1)``
    thresholds for a stacked iterate. Because every pass is an elementwise
    ufunc, the result on slice ``b`` of a stack is bit-identical to the
    single-matrix call on that slice with the matching scalar threshold.
    """
    np.abs(x, out=out)
    out -= tau
    np.maximum(out, 0.0, out=out)
    np.copysign(out, x, out=out)
    return out


def soft_threshold(
    x: np.ndarray, tau: float, out: np.ndarray | None = None
) -> np.ndarray:
    """Elementwise soft-thresholding (shrinkage) operator.

    ``S_tau(x) = sign(x) * max(|x| - tau, 0)`` — the proximal operator of
    ``tau * ||·||_1``.

    With *out* the result is computed in a fixed number of in-place passes
    into the given buffer (no temporaries) — the hot-loop spelling used by
    the fast solver paths. The two spellings agree except on the sign bit
    of zeros (``copysign`` keeps the sign of shrunk-away negatives where
    ``sign(x)*0`` normalizes to ``+0.0``), which no consumer observes; the
    allocation-free form is therefore opt-in, keeping the historical path
    bit-identical.
    """
    check_nonnegative(tau, "tau")
    if out is None:
        return np.sign(x) * np.maximum(np.abs(x) - tau, 0.0)
    return soft_threshold_into(x, tau, out)


def spectral_norm(a: np.ndarray, *, tol: float = 1e-9, max_iter: int = 200) -> float:
    """Top singular value ``σ₁ = ||a||₂`` without a full SVD.

    Small short side (≤ 64, which covers every TP-matrix the paper's
    pipeline builds): form the Gram matrix on the short side and take the
    square root of its top eigenvalue — exact to LAPACK eigensolver
    accuracy at ``O(min(m,n)²·max(m,n))`` cost. Larger matrices fall back
    to power iteration on ``a·aᵀ`` (deterministic fixed-seed start vector),
    converged when the Rayleigh estimate moves by less than ``tol``
    relative per step.
    """
    m = as_float_matrix(a, "a")
    rows, cols = m.shape
    if min(rows, cols) <= 64:
        gram = m @ m.T if rows <= cols else m.T @ m
        w = np.linalg.eigvalsh(gram)
        return float(np.sqrt(max(float(w[-1]), 0.0)))
    rng = np.random.default_rng(0x5EED)
    v = rng.standard_normal(cols)
    nv = float(np.linalg.norm(v))
    if nv == 0.0:  # pragma: no cover - standard_normal never returns all-zero
        return 0.0
    v /= nv
    sigma = 0.0
    for _ in range(max_iter):
        u = m @ v
        nu = float(np.linalg.norm(u))
        if nu == 0.0:
            return 0.0
        u /= nu
        v = m.T @ u
        sigma_new = float(np.linalg.norm(v))
        if sigma_new == 0.0:
            return 0.0
        v /= sigma_new
        if abs(sigma_new - sigma) <= tol * sigma_new:
            return sigma_new
        sigma = sigma_new
    return sigma


def truncated_svd(a: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thin SVD ``a = U @ diag(s) @ Vt`` with LAPACK gesdd, gesvd fallback.

    ``gesdd`` (divide and conquer) is the fast default but can fail to
    converge on ill-conditioned inputs; the classical ``gesvd`` is slower
    but robust, so it serves as the fallback.
    """
    m = as_float_matrix(a, "a")
    try:
        u, s, vt = scipy.linalg.svd(m, full_matrices=False, lapack_driver="gesdd")
    except np.linalg.LinAlgError:  # pragma: no cover - rare LAPACK failure
        u, s, vt = scipy.linalg.svd(m, full_matrices=False, lapack_driver="gesvd")
    return u, s, vt


def singular_value_threshold(
    a: np.ndarray, tau: float
) -> tuple[np.ndarray, int, float]:
    """Singular value thresholding ``D_tau(a)`` (Cai, Candès & Shen).

    Returns ``(D, rank, top_sv)`` where ``D = U @ diag(max(s - tau, 0)) @ Vt``,
    ``rank`` is the number of singular values exceeding ``tau``, and
    ``top_sv`` is the largest singular value of *a* (used by APG stopping
    criteria and continuation schedules).
    """
    check_nonnegative(tau, "tau")
    u, s, vt = truncated_svd(a)
    shrunk = s - tau
    rank = int(np.count_nonzero(shrunk > 0.0))
    if rank == 0:
        return np.zeros_like(np.asarray(a, dtype=np.float64)), 0, float(s[0]) if s.size else 0.0
    d = (u[:, :rank] * shrunk[:rank]) @ vt[:rank]
    return d, rank, float(s[0])
