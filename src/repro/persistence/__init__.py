"""Crash-safe durable state for long-running sessions.

The paper's Algorithm 1 is a loop with no notion of process death; this
subsystem makes a :class:`~repro.runtime.session.TraceSession` survive one.
Three layers, composed by the session when given a :class:`PersistenceConfig`:

* :mod:`~repro.persistence.journal` — a write-ahead operation journal
  (append-only, length+CRC32-framed, torn-tail tolerant). Every operation is
  committed *before* it executes.
* :mod:`~repro.persistence.checkpoint` — versioned, checksummed snapshots of
  full session state (TP-window rows + masks, warm-start components,
  health-machine and detector state, counters) written atomically via temp
  file + rename, with retention of the last few files.
* :mod:`~repro.persistence.recovery` — :func:`~repro.persistence.recovery.recover`
  loads the newest checkpoint that verifies, falls back to older ones on
  corruption, and returns the journal records past it for deterministic
  replay.

:mod:`~repro.persistence.chaos` closes the loop: a kill-and-recover harness
that SIGKILLs a session subprocess mid-run and asserts the recovered session
converges to the same ``P_D`` as an uninterrupted one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import PersistenceError
from .checkpoint import (
    Checkpoint,
    CheckpointStore,
    read_checkpoint,
    write_checkpoint,
)
from .journal import JournalScan, SnapshotJournal
from .recovery import JOURNAL_NAME, RecoveredState, journal_path, recover
from .state import (
    STATE_SCHEMA_VERSION,
    capture_session_state,
    decomposition_from_state,
    engine_cache_from_state,
    history_rows_from_state,
    trace_from_arrays,
    trace_sha256,
    trace_to_arrays,
)

__all__ = [
    "PersistenceConfig",
    "SnapshotJournal",
    "JournalScan",
    "Checkpoint",
    "CheckpointStore",
    "write_checkpoint",
    "read_checkpoint",
    "RecoveredState",
    "recover",
    "journal_path",
    "JOURNAL_NAME",
    "STATE_SCHEMA_VERSION",
    "capture_session_state",
    "decomposition_from_state",
    "engine_cache_from_state",
    "history_rows_from_state",
    "trace_sha256",
    "trace_to_arrays",
    "trace_from_arrays",
]


@dataclass(frozen=True)
class PersistenceConfig:
    """How a session persists itself.

    Attributes
    ----------
    directory:
        Where the journal and checkpoints live. One directory per session.
    checkpoint_every:
        Write a full checkpoint every this many operations (the journal
        covers the gap in between). The initial calibration always writes
        checkpoint 0. The default balances the steady-state tax against
        the recovery blackout: a checkpoint costs a few operations' worth
        of wall time, and recovery replays at most this many journaled
        operations (well under a second at any realistic scale).
    keep_checkpoints:
        Retention window — how many checkpoint files to keep for corruption
        fallback.
    fsync:
        fsync journal appends and checkpoint writes. Not needed to survive
        SIGKILL (the page cache belongs to the kernel); needed to survive
        power loss. Default off.
    trace_path:
        Optional path of the trace file this session replays, recorded in
        checkpoint metadata so ``repro resume`` can reload it without being
        told where it came from.
    """

    directory: str | os.PathLike
    checkpoint_every: int = 100
    keep_checkpoints: int = 3
    fsync: bool = False
    trace_path: str | None = None

    def __post_init__(self) -> None:
        if int(self.checkpoint_every) < 1:
            raise PersistenceError("checkpoint_every must be >= 1")
        if int(self.keep_checkpoints) < 1:
            raise PersistenceError("keep_checkpoints must be >= 1")
