"""Unit tests for Vivaldi coordinates and triangle diagnostics."""

import numpy as np
import pytest

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.errors import ValidationError
from repro.netmodel.coordinates import (
    triangle_violation_stats,
    vivaldi_embedding,
)

MB = 1024 * 1024


def euclidean_matrix(n, dims=3, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 10, size=(n, dims))
    d = np.sqrt(((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1))
    return d


class TestTriangleStats:
    def test_metric_space_has_no_violations(self):
        d = euclidean_matrix(10)
        stats = triangle_violation_stats(d)
        assert stats.violation_fraction == 0.0
        assert stats.median_excess == 0.0

    def test_planted_violation_detected(self):
        d = euclidean_matrix(6)
        d[0, 1] = d[1, 0] = d.max() * 10  # shortcut through any j is cheaper
        stats = triangle_violation_stats(d)
        assert stats.violation_fraction > 0.0
        assert stats.median_excess > 0.0

    def test_triple_count(self):
        stats = triangle_violation_stats(euclidean_matrix(5))
        assert stats.n_triples == 5 * 4 * 3

    def test_small_matrix_rejected(self):
        with pytest.raises(ValidationError):
            triangle_violation_stats(np.zeros((2, 2)))

    def test_datacenter_trace_violates_triangles(self, small_trace):
        # The paper's claim: DC weight matrices are not metric spaces.
        w = small_trace.weights_at(0, 8 * MB).weights
        stats = triangle_violation_stats(w)
        assert stats.violation_fraction > 0.02


class TestVivaldi:
    def test_recovers_euclidean_geometry(self):
        # On a genuinely metric input, Vivaldi generalizes well.
        d = euclidean_matrix(16, dims=2, seed=1)
        res = vivaldi_embedding(d, dims=2, sample_fraction=0.5, seed=2)
        assert res.fit_error < 0.15
        assert res.test_error < 0.25

    def test_predicted_matrix_shape(self):
        d = euclidean_matrix(8)
        res = vivaldi_embedding(d, seed=0)
        assert res.predicted.shape == (8, 8)
        assert np.all(np.diagonal(res.predicted) == 0.0)
        np.testing.assert_allclose(res.predicted, res.predicted.T, atol=1e-12)

    def test_heights_nonnegative(self):
        d = euclidean_matrix(8)
        res = vivaldi_embedding(d, seed=0)
        assert np.all(res.heights >= 0.0)

    def test_deterministic(self):
        d = euclidean_matrix(8)
        a = vivaldi_embedding(d, seed=5)
        b = vivaldi_embedding(d, seed=5)
        np.testing.assert_array_equal(a.predicted, b.predicted)

    def test_struggles_on_datacenter_weights(self, small_trace):
        # The paper's point: coordinates mispredict non-metric DC distances
        # far worse than they mispredict genuinely Euclidean ones.
        w = small_trace.weights_at(0, 8 * MB).weights
        dc = vivaldi_embedding(w, sample_fraction=0.5, seed=3)
        metric = vivaldi_embedding(
            euclidean_matrix(8, seed=4), sample_fraction=0.5, seed=3
        )
        assert dc.test_error > metric.test_error

    def test_sample_fraction_validated(self):
        with pytest.raises(ValidationError):
            vivaldi_embedding(euclidean_matrix(6), sample_fraction=1.5)
