"""Composite collectives built from the four primitives.

The paper implements all-to-all "with a gather followed by a broadcast,
which is also used in MPICH2" (Sec V-A); the same composition idiom gives
allgather and allreduce. Each composite prices its phases on the same live
snapshot and may use *different roots* per phase — the paper's apps use one
root, but exposing it lets experiments study root placement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_nonnegative
from .exec_model import broadcast_time, gather_time, reduce_time
from .trees import CommTree

__all__ = ["CompositeTiming", "alltoall_time", "allgather_time", "allreduce_time"]


@dataclass(frozen=True, slots=True)
class CompositeTiming:
    """Phase-by-phase timing of a composite collective."""

    phases: tuple[tuple[str, float], ...]

    @property
    def total(self) -> float:
        return sum(t for _, t in self.phases)


def alltoall_time(
    tree: CommTree,
    alpha: np.ndarray,
    beta: np.ndarray,
    total_bytes: float,
) -> CompositeTiming:
    """All-to-all as gather(blocks) + broadcast(full payload).

    *total_bytes* is the full exchanged payload; the gather phase moves
    per-node blocks of ``total_bytes / n``.
    """
    check_nonnegative(total_bytes, "total_bytes")
    n = tree.n_nodes
    block = float(total_bytes) / float(n)
    g = gather_time(tree, alpha, beta, block)
    b = broadcast_time(tree, alpha, beta, float(total_bytes))
    return CompositeTiming(phases=(("gather", g), ("broadcast", b)))


def allgather_time(
    tree: CommTree,
    alpha: np.ndarray,
    beta: np.ndarray,
    block_bytes: float,
) -> CompositeTiming:
    """Allgather as gather(blocks) + broadcast(n × block)."""
    check_nonnegative(block_bytes, "block_bytes")
    n = tree.n_nodes
    g = gather_time(tree, alpha, beta, float(block_bytes))
    b = broadcast_time(tree, alpha, beta, float(block_bytes) * n)
    return CompositeTiming(phases=(("gather", g), ("broadcast", b)))


def allreduce_time(
    tree: CommTree,
    alpha: np.ndarray,
    beta: np.ndarray,
    nbytes: float,
) -> CompositeTiming:
    """Allreduce as reduce + broadcast of the reduced payload."""
    check_nonnegative(nbytes, "nbytes")
    r = reduce_time(tree, alpha, beta, float(nbytes))
    b = broadcast_time(tree, alpha, beta, float(nbytes))
    return CompositeTiming(phases=(("reduce", r), ("broadcast", b)))
