"""Fig 9 — real-world applications: CG and N-body breakdowns.

* Fig 9(a): CG with vector size swept 1000→1024000. Paper shape: the run is
  communication-bound (>90% comm in the baseline); at small sizes the
  network-aware arms *lose* (calibration + RPCA overhead outweighs the
  gain); as size grows, iterations grow and the gain compensates — ~31%
  total-time improvement over Baseline, ~14% over Heuristics at the top.
* Fig 9(b): N-body with #Step swept 10→2560 at 1 MB messages.
* Fig 9(c): N-body with message size swept 1 KB→1 MB at 2560 steps.
  Overheads become insignificant as steps/messages grow; ~25% improvement
  over Baseline, ~10% over Heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.breakdown import AppRunner, TimeBreakdown
from ..apps.cg import CGConfig, cg_profile
from ..apps.nbody import NBodyConfig, nbody_profile
from ..calibration.overhead import calibration_overhead_seconds
from ..cloudsim.trace import CalibrationTrace
from ..strategies.base import Strategy
from ..utils.seeding import derive_seed
from .fig07_overall_ec2 import default_strategies
from .harness import ReplayContext

__all__ = ["AppPoint", "Fig09Result", "run_cg", "run_nbody_steps", "run_nbody_msgsize"]

KB = 1024
MB = 1024 * 1024


def rpca_analysis_seconds(n_machines: int) -> float:
    """Seconds charged for one RPCA solve.

    The solve cost is dominated by SVDs on the time_step × N² TP-matrix, so
    it scales with N²; anchored to the paper's report of just under one
    minute at 196 instances.
    """
    return 55.0 * (n_machines / 196.0) ** 2


@dataclass(frozen=True, slots=True)
class AppPoint:
    """One x-axis point for one strategy."""

    x: float
    strategy: str
    breakdown: TimeBreakdown


@dataclass(frozen=True)
class Fig09Result:
    """Sweep results for one app/axis, keyed by (x, strategy)."""

    points: tuple[AppPoint, ...]
    x_name: str

    def total(self, x: float, strategy: str) -> float:
        for p in self.points:
            if p.x == x and p.strategy == strategy:
                return p.breakdown.total
        raise KeyError((x, strategy))

    def improvement(self, x: float, of: str, over: str) -> float:
        return 1.0 - self.total(x, of) / self.total(x, over)

    def strategies(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.strategy, None)
        return tuple(seen)

    def xs(self) -> tuple[float, ...]:
        seen: dict[float, None] = {}
        for p in self.points:
            seen.setdefault(p.x, None)
        return tuple(seen)

    def as_rows(self) -> list[tuple[float, str, float, float, float, float]]:
        return [
            (
                p.x,
                p.strategy,
                p.breakdown.computation,
                p.breakdown.communication,
                p.breakdown.overhead,
                p.breakdown.total,
            )
            for p in self.points
        ]


def _run_profiles(
    trace: CalibrationTrace,
    strategies: list[Strategy],
    steps: list,
    *,
    time_step: int,
    nbytes: float,
) -> dict[str, TimeBreakdown]:
    ctx = ReplayContext(trace=trace, time_step=time_step, nbytes=nbytes)
    ctx.fit(strategies)
    cal_cost = calibration_overhead_seconds(trace.n_machines, time_step)
    out: dict[str, TimeBreakdown] = {}
    for s in strategies:
        runner = AppRunner(
            trace=trace,
            strategy=s,
            calibration_overhead=cal_cost,
            analysis_overhead=(
                rpca_analysis_seconds(trace.n_machines) if "RPCA" in s.name else 0.0
            ),
        )
        out[s.name] = runner.run(steps, start_snapshot=time_step)
    return out


def run_cg(
    trace: CalibrationTrace,
    *,
    vector_sizes: tuple[int, ...] = (1000, 8000, 64000, 256000, 1024000),
    time_step: int = 10,
    solver: str = "apg",
    seed: int = 0,
) -> Fig09Result:
    """Fig 9(a): CG total-time breakdown across vector sizes."""
    points: list[AppPoint] = []
    n = trace.n_machines
    for vs in vector_sizes:
        cfg = CGConfig(vector_size=vs)
        steps, _iters = cg_profile(cfg, n, seed=derive_seed(seed, "cg", vs))
        strategies = default_strategies(solver=solver, time_step=time_step)
        breakdowns = _run_profiles(
            trace, strategies, steps, time_step=time_step, nbytes=cfg.vector_bytes
        )
        for name, bd in breakdowns.items():
            points.append(AppPoint(x=float(vs), strategy=name, breakdown=bd))
    return Fig09Result(points=tuple(points), x_name="vector_size")


def run_nbody_steps(
    trace: CalibrationTrace,
    *,
    step_counts: tuple[int, ...] = (10, 40, 160, 640, 2560),
    message_bytes: float = 1.0 * MB,
    time_step: int = 10,
    solver: str = "apg",
) -> Fig09Result:
    """Fig 9(b): N-body total time across #Step at fixed message size."""
    points: list[AppPoint] = []
    n = trace.n_machines
    for n_steps in step_counts:
        cfg = NBodyConfig(n_steps=n_steps, message_bytes=message_bytes)
        steps = nbody_profile(cfg, n)
        strategies = default_strategies(solver=solver, time_step=time_step)
        breakdowns = _run_profiles(
            trace, strategies, steps, time_step=time_step, nbytes=message_bytes
        )
        for name, bd in breakdowns.items():
            points.append(AppPoint(x=float(n_steps), strategy=name, breakdown=bd))
    return Fig09Result(points=tuple(points), x_name="n_steps")


def run_nbody_msgsize(
    trace: CalibrationTrace,
    *,
    message_sizes: tuple[float, ...] = (1 * KB, 8 * KB, 64 * KB, 256 * KB, 1 * MB),
    n_steps: int = 2560,
    time_step: int = 10,
    solver: str = "apg",
) -> Fig09Result:
    """Fig 9(c): N-body total time across message sizes at fixed #Step."""
    points: list[AppPoint] = []
    n = trace.n_machines
    for msg in message_sizes:
        cfg = NBodyConfig(n_steps=n_steps, message_bytes=msg)
        steps = nbody_profile(cfg, n)
        strategies = default_strategies(solver=solver, time_step=time_step)
        breakdowns = _run_profiles(
            trace, strategies, steps, time_step=time_step, nbytes=msg
        )
        for name, bd in breakdowns.items():
            points.append(AppPoint(x=float(msg), strategy=name, breakdown=bd))
    return Fig09Result(points=tuple(points), x_name="message_bytes")
