"""Plain-text rendering of experiment results.

Benchmarks print these tables so ``pytest benchmarks/ --benchmark-only``
output doubles as the paper-figure regeneration record captured in
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows: list[list[str]] = []
    for row in rows:
        str_rows.append(
            [float_fmt.format(c) if isinstance(c, float) else str(c) for c in row]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    y_name: str,
    points: Iterable[tuple[object, object]],
    *,
    title: str | None = None,
) -> str:
    """Render an (x, y) series as a two-column table."""
    return format_table([x_name, y_name], points, title=title)
