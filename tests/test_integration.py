"""Integration tests: the paper's walk-throughs and the end-to-end pipeline."""

import numpy as np
import pytest

from repro import (
    BaselineStrategy,
    HeuristicStrategy,
    RPCAStrategy,
    TraceConfig,
    decompose,
    fnf_tree,
    generate_trace,
)
from repro.calibration.calibrator import Calibrator, TraceSubstrate
from repro.cloudsim.dynamics import DynamicsConfig
from repro.collectives.exec_model import broadcast_time, weights_to_alphabeta
from repro.core.maintenance import MaintenanceController, MaintenanceDecision
from repro.core.matrices import TPMatrix
from repro.experiments.harness import ReplayContext, collective_comparison

MB = 1024 * 1024


class TestPaperFig2WalkThrough:
    """Paper Fig 2: a 4-machine cluster, five calibrations, RPCA split."""

    def make_tp(self):
        # A fixed 4-machine topology-like weight pattern plus one-off errors
        # (the paper's example: mostly constant rows with a few deviations).
        base = np.array(
            [
                [0.0, 2.0, 5.0, 5.0],
                [2.0, 0.0, 5.0, 5.0],
                [5.0, 5.0, 0.0, 3.0],
                [5.0, 5.0, 3.0, 0.0],
            ]
        ).ravel()
        rows = np.tile(base, (5, 1))
        rows[1, 2] += 4.0  # transient interference on link (0, 2)
        rows[3, 7] += 2.0  # and on link (1, 3)
        return TPMatrix(data=rows, n_machines=4)

    def test_constant_component_recovers_base(self):
        tp = self.make_tp()
        dec = decompose(tp, solver="apg")
        base = tp.data[0].copy()
        base[2] -= 0.0  # row 0 is clean
        # The constant row should be (close to) the uncorrupted pattern.
        np.testing.assert_allclose(dec.constant.row, base, atol=0.35)

    def test_error_component_is_sparse_and_localized(self):
        tp = self.make_tp()
        dec = decompose(tp, solver="row_constant")
        err = dec.error.data
        # The two injected cells dominate the error mass.
        injected = abs(err[1, 2]) + abs(err[3, 7])
        assert injected / (np.abs(err).sum() + 1e-12) > 0.9

    def test_sum_identity(self):
        tp = self.make_tp()
        dec = decompose(tp, solver="row_constant")
        np.testing.assert_allclose(
            dec.constant.as_matrix() + dec.error.data, tp.data, atol=1e-12
        )

    def test_fnf_on_recovered_constant(self):
        tp = self.make_tp()
        pm = decompose(tp, solver="row_constant").performance_matrix()
        tree = fnf_tree(pm.weights, 0)
        # Machine 1 is machine 0's best link in the constant component.
        assert tree.children[0][0] == 1


class TestEndToEndPipeline:
    """Calibrate → decompose → optimize → replay → maintain, in one flow."""

    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(TraceConfig(n_machines=10, n_snapshots=30), seed=3)

    def test_calibrator_to_decomposition(self, trace):
        cal = Calibrator(TraceSubstrate(trace))
        tp = cal.calibrate(range(10), nbytes=8 * MB)
        dec = decompose(tp, solver="apg")
        assert dec.report.verdict in ("stable", "moderately-stable")
        assert dec.solver_converged

    def test_full_comparison_pipeline(self, trace):
        ctx = ReplayContext(trace=trace, time_step=10)
        arms = [
            BaselineStrategy(),
            HeuristicStrategy("mean"),
            RPCAStrategy("apg", time_step=10),
        ]
        res = collective_comparison(ctx, arms, repetitions=30, seed=0)
        # The paper's headline ordering on a stable network.
        assert res.mean("RPCA") < res.mean("Baseline")
        assert res.improvement("RPCA", "Baseline") > 0.1

    def test_maintenance_loop_detects_regime_change(self):
        # Two regimes glued together: the constant component moves at t=15.
        from repro.cloudsim.bands import BandTiers

        cfg_a = TraceConfig(
            n_machines=8,
            n_snapshots=15,
            dynamics=DynamicsConfig(volatility_sigma=0.05, spike_probability=0.0),
        )
        a = generate_trace(cfg_a, seed=1)
        # New regime: the cluster's links degrade sharply (e.g. VMs migrated
        # behind a congested aggregation layer).
        cfg_b = TraceConfig(
            n_machines=8,
            n_snapshots=15,
            dynamics=cfg_a.dynamics,
            tiers=BandTiers(
                same_rack_bandwidth=125e6 / 4, cross_rack_bandwidth=50e6 / 4
            ),
        )
        b = generate_trace(cfg_b, seed=2)
        controller = MaintenanceController(threshold=1.0)
        tp = a.tp_matrix(8 * MB, start=0, count=10)
        weights = decompose(tp, solver="row_constant").performance_matrix().weights
        tree = fnf_tree(weights, 0)
        ea, eb = weights_to_alphabeta(weights, 8 * MB)
        expected = broadcast_time(tree, ea, eb, 8 * MB)

        decisions = []
        for k in range(10, 15):
            obs = broadcast_time(tree, a.alpha[k], a.beta[k], 8 * MB)
            decisions.append(controller.observe(expected, obs))
        # Same regime: no recalibration.
        assert all(d is MaintenanceDecision.KEEP for d in decisions)

        fired = False
        for k in range(15):
            obs = broadcast_time(tree, b.alpha[k], b.beta[k], 8 * MB)
            if controller.observe(expected, obs) is MaintenanceDecision.RECALIBRATE:
                fired = True
                break
        assert fired, "regime change went undetected"

    def test_subcluster_reuse(self, trace):
        # Algorithm 1 line 3: optimize an operation on C' ⊆ C using the
        # full cluster's constant component.
        tp = trace.tp_matrix(8 * MB, start=0, count=10)
        pm = decompose(tp, solver="apg").performance_matrix()
        sub = pm.restrict([0, 2, 4, 6])
        tree = fnf_tree(sub.weights, 0)
        assert tree.n_nodes == 4

    def test_public_api_quickstart(self):
        # The README quickstart, verbatim.
        import repro

        trace = repro.generate_trace(
            repro.TraceConfig(n_machines=8, n_snapshots=12), seed=0
        )
        tp = trace.tp_matrix(nbytes=8 << 20)
        dec = repro.decompose(tp)
        assert dec.report.verdict in {
            "stable",
            "moderately-stable",
            "dynamic",
            "too-dynamic",
        }
        tree = repro.fnf_tree(dec.performance_matrix().weights, 0)
        assert tree.n_nodes == 8
