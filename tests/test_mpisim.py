"""Unit tests for the simulated MPI communicator."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mpisim.comm import SimComm


def make_comm(n=4, beta=1e8, weights=None):
    alpha = np.zeros((n, n))
    b = np.full((n, n), float(beta))
    np.fill_diagonal(b, np.inf)
    return SimComm(alpha, b, weights=weights)


class TestConstruction:
    def test_size(self):
        assert make_comm(6).size == 6

    def test_weight_shape_checked(self):
        with pytest.raises(ValidationError):
            make_comm(4, weights=np.zeros((3, 3)))

    def test_network_resize_rejected(self):
        comm = make_comm(4)
        with pytest.raises(ValidationError):
            comm.set_network(np.zeros((5, 5)), np.ones((5, 5)))


class TestDataSemantics:
    def test_bcast_delivers_everywhere(self):
        comm = make_comm(5)
        out = comm.bcast(np.arange(4), root=2)
        assert len(out) == 5
        for v in out:
            np.testing.assert_array_equal(v, [0, 1, 2, 3])

    def test_scatter_routes_chunks(self):
        comm = make_comm(3)
        out = comm.scatter(["a", "b", "c"], root=0)
        assert out == ["a", "b", "c"]

    def test_scatter_chunk_count_checked(self):
        with pytest.raises(ValidationError):
            make_comm(3).scatter(["a", "b"])

    def test_gather_collects(self):
        comm = make_comm(3)
        out = comm.gather(None, root=1, all_values=[10, 20, 30])
        assert out == [10, 20, 30]

    def test_reduce_sum(self):
        comm = make_comm(8)
        total = comm.reduce(list(range(8)), op=lambda a, b: a + b, root=0)
        assert total == sum(range(8))

    def test_reduce_arrays(self):
        comm = make_comm(4)
        vals = [np.full(3, float(r)) for r in range(4)]
        out = comm.reduce(vals, op=np.add, root=0)
        np.testing.assert_array_equal(out, [6.0, 6.0, 6.0])

    def test_allgather(self):
        comm = make_comm(3)
        out = comm.allgather([1, 2, 3])
        assert out == [[1, 2, 3]] * 3

    def test_alltoall_transpose_semantics(self):
        n = 3
        comm = make_comm(n)
        matrix = [[f"{s}->{d}" for d in range(n)] for s in range(n)]
        out = comm.alltoall(matrix)
        # Rank d receives matrix[s][d] from every s.
        assert out[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_shape_checked(self):
        with pytest.raises(ValidationError):
            make_comm(3).alltoall([[1, 2], [3, 4]])


class TestTimeAccounting:
    def test_bcast_time_matches_exec_model(self):
        from repro.collectives.exec_model import broadcast_time
        from repro.collectives.trees import binomial_tree

        n = 8
        comm = make_comm(n)
        payload = np.zeros(1000)
        comm.bcast(payload, root=0)
        expected = broadcast_time(
            binomial_tree(n, 0), comm.alpha, comm.beta, payload.nbytes
        )
        assert comm.elapsed == pytest.approx(expected)

    def test_stats_accumulate(self):
        comm = make_comm(4)
        comm.bcast(np.zeros(10))
        comm.gather(None, all_values=[np.zeros(5)] * 4)
        assert comm.stats.operations == 2
        assert set(comm.stats.per_op_seconds) == {"bcast", "gather"}
        assert comm.stats.bytes_moved > 0

    def test_send_prices_single_link(self):
        comm = make_comm(2, beta=100.0)
        t = comm.send_time(0, 1, np.zeros(50))  # 400 bytes at 100 B/s
        assert t == pytest.approx(4.0)

    def test_self_send_free(self):
        assert make_comm(2).send_time(1, 1, np.zeros(9)) == 0.0

    def test_fnf_mode_faster_on_skewed_network(self):
        n = 8
        rng = np.random.default_rng(0)
        alpha = np.zeros((n, n))
        beta = rng.uniform(1e6, 1e8, size=(n, n))
        np.fill_diagonal(beta, np.inf)
        w = np.zeros((n, n))
        off = ~np.eye(n, dtype=bool)
        w[off] = 1.0 / beta[off]

        naive = SimComm(alpha, beta)
        aware = SimComm(alpha, beta, weights=w)
        payload = np.zeros(10**6)
        naive.bcast(payload)
        aware.bcast(payload)
        assert aware.elapsed < naive.elapsed

    def test_set_network_changes_prices(self):
        comm = make_comm(4, beta=1e8)
        comm.bcast(np.zeros(1000))
        t1 = comm.elapsed
        b2 = np.full((4, 4), 5e7)
        np.fill_diagonal(b2, np.inf)
        comm.set_network(np.zeros((4, 4)), b2)
        comm.bcast(np.zeros(1000))
        assert comm.elapsed - t1 == pytest.approx(2 * t1)

    def test_set_weights_clears_tree_cache(self):
        comm = make_comm(4)
        comm.bcast(np.zeros(10))  # caches the binomial tree
        w = np.ones((4, 4))
        np.fill_diagonal(w, 0.0)
        comm.set_weights(w)
        comm.bcast(np.zeros(10))  # must rebuild with FNF, not crash
        assert comm.stats.operations == 2


class TestAlgorithmOnSimComm:
    def test_distributed_dot_product(self):
        # A real algorithm written MPI-style: partial dots + reduce.
        n = 4
        comm = make_comm(n)
        rng = np.random.default_rng(1)
        x, y = rng.standard_normal(100), rng.standard_normal(100)
        chunks_x = np.array_split(x, n)
        chunks_y = np.array_split(y, n)
        comm.scatter(chunks_x)
        comm.scatter(chunks_y)
        partials = [float(cx @ cy) for cx, cy in zip(chunks_x, chunks_y)]
        total = comm.reduce(partials, op=lambda a, b: a + b)
        assert total == pytest.approx(float(x @ y))
        assert comm.elapsed > 0
