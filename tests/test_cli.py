"""Unit tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.cloudsim.io import load_trace, save_trace
from repro.cloudsim.tracegen import TraceConfig, generate_trace


@pytest.fixture()
def trace_file(tmp_path):
    trace = generate_trace(TraceConfig(n_machines=6, n_snapshots=16), seed=4)
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    return str(path)


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        assert {"generate", "info", "decompose", "compare", "changepoints",
                "replay"} <= set(sub.choices)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_generate(self, tmp_path, capsys):
        out = str(tmp_path / "t.npz")
        assert main(["generate", out, "--machines", "5", "--snapshots", "8",
                     "--seed", "3"]) == 0
        trace = load_trace(out)
        assert trace.n_machines == 5 and trace.n_snapshots == 8
        assert "wrote" in capsys.readouterr().out

    def test_generate_with_overrides(self, tmp_path):
        out = str(tmp_path / "t.npz")
        assert main(["generate", out, "--machines", "4", "--snapshots", "6",
                     "--volatility", "0.0", "--migration-rate", "0.0"]) == 0
        trace = load_trace(out)
        # Volatility disabled: consecutive snapshots share most values
        # (spikes/hotspots may still fire).
        same = trace.beta[0] == trace.beta[1]
        assert same.mean() > 0.5

    def test_info(self, trace_file, capsys):
        assert main(["info", trace_file]) == 0
        out = capsys.readouterr().out
        assert "Norm(N_E)" in out and "verdict" in out

    def test_decompose(self, trace_file, capsys):
        assert main(["decompose", trace_file, "--solver", "row_constant"]) == 0
        out = capsys.readouterr().out
        assert "row_constant" in out and "Norm(N_E)" in out

    def test_decompose_svd_backend(self, trace_file, capsys):
        assert main(["decompose", trace_file, "--svd-backend", "auto"]) == 0
        out = capsys.readouterr().out
        assert "apg" in out and "Norm(N_E)" in out

    def test_decompose_svd_backend_rejected_for_non_svt_solver(
        self, trace_file, capsys
    ):
        code = main(["decompose", trace_file, "--solver", "pca",
                     "--svd-backend", "auto"])
        assert code == 1
        assert "does not take an SVD backend" in capsys.readouterr().err

    def test_compare(self, trace_file, capsys):
        assert main(["compare", trace_file, "--repetitions", "8",
                     "--solver", "row_constant"]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "RPCA" in out and "Heuristics" in out

    def test_compare_scatter_uses_blocks(self, trace_file, capsys):
        assert main(["compare", trace_file, "--op", "scatter",
                     "--repetitions", "4", "--solver", "row_constant"]) == 0
        assert "scatter" in capsys.readouterr().out

    def test_decompose_profile(self, trace_file, capsys):
        assert main(["decompose", trace_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "instrumentation report [decompose]" in out
        assert "iters" in out and "residual" in out and "ms" in out
        assert "cold" in out

    def test_compare_profile(self, trace_file, capsys):
        assert main(["compare", trace_file, "--repetitions", "4",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "instrumentation report [compare]" in out
        assert "harness.repetitions" in out
        assert "harness.fit.RPCA" in out

    def test_no_profile_no_report(self, trace_file, capsys):
        assert main(["decompose", trace_file]) == 0
        assert "instrumentation report" not in capsys.readouterr().out

    def test_changepoints_none(self, trace_file, capsys):
        assert main(["changepoints", trace_file, "--threshold", "0.9"]) == 0
        assert "no regime changes" in capsys.readouterr().out

    def test_replay(self, trace_file, capsys):
        assert main(["replay", trace_file, "--operations", "20",
                     "--threshold", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "operations" in out and "recalibrations" in out
        assert "Norm(N_E)" in out and "verdict" in out
        assert "health" not in out  # fault-free replays skip the health block

    def test_replay_with_faults_reports_health(self, trace_file, capsys):
        assert main(["replay", trace_file, "--operations", "40",
                     "--threshold", "0.01",
                     "--faults", "probe_loss=0.1,vm_outage=2:12:3",
                     "--fault-seed", "11",
                     "--min-snapshot-observed", "0.7"]) == 0
        out = capsys.readouterr().out
        assert "fault events" in out
        assert "final health" in out
        assert "health transitions" in out
        assert "degraded" in out or "holdover" in out

    def test_replay_with_fault_profile(self, trace_file, capsys):
        assert main(["replay", trace_file, "--operations", "10",
                     "--faults", "mild", "--fault-seed", "2"]) == 0
        assert "final health" in capsys.readouterr().out

    def test_replay_bad_fault_spec_rejected(self, trace_file, capsys):
        assert main(["replay", trace_file, "--faults", "bogus=1"]) == 1
        assert "error" in capsys.readouterr().err.lower()

    def test_fleet_healthy_run_exits_zero(self, capsys):
        assert main(["fleet", "--synthesize", "2", "--machines", "6",
                     "--snapshots", "12", "--operations", "8",
                     "--batch-size", "4", "--window", "6"]) == 0
        out = capsys.readouterr().out
        assert "health:" in out
        assert "DEGRADED" not in out

    @pytest.fixture()
    def degraded_fleet_files(self, tmp_path):
        good = generate_trace(TraceConfig(n_machines=6, n_snapshots=16), seed=7)
        # Shorter than the calibration window: every session attempt raises.
        sick = generate_trace(TraceConfig(n_machines=6, n_snapshots=3), seed=8)
        good_path, sick_path = tmp_path / "good.npz", tmp_path / "sick.npz"
        save_trace(good, good_path)
        save_trace(sick, sick_path)
        return str(good_path), str(sick_path)

    def test_fleet_degraded_exits_nonzero_with_partial_report(
        self, degraded_fleet_files, capsys
    ):
        good_path, sick_path = degraded_fleet_files
        code = main(["fleet", good_path, sick_path,
                     "--operations", "8", "--batch-size", "4",
                     "--window", "6", "--n-workers", "2",
                     "--on-error", "degrade", "--max-task-retries", "0"])
        assert code == 3
        out = capsys.readouterr().out
        # Partial report still prints: the healthy cluster in full, the sick
        # one flagged, plus the health line and the degraded warning.
        assert "00-good" in out and "verdict" in out
        assert "01-sick" in out and "status=quarantined" in out
        assert "health:" in out
        assert "DEGRADED" in out and "01-sick" in out.split("DEGRADED")[1]

    def test_fleet_degraded_json_reports_health(
        self, degraded_fleet_files, capsys
    ):
        good_path, sick_path = degraded_fleet_files
        code = main(["fleet", good_path, sick_path,
                     "--operations", "8", "--batch-size", "4",
                     "--window", "6", "--n-workers", "2", "--json",
                     "--on-error", "degrade", "--max-task-retries", "0"])
        assert code == 3
        summary = json.loads(capsys.readouterr().out)
        assert summary["degraded"] is True
        assert summary["health"]["clusters_quarantined"] == 1
        statuses = {c["name"]: c["status"] for c in summary["clusters"]}
        assert statuses["01-sick"] == "quarantined"
        assert statuses["00-good"] == "ok"

    def test_regime_detector_named_choice(self, trace_file, capsys):
        assert main(["replay", trace_file, "--operations", "12",
                     "--threshold", "10.0", "--regime", "drift"]) == 0
        assert "regime detector:   drift" in capsys.readouterr().out

    def test_regime_params_threaded_through(self, trace_file, capsys):
        assert main(["replay", trace_file, "--operations", "12",
                     "--threshold", "10.0", "--regime", "noise-robust",
                     "--regime-params", "window=3,shift_score=5.0",
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["regime_detector"] == "noise-robust"

    def test_bare_regime_flag_is_a_hard_error(self, trace_file, capsys):
        """The v1-era bare ``--regime`` alias for cusum is retired in v1.1."""
        assert main(["replay", trace_file, "--operations", "12",
                     "--threshold", "10.0", "--regime"]) == 1
        err = capsys.readouterr().err
        assert "--regime requires a detector name" in err
        for name in ("cusum", "drift", "noise-robust", "signature"):
            assert name in err

    def test_unknown_detector_lists_registry(self, trace_file, capsys):
        assert main(["replay", trace_file, "--regime", "kalman"]) == 1
        err = capsys.readouterr().err
        assert "registered detectors" in err and "cusum" in err

    def test_bad_regime_params_rejected(self, trace_file, capsys):
        assert main(["replay", trace_file, "--regime", "cusum",
                     "--regime-params", "decision=high"]) == 1
        assert "expected a number" in capsys.readouterr().err
        assert main(["replay", trace_file, "--regime", "cusum",
                     "--regime-params", "no_such_knob=1"]) == 1
        assert "cusum" in capsys.readouterr().err

    def test_regime_params_require_a_detector(self, trace_file, capsys):
        assert main(["replay", trace_file,
                     "--regime-params", "decision=6.0"]) == 1
        assert "regime" in capsys.readouterr().err

    def test_fleet_accepts_regime_flags(self, capsys):
        assert main(["fleet", "--synthesize", "2", "--machines", "6",
                     "--snapshots", "12", "--operations", "8",
                     "--batch-size", "4", "--window", "6", "--serial",
                     "--regime", "cusum",
                     "--regime-params", "warmup=4"]) == 0
        assert "health:" in capsys.readouterr().out

    def test_fleet_rejects_unknown_detector(self, capsys):
        assert main(["fleet", "--synthesize", "2", "--machines", "6",
                     "--snapshots", "12", "--operations", "8",
                     "--regime", "kalman"]) == 1
        assert "registered detectors" in capsys.readouterr().err

    def test_csv_trace_accepted(self, tmp_path, capsys):
        rows = ["snapshot,src,dst,alpha_s,beta_Bps"]
        for k in range(3):
            for i in range(3):
                for j in range(3):
                    if i != j:
                        rows.append(f"{k},{i},{j},0.001,{1e8 * (1 + i + j)}")
        path = tmp_path / "measurements.csv"
        path.write_text("\n".join(rows) + "\n")
        assert main(["info", str(path)]) == 0
        assert "verdict" in capsys.readouterr().out
        assert main(["decompose", str(path), "--solver", "row_constant"]) == 0
