"""Unit tests for the shared replay harness and report rendering."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.experiments.harness import (
    ComparisonResult,
    ReplayContext,
    collective_comparison,
    empirical_cdf,
    mapping_comparison,
)
from repro.experiments.report import format_series, format_table
from repro.mapping.taskgraph import random_task_graph
from repro.strategies.baseline import BaselineStrategy
from repro.strategies.heuristics import HeuristicStrategy
from repro.strategies.rpca import RPCAStrategy

MB = 1024 * 1024


def arms():
    return [BaselineStrategy(), HeuristicStrategy("mean"), RPCAStrategy("row_constant")]


class TestReplayContext:
    def test_eval_window(self, small_trace):
        ctx = ReplayContext(trace=small_trace, time_step=10)
        assert ctx.n_eval == 14
        assert ctx.eval_snapshot(0) == 10
        assert ctx.eval_snapshot(14) == 10  # cycles

    def test_time_step_bounds(self, small_trace):
        with pytest.raises(ValidationError):
            ReplayContext(trace=small_trace, time_step=24)

    def test_fit_fits_all(self, small_trace):
        ctx = ReplayContext(trace=small_trace, time_step=10)
        strategies = arms()
        ctx.fit(strategies)
        assert strategies[1].weight_matrix() is not None
        assert strategies[2].weight_matrix() is not None


class TestEmpiricalCdf:
    def test_sorted_and_fractions(self):
        v, f = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_array_equal(v, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(f, [1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            empirical_cdf(np.array([]))


class TestComparisonResult:
    def test_normalization_and_improvement(self):
        res = ComparisonResult(
            times={"Baseline": np.array([2.0, 2.0]), "RPCA": np.array([1.0, 1.0])}
        )
        norm = res.normalized_means()
        assert norm["Baseline"] == 1.0
        assert norm["RPCA"] == 0.5
        assert res.improvement("RPCA", "Baseline") == pytest.approx(0.5)


class TestCollectiveComparison:
    def test_shapes_and_determinism(self, small_trace):
        ctx = ReplayContext(trace=small_trace, time_step=10)
        r1 = collective_comparison(ctx, arms(), repetitions=12, seed=5)
        r2 = collective_comparison(ctx, arms(), repetitions=12, seed=5)
        for name in r1.times:
            assert r1.times[name].shape == (12,)
            np.testing.assert_array_equal(r1.times[name], r2.times[name])

    def test_rpca_beats_baseline_on_default_trace(self, small_trace):
        # At this tiny scale (8 VMs) the heavy-tailed spike events make
        # per-repetition times noisy; 100 repetitions stabilize the mean.
        ctx = ReplayContext(trace=small_trace, time_step=10)
        res = collective_comparison(ctx, arms(), repetitions=100, seed=2)
        assert res.improvement("RPCA", "Baseline") > 0.05

    def test_all_ops_supported(self, small_trace):
        ctx = ReplayContext(trace=small_trace, time_step=10)
        for op in ("broadcast", "scatter", "reduce", "gather"):
            res = collective_comparison(ctx, arms(), op=op, repetitions=4, seed=2)
            assert all(np.all(v > 0) for v in res.times.values())

    def test_refit_mode(self, small_trace):
        ctx = ReplayContext(trace=small_trace, time_step=5)
        res = collective_comparison(ctx, arms(), repetitions=6, seed=3, refit=True)
        assert all(v.size == 6 for v in res.times.values())

    def test_repetitions_validated(self, small_trace):
        ctx = ReplayContext(trace=small_trace, time_step=10)
        with pytest.raises(ValidationError):
            collective_comparison(ctx, arms(), repetitions=0)


class TestMappingComparison:
    def test_basic(self, small_trace):
        ctx = ReplayContext(trace=small_trace, time_step=10)
        graphs = [random_task_graph(8, seed=s) for s in range(6)]
        res = mapping_comparison(ctx, arms(), graphs, seed=4)
        assert all(v.shape == (6,) for v in res.times.values())
        assert res.improvement("RPCA", "Baseline") > 0.0

    def test_graph_too_large_rejected(self, small_trace):
        ctx = ReplayContext(trace=small_trace, time_step=10)
        with pytest.raises(ValidationError):
            mapping_comparison(ctx, arms(), [random_task_graph(9, seed=0)])

    def test_empty_graphs_rejected(self, small_trace):
        ctx = ReplayContext(trace=small_trace, time_step=10)
        with pytest.raises(ValidationError):
            mapping_comparison(ctx, arms(), [])


class TestReport:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [(1, 2.5), (10, 0.125)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        out = format_series("x", "y", [(1, 2.0)])
        assert "x" in out and "2" in out
