"""Fig 6 — update-maintenance threshold study.

Paper shape: below ≈20% the loop thrashes (overhead dominates), above
≈150% it effectively never re-calibrates and communication degrades after
regime changes; ≈100% "almost achieves the best performance". The replay
uses a trace whose placement regime changes every 24 snapshots (mass VM
migrations) and monitors application-sized operations (40 collectives per
run), reproducing the U-shape with its minimum in the 100-150% band.
"""

import numpy as np

from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.trace import CalibrationTrace
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.experiments import fig06_threshold
from repro.experiments.report import format_table

THRESHOLDS = (0.1, 0.2, 0.5, 1.0, 1.5, 2.0, 5.0)


def regime_cycle_trace(n=16, segments=5, seg_len=24, seed=0):
    """Fresh placement+bands every *seg_len* snapshots: periodic regime changes."""
    dyn = DynamicsConfig(
        volatility_sigma=0.08,
        spike_probability=0.02,
        spike_severity=3.0,
        hotspot_probability=0.02,
    )
    parts = [
        generate_trace(
            TraceConfig(n_machines=n, n_snapshots=seg_len, dynamics=dyn),
            seed=seed + i,
        )
        for i in range(segments)
    ]
    return CalibrationTrace(
        alpha=np.concatenate([p.alpha for p in parts]),
        beta=np.concatenate([p.beta for p in parts]),
        timestamps=np.arange(segments * seg_len, dtype=float) * 1800.0,
    )


def test_fig06_maintenance_threshold(benchmark, emit):
    trace = regime_cycle_trace()
    result = benchmark.pedantic(
        fig06_threshold.run,
        args=(trace,),
        kwargs=dict(
            thresholds=THRESHOLDS,
            time_step=10,
            calibration_cost=45.0,  # Fig 4 model at this cluster size
            collectives_per_operation=40,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    emit(
        format_table(
            ["threshold", "avg total (s)", "avg comm (s)", "avg overhead (s)", "recals"],
            result.as_rows(),
            title="Fig 6: application runs under the Algorithm-1 maintenance loop",
        )
    )

    by_th = {o.threshold: o for o in result.outcomes}
    # The U-shape: the sweet spot sits in the paper's 100-150% band.
    assert result.best_threshold() in (1.0, 1.5)
    assert by_th[1.0].avg_total_time < by_th[0.1].avg_total_time
    assert by_th[1.0].avg_total_time < by_th[5.0].avg_total_time
    # Thrashing at tiny thresholds: monotone recalibrations and overhead.
    recals = [by_th[t].recalibrations for t in THRESHOLDS]
    assert all(a >= b for a, b in zip(recals, recals[1:]))
    overheads = [by_th[t].avg_maintenance_overhead for t in THRESHOLDS]
    assert all(a >= b - 1e-9 for a, b in zip(overheads, overheads[1:]))
    # Stale estimates at huge thresholds degrade communication itself.
    assert by_th[5.0].avg_communication_time > 1.1 * by_th[0.5].avg_communication_time
