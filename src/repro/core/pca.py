"""Plain (non-robust) PCA baseline.

The paper motivates RPCA by PCA's known weakness: "the accuracy of PCA is
prone to noise or gross errors in the input data" (Sec II-B). This solver
implements that straw man — a rank-one truncated SVD of the TP-matrix with
the residual as the "error" — so the robustness claim can be demonstrated
quantitatively (see ``benchmarks/test_ablation_pca_vs_rpca.py``): a single
heavy outlier snapshot visibly drags PCA's constant row while RPCA's stays
put.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_float_matrix
from .svd_ops import truncated_svd

__all__ = ["PCAResult", "pca_rank1_decomposition"]


@dataclass(frozen=True, slots=True)
class PCAResult:
    """Outcome of :func:`pca_rank1_decomposition` (solver-result protocol)."""

    low_rank: np.ndarray
    sparse: np.ndarray
    constant_row: np.ndarray
    rank: int
    iterations: int
    converged: bool
    residual: float


def pca_rank1_decomposition(a: np.ndarray) -> PCAResult:
    """Best rank-one L2 approximation of *a* plus residual.

    ``low_rank = σ₁ u₁ v₁ᵀ`` — the classic PCA/SVD answer, optimal in the
    Frobenius norm and therefore maximally sensitive to gross outliers
    (a single corrupted snapshot tilts u₁ toward it). The constant row is
    the least-squares row-constant fit to ``low_rank``, i.e. its column
    mean, matching the extraction used for the robust solvers.
    """
    A = as_float_matrix(a, "a")
    u, s, vt = truncated_svd(A)
    if s.size == 0 or s[0] == 0.0:
        zero = np.zeros_like(A)
        return PCAResult(zero, zero.copy(), np.zeros(A.shape[1]), 0, 1, True, 0.0)
    low = np.outer(u[:, 0] * s[0], vt[0])
    sparse = A - low
    row = low.mean(axis=0)
    norm_a = float(np.linalg.norm(A))
    residual = float(np.linalg.norm(sparse)) / norm_a if norm_a else 0.0
    return PCAResult(
        low_rank=low,
        sparse=sparse,
        constant_row=row,
        rank=1,
        iterations=1,
        converged=True,
        residual=residual,
    )
