"""Fig 8 — RPCA improvement over Baseline vs cluster size and message size.

The paper runs 64 and 196 medium instances and observes a larger improvement
on the bigger cluster (its VMs span more racks, so link selection matters
more), and a larger improvement for bigger messages (maintenance overhead
amortizes). The driver sweeps (cluster size × message size) and reports the
broadcast improvement of RPCA over Baseline for each cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cloudsim.tracegen import TraceConfig, generate_trace
from ..utils.seeding import derive_seed
from .fig07_overall_ec2 import default_strategies
from .harness import ReplayContext, collective_comparison

__all__ = ["Fig08Cell", "Fig08Result", "run"]

MB = 1024 * 1024


@dataclass(frozen=True, slots=True)
class Fig08Cell:
    """One (cluster size, message size) measurement."""

    n_machines: int
    nbytes: float
    improvement_over_baseline: float
    cross_rack_fraction: float


@dataclass(frozen=True)
class Fig08Result:
    cells: tuple[Fig08Cell, ...]

    def improvement(self, n_machines: int, nbytes: float) -> float:
        for c in self.cells:
            if c.n_machines == n_machines and c.nbytes == nbytes:
                return c.improvement_over_baseline
        raise KeyError((n_machines, nbytes))

    def as_rows(self) -> list[tuple[int, float, float]]:
        return [
            (c.n_machines, c.nbytes / MB, c.improvement_over_baseline)
            for c in self.cells
        ]


def run(
    *,
    cluster_sizes: tuple[int, ...] = (64, 196),
    message_sizes: tuple[float, ...] = (1.0 * MB, 8.0 * MB),
    n_snapshots: int = 30,
    time_step: int = 10,
    repetitions: int = 60,
    solver: str = "apg",
    colocation: float = 0.98,
    servers_per_rack: int = 64,
    seed: int = 0,
) -> Fig08Result:
    """Sweep cluster and message sizes; one fresh trace per cluster size.

    *colocation* and *servers_per_rack* control how rack-local a small
    cluster ends up — the mechanism behind the paper's size effect ("when
    the virtual cluster is large, its virtual machines may be more likely
    to be located in different racks"): a 64-VM cluster that fits inside a
    rack sees mostly homogeneous same-rack links (little to exploit), while
    196 VMs necessarily mix rack tiers.
    """
    from ..cloudsim.placement import place_cluster

    cells: list[Fig08Cell] = []
    for n in cluster_sizes:
        cfg = TraceConfig(
            n_machines=n,
            n_snapshots=n_snapshots,
            colocation=colocation,
            servers_per_rack=servers_per_rack,
        )
        placement = place_cluster(
            n,
            colocation=colocation,
            servers_per_rack=servers_per_rack,
            seed=derive_seed(seed, "place", n),
        )
        trace = generate_trace(
            cfg, seed=derive_seed(seed, "trace", n), placement=placement
        )
        for nbytes in message_sizes:
            ctx = ReplayContext(trace=trace, time_step=time_step, nbytes=nbytes)
            strategies = default_strategies(solver=solver, time_step=time_step)
            result = collective_comparison(
                ctx,
                strategies,
                op="broadcast",
                nbytes=nbytes,
                repetitions=repetitions,
                seed=derive_seed(seed, "rep", n, int(nbytes)),
            )
            cells.append(
                Fig08Cell(
                    n_machines=n,
                    nbytes=nbytes,
                    improvement_over_baseline=result.improvement("RPCA", "Baseline"),
                    cross_rack_fraction=placement.cross_rack_fraction(),
                )
            )
    return Fig08Result(cells=tuple(cells))
