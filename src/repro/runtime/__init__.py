"""Runtime: the paper's Algorithm 1 as a stateful session.

:class:`TraceSession` owns everything a user of the approach needs at run
time — the calibration window, the current decomposition, the maintenance
controller and the overhead accounting — and exposes collective operations
and task mapping against the live network, re-calibrating itself when the
expected-vs-real feedback says the constant component went stale.
"""

from .session import (
    OperationRecord,
    OperationSpec,
    SessionCapsule,
    SessionStats,
    TraceSession,
)

__all__ = [
    "TraceSession",
    "OperationRecord",
    "OperationSpec",
    "SessionCapsule",
    "SessionStats",
]
