"""The paper's full experimental campaign protocol (Sec V-A).

"For each virtual cluster size, the real experiment takes around one week,
with one experimental run every 30 minutes. In each run, we run the
following experiments one by one: calibration, MPI and topology mapping
applications. For each application, we run the compared algorithms one by
one."

:func:`run_campaign` replays exactly that protocol over a synthetic week:
every 30-minute slot runs broadcast, scatter and topology mapping under
each arm on the live snapshot; the RPCA arm runs inside a
:class:`~repro.runtime.session.TraceSession` so Algorithm-1 maintenance
(threshold 100 %, time step 10) operates exactly as deployed, including
re-calibration charges. The result aggregates per-arm elapsed time,
overheads, and the week's dollar bill.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..calibration.overhead import calibration_overhead_seconds
from ..cloudsim.trace import CalibrationTrace
from ..collectives.exec_model import collective_time
from ..collectives.operations import build_tree
from ..economics.pricing import InstancePricing, run_cost_usd
from ..errors import ValidationError
from ..mapping.evaluate import bandwidth_from_weights, mapping_total_time
from ..mapping.greedy import greedy_mapping
from ..mapping.ring import ring_mapping
from ..mapping.taskgraph import random_task_graph
from ..runtime.session import TraceSession
from ..strategies.heuristics import HeuristicStrategy
from ..utils.seeding import derive_seed, spawn_rng

__all__ = ["ArmSummary", "CampaignResult", "run_campaign"]

MB = 1024 * 1024


@dataclass(frozen=True, slots=True)
class ArmSummary:
    """One arm's accumulated week."""

    name: str
    communication_seconds: float
    overhead_seconds: float
    runs: int
    recalibrations: int
    cost_usd: float

    @property
    def total_seconds(self) -> float:
        return self.communication_seconds + self.overhead_seconds


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate of the week-long protocol."""

    arms: tuple[ArmSummary, ...]
    norm_ne_series: tuple[float, ...]

    def arm(self, name: str) -> ArmSummary:
        for a in self.arms:
            if a.name == name:
                return a
        raise KeyError(name)

    def improvement(self, of: str, over: str) -> float:
        return 1.0 - self.arm(of).total_seconds / self.arm(over).total_seconds

    def as_rows(self) -> list[tuple[str, float, float, float, int, float]]:
        return [
            (a.name, a.communication_seconds, a.overhead_seconds,
             a.total_seconds, a.recalibrations, a.cost_usd)
            for a in self.arms
        ]


def run_campaign(
    trace: CalibrationTrace,
    *,
    time_step: int = 10,
    threshold: float = 1.0,
    consecutive: int = 2,
    nbytes: float = 8.0 * MB,
    solver: str = "apg",
    collectives_per_run: int = 100,
    pricing: InstancePricing | None = None,
    seed: int = 0,
) -> CampaignResult:
    """Replay the Sec V-A protocol over *trace* (one run per snapshot).

    Each post-calibration snapshot is one 30-minute experimental run:
    broadcast + scatter + one topology mapping, executed under Baseline,
    Heuristics (re-fit each run on the trailing window, i.e. the "direct
    use of recent measurements" it stands for) and RPCA (a live
    :class:`TraceSession` with Algorithm-1 maintenance).

    *collectives_per_run* sizes each 30-minute run: a real application
    executes hundreds of collectives per run, so its communication time is
    the single-operation time scaled by that factor (the maintenance loop
    still observes single operations; the deviation ratio is scale-free).
    """
    if trace.n_snapshots <= time_step + 1:
        raise ValidationError("trace too short for a campaign")
    if int(collectives_per_run) < 1:
        raise ValidationError("collectives_per_run must be >= 1")
    n = trace.n_machines
    rng = spawn_rng(derive_seed(seed, "campaign"))
    p = pricing if pricing is not None else InstancePricing()
    cal_cost = calibration_overhead_seconds(n, time_step)

    session = TraceSession(
        trace,
        nbytes=nbytes,
        time_step=time_step,
        threshold=threshold,
        consecutive=consecutive,  # single collectives spike; debounce them
        solver=solver,
        calibration_cost=cal_cost,
    )
    # Heuristics = "direct use of a few measurements": it fits once on the
    # same initial calibration RPCA consumed and has no maintenance rule of
    # its own (Algorithm 1 is precisely what it lacks).
    heuristic = HeuristicStrategy("mean")
    heuristic.fit(trace.tp_matrix(nbytes, start=0, count=time_step))
    h_weights = heuristic.weight_matrix()

    comm = {"Baseline": 0.0, "Heuristics": 0.0, "RPCA": 0.0}
    overhead = {"Baseline": 0.0, "Heuristics": cal_cost, "RPCA": 0.0}
    runs = 0
    norm_series: list[float] = []

    for k in range(time_step, trace.n_snapshots):
        root = int(rng.integers(n))
        live_a, live_b = trace.alpha[k], trace.beta[k]
        graph = random_task_graph(n, seed=derive_seed(seed, "graph", k))

        c = float(collectives_per_run)
        # Baseline: binomial trees + ring mapping, no estimates.
        tree = build_tree(n, root, algorithm="binomial")
        comm["Baseline"] += c * collective_time("broadcast", tree, live_a, live_b, nbytes)
        comm["Baseline"] += c * collective_time("scatter", tree, live_a, live_b, nbytes / n)
        comm["Baseline"] += mapping_total_time(
            graph, ring_mapping(n, n, offset=root), live_a, live_b
        )

        h_tree = build_tree(n, root, algorithm="fnf", weights=h_weights)
        comm["Heuristics"] += c * collective_time("broadcast", h_tree, live_a, live_b, nbytes)
        comm["Heuristics"] += c * collective_time("scatter", h_tree, live_a, live_b, nbytes / n)
        comm["Heuristics"] += mapping_total_time(
            graph,
            greedy_mapping(graph, bandwidth_from_weights(h_weights)),
            live_a,
            live_b,
        )

        # RPCA: the session prices ops itself at its own cursor; align it.
        session._cursor = k  # replay alignment: same live snapshot as others
        rec_b = session.broadcast(root=root)
        session._cursor = k
        rec_s = session.scatter(root=root, block_bytes=nbytes / n)
        session._cursor = k
        _, map_elapsed = session.map_tasks(graph)
        comm["RPCA"] += c * (rec_b.elapsed + rec_s.elapsed) + map_elapsed
        norm_series.append(session.norm_ne)
        runs += 1

    overhead["RPCA"] = session.stats.overhead_seconds
    arms = tuple(
        ArmSummary(
            name=name,
            communication_seconds=comm[name],
            overhead_seconds=overhead[name],
            runs=runs,
            recalibrations=session.stats.recalibrations if name == "RPCA" else 0,
            cost_usd=run_cost_usd(comm[name] + overhead[name], n, p),
        )
        for name in ("Baseline", "Heuristics", "RPCA")
    )
    return CampaignResult(arms=arms, norm_ne_series=tuple(norm_series))
