"""One schema for every ``BENCH_*.json`` perf record the repo emits.

The benchmark suite writes machine-readable perf records at the repo root
(``BENCH_rpca.json``, ``BENCH_batch.json``, ``BENCH_regime.json``,
``BENCH_stream.json``) so CI can archive them and future PRs can track the
perf trajectory. Before v1.1 each emitter invented its own envelope; this
module is the single source of truth:

* :func:`bench_record` — wraps an emitter's payload with the shared
  envelope: ``benchmark`` name, ``schema_version``, ``seeds``, ``backend``
  and a ``machine`` block (git sha, python/numpy versions, platform,
  cpu count, whether ``REPRO_PERF_STRICT`` gated the run).
* :func:`write_bench_json` — the one serialization policy (sorted keys,
  two-space indent, trailing newline, numpy scalars coerced).

Comparing two records is only meaningful when their ``machine`` blocks
agree on the axes that matter — that is the point of recording them.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from pathlib import Path
from typing import Any, Iterable

__all__ = ["BENCH_SCHEMA_VERSION", "bench_machine", "bench_record", "write_bench_json"]

#: Bumped whenever the shared envelope changes shape.
#: v2: the machine block grew ``cpu_affinity`` and ``cpu_count`` became the
#: schedulable-CPU count (the cgroup/affinity mask), not the host core count.
BENCH_SCHEMA_VERSION = 2


def _git_sha() -> str | None:
    """The repo HEAD sha, or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _cpu_counts() -> tuple[int | None, int | None]:
    """``(schedulable, host)`` CPU counts.

    ``os.cpu_count()`` reports the host's cores even when the process is
    pinned to a subset (CI runners, cgroup-limited containers, taskset) —
    the wrong number for judging a perf record. The affinity mask is what
    the benchmark actually ran on; both are recorded so two records can be
    compared on either axis.
    """
    host = os.cpu_count()
    try:
        affinity: int | None = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux or restricted runtime
        affinity = None
    return affinity, host


def bench_machine() -> dict[str, Any]:
    """The machine/toolchain block shared by every BENCH record."""
    import numpy as np

    affinity, host = _cpu_counts()
    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        # The count that governs perf: schedulable CPUs when knowable.
        "cpu_count": affinity if affinity is not None else host,
        "cpu_affinity": affinity,
        "cpu_count_host": host,
        "perf_strict": os.environ.get("REPRO_PERF_STRICT") == "1",
    }


def bench_record(
    benchmark: str,
    *,
    seeds: Iterable[int] | None = None,
    backend: str | None = None,
    **payload: Any,
) -> dict[str, Any]:
    """Build a BENCH record: the shared envelope plus *payload* fields.

    *seeds* are the RNG seeds the benchmark's inputs were generated from
    (reproducibility axis); *backend* names the kernel/solver backend under
    test when the benchmark has a single one (``None`` when the payload
    carries a per-cell backend matrix instead). Payload keys may not
    collide with envelope keys.
    """
    record: dict[str, Any] = {
        "benchmark": str(benchmark),
        "schema_version": BENCH_SCHEMA_VERSION,
        "machine": bench_machine(),
        "seeds": None if seeds is None else [int(s) for s in seeds],
        "backend": backend,
    }
    overlap = set(payload) & set(record)
    if overlap:
        raise ValueError(f"payload keys collide with envelope: {sorted(overlap)}")
    record.update(payload)
    return record


def _coerce(obj: Any) -> Any:
    # numpy scalars (np.float64 means, np.int64 counters) serialize as
    # their python equivalents; anything else is a genuine schema bug.
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"{type(obj).__name__} is not BENCH-serializable")


def write_bench_json(path: str | Path, record: dict[str, Any]) -> Path:
    """Write *record* to *path* under the one serialization policy."""
    path = Path(path)
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True, default=_coerce) + "\n"
    )
    return path
