"""Unit tests for composite collectives (alltoall / allgather / allreduce)."""

import numpy as np
import pytest

from repro.collectives.composites import (
    allgather_time,
    allreduce_time,
    alltoall_time,
)
from repro.collectives.exec_model import broadcast_time, gather_time, reduce_time
from repro.collectives.trees import binomial_tree


def uniform_net(n, beta=2.0, alpha=0.0):
    a = np.full((n, n), alpha)
    b = np.full((n, n), beta)
    np.fill_diagonal(a, 0.0)
    np.fill_diagonal(b, np.inf)
    return a, b


class TestAlltoall:
    def test_is_gather_plus_broadcast(self):
        n = 8
        t = binomial_tree(n, 0)
        a, b = uniform_net(n)
        total = 64.0
        res = alltoall_time(t, a, b, total)
        expected_g = gather_time(t, a, b, total / n)
        expected_b = broadcast_time(t, a, b, total)
        assert dict(res.phases)["gather"] == pytest.approx(expected_g)
        assert dict(res.phases)["broadcast"] == pytest.approx(expected_b)
        assert res.total == pytest.approx(expected_g + expected_b)

    def test_phase_names(self):
        t = binomial_tree(4, 0)
        a, b = uniform_net(4)
        res = alltoall_time(t, a, b, 8.0)
        assert [p for p, _ in res.phases] == ["gather", "broadcast"]


class TestAllgather:
    def test_broadcast_carries_n_blocks(self):
        n = 4
        t = binomial_tree(n, 0)
        a, b = uniform_net(n)
        res = allgather_time(t, a, b, block_bytes=3.0)
        expected_b = broadcast_time(t, a, b, 12.0)
        assert dict(res.phases)["broadcast"] == pytest.approx(expected_b)


class TestAllreduce:
    def test_is_reduce_plus_broadcast(self):
        n = 8
        t = binomial_tree(n, 0)
        a, b = uniform_net(n)
        res = allreduce_time(t, a, b, 16.0)
        assert dict(res.phases)["reduce"] == pytest.approx(reduce_time(t, a, b, 16.0))
        assert dict(res.phases)["broadcast"] == pytest.approx(
            broadcast_time(t, a, b, 16.0)
        )

    def test_symmetric_network_phases_equal(self):
        n = 8
        t = binomial_tree(n, 0)
        a, b = uniform_net(n, beta=5.0, alpha=0.001)
        res = allreduce_time(t, a, b, 10.0)
        phases = dict(res.phases)
        assert phases["reduce"] == pytest.approx(phases["broadcast"])
