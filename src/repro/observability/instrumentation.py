"""Counters, timers and per-solve span records.

An :class:`Instrumentation` object is a passive sink: components *emit*
counts, timed sections and :class:`SolveSpan` records into it, and a human
(or a test) reads them back either field-by-field or through
:meth:`Instrumentation.report`. It deliberately has no I/O and no global
state of its own — activation scoping lives in
:mod:`repro.observability` (:func:`~repro.observability.instrumented`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Any, Iterator

__all__ = ["SolveSpan", "Instrumentation"]


@dataclass(frozen=True, slots=True)
class SolveSpan:
    """One RPCA solve, as observed at the :func:`~repro.core.solvers.solve_rpca` boundary.

    Attributes
    ----------
    solver:
        Registry name of the backend that ran.
    rows, cols:
        Shape of the decomposed matrix.
    iterations:
        Iterations the solver reported.
    rank:
        Rank of the recovered low-rank component.
    residual:
        Final relative residual the solver reported.
    converged:
        Whether the solver met its stopping criterion.
    warm:
        Whether the solve was warm-started from a previous solution.
    seconds:
        Wall-clock time of the solve.
    context:
        Free-form label of who requested the solve (e.g. ``"engine"``).
    """

    solver: str
    rows: int
    cols: int
    iterations: int
    rank: int
    residual: float
    converged: bool
    warm: bool
    seconds: float
    context: str = ""


class Instrumentation:
    """A named bundle of counters, accumulated timers and solve spans."""

    __slots__ = ("name", "counters", "timers", "spans")

    def __init__(self, name: str = "default") -> None:
        self.name = str(name)
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}
        self.spans: list[SolveSpan] = []

    # -- emission ---------------------------------------------------------
    def count(self, name: str, inc: int = 1) -> None:
        """Increment counter *name* by *inc*."""
        self.counters[name] = self.counters.get(name, 0) + int(inc)

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* under timer *name*."""
        self.timers[name] = self.timers.get(name, 0.0) + float(seconds)

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Time the enclosed block into timer *name* (re-entrant, accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def record_span(self, span: SolveSpan) -> None:
        """Append one solve-span record."""
        self.spans.append(span)

    def reset(self) -> None:
        """Drop all recorded data (the name is kept)."""
        self.counters.clear()
        self.timers.clear()
        self.spans.clear()

    # -- persistence ------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of everything recorded so far.

        Used by session checkpoints so counters, timers and solve spans
        survive a crash: a recovered session's instrumentation reflects the
        whole lifetime, not just the post-recovery stretch.
        """
        return {
            "name": self.name,
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "spans": [asdict(s) for s in self.spans],
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`state_dict`; replaces all recorded data."""
        self.name = str(state["name"])
        self.counters = {str(k): int(v) for k, v in state["counters"].items()}
        self.timers = {str(k): float(v) for k, v in state["timers"].items()}
        self.spans = [SolveSpan(**span) for span in state["spans"]]

    def merge(self, other: "Instrumentation | dict[str, Any]") -> None:
        """Fold another sink's recorded data into this one (additive).

        Counters and timers accumulate, spans append. The fleet scheduler
        uses this to aggregate per-worker/per-cluster instrumentation
        (shipped across process boundaries as :meth:`state_dict` payloads)
        into one fleet-level report; the merged-in sink's name is dropped.
        """
        state = other.state_dict() if isinstance(other, Instrumentation) else other
        for key, value in state["counters"].items():
            self.count(str(key), int(value))
        for key, value in state["timers"].items():
            self.add_time(str(key), float(value))
        for span in state["spans"]:
            self.record_span(span if isinstance(span, SolveSpan) else SolveSpan(**span))

    # -- aggregates -------------------------------------------------------
    @property
    def solves(self) -> int:
        return len(self.spans)

    @property
    def warm_solves(self) -> int:
        return sum(1 for s in self.spans if s.warm)

    @property
    def cold_solves(self) -> int:
        return sum(1 for s in self.spans if not s.warm)

    @property
    def solve_seconds(self) -> float:
        return sum(s.seconds for s in self.spans)

    @property
    def solve_iterations(self) -> int:
        return sum(s.iterations for s in self.spans)

    # -- reporting --------------------------------------------------------
    def report(self) -> str:
        """Human-readable multi-line summary of everything recorded."""
        lines = [f"instrumentation report [{self.name}]"]
        if self.spans:
            lines.append(
                f"  solves: {self.solves} "
                f"({self.warm_solves} warm, {self.cold_solves} cold), "
                f"{self.solve_iterations} iterations, "
                f"{self.solve_seconds * 1e3:.1f} ms total"
            )
            header = (
                f"  {'#':>3} {'solver':<14} {'shape':<12} {'mode':<4} "
                f"{'iters':>5} {'rank':>4} {'residual':>10} {'ms':>8}  context"
            )
            lines.append(header)
            for i, s in enumerate(self.spans):
                mode = "warm" if s.warm else "cold"
                flag = "" if s.converged else " (not converged)"
                lines.append(
                    f"  {i:>3} {s.solver:<14} {s.rows}x{s.cols:<9} {mode:<4} "
                    f"{s.iterations:>5} {s.rank:>4} {s.residual:>10.3e} "
                    f"{s.seconds * 1e3:>8.2f}  {s.context}{flag}"
                )
        else:
            lines.append("  solves: none recorded")
        if self.counters:
            lines.append("  counters:")
            for name in sorted(self.counters):
                lines.append(f"    {name:<36} {self.counters[name]}")
        if self.timers:
            lines.append("  timers:")
            for name in sorted(self.timers):
                lines.append(f"    {name:<36} {self.timers[name] * 1e3:.2f} ms")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Instrumentation(name={self.name!r}, solves={self.solves}, "
            f"counters={len(self.counters)}, timers={len(self.timers)})"
        )
