"""Zero-copy trace transport between the fleet scheduler and its workers.

Shipping a :class:`~repro.cloudsim.trace.CalibrationTrace` to a worker by
pickling it copies ``2 * T * N * N`` float64s per batch — the dominant IPC
cost for realistic traces. Instead the scheduler writes each cluster's trace
into one :class:`multiprocessing.shared_memory.SharedMemory` segment *once*
and passes workers a tiny :class:`TraceBlockDescriptor` (name + shape).
Workers map the segment and hand the engine read-only numpy views of it; no
trace bytes ever cross a pipe.

Layout of a block (single contiguous segment)::

    [ alpha: T*N*N float64 | beta: T*N*N float64 | timestamps: T float64
      | mask: T*N*N uint8 (only when the trace has one) ]

``alpha``/``beta``/``timestamps`` views are genuinely zero-copy:
``CalibrationTrace.__post_init__`` calls ``np.ascontiguousarray`` which is a
no-op for these already-contiguous float64 views, then marks them read-only
— exactly the aliasing we want. The boolean mask is copied on construction
by the trace itself (it normalizes and re-diagonalizes), which is fine: the
mask is 1/16 the size of the measurement payload.
"""

from __future__ import annotations

from dataclasses import dataclass
import multiprocessing
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..cloudsim.trace import CalibrationTrace
from ..core.matrices import TPMatrix
from ..errors import FleetError, ValidationError

__all__ = [
    "SharedStackBlock",
    "SharedTraceBlock",
    "StackBlockDescriptor",
    "TraceBlockDescriptor",
]


def _unregister_attached(shm: shared_memory.SharedMemory) -> None:
    """Deregister a worker-side attach from the resource tracker.

    CPython's SharedMemory registers *every* handle with a resource
    tracker. Under spawn the attaching child runs its *own* tracker,
    which at child exit "cleans up" — i.e. destroys — a segment the
    scheduler still owns, so the attach must be deregistered. Under
    fork the tracker process is shared with the creator: registration
    is idempotent there, and unregistering would strip the *owner's*
    entry instead. Ownership is strictly creator-side either way.
    """
    if multiprocessing.get_start_method(allow_none=True) != "fork":
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass


@dataclass(frozen=True, slots=True)
class TraceBlockDescriptor:
    """Pickle-cheap handle for a shared trace block (name + geometry)."""

    name: str
    n_snapshots: int
    n_machines: int
    has_mask: bool

    @property
    def nbytes(self) -> int:
        cube = self.n_snapshots * self.n_machines * self.n_machines
        total = (2 * cube + self.n_snapshots) * 8
        if self.has_mask:
            total += cube
        return total


class SharedTraceBlock:
    """A calibration trace resident in one shared-memory segment.

    The creating process (the scheduler) owns the segment and must call
    :meth:`unlink` when the fleet run ends; attaching processes (workers)
    only :meth:`close` their mapping. Use as a context manager for the
    owner side.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        descriptor: TraceBlockDescriptor,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.descriptor = descriptor
        self._owner = owner
        self._closed = False

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, trace: CalibrationTrace) -> "SharedTraceBlock":
        """Copy *trace* into a fresh shared-memory segment (owner side)."""
        t, n = trace.n_snapshots, trace.n_machines
        desc_probe = TraceBlockDescriptor(
            name="", n_snapshots=t, n_machines=n, has_mask=trace.mask is not None
        )
        shm = shared_memory.SharedMemory(create=True, size=desc_probe.nbytes)
        descriptor = TraceBlockDescriptor(
            name=shm.name, n_snapshots=t, n_machines=n, has_mask=trace.mask is not None
        )
        block = cls(shm, descriptor, owner=True)
        alpha, beta, ts, mask = block._views()
        alpha[...] = trace.alpha
        beta[...] = trace.beta
        ts[...] = trace.timestamps
        if mask is not None:
            mask[...] = trace.mask.astype(np.uint8)
        return block

    @classmethod
    def attach(cls, descriptor: TraceBlockDescriptor) -> "SharedTraceBlock":
        """Map an existing segment (worker side); never takes ownership."""
        try:
            shm = shared_memory.SharedMemory(name=descriptor.name)
        except FileNotFoundError as exc:
            raise FleetError(
                f"shared trace block {descriptor.name!r} is gone "
                "(scheduler unlinked it early?)"
            ) from exc
        _unregister_attached(shm)
        return cls(shm, descriptor, owner=False)

    # -- access --------------------------------------------------------

    def _views(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        if self._closed:
            raise FleetError("shared trace block is closed")
        d = self.descriptor
        t, n = d.n_snapshots, d.n_machines
        cube = t * n * n
        buf = self._shm.buf
        alpha = np.ndarray((t, n, n), dtype=np.float64, buffer=buf, offset=0)
        beta = np.ndarray((t, n, n), dtype=np.float64, buffer=buf, offset=cube * 8)
        ts = np.ndarray((t,), dtype=np.float64, buffer=buf, offset=2 * cube * 8)
        mask = None
        if d.has_mask:
            mask = np.ndarray(
                (t, n, n), dtype=np.uint8, buffer=buf, offset=(2 * cube + t) * 8
            )
        return alpha, beta, ts, mask

    def trace(self) -> CalibrationTrace:
        """Rebuild the trace as read-only views over the segment.

        The returned trace aliases this block's memory: keep the block
        open for as long as the trace (or any session built on it) lives.
        """
        alpha, beta, ts, mask = self._views()
        return CalibrationTrace(
            alpha=alpha,
            beta=beta,
            timestamps=ts,
            mask=None if mask is None else mask.astype(bool),
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (safe to call twice)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment. Owner side only; implies :meth:`close`."""
        if not self._owner:
            raise FleetError("only the creating process may unlink a trace block")
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedTraceBlock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()


@dataclass(frozen=True, slots=True)
class StackBlockDescriptor:
    """Pickle-cheap handle for a shared TP-matrix stack (name + geometry)."""

    name: str
    batch: int
    rows: int
    cols: int
    n_machines: int
    has_mask: bool

    @property
    def nbytes(self) -> int:
        cube = self.batch * self.rows * self.cols
        total = cube * 8 + self.batch * self.rows * 8
        if self.has_mask:
            total += cube
        return total


class SharedStackBlock:
    """A stack of same-shape TP-matrices resident in one shared segment.

    The batched-sweep transport: the scheduler writes one shard's worth of
    TP-matrix windows — ``(B, m, n)`` data, per-row timestamps and (when any
    window is partially observed) per-slice observation masks — into a
    single segment; the worker maps views and solves the whole shard as one
    stacked batch. Layout::

        [ data: B*m*n float64 | timestamps: B*m float64
          | mask: B*m*n uint8 (only when some window has one) ]

    Round-tripping through the segment is bit-exact for float64, so a shard
    solved from an attached block is bit-identical to one solved from the
    scheduler's in-process TP-matrices. Ownership follows
    :class:`SharedTraceBlock`: creator unlinks, attachers only close.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        descriptor: StackBlockDescriptor,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.descriptor = descriptor
        self._owner = owner
        self._closed = False

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, tps: list[TPMatrix] | tuple[TPMatrix, ...]) -> "SharedStackBlock":
        """Copy a shape-homogeneous shard of TP-matrices into a fresh segment."""
        if not tps:
            raise ValidationError("a stack block needs at least one TP-matrix")
        m, n = tps[0].data.shape
        n_machines = tps[0].n_machines
        for i, tp in enumerate(tps):
            if tp.data.shape != (m, n) or tp.n_machines != n_machines:
                raise ValidationError(
                    f"tps[{i}] has shape {tp.data.shape} "
                    f"(n_machines={tp.n_machines}); a stack must be "
                    f"shape-homogeneous with shape ({m}, {n})"
                )
        has_mask = any(tp.mask is not None for tp in tps)
        probe = StackBlockDescriptor(
            name="", batch=len(tps), rows=m, cols=n,
            n_machines=n_machines, has_mask=has_mask,
        )
        shm = shared_memory.SharedMemory(create=True, size=probe.nbytes)
        descriptor = StackBlockDescriptor(
            name=shm.name, batch=len(tps), rows=m, cols=n,
            n_machines=n_machines, has_mask=has_mask,
        )
        block = cls(shm, descriptor, owner=True)
        data, ts, mask = block._views()
        for i, tp in enumerate(tps):
            data[i] = tp.data
            ts[i] = tp.timestamps
            if mask is not None:
                # Fully-observed slices in a partially-observed shard ride
                # as all-ones masks; TPMatrix normalizes them back to None
                # on the far side, so both sides solve the unmasked path.
                mask[i] = 1 if tp.mask is None else tp.mask.astype(np.uint8)
        return block

    @classmethod
    def attach(cls, descriptor: StackBlockDescriptor) -> "SharedStackBlock":
        """Map an existing segment (worker side); never takes ownership."""
        try:
            shm = shared_memory.SharedMemory(name=descriptor.name)
        except FileNotFoundError as exc:
            raise FleetError(
                f"shared stack block {descriptor.name!r} is gone "
                "(scheduler unlinked it early?)"
            ) from exc
        _unregister_attached(shm)
        return cls(shm, descriptor, owner=False)

    # -- access --------------------------------------------------------

    def _views(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        if self._closed:
            raise FleetError("shared stack block is closed")
        d = self.descriptor
        cube = d.batch * d.rows * d.cols
        buf = self._shm.buf
        data = np.ndarray(
            (d.batch, d.rows, d.cols), dtype=np.float64, buffer=buf, offset=0
        )
        ts = np.ndarray(
            (d.batch, d.rows), dtype=np.float64, buffer=buf, offset=cube * 8
        )
        mask = None
        if d.has_mask:
            mask = np.ndarray(
                (d.batch, d.rows, d.cols), dtype=np.uint8, buffer=buf,
                offset=cube * 8 + d.batch * d.rows * 8,
            )
        return data, ts, mask

    def tp_matrices(self) -> list[TPMatrix]:
        """Rebuild the shard as TP-matrices viewing the segment.

        The returned matrices alias this block's memory: keep the block
        open for as long as they (or a solve over them) live.
        """
        data, ts, mask = self._views()
        d = self.descriptor
        out: list[TPMatrix] = []
        for i in range(d.batch):
            out.append(
                TPMatrix(
                    data=data[i],
                    n_machines=d.n_machines,
                    timestamps=ts[i],
                    mask=None if mask is None else mask[i].astype(bool),
                )
            )
        return out

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (safe to call twice)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment. Owner side only; implies :meth:`close`."""
        if not self._owner:
            raise FleetError("only the creating process may unlink a stack block")
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedStackBlock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()
