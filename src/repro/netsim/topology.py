"""Two-level tree datacenter topology (paper Fig 3).

Machines are grouped into racks; each rack has a top-of-rack (ToR) switch;
all ToR switches hang off one core switch. Every physical cable is modeled
as two directed links (up/down), each with its own capacity, so that
opposing traffic never shares bandwidth:

* access links: machine ↔ ToR at ``rack_bandwidth`` (paper: 1 Gb/s),
* uplinks: ToR ↔ core at ``core_bandwidth`` (paper: 10 Gb/s).

A path between same-rack machines is two access hops; between racks it is
access-up, uplink-up, uplink-down, access-down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_nonnegative, check_positive
from ..errors import TopologyError

__all__ = ["TreeTopology"]

GBIT = 1e9 / 8.0  # bytes/second per Gb/s


@dataclass(frozen=True)
class TreeTopology:
    """Geometry and link registry of the simulated datacenter.

    Attributes
    ----------
    n_racks, servers_per_rack:
        Tree geometry (paper default 32 × 32 = 1024 machines).
    rack_bandwidth:
        Access-link capacity, bytes/second (default 1 Gb/s).
    core_bandwidth:
        ToR-uplink capacity, bytes/second (default 10 Gb/s).
    hop_latency:
        One-hop propagation+switching latency in seconds.

    Link numbering
    --------------
    ``[0, M)`` machine→ToR (up), ``[M, 2M)`` ToR→machine (down),
    ``[2M, 2M+R)`` ToR→core (up), ``[2M+R, 2M+2R)`` core→ToR (down),
    with ``M = n_machines`` and ``R = n_racks``.
    """

    n_racks: int = 32
    servers_per_rack: int = 32
    rack_bandwidth: float = 1.0 * GBIT
    core_bandwidth: float = 10.0 * GBIT
    hop_latency: float = 2.5e-5
    capacities: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if int(self.n_racks) < 1 or int(self.servers_per_rack) < 1:
            raise TopologyError("n_racks and servers_per_rack must be >= 1")
        check_positive(self.rack_bandwidth, "rack_bandwidth")
        check_positive(self.core_bandwidth, "core_bandwidth")
        check_nonnegative(self.hop_latency, "hop_latency")
        m, r = self.n_machines, int(self.n_racks)
        caps = np.empty(2 * m + 2 * r)
        caps[: 2 * m] = self.rack_bandwidth
        caps[2 * m :] = self.core_bandwidth
        caps.setflags(write=False)
        object.__setattr__(self, "capacities", caps)

    @property
    def n_machines(self) -> int:
        return int(self.n_racks) * int(self.servers_per_rack)

    @property
    def n_links(self) -> int:
        return 2 * self.n_machines + 2 * int(self.n_racks)

    def rack_of(self, machine: int) -> int:
        if not 0 <= machine < self.n_machines:
            raise TopologyError(f"machine {machine} out of range")
        return machine // int(self.servers_per_rack)

    # Link-id helpers -----------------------------------------------------
    def access_up(self, machine: int) -> int:
        return machine

    def access_down(self, machine: int) -> int:
        return self.n_machines + machine

    def uplink_up(self, rack: int) -> int:
        return 2 * self.n_machines + rack

    def uplink_down(self, rack: int) -> int:
        return 2 * self.n_machines + int(self.n_racks) + rack

    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """Directed link ids traversed by a flow src→dst."""
        if src == dst:
            raise TopologyError("src and dst must differ")
        rs, rd = self.rack_of(src), self.rack_of(dst)
        if rs == rd:
            return (self.access_up(src), self.access_down(dst))
        return (
            self.access_up(src),
            self.uplink_up(rs),
            self.uplink_down(rd),
            self.access_down(dst),
        )

    def path_latency(self, src: int, dst: int) -> float:
        """End-to-end propagation latency of the path src→dst."""
        return self.hop_latency * len(self.path(src, dst))

    def same_rack(self, a: int, b: int) -> bool:
        return self.rack_of(a) == self.rack_of(b)
