"""Fig 8 — RPCA improvement over Baseline vs cluster size and message size.

Paper shape: the improvement on 196 instances exceeds the one on 64 — the
small cluster packs into one rack (near-uniform links, little to exploit)
while 196 VMs necessarily span racks and mix performance tiers — and the
improvement is relatively larger for larger messages. Individual cells are
noisy (heavy-tailed interference), so the bench averages several
independently placed clusters, like the paper's repeated runs.
"""

import numpy as np

from repro.experiments import fig08_cluster_size
from repro.experiments.report import format_table

MB = 1024 * 1024
SEEDS = (0, 1, 2, 3)


def run_all():
    return [
        fig08_cluster_size.run(
            cluster_sizes=(64, 196),
            message_sizes=(1.0 * MB, 8.0 * MB),
            n_snapshots=30,
            time_step=10,
            repetitions=100,
            solver="apg",
            colocation=1.0,
            seed=seed,
        )
        for seed in SEEDS
    ]


def test_fig08_cluster_and_message_size(benchmark, emit):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    mean_imp = {}
    for n in (64, 196):
        for msg in (1.0 * MB, 8.0 * MB):
            mean_imp[(n, msg)] = float(
                np.mean([r.improvement(n, msg) for r in results])
            )
    rows = [
        (n, msg / MB, mean_imp[(n, msg)])
        for n in (64, 196)
        for msg in (1.0 * MB, 8.0 * MB)
    ]
    emit(
        format_table(
            ["instances", "message (MB)", "mean RPCA improvement over Baseline"],
            rows,
            title=f"Fig 8: broadcast improvement, averaged over {len(SEEDS)} placements",
        )
    )

    # The large, rack-spanning cluster benefits more (paper's headline).
    assert mean_imp[(196, 8.0 * MB)] > mean_imp[(64, 8.0 * MB)]
    assert mean_imp[(196, 1.0 * MB)] > mean_imp[(64, 1.0 * MB)]
    # The large cluster's improvement is solidly positive.
    assert mean_imp[(196, 8.0 * MB)] > 0.05
    # Larger messages improve at least as much (small slack for noise).
    assert mean_imp[(196, 8.0 * MB)] >= mean_imp[(196, 1.0 * MB)] - 0.05
    # Placement mechanism: the big cluster crosses racks, the small does not.
    cells = {c.n_machines: c for c in results[0].cells}
    assert cells[196].cross_rack_fraction > cells[64].cross_rack_fraction
