"""Execute communication trees as real flows in the simulator.

The α-β execution model (:mod:`repro.collectives.exec_model`) prices a tree
analytically; this runner *measures* it instead: every tree edge becomes a
flow in the :class:`~repro.netsim.simulator.FlowSimulator`, respecting the
schedule's dependencies (a node forwards only after its own payload has
arrived; a parent's sends are sequential), and competing for bandwidth with
whatever background traffic is live. Comparing measured against estimated
times reproduces the paper's Sec V-D3 estimation-accuracy study ("the
average difference is only 18% and 9% for baseline and RPCA").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive
from ..collectives.trees import CommTree
from ..errors import SimulationError
from .simulator import FlowRecord, FlowSimulator

__all__ = ["MeasuredCollective", "run_broadcast_in_sim", "run_scatter_in_sim"]

TAG = "collective"


@dataclass(frozen=True, slots=True)
class MeasuredCollective:
    """Outcome of one in-simulator collective execution."""

    op: str
    elapsed: float  # completion time relative to the start
    started_at: float  # simulator clock when the operation began
    n_flows: int


class _TreeExecution:
    """Drives one root-to-leaves tree operation through the simulator."""

    def __init__(
        self,
        sim: FlowSimulator,
        tree: CommTree,
        machines: list[int],
        edge_bytes: dict[int, float],
    ) -> None:
        self.sim = sim
        self.tree = tree
        self.machines = machines
        self.edge_bytes = edge_bytes  # child node -> payload on its in-edge
        self.next_child: dict[int, int] = {}
        self.last_arrival = 0.0
        self.outstanding = 0
        self.start = sim.now

    def launch(self) -> None:
        self._send_next(self.tree.root, self.sim.now)
        guard = 0
        while self.outstanding > 0:
            if not self.sim._queue:  # pragma: no cover - defensive
                raise SimulationError("simulator ran dry during a collective")
            self.sim.run_until(self.sim._queue[0][0])
            guard += 1
            if guard > 2_000_000:  # pragma: no cover - defensive
                raise SimulationError("collective execution exceeded event budget")

    def _send_next(self, node: int, at: float) -> None:
        """Start *node*'s next pending child transfer, if any."""
        idx = self.next_child.get(node, 0)
        kids = self.tree.children[node]
        if idx >= len(kids):
            return
        child = kids[idx]
        self.next_child[node] = idx + 1
        nbytes = self.edge_bytes[child]
        self.outstanding += 1

        def _on_complete(sim: FlowSimulator, record: FlowRecord) -> None:
            self.outstanding -= 1
            self.last_arrival = max(self.last_arrival, record.end_time)
            # The parent is free to serve its next child; the child, now
            # holding its payload, starts serving its own children.
            self._send_next(node, sim.now)
            self._send_next(child, sim.now)

        self.sim.schedule_flow(
            max(at, self.sim.now),
            self.machines[node],
            self.machines[child],
            nbytes,
            tag=TAG,
            on_complete=_on_complete,
        )


def _run_tree_op(
    op: str,
    sim: FlowSimulator,
    tree: CommTree,
    machines: list[int] | np.ndarray,
    edge_bytes: dict[int, float],
) -> MeasuredCollective:
    ms = [int(m) for m in machines]
    if len(ms) != tree.n_nodes:
        raise SimulationError("machines list must match the tree size")
    start = sim.now
    if tree.n_nodes == 1:
        return MeasuredCollective(op=op, elapsed=0.0, started_at=start, n_flows=0)
    execution = _TreeExecution(sim, tree, ms, edge_bytes)
    execution.launch()
    return MeasuredCollective(
        op=op,
        elapsed=execution.last_arrival - start,
        started_at=start,
        n_flows=tree.n_nodes - 1,
    )


def run_broadcast_in_sim(
    sim: FlowSimulator,
    tree: CommTree,
    machines: list[int] | np.ndarray,
    nbytes: float,
) -> MeasuredCollective:
    """Measure a broadcast of *nbytes* along *tree* inside the simulator."""
    check_positive(nbytes, "nbytes")
    edge_bytes = {c: float(nbytes) for c in range(tree.n_nodes) if c != tree.root}
    return _run_tree_op("broadcast", sim, tree, machines, edge_bytes)


def run_scatter_in_sim(
    sim: FlowSimulator,
    tree: CommTree,
    machines: list[int] | np.ndarray,
    block_bytes: float,
) -> MeasuredCollective:
    """Measure a scatter (per-node blocks, subtree-sized messages) in the sim."""
    check_positive(block_bytes, "block_bytes")
    sizes = tree.subtree_sizes()
    edge_bytes = {
        c: float(block_bytes) * float(sizes[c])
        for c in range(tree.n_nodes)
        if c != tree.root
    }
    return _run_tree_op("scatter", sim, tree, machines, edge_bytes)
