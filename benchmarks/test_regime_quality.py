"""Detection quality across the regime-detector registry.

Every registered :mod:`repro.core.detectors` detector drives a live
session over the same scripted ground-truth regimes from
:mod:`repro.cloudsim.dynamics`:

* **step** — an abrupt sustained 3x band drop at a known snapshot (the
  change CUSUM is tuned for);
* **drift** — a slow linear ramp to 2.5x over ~30 snapshots (the regime a
  spike/shift dichotomy tuned for abrupt change under-serves);
* **burst** — heavy-tailed one-snapshot interference with *no* band
  change (every shift fired here is a false re-calibration).

The matrix is detectors x 3 seeds x 2 fault profiles (clean and 5% probe
loss) x the 3 scenarios; the run writes ``BENCH_regime.json`` at the repo
root with per-detector detection latency (snapshots from onset to the
forced cold re-calibration), false-fire counts, and post-shift ``P_D``
error, so future tuning PRs can track the quality trajectory next to
``BENCH_rpca.json``.

Quality gates are **unconditional** — the whole matrix is deterministic
(fixed seeds, pure-python detectors): every detector must catch the clean
step, nobody may fire on a calm trace, and the drift scenario must show a
non-CUSUM detector beating CUSUM on detection latency (the tentpole's
reason to exist). Wall time is recorded in the JSON but only *asserted*
under ``REPRO_PERF_STRICT=1``, like the other perf gates.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cloudsim.dynamics import (
    DynamicsConfig,
    apply_burst_noise,
    apply_ramp_regime,
    apply_step_regime,
)
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.decompose import decompose
from repro.core.detectors import detector_names
from repro.observability.benchrecord import bench_record, write_bench_json
from repro.runtime.session import TraceSession

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_regime.json"

N_MACHINES = 6
N_SNAPSHOTS = 44
TIME_STEP = 8
OPERATIONS = 36  # walks snapshots [TIME_STEP, N_SNAPSHOTS) exactly once
SEEDS = (5, 6, 7)
FAULT_PROFILES = {"clean": None, "lossy": "probe_loss=0.05"}
# Onsets sit well past warmup (the slowest default warmup is 8 post-boot
# observations = snapshot 16) so every detector has a settled baseline.
STEP_START = 26
RAMP_START, RAMP_STOP = 16, N_SNAPSHOTS
WALL_BUDGET_S = 120.0


def _base_trace(seed):
    cfg = TraceConfig(
        n_machines=N_MACHINES,
        n_snapshots=N_SNAPSHOTS,
        dynamics=DynamicsConfig(
            volatility_sigma=0.02,
            spike_probability=0.0,
            hotspot_probability=0.0,
            migration_rate=0.0,
        ),
    )
    return generate_trace(cfg, seed=seed)


def _scenarios(seed):
    base = _base_trace(seed)
    return {
        # onset = first degraded snapshot; None = no true change anywhere.
        "step": (apply_step_regime(base, start=STEP_START, factor=3.0),
                 STEP_START),
        "drift": (apply_ramp_regime(base, start=RAMP_START, stop=RAMP_STOP,
                                    factor=2.5),
                  RAMP_START),
        "burst": (apply_burst_noise(base, probability=0.05, severity=8.0,
                                    seed=seed + 100),
                  None),
    }


def _run_session(trace, detector, faults, seed):
    # threshold=10 parks Algorithm 1's own maintenance loop, so every
    # re-calibration observed here is attributable to the regime detector.
    session = TraceSession(
        trace,
        time_step=TIME_STEP,
        threshold=10.0,
        regime=detector,
        faults=faults,
        fault_seed=seed,
    )
    for i in range(OPERATIONS):
        session.run_collective("broadcast", root=i % trace.n_machines)
    return session


def _post_shift_pd_error(session, trace):
    """Relative L1 error of the served ``P_D`` vs the end-of-trace oracle."""
    tp = trace.tp_matrix(
        session.nbytes, start=N_SNAPSHOTS - TIME_STEP, count=TIME_STEP
    )
    oracle = decompose(tp).constant.row
    served = session.decomposition.constant.row
    return float(np.abs(served - oracle).sum() / np.abs(oracle).sum())


def _grade(session, trace, onset):
    shift_snaps = [r.snapshot for r in session.stats.history
                   if r.regime == "shift"]
    cell = {
        "shifts": session.stats.regime_shifts,
        "spikes": session.stats.regime_spikes,
        "recalibrations": session.stats.recalibrations,
        "pd_error": _post_shift_pd_error(session, trace),
    }
    if onset is None:
        # No true change: every shift is a false re-calibration.
        cell["false_fires"] = len(shift_snaps)
        cell["latency"] = None
    else:
        detected = [s for s in shift_snaps if s >= onset]
        cell["false_fires"] = len(shift_snaps) - len(detected)
        cell["latency"] = detected[0] - onset if detected else None
    return cell


@pytest.fixture(scope="module")
def matrix():
    """The full grading matrix, shared by every assertion below.

    ``baselines`` holds the detector-free control per (scenario, profile,
    seed): the post-shift ``P_D`` error a session serves when nothing
    watches the regime — the number detection has to beat.
    """
    t0 = time.perf_counter()
    cells = {}
    baselines = {}
    for scenario_name in ("step", "drift", "burst"):
        for profile, faults in FAULT_PROFILES.items():
            for seed in SEEDS:
                trace, onset = _scenarios(seed)[scenario_name]
                control = _run_session(trace, None, faults, seed)
                baselines[(scenario_name, profile, seed)] = (
                    _post_shift_pd_error(control, trace)
                )
                for detector in detector_names():
                    session = _run_session(trace, detector, faults, seed)
                    cells[(detector, scenario_name, profile, seed)] = _grade(
                        session, trace, onset
                    )
    return cells, baselines, time.perf_counter() - t0


def _mean(values):
    values = [v for v in values if v is not None]
    return float(np.mean(values)) if values else None


def _aggregate(cells, detector, scenario, key):
    return [v[key] for (d, s, _p, _seed), v in cells.items()
            if d == detector and s == scenario]


def _detector_summary(cells, detector):
    out = {}
    for scenario in ("step", "drift", "burst"):
        latencies = _aggregate(cells, detector, scenario, "latency")
        out[scenario] = {
            "detected": sum(1 for x in latencies if x is not None),
            "runs": len(latencies),
            "mean_latency_snapshots": _mean(latencies),
            "false_fires": sum(
                _aggregate(cells, detector, scenario, "false_fires")
            ),
            "mean_pd_error": _mean(
                _aggregate(cells, detector, scenario, "pd_error")
            ),
        }
    return out


class TestDetectionQuality:
    def test_every_detector_catches_the_clean_step(self, matrix):
        cells, _baselines, _ = matrix
        for detector in detector_names():
            for seed in SEEDS:
                cell = cells[(detector, "step", "clean", seed)]
                assert cell["latency"] is not None, (
                    f"{detector} missed the clean step change (seed {seed})"
                )
                assert cell["false_fires"] == 0

    def test_detection_repairs_the_served_constant(self, matrix):
        """Catching the step must leave a better ``P_D`` in service than
        the detector-free control: the forced cold re-calibration re-solves
        over a window that includes post-change snapshots, while the
        control keeps serving the dead regime's component to the end."""
        cells, baselines, _ = matrix
        for detector in detector_names():
            for seed in SEEDS:
                cell = cells[(detector, "step", "clean", seed)]
                stale = baselines[("step", "clean", seed)]
                assert cell["pd_error"] < stale, (
                    f"{detector} fired on the step but serves a P_D no "
                    f"better than the detector-free control "
                    f"({cell['pd_error']:.3f} vs stale {stale:.3f}, "
                    f"seed {seed})"
                )

    def test_drift_favors_a_non_cusum_detector(self, matrix):
        """The tentpole's acceptance scenario: on the slow ramp at least
        one non-CUSUM detector must beat CUSUM on mean detection latency
        while firing no earlier than the ramp onset."""
        cells, _baselines, _ = matrix

        def mean_latency(det):
            lat = _aggregate(cells, det, "drift", "latency")
            # An undetected run is graded as worst-case latency: the ramp
            # runs to the end of the trace unseen.
            horizon = N_SNAPSHOTS - RAMP_START
            return float(np.mean([horizon if x is None else x for x in lat]))

        cusum = mean_latency("cusum")
        rivals = {d: mean_latency(d) for d in detector_names() if d != "cusum"}
        best = min(rivals, key=rivals.get)
        assert rivals[best] < cusum, (
            f"no registered detector beats CUSUM on the drift ramp: "
            f"cusum={cusum:.1f} snapshots vs {rivals}"
        )
        assert all(
            f == 0
            for d in detector_names()
            for f in _aggregate(cells, d, "drift", "false_fires")
        )

    def test_burst_noise_false_fire_ordering(self, matrix):
        """Bursts carry no band change: the noise-robust detector must not
        fire more often than CUSUM on its own stress profile."""
        cells, _baselines, _ = matrix
        robust = sum(_aggregate(cells, "noise-robust", "burst", "false_fires"))
        cusum = sum(_aggregate(cells, "cusum", "burst", "false_fires"))
        assert robust <= cusum


def test_emit_bench_json(matrix, emit):
    cells, baselines, elapsed = matrix
    detectors = {d: _detector_summary(cells, d) for d in detector_names()}
    stale_pd = {
        scen: _mean([v for (s, _p, _seed), v in baselines.items()
                     if s == scen])
        for scen in ("step", "drift", "burst")
    }
    record = bench_record(
        "regime_detection_quality",
        seeds=SEEDS,
        backend="exact",  # detector sessions run the default exact kernel
        matrix={
            "detectors": list(detector_names()),
            "scenarios": ["step", "drift", "burst"],
            "fault_profiles": {k: v or "none"
                               for k, v in FAULT_PROFILES.items()},
            "n_machines": N_MACHINES,
            "n_snapshots": N_SNAPSHOTS,
            "time_step": TIME_STEP,
            "operations": OPERATIONS,
            "onsets": {"step": STEP_START, "drift": RAMP_START, "burst": None},
        },
        detectors=detectors,
        stale_pd_error=stale_pd,
        elapsed_seconds=elapsed,
        wall_budget_seconds=WALL_BUDGET_S,
    )
    write_bench_json(BENCH_JSON, record)

    rows = [f"{'detector':>13} {'scenario':>8} {'detected':>9} "
            f"{'latency':>8} {'false':>6} {'pd_err':>8}"]
    for det, summary in detectors.items():
        for scen, s in summary.items():
            lat = ("-" if s["mean_latency_snapshots"] is None
                   else f"{s['mean_latency_snapshots']:.1f}")
            err = ("-" if s["mean_pd_error"] is None
                   else f"{s['mean_pd_error']:.4f}")
            rows.append(
                f"{det:>13} {scen:>8} {s['detected']:>4}/{s['runs']:<4} "
                f"{lat:>8} {s['false_fires']:>6} {err:>8}"
            )
    emit(
        f"regime detection quality ({len(cells)} sessions, "
        f"{elapsed:.1f} s, wrote {BENCH_JSON.name}):\n" + "\n".join(rows)
    )

    if os.environ.get("REPRO_PERF_STRICT") == "1":
        assert elapsed < WALL_BUDGET_S, (
            f"detection-quality matrix took {elapsed:.1f} s "
            f"(budget {WALL_BUDGET_S:.0f} s)"
        )
