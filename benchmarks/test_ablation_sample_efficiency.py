"""Ablation — sample efficiency of the estimators (paper Sec V-A).

The paper dismisses distribution-based per-link optimization: "in order to
get the meaningful distribution, excessive measurements are required and
the overhead is unacceptably high in practice." This bench measures each
estimator's *self-convergence*: the distance between its estimate from a
``time_step``-snapshot prefix and its own estimate from the whole 80-row
trace. RPCA stabilizes within a handful of snapshots; the per-link mean is
dragged by heavy-tailed interference samples; the tail percentile (p90)
needs 2-4x more snapshots — i.e. 2-4x the Fig-4 calibration cost — to reach
comparable stability, confirming the paper's overhead argument.
"""

import numpy as np

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.decompose import decompose
from repro.core.metrics import relative_difference
from repro.experiments.report import format_table
from repro.strategies.heuristics import HeuristicStrategy

MB = 1024 * 1024
TIME_STEPS = (3, 5, 10, 20, 40)
ESTIMATORS = ("RPCA", "mean", "percentile-90")


def estimate(kind: str, tp) -> np.ndarray:
    if kind == "RPCA":
        return decompose(tp, solver="apg").constant.row
    if kind == "mean":
        h = HeuristicStrategy("mean")
    else:
        h = HeuristicStrategy("percentile", percentile=90.0)
    h.fit(tp)
    return h.weight_matrix().ravel()


def run_study():
    trace = generate_trace(TraceConfig(n_machines=32, n_snapshots=80), seed=55)
    full = trace.tp_matrix(8 * MB)
    asymptote = {k: estimate(k, full) for k in ESTIMATORS}
    curves: dict[str, list[float]] = {k: [] for k in ESTIMATORS}
    for ts in TIME_STEPS:
        tp = trace.tp_matrix(8 * MB, start=0, count=ts)
        for k in ESTIMATORS:
            curves[k].append(relative_difference(estimate(k, tp), asymptote[k]))
    return curves


def test_ablation_sample_efficiency(benchmark, emit):
    curves = benchmark.pedantic(run_study, rounds=1, iterations=1)

    rows = [
        (ts, *(curves[k][i] for k in ESTIMATORS))
        for i, ts in enumerate(TIME_STEPS)
    ]
    emit(
        format_table(
            ["time step", *ESTIMATORS],
            rows,
            title=(
                "Ablation: self-convergence (distance to own 80-snapshot "
                "asymptote) vs snapshots used"
            ),
        )
    )

    i10 = TIME_STEPS.index(10)
    # At the paper's practical time step, RPCA has essentially converged ...
    assert curves["RPCA"][i10] < 0.05
    # ... while the per-link estimators are still far from their asymptotes.
    assert curves["mean"][i10] > 3.0 * curves["RPCA"][i10]
    assert curves["percentile-90"][i10] > 3.0 * curves["RPCA"][i10]
    # The percentile estimator needs ~2-4x the snapshots (= calibration
    # cost) to reach the stability RPCA had at ten.
    assert curves["percentile-90"][TIME_STEPS.index(20)] < curves["percentile-90"][i10]
    # Everyone converges eventually.
    for k in ESTIMATORS:
        assert curves[k][-1] <= curves[k][0]
