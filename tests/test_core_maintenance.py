"""Unit tests for the Algorithm-1 maintenance controller."""

import pytest

from repro.core.maintenance import (
    MaintenanceController,
    MaintenanceDecision,
)
from repro.errors import ValidationError


class TestRelativeDeviation:
    def test_formula(self):
        c = MaintenanceController()
        assert c.relative_deviation(2.0, 3.0) == pytest.approx(0.5)
        assert c.relative_deviation(2.0, 1.0) == pytest.approx(0.5)

    def test_expected_must_be_positive(self):
        c = MaintenanceController()
        with pytest.raises(ValidationError):
            c.relative_deviation(0.0, 1.0)

    def test_observed_must_be_nonnegative(self):
        c = MaintenanceController()
        with pytest.raises(ValidationError):
            c.relative_deviation(1.0, -0.1)


class TestObserve:
    def test_keep_below_threshold(self):
        c = MaintenanceController(threshold=1.0)
        assert c.observe(1.0, 1.9) is MaintenanceDecision.KEEP

    def test_recalibrate_at_threshold(self):
        c = MaintenanceController(threshold=1.0)
        assert c.observe(1.0, 2.0) is MaintenanceDecision.RECALIBRATE

    def test_stats_counters(self):
        c = MaintenanceController(threshold=0.5)
        c.observe(1.0, 1.2)
        c.observe(1.0, 2.0)
        c.observe(1.0, 1.0)
        assert c.stats.observations == 3
        assert c.stats.recalibrations == 1
        assert c.stats.max_relative_deviation == pytest.approx(1.0)
        assert len(c.stats.deviations) == 3

    def test_streak_resets_after_recalibrate(self):
        c = MaintenanceController(threshold=0.5, consecutive=2)
        assert c.observe(1.0, 2.0) is MaintenanceDecision.KEEP  # streak 1
        assert c.observe(1.0, 2.0) is MaintenanceDecision.RECALIBRATE  # streak 2
        assert c.observe(1.0, 2.0) is MaintenanceDecision.KEEP  # streak restarted

    def test_consecutive_debounces_single_spike(self):
        c = MaintenanceController(threshold=0.5, consecutive=2)
        assert c.observe(1.0, 2.0) is MaintenanceDecision.KEEP
        assert c.observe(1.0, 1.0) is MaintenanceDecision.KEEP  # streak broken
        assert c.observe(1.0, 2.0) is MaintenanceDecision.KEEP

    def test_reset_clears_streak(self):
        c = MaintenanceController(threshold=0.5, consecutive=2)
        c.observe(1.0, 2.0)
        c.reset()
        assert c.observe(1.0, 2.0) is MaintenanceDecision.KEEP

    def test_threshold_validated(self):
        with pytest.raises(ValidationError):
            MaintenanceController(threshold=0.0)

    def test_consecutive_validated(self):
        with pytest.raises(ValueError):
            MaintenanceController(consecutive=0)

    def test_exact_prediction_never_triggers(self):
        c = MaintenanceController(threshold=0.1)
        for _ in range(20):
            assert c.observe(1.0, 1.0) is MaintenanceDecision.KEEP
        assert c.stats.recalibrations == 0
