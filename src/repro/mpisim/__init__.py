"""A simulated MPI programming interface.

Write rank-based programs against :class:`SimComm` the way you would against
``mpi4py``'s ``COMM_WORLD`` — ``bcast``, ``scatter``, ``gather``, ``reduce``,
``allgather``, ``alltoall``, ``send``/``recv`` — and the communicator both
*moves the data* (so algorithms compute real results) and *accounts the
simulated communication time* under the α-β model, using communication trees
built by any strategy (binomial baseline or FNF on an RPCA constant
component).

This is the adoption surface the paper implies: existing MPI-style programs
gain network awareness by swapping the tree provider, not by rewriting.
"""

from .comm import SimComm, CommStats

__all__ = ["SimComm", "CommStats"]
