"""Unit tests for the EC2-substitute trace machinery (repro.cloudsim)."""

import numpy as np
import pytest

from repro.cloudsim.bands import BandTiers, derive_bands
from repro.cloudsim.dynamics import DynamicsConfig, VolatilityModel
from repro.cloudsim.placement import Placement, place_cluster
from repro.cloudsim.trace import CalibrationTrace
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.errors import ValidationError

MB = 1024 * 1024


class TestPlacement:
    def test_deterministic_with_seed(self):
        a = place_cluster(20, seed=5)
        b = place_cluster(20, seed=5)
        np.testing.assert_array_equal(a.racks, b.racks)

    def test_capacity_respected(self):
        p = place_cluster(40, n_racks_total=10, servers_per_rack=8, seed=0)
        counts = np.bincount(p.racks, minlength=10)
        assert counts.max() <= 8

    def test_colocation_zero_spreads(self):
        p0 = place_cluster(32, colocation=0.0, n_racks_total=500, seed=1)
        p1 = place_cluster(32, colocation=0.95, n_racks_total=500, seed=1)
        assert p0.n_racks_used > p1.n_racks_used

    def test_cross_rack_fraction_bounds(self):
        p = place_cluster(16, seed=2)
        assert 0.0 <= p.cross_rack_fraction() <= 1.0

    def test_single_machine(self):
        p = place_cluster(1, seed=3)
        assert p.cross_rack_fraction() == 0.0

    def test_too_small_datacenter_rejected(self):
        with pytest.raises(ValidationError):
            place_cluster(100, n_racks_total=2, servers_per_rack=4)

    def test_same_rack_matrix_diagonal(self):
        p = place_cluster(6, seed=4)
        assert np.all(np.diagonal(p.same_rack_matrix()))

    def test_placement_validates_rack_ids(self):
        with pytest.raises(ValidationError):
            Placement(racks=np.array([0, 99]), n_racks_total=10, servers_per_rack=4)

    def test_placement_validates_capacity(self):
        with pytest.raises(ValidationError, match="capacity"):
            Placement(racks=np.array([0, 0, 0]), n_racks_total=10, servers_per_rack=2)

    def test_larger_cluster_spans_more_racks(self):
        # The Fig 8 mechanism: more VMs ⇒ more racks ⇒ more cross-rack pairs.
        small = place_cluster(8, colocation=0.7, seed=6)
        large = place_cluster(64, colocation=0.7, seed=6)
        assert large.n_racks_used > small.n_racks_used
        assert large.cross_rack_fraction() >= small.cross_rack_fraction()


class TestBands:
    def test_same_rack_is_faster(self):
        p = Placement(
            racks=np.array([0, 0, 1, 1]), n_racks_total=5, servers_per_rack=4
        )
        bands = derive_bands(p, BandTiers(jitter_sigma=0.0), seed=0)
        assert bands.beta[0, 1] > bands.beta[0, 2]
        assert bands.alpha[0, 1] < bands.alpha[0, 2]

    def test_diagonals(self):
        p = place_cluster(5, seed=0)
        bands = derive_bands(p, seed=1)
        assert np.all(np.diagonal(bands.alpha) == 0.0)
        assert np.all(np.isinf(np.diagonal(bands.beta)))

    def test_jitter_makes_pairs_heterogeneous(self):
        p = Placement(
            racks=np.array([0, 1, 2, 3]), n_racks_total=5, servers_per_rack=4
        )
        bands = derive_bands(p, BandTiers(jitter_sigma=0.4), seed=2)
        off = ~np.eye(4, dtype=bool)
        assert np.unique(bands.beta[off]).size > 1

    def test_asymmetry(self):
        p = place_cluster(6, seed=3)
        bands = derive_bands(p, BandTiers(jitter_sigma=0.3), seed=4)
        assert bands.beta[0, 1] != bands.beta[1, 0]

    def test_tier_validation(self):
        with pytest.raises(ValidationError):
            BandTiers(same_rack_bandwidth=-1.0)


class TestDynamics:
    def test_no_dynamics_reproduces_bands(self):
        p = place_cluster(5, seed=0)
        cfg = DynamicsConfig(volatility_sigma=0.0, spike_probability=0.0)
        m = VolatilityModel(p, config=cfg, seed=1)
        a1, b1 = m.sample()
        np.testing.assert_array_equal(a1, m.bands.alpha)
        np.testing.assert_array_equal(b1, m.bands.beta)

    def test_volatility_perturbs(self):
        p = place_cluster(5, seed=0)
        cfg = DynamicsConfig(volatility_sigma=0.1, spike_probability=0.0)
        m = VolatilityModel(p, config=cfg, seed=1)
        a1, b1 = m.sample()
        a2, b2 = m.sample()
        off = ~np.eye(5, dtype=bool)
        assert not np.allclose(b1[off], b2[off])

    def test_spikes_reduce_bandwidth(self):
        p = place_cluster(10, seed=0)
        cfg = DynamicsConfig(
            volatility_sigma=0.0, spike_probability=0.5, spike_severity=3.0
        )
        m = VolatilityModel(p, config=cfg, seed=1)
        _, beta = m.sample()
        off = ~np.eye(10, dtype=bool)
        assert np.any(beta[off] < m.bands.beta[off] * 0.99)
        assert np.all(beta[off] <= m.bands.beta[off] + 1e-9)

    def test_migration_changes_bands(self):
        p = place_cluster(6, seed=0)
        cfg = DynamicsConfig(
            volatility_sigma=0.0, spike_probability=0.0, migration_rate=5.0
        )
        m = VolatilityModel(p, config=cfg, seed=1)
        before = m.bands.beta.copy()
        m.sample()
        assert m.migration_log  # at least one migration fired
        assert not np.array_equal(before, m.bands.beta)

    def test_no_migration_keeps_bands(self):
        p = place_cluster(6, seed=0)
        m = VolatilityModel(p, config=DynamicsConfig(migration_rate=0.0), seed=1)
        before = m.bands.beta.copy()
        m.sample()
        np.testing.assert_array_equal(before, m.bands.beta)

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            DynamicsConfig(spike_probability=1.5)
        with pytest.raises(ValidationError):
            DynamicsConfig(volatility_sigma=-0.1)


class TestCalibrationTrace:
    def test_generate_shapes(self, small_trace):
        assert small_trace.alpha.shape == (24, 8, 8)
        assert small_trace.beta.shape == (24, 8, 8)
        assert small_trace.n_snapshots == 24
        assert small_trace.n_machines == 8

    def test_timestamps_spacing(self, small_trace):
        diffs = np.diff(small_trace.timestamps)
        np.testing.assert_allclose(diffs, 1800.0)

    def test_deterministic(self):
        cfg = TraceConfig(n_machines=5, n_snapshots=6)
        t1 = generate_trace(cfg, seed=3)
        t2 = generate_trace(cfg, seed=3)
        np.testing.assert_array_equal(t1.beta, t2.beta)

    def test_different_seeds_differ(self):
        cfg = TraceConfig(n_machines=5, n_snapshots=6)
        t1 = generate_trace(cfg, seed=3)
        t2 = generate_trace(cfg, seed=4)
        assert not np.array_equal(t1.beta, t2.beta)

    def test_weights_at(self, small_trace):
        pm = small_trace.weights_at(0, 8 * MB)
        assert pm.n_machines == 8
        expected = small_trace.alpha[0, 0, 1] + 8 * MB / small_trace.beta[0, 0, 1]
        assert pm.weights[0, 1] == pytest.approx(expected)

    def test_tp_matrix_matches_weights_at(self, small_trace):
        tp = small_trace.tp_matrix(8 * MB, start=2, count=3)
        pm = small_trace.weights_at(3, 8 * MB)
        np.testing.assert_allclose(tp.data[1], pm.flatten())

    def test_tp_matrix_bounds(self, small_trace):
        with pytest.raises(ValidationError):
            small_trace.tp_matrix(1.0, start=23, count=5)
        with pytest.raises(ValidationError):
            small_trace.tp_matrix(1.0, start=99)

    def test_restrict(self, small_trace):
        sub = small_trace.restrict([0, 3, 5])
        assert sub.n_machines == 3
        assert sub.beta[0, 1, 2] == small_trace.beta[0, 3, 5]

    def test_restrict_validation(self, small_trace):
        with pytest.raises(ValidationError):
            small_trace.restrict([])
        with pytest.raises(ValidationError):
            small_trace.restrict([0, 0])

    def test_window(self, small_trace):
        w = small_trace.window(5, 10)
        assert w.n_snapshots == 5
        np.testing.assert_array_equal(w.alpha[0], small_trace.alpha[5])

    def test_window_bounds(self, small_trace):
        with pytest.raises(ValidationError):
            small_trace.window(10, 5)

    def test_multiplicative_noise_slows_links(self, tiny_trace):
        factors = np.full(tiny_trace.alpha.shape, 2.0)
        noised = tiny_trace.with_multiplicative_noise(factors)
        off = ~np.eye(4, dtype=bool)
        np.testing.assert_allclose(
            noised.beta[0][off], tiny_trace.beta[0][off] / 2.0
        )
        np.testing.assert_allclose(
            noised.alpha[0][off], tiny_trace.alpha[0][off] * 2.0
        )

    def test_multiplicative_noise_keeps_diagonals(self, tiny_trace):
        factors = np.full(tiny_trace.alpha.shape, 3.0)
        noised = tiny_trace.with_multiplicative_noise(factors)
        assert np.all(np.diagonal(noised.alpha, axis1=1, axis2=2) == 0.0)
        assert np.all(np.isinf(np.diagonal(noised.beta, axis1=1, axis2=2)))

    def test_noise_factor_validation(self, tiny_trace):
        with pytest.raises(ValidationError):
            tiny_trace.with_multiplicative_noise(np.ones((2, 2, 2)))
        with pytest.raises(ValidationError):
            tiny_trace.with_multiplicative_noise(
                np.zeros(tiny_trace.alpha.shape)
            )

    def test_trace_validation(self):
        with pytest.raises(ValidationError):
            CalibrationTrace(
                alpha=np.zeros((2, 3, 4)), beta=np.ones((2, 3, 4)), timestamps=[0, 1]
            )

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            TraceConfig(n_machines=1, n_snapshots=5)
        with pytest.raises(ValidationError):
            TraceConfig(n_machines=4, n_snapshots=0)
