"""Solver registry: one dispatch point for every RPCA backend.

Every registered solver shares the concrete contract ``a → SolverResult``
(see :mod:`repro.core.result`). Each registration carries a
:class:`SolverSpec` of capability metadata — whether the backend supports
warm starts, whether its low-rank output is exactly row-constant, and which
keyword arguments it accepts — so :func:`solve_rpca` can reject unsupported
kwargs up front instead of silently swallowing them (historically
``decompose(tp, solver="pca", tol=...)`` dropped ``tol`` on the floor).

:func:`solve_rpca` is also the instrumentation boundary: every dispatch
emits a :class:`~repro.observability.SolveSpan` (iterations, residual, rank,
warm-vs-cold, wall time) into any active
:class:`~repro.observability.Instrumentation` sink.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .. import observability
from .apg import rpca_apg
from .ialm import rpca_ialm
from .pca import pca_rank1_decomposition
from .result import SolverResult
from .row_constant import row_constant_decomposition

__all__ = [
    "RPCAResult",
    "SolverSpec",
    "solve_rpca",
    "available_solvers",
    "register_solver",
    "solver_spec",
]

# Backward-compatible alias for the old duck-typed protocol name.
RPCAResult = SolverResult


@dataclass(frozen=True)
class SolverSpec:
    """Capability metadata for one registered solver.

    Attributes
    ----------
    name:
        Registry name.
    fn:
        The solver callable ``(a, **kwargs) -> SolverResult``.
    supports_warm_start:
        Whether ``fn`` accepts a ``warm_start`` keyword (previous solution
        used to initialize the iterates).
    exact_row_constant:
        Whether ``fn`` returns a result whose ``low_rank`` is exactly
        row-constant (``constant_row`` is set), so no extraction is needed.
    accepted_kwargs:
        Keyword names ``fn`` accepts; used to validate calls.
    accepts_any_kwargs:
        True when ``fn`` takes ``**kwargs`` — validation is skipped.
    """

    name: str
    fn: Callable[..., SolverResult]
    supports_warm_start: bool = False
    exact_row_constant: bool = False
    accepted_kwargs: frozenset[str] = field(default_factory=frozenset)
    accepts_any_kwargs: bool = False

    def validate_kwargs(self, kwargs: dict[str, Any]) -> None:
        """Raise ``TypeError`` on kwargs the solver does not accept."""
        if self.accepts_any_kwargs:
            return
        unsupported = sorted(set(kwargs) - self.accepted_kwargs)
        if unsupported:
            accepted = ", ".join(sorted(self.accepted_kwargs)) or "none"
            raise TypeError(
                f"solver {self.name!r} does not accept keyword(s) "
                f"{unsupported}; accepted: {accepted}"
            )


def _introspect_kwargs(fn: Callable[..., Any]) -> tuple[frozenset[str], bool]:
    """Keyword names *fn* accepts beyond its first positional (data) argument."""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):  # builtins / C callables: trust the caller
        return frozenset(), True
    names: list[str] = []
    any_kwargs = False
    params = list(sig.parameters.values())
    for i, p in enumerate(params):
        if p.kind is inspect.Parameter.VAR_KEYWORD:
            any_kwargs = True
        elif p.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            if i == 0:  # the data-matrix argument
                continue
            names.append(p.name)
    return frozenset(names), any_kwargs


_SOLVERS: dict[str, SolverSpec] = {}


def available_solvers() -> tuple[str, ...]:
    """Names accepted by :func:`solve_rpca`, in registration order."""
    return tuple(_SOLVERS)


def solver_spec(name: str) -> SolverSpec:
    """The :class:`SolverSpec` registered under *name*."""
    try:
        return _SOLVERS[name]
    except KeyError:
        raise ValueError(
            f"unknown RPCA solver {name!r}; available: {sorted(_SOLVERS)}"
        ) from None


def register_solver(
    name: str,
    fn: Callable[..., SolverResult],
    *,
    overwrite: bool = False,
    supports_warm_start: bool = False,
    exact_row_constant: bool = False,
    accepted_kwargs: tuple[str, ...] | frozenset[str] | None = None,
) -> SolverSpec:
    """Register a custom solver under *name*.

    Parameters
    ----------
    name:
        Non-empty registry name. Re-using an existing name raises
        ``ValueError`` unless *overwrite* is true.
    fn:
        Callable ``(a, **kwargs) -> SolverResult``.
    overwrite:
        Allow replacing an existing registration.
    supports_warm_start:
        Declare that *fn* accepts a ``warm_start`` keyword.
    exact_row_constant:
        Declare that *fn* returns an exactly row-constant ``low_rank``
        (with ``constant_row`` set).
    accepted_kwargs:
        Keyword names *fn* accepts. Default: introspected from its
        signature (a ``**kwargs`` parameter disables validation).
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"solver name must be a non-empty string, got {name!r}")
    if not callable(fn):
        raise TypeError("solver must be callable")
    if name in _SOLVERS and not overwrite:
        raise ValueError(
            f"solver {name!r} is already registered; pass overwrite=True to replace"
        )
    if accepted_kwargs is None:
        kwargs_names, any_kwargs = _introspect_kwargs(fn)
    else:
        kwargs_names, any_kwargs = frozenset(accepted_kwargs), False
    spec = SolverSpec(
        name=name,
        fn=fn,
        supports_warm_start=supports_warm_start,
        exact_row_constant=exact_row_constant,
        accepted_kwargs=kwargs_names,
        accepts_any_kwargs=any_kwargs,
    )
    _SOLVERS[name] = spec
    return spec


register_solver("apg", rpca_apg, supports_warm_start=True)
register_solver("ialm", rpca_ialm, supports_warm_start=True)
register_solver("row_constant", row_constant_decomposition, exact_row_constant=True)
# Non-robust straw man for the paper's PCA-vs-RPCA motivation (Sec II-B).
register_solver("pca", pca_rank1_decomposition, exact_row_constant=True)


def solve_rpca(
    a: np.ndarray, solver: str = "apg", *, context: str = "", **kwargs: Any
) -> SolverResult:
    """Run the named RPCA solver on data matrix *a*.

    Parameters
    ----------
    a:
        Data matrix.
    solver:
        One of :func:`available_solvers` (default ``"apg"``, the paper's
        choice).
    context:
        Free-form label recorded on the instrumentation span (who asked).
    **kwargs:
        Forwarded to the solver (``lam``, ``tol``, ``max_iter``,
        ``warm_start``, ...). Keywords the solver does not accept raise
        ``TypeError`` instead of being silently dropped.
    """
    spec = solver_spec(solver)
    spec.validate_kwargs(kwargs)
    start = time.perf_counter()
    result = spec.fn(a, **kwargs)
    elapsed = time.perf_counter() - start
    if observability.active():
        shape = np.shape(a)
        observability.emit_span(
            observability.SolveSpan(
                solver=solver,
                rows=int(shape[0]) if len(shape) > 0 else 0,
                cols=int(shape[1]) if len(shape) > 1 else 0,
                iterations=int(getattr(result, "iterations", 0)),
                rank=int(getattr(result, "rank", 0)),
                residual=float(getattr(result, "residual", 0.0)),
                converged=bool(getattr(result, "converged", False)),
                warm=bool(getattr(result, "warm_started", False)),
                seconds=elapsed,
                context=context,
            )
        )
    return result
