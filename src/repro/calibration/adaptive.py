"""Online time-step selection (the Fig 5 rule, automated).

The paper picks the calibration time step offline: compute the relative
difference of the constant component against the whole-trace oracle for a
range of steps and take the smallest within 10 % (Fig 5). Deployed systems
don't have the oracle, but they can apply the same rule *online*: keep
adding calibration snapshots until the constant row stops moving — when the
relative change contributed by the latest snapshot falls below the
tolerance for a couple of consecutive snapshots, the estimate has converged
and further calibration only costs money (2N probe rounds per snapshot,
Fig 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive
from ..core.decompose import decompose
from ..core.matrices import TPMatrix
from ..core.metrics import relative_difference
from ..errors import CalibrationError, ValidationError

__all__ = ["AdaptiveStepResult", "select_time_step_online"]


@dataclass(frozen=True)
class AdaptiveStepResult:
    """Outcome of the online selection.

    ``selected`` is the chosen time step; ``converged`` is False when the
    budget ran out before the estimate stabilized (the caller should either
    accept the final step or raise the tolerance). ``deltas[i]`` is the
    relative movement of the constant row when snapshot ``min_step + i + 1``
    was added.
    """

    selected: int
    converged: bool
    deltas: tuple[float, ...]


def select_time_step_online(
    tp: TPMatrix,
    *,
    tolerance: float = 0.02,
    consecutive: int = 2,
    min_step: int = 3,
    max_step: int | None = None,
    solver: str = "row_constant",
) -> AdaptiveStepResult:
    """Choose a time step by watching the constant row stabilize.

    Parameters
    ----------
    tp:
        Calibration rows gathered so far (time-ordered). The function walks
        prefixes of it, so it can be called incrementally as rows arrive.
    tolerance:
        Per-snapshot relative movement below which the estimate counts as
        stable. (Movement, not oracle distance: each new snapshot shifts a
        converged estimate by roughly ``spread/step``, so small movement ⇔
        the Fig 5 curve has flattened.)
    consecutive:
        How many consecutive below-tolerance additions are required.
    min_step:
        Smallest step considered (robust statistics need a few rows).
    max_step:
        Budget; defaults to all available rows.
    solver:
        Decomposition backend for the inner estimates.
    """
    check_positive(tolerance, "tolerance")
    if int(consecutive) < 1:
        raise ValidationError("consecutive must be >= 1")
    if int(min_step) < 2:
        raise ValidationError("min_step must be >= 2")
    budget = tp.n_snapshots if max_step is None else min(int(max_step), tp.n_snapshots)
    if budget < min_step + 1:
        raise CalibrationError(
            f"need at least {min_step + 1} snapshots, have {budget}"
        )

    prev_row = decompose(tp.head(min_step), solver=solver).constant.row
    deltas: list[float] = []
    streak = 0
    for step in range(min_step + 1, budget + 1):
        row = decompose(tp.head(step), solver=solver).constant.row
        delta = relative_difference(row, prev_row)
        deltas.append(float(delta))
        prev_row = row
        if delta <= tolerance:
            streak += 1
            if streak >= consecutive:
                return AdaptiveStepResult(
                    selected=step, converged=True, deltas=tuple(deltas)
                )
        else:
            streak = 0
    return AdaptiveStepResult(selected=budget, converged=False, deltas=tuple(deltas))
