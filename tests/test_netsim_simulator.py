"""Unit tests for the fluid flow-level simulator, background traffic and probes."""

import numpy as np
import pytest

from repro.errors import CalibrationError, SimulationError
from repro.netsim.background import BackgroundConfig, BackgroundTraffic
from repro.netsim.probe import NetsimSubstrate
from repro.netsim.simulator import FlowSimulator
from repro.netsim.topology import TreeTopology

MB = 1024 * 1024


def small_topo():
    return TreeTopology(n_racks=2, servers_per_rack=4)


class TestFlowSimulator:
    def test_single_flow_duration(self):
        topo = small_topo()
        sim = FlowSimulator(topo)
        sim.schedule_flow(0.0, 0, 1, topo.rack_bandwidth)  # exactly 1 second
        sim.run_until_idle(horizon=10)
        (rec,) = sim.completed
        assert rec.duration == pytest.approx(1.0 + topo.path_latency(0, 1))

    def test_two_flows_same_link_halve(self):
        topo = small_topo()
        sim = FlowSimulator(topo)
        sim.schedule_flow(0.0, 0, 1, topo.rack_bandwidth)
        sim.schedule_flow(0.0, 0, 2, topo.rack_bandwidth)
        sim.run_until_idle(horizon=10)
        for rec in sim.completed:
            assert rec.end_time == pytest.approx(2.0, abs=1e-3)

    def test_disjoint_flows_independent(self):
        topo = small_topo()
        sim = FlowSimulator(topo)
        sim.schedule_flow(0.0, 0, 1, topo.rack_bandwidth)
        sim.schedule_flow(0.0, 2, 3, topo.rack_bandwidth)
        sim.run_until_idle(horizon=10)
        for rec in sim.completed:
            assert rec.end_time == pytest.approx(1.0, abs=1e-3)

    def test_staggered_arrival_rate_change(self):
        topo = small_topo()
        sim = FlowSimulator(topo)
        sim.schedule_flow(0.0, 0, 1, topo.rack_bandwidth, tag="a")
        sim.schedule_flow(0.5, 0, 2, topo.rack_bandwidth, tag="b")
        sim.run_until_idle(horizon=10)
        by_tag = {r.tag: r for r in sim.completed}
        assert by_tag["a"].end_time == pytest.approx(1.5, abs=1e-3)
        assert by_tag["b"].end_time == pytest.approx(2.0, abs=1e-3)

    def test_uplink_contention_across_racks(self):
        # Enough cross-rack flows to saturate the 10 Gb/s uplink: 11 flows
        # from rack 0 to rack 1, each capped at 1 Gb/s by access links, but
        # the shared uplink allows only 10/11 Gb/s each.
        topo = TreeTopology(n_racks=2, servers_per_rack=16)
        sim = FlowSimulator(topo)
        for i in range(11):
            sim.schedule_flow(0.0, i, 16 + i, topo.rack_bandwidth)
        sim.run_until_idle(horizon=10)
        # Fair share per flow = core/11 < access rate ⇒ duration = 11/10 s.
        for rec in sim.completed:
            assert rec.end_time == pytest.approx(1.1, abs=1e-2)

    def test_completion_callback(self):
        topo = small_topo()
        sim = FlowSimulator(topo)
        seen = []
        sim.schedule_flow(
            0.0, 0, 1, 100.0, on_complete=lambda s, r: seen.append(r.flow_id)
        )
        sim.run_until_idle(horizon=10)
        assert len(seen) == 1

    def test_call_at(self):
        sim = FlowSimulator(small_topo())
        fired = []
        sim.call_at(1.0, lambda s: fired.append(s.now))
        sim.run_until(2.0)
        assert fired == [1.0]

    def test_cannot_schedule_in_past(self):
        sim = FlowSimulator(small_topo())
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_flow(1.0, 0, 1, 10.0)

    def test_cannot_run_backwards(self):
        sim = FlowSimulator(small_topo())
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_zero_size_rejected(self):
        sim = FlowSimulator(small_topo())
        with pytest.raises(Exception):
            sim.schedule_flow(0.0, 0, 1, 0.0)

    def test_clock_advances_to_target(self):
        sim = FlowSimulator(small_topo())
        sim.run_until(3.5)
        assert sim.now == pytest.approx(3.5)


class TestBackgroundTraffic:
    def test_self_perpetuating(self):
        topo = small_topo()
        sim = FlowSimulator(topo)
        bg = BackgroundTraffic(
            sim,
            BackgroundConfig(n_pairs=4, message_bytes=1 * MB, mean_wait_seconds=0.5),
            seed=0,
        )
        bg.start()
        sim.run_until(20.0)
        done = [r for r in sim.completed if r.tag == BackgroundTraffic.TAG]
        # Each pair cycles roughly every (wait + transfer); expect dozens.
        assert len(done) > 20
        assert bg.messages_sent >= len(done)

    def test_exclusion(self):
        topo = small_topo()
        sim = FlowSimulator(topo)
        excl = {0, 1, 2, 3}
        bg = BackgroundTraffic(
            sim, BackgroundConfig(n_pairs=6), exclude=excl, seed=1
        )
        for s, d in bg.pairs:
            assert s not in excl and d not in excl

    def test_deterministic_pairs(self):
        topo = small_topo()
        bg1 = BackgroundTraffic(FlowSimulator(topo), BackgroundConfig(n_pairs=5), seed=2)
        bg2 = BackgroundTraffic(FlowSimulator(topo), BackgroundConfig(n_pairs=5), seed=2)
        assert bg1.pairs == bg2.pairs

    def test_config_validation(self):
        with pytest.raises(Exception):
            BackgroundConfig(message_bytes=0.0)


class TestNetsimSubstrate:
    def test_idle_network_measures_nominal(self):
        topo = small_topo()
        sim = FlowSimulator(topo)
        sub = NetsimSubstrate(sim, machines=[0, 1, 4, 5], probe_bytes=1 * MB)
        res = sub.measure_round(((0, 1), (2, 3)), snapshot=0)
        for alpha, beta in res:
            assert beta == pytest.approx(topo.rack_bandwidth, rel=1e-6)
            assert alpha > 0

    def test_cross_rack_latency_larger(self):
        topo = small_topo()
        sim = FlowSimulator(topo)
        sub = NetsimSubstrate(sim, machines=[0, 5], probe_bytes=1 * MB)
        ((alpha, _),) = sub.measure_round(((0, 1),), snapshot=0)
        assert alpha == pytest.approx(topo.path_latency(0, 5))

    def test_contention_reduces_measured_bandwidth(self):
        topo = small_topo()
        sim = FlowSimulator(topo)
        # A long-running flow hogs machine 0's access link for a while.
        sim.schedule_flow(0.0, 0, 2, 100 * MB)
        sim.run_until(0.05)
        sub = NetsimSubstrate(sim, machines=[0, 1], probe_bytes=4 * MB)
        ((_, beta),) = sub.measure_round(((0, 1),), snapshot=0)
        assert beta < topo.rack_bandwidth * 0.75

    def test_duplicate_machines_rejected(self):
        sim = FlowSimulator(small_topo())
        with pytest.raises(CalibrationError):
            NetsimSubstrate(sim, machines=[0, 0, 1])

    def test_machine_out_of_datacenter_rejected(self):
        sim = FlowSimulator(small_topo())
        with pytest.raises(CalibrationError):
            NetsimSubstrate(sim, machines=[0, 99])

    def test_empty_round(self):
        sim = FlowSimulator(small_topo())
        sub = NetsimSubstrate(sim, machines=[0, 1])
        assert sub.measure_round((), snapshot=0) == []

    def test_time_advances_across_rounds(self):
        sim = FlowSimulator(small_topo())
        sub = NetsimSubstrate(sim, machines=[0, 1, 2, 3], probe_bytes=1 * MB)
        t0 = sim.now
        sub.measure_round(((0, 1), (2, 3)), snapshot=0)
        assert sim.now > t0
