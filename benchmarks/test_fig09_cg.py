"""Fig 9(a) — CG total-time breakdown across vector sizes.

Paper shape: CG is communication-bound (>90% comm in the baseline); at small
vector sizes the network-aware arms lose to MPICH2 (calibration + RPCA
overheads dominate); as the size grows the gain compensates — ~31%
improvement over Baseline and ~14% over Heuristics at the top.
"""

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.experiments import fig09_apps
from repro.experiments.report import format_table

VECTOR_SIZES = (1000, 8000, 64000, 256000, 1024000)


def test_fig09a_cg_breakdown(benchmark, emit):
    trace = generate_trace(TraceConfig(n_machines=32, n_snapshots=30), seed=9)

    result = benchmark.pedantic(
        fig09_apps.run_cg,
        args=(trace,),
        kwargs=dict(vector_sizes=VECTOR_SIZES, time_step=10, solver="apg", seed=0),
        rounds=1,
        iterations=1,
    )

    emit(
        format_table(
            ["vector size", "strategy", "comp (s)", "comm (s)", "overhead (s)", "total (s)"],
            result.as_rows(),
            title="Fig 9a: CG execution-time breakdown, 32 VMs",
        )
    )

    big = float(VECTOR_SIZES[-1])
    small = float(VECTOR_SIZES[0])
    # Communication-bound at scale.
    bd = next(
        p.breakdown for p in result.points if p.strategy == "Baseline" and p.x == big
    )
    assert bd.communication / bd.total > 0.9
    # Overheads make RPCA lose at the smallest size, win at the largest.
    assert result.improvement(small, "RPCA", "Baseline") < 0.0
    assert result.improvement(big, "RPCA", "Baseline") > 0.15
    # Monotone gain with size.
    gains = [result.improvement(float(v), "RPCA", "Baseline") for v in VECTOR_SIZES]
    assert gains[-1] > gains[0]
