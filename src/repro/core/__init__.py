"""The paper's primary contribution: RPCA-based constant-component extraction.

A *temporal performance matrix* (TP-matrix) stacks time-ordered snapshots of
all-link network performance, one snapshot per row. RPCA decomposes it into a
low-rank *temporal constant matrix* (TC-matrix — the long-term performance)
plus a sparse *temporal error matrix* (TE-matrix — transient interference).
The constant row guides classic network-performance-aware optimizations; the
relative norm of the error matrix predicts whether they will pay off.

Public surface
--------------
* :class:`TPMatrix`, :class:`TCMatrix`, :class:`TEMatrix`,
  :class:`PerformanceMatrix` — the matrix containers of paper Sec III.
* :func:`decompose` — TP → (TC, TE) via a chosen RPCA solver.
* :func:`rpca_apg`, :func:`rpca_ialm`, :func:`row_constant_decomposition` —
  the individual solvers.
* :class:`SVTKernel`, :class:`RankPredictor`, :data:`SVD_BACKENDS` — the
  pluggable partial-SVD kernel layer under the solvers (``svd_backend=``).
* :class:`ElementwiseKernel`, :data:`EW_BACKENDS` — the pluggable
  elementwise kernel layer for the step recurrences
  (``elementwise_backend=``: reference / fused / optional numba jit).
* :func:`relative_error_norm` — ``Norm(N_E)``, the effectiveness predictor.
* :class:`MaintenanceController` — paper Algorithm 1 (adaptive update
  maintenance driven by expected-vs-real performance feedback).
* :class:`DecompositionEngine` — rolling-window cache + warm-started
  re-calibration + instrumentation, for long-running Algorithm-1 loops;
  masked windows (partial snapshots) complete through mask-aware RPCA.
* :class:`StreamingDecomposer`, :class:`StreamingConfig`,
  :data:`ENGINE_MODES` — the online/streaming RPCA path
  (``mode="streaming"``): O(row) snapshot folds with a certified fallback
  to the batch oracle.
* :class:`DegradedModeController`, :class:`ResilienceConfig`,
  :class:`HealthState` — the HEALTHY → DEGRADED → HOLDOVER machine that
  keeps Algorithm 1 serving the last good constant component when
  calibration itself fails.
"""

from .matrices import PerformanceMatrix, TPMatrix, TCMatrix, TEMatrix
from .svd_ops import (
    soft_threshold,
    singular_value_threshold,
    spectral_norm,
    truncated_svd,
)
from .kernels import (
    SVD_BACKENDS,
    BatchRankPredictor,
    BatchedSVTKernel,
    RankPredictor,
    SolveWorkspace,
    SVTKernel,
    validate_backend,
)
from .elementwise import (
    EW_BACKENDS,
    ElementwiseKernel,
    jit_available,
    validate_ew_backend,
)
from .batch import (
    BATCH_DTYPES,
    BatchedSolveWorkspace,
    solve_rpca_batch,
    validate_batch_dtype,
)
from .result import SolverResult
from .apg import rpca_apg, APGResult
from .ialm import rpca_ialm, IALMResult
from .row_constant import row_constant_decomposition
from .solvers import (
    solve_rpca,
    available_solvers,
    register_solver,
    solver_spec,
    SolverSpec,
)
from .decompose import (
    decompose,
    decomposition_from_result,
    Decomposition,
    constant_row,
)
from .engine import (
    BatchDecompositionEngine,
    DecompositionEngine,
    TraceWindowSource,
    WindowSource,
)
from .streaming import (
    ENGINE_MODES,
    StreamingConfig,
    StreamingDecomposer,
    StreamState,
    validate_mode,
)
from .metrics import (
    pseudo_l0_norm,
    l1_norm,
    relative_error_norm,
    relative_difference,
    stability_report,
    StabilityReport,
)
from .maintenance import (
    DegradedModeController,
    HealthState,
    HealthTransition,
    MaintenanceController,
    MaintenanceDecision,
    MaintenanceStats,
    ResilienceConfig,
)

__all__ = [
    "PerformanceMatrix",
    "TPMatrix",
    "TCMatrix",
    "TEMatrix",
    "soft_threshold",
    "singular_value_threshold",
    "spectral_norm",
    "truncated_svd",
    "SVD_BACKENDS",
    "EW_BACKENDS",
    "BATCH_DTYPES",
    "ElementwiseKernel",
    "jit_available",
    "validate_ew_backend",
    "BatchRankPredictor",
    "BatchedSVTKernel",
    "BatchedSolveWorkspace",
    "RankPredictor",
    "SolveWorkspace",
    "SVTKernel",
    "validate_backend",
    "validate_batch_dtype",
    "solve_rpca_batch",
    "SolverResult",
    "rpca_apg",
    "APGResult",
    "rpca_ialm",
    "IALMResult",
    "row_constant_decomposition",
    "solve_rpca",
    "available_solvers",
    "register_solver",
    "solver_spec",
    "SolverSpec",
    "decompose",
    "decomposition_from_result",
    "Decomposition",
    "constant_row",
    "BatchDecompositionEngine",
    "DecompositionEngine",
    "TraceWindowSource",
    "WindowSource",
    "ENGINE_MODES",
    "StreamingConfig",
    "StreamingDecomposer",
    "StreamState",
    "validate_mode",
    "pseudo_l0_norm",
    "l1_norm",
    "relative_error_norm",
    "relative_difference",
    "stability_report",
    "StabilityReport",
    "MaintenanceController",
    "MaintenanceDecision",
    "MaintenanceStats",
    "HealthState",
    "HealthTransition",
    "ResilienceConfig",
    "DegradedModeController",
]
