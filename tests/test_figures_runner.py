"""Unit tests for the one-shot figures runner (and its CLI command)."""

import pytest

from repro.cli import main
from repro.experiments.figures_runner import FigureReport, run_all_figures


class TestRunAllFigures:
    @pytest.fixture(scope="class")
    def reports(self):
        return run_all_figures(scale="quick", seed=7)

    def test_all_ec2_figures_present(self, reports):
        ids = [r.figure for r in reports]
        assert ids == [
            "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
        ]

    def test_tables_render(self, reports):
        for r in reports:
            assert isinstance(r, FigureReport)
            assert "Fig" in r.text
            assert len(r.text.splitlines()) >= 3

    def test_emit_callback_streams(self):
        seen = []
        run_all_figures(scale="quick", seed=7, emit=seen.append)
        assert len(seen) == 8

    def test_simulation_figures_optional(self):
        reports = run_all_figures(scale="quick", include_simulation=True, seed=7)
        ids = [r.figure for r in reports]
        assert "fig12" in ids and "fig13" in ids

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            run_all_figures(scale="huge")


class TestFiguresCLI:
    def test_quick_run(self, capsys):
        assert main(["figures", "--scale", "quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "regenerated 8 figures" in out
        assert "Fig 7" in out

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "figures.md"
        assert main(["figures", "--scale", "quick", "--seed", "3",
                     "--output", str(out_file)]) == 0
        text = out_file.read_text()
        assert "## fig04" in text and "## fig11" in text
        assert "Fig 7" in text
