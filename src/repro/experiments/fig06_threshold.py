"""Fig 6 — update-maintenance threshold study.

Replay a trace containing regime changes (VM migrations) through the full
Algorithm-1 loop: fit on a calibration window, run one broadcast per
snapshot, compare the expected time (tree priced on the estimate) with the
observed time (tree priced on the live snapshot), and re-calibrate whenever
the relative deviation crosses the threshold — paying the calibration
overhead each time. The paper's findings to reproduce: below ≈20% the loop
thrashes and overhead dominates; above ≈150% it never re-calibrates and the
communication time degrades after changes; ≈100% is the sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration.overhead import calibration_overhead_seconds
from ..cloudsim.trace import CalibrationTrace
from ..collectives.exec_model import broadcast_time, weights_to_alphabeta
from ..collectives.fnf import fnf_tree
from ..core.maintenance import MaintenanceController, MaintenanceDecision
from ..core.decompose import decompose
from ..errors import ValidationError
from ..utils.seeding import spawn_rng

__all__ = ["ThresholdOutcome", "Fig06Result", "run"]


@dataclass(frozen=True, slots=True)
class ThresholdOutcome:
    """Averages for one threshold setting (one bar group of Fig 6)."""

    threshold: float
    avg_total_time: float
    avg_communication_time: float
    avg_maintenance_overhead: float
    recalibrations: int
    operations: int


@dataclass(frozen=True)
class Fig06Result:
    """Sweep over thresholds."""

    outcomes: tuple[ThresholdOutcome, ...]

    def best_threshold(self) -> float:
        return min(self.outcomes, key=lambda o: o.avg_total_time).threshold

    def as_rows(self) -> list[tuple[float, float, float, float, int]]:
        return [
            (
                o.threshold,
                o.avg_total_time,
                o.avg_communication_time,
                o.avg_maintenance_overhead,
                o.recalibrations,
            )
            for o in self.outcomes
        ]


def _replay_one_threshold(
    trace: CalibrationTrace,
    threshold: float,
    *,
    time_step: int,
    nbytes: float,
    solver: str,
    calibration_cost: float,
    collectives_per_operation: int,
    seed: int,
) -> ThresholdOutcome:
    rng = spawn_rng(seed)
    n = trace.n_machines

    def fit(end: int) -> np.ndarray:
        start = max(0, end - time_step)
        tp = trace.tp_matrix(nbytes, start=start, count=end - start)
        return decompose(tp, solver=solver).performance_matrix().weights

    controller = MaintenanceController(threshold=threshold)
    weights = fit(time_step)
    comm_total = 0.0
    overhead_total = 0.0
    ops = 0
    recals = 0
    for k in range(time_step, trace.n_snapshots):
        root = int(rng.integers(n))
        tree = fnf_tree(weights, root)
        ea, eb = weights_to_alphabeta(weights, nbytes)
        # One "operation" is an application run of many collectives (the
        # paper monitors whole MPI operations, not single messages); scaling
        # both expected and observed leaves the deviation ratio unchanged.
        expected = collectives_per_operation * broadcast_time(tree, ea, eb, nbytes)
        observed = collectives_per_operation * broadcast_time(
            tree, trace.alpha[k], trace.beta[k], nbytes
        )
        comm_total += observed
        ops += 1
        if controller.observe(expected, observed) is MaintenanceDecision.RECALIBRATE:
            weights = fit(k + 1)
            overhead_total += calibration_cost
            recals += 1
    return ThresholdOutcome(
        threshold=threshold,
        avg_total_time=(comm_total + overhead_total) / ops,
        avg_communication_time=comm_total / ops,
        avg_maintenance_overhead=overhead_total / ops,
        recalibrations=recals,
        operations=ops,
    )


def run(
    trace: CalibrationTrace,
    *,
    thresholds: tuple[float, ...] = (0.1, 0.2, 0.5, 1.0, 1.5, 2.0),
    time_step: int = 10,
    nbytes: float = 8.0 * 1024 * 1024,
    solver: str = "row_constant",
    calibration_cost: float | None = None,
    collectives_per_operation: int = 1,
    seed: int = 0,
) -> Fig06Result:
    """Sweep maintenance thresholds over one trace replay.

    *calibration_cost* defaults to the Fig 4 cost model for the trace's
    cluster size at the given time step. *collectives_per_operation* sizes
    each monitored operation (the paper's operations are long-running
    application runs, not single messages).
    """
    if trace.n_snapshots <= time_step:
        raise ValidationError("trace too short for the requested time step")
    if int(collectives_per_operation) < 1:
        raise ValidationError("collectives_per_operation must be >= 1")
    cost = (
        calibration_cost
        if calibration_cost is not None
        else calibration_overhead_seconds(trace.n_machines, time_step)
    )
    outcomes = tuple(
        _replay_one_threshold(
            trace,
            th,
            time_step=time_step,
            nbytes=nbytes,
            solver=solver,
            calibration_cost=cost,
            collectives_per_operation=int(collectives_per_operation),
            seed=seed,
        )
        for th in thresholds
    )
    return Fig06Result(outcomes=outcomes)
