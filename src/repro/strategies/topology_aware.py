"""Topology-aware: classic optimization from ground-truth topology.

The paper compares against topology-aware algorithms [21], [38] only in the
ns-2 simulation, "because topology is not available in Amazon EC2". The
strategy builds a *static* weight matrix from the nominal topology — rack
locality decides latency/bandwidth tiers — and never updates it, which is
exactly why it degrades under dynamics (Fig 13: ≈ Baseline when the network
is busy).
"""

from __future__ import annotations

import numpy as np

from ..cloudsim.bands import BandTiers
from ..cloudsim.placement import Placement
from ..core.matrices import TPMatrix
from ..netmodel.alphabeta import transfer_time_matrix
from .base import Strategy

__all__ = ["TopologyAwareStrategy"]


class TopologyAwareStrategy(Strategy):
    """Static weights from nominal rack-locality tiers.

    Parameters
    ----------
    placement:
        Ground-truth rack placement of the virtual cluster (the simulator
        knows it; a real cloud user would not).
    nbytes:
        Message size the nominal weights are computed for.
    tiers:
        Nominal per-tier latency/bandwidth (defaults to datacenter nominal
        values with no jitter — the topology tells you the *class* of a
        link, not its realized quality).
    """

    name = "Topology-aware"
    tree_algorithm = "fnf"
    mapping_algorithm = "greedy"

    def __init__(
        self,
        placement: Placement,
        nbytes: float,
        tiers: BandTiers | None = None,
    ) -> None:
        t = tiers if tiers is not None else BandTiers(jitter_sigma=0.0)
        same = placement.same_rack_matrix()
        alpha = np.where(same, t.same_rack_latency, t.cross_rack_latency)
        beta = np.where(same, t.same_rack_bandwidth, t.cross_rack_bandwidth)
        n = placement.n_machines
        np.fill_diagonal(alpha, 0.0)
        np.fill_diagonal(beta, np.inf)
        w = transfer_time_matrix(alpha, np.where(np.isinf(beta), 1.0, beta), nbytes)
        np.fill_diagonal(w, 0.0)
        self._weights = w

    def fit(self, tp: TPMatrix) -> None:  # noqa: ARG002 - topology is static
        return None

    def weight_matrix(self) -> np.ndarray | None:
        return self._weights.copy()
