"""Apply fault models to traces and live measurement substrates.

Two injection points, matching the two ways the pipeline consumes
measurements:

* :func:`inject_faults` — *trace-level*: derive a faulty
  :class:`~repro.cloudsim.trace.CalibrationTrace` view from a ground-truth
  trace. Perturbed entries (stragglers, corruption) carry inflated weights;
  lost entries are marked in the trace's observation mask while keeping the
  ground-truth values underneath (a probe that never returned doesn't change
  the network — only what the calibrator knows about it).
* :class:`FaultySubstrate` — *probe-level*: wrap any
  :class:`~repro.calibration.calibrator.MeasurementSubstrate` so each probe
  attempt independently suffers the transient models (a retry re-rolls and
  may succeed) while persistent outages hold for their scheduled snapshots
  no matter how often the calibrator retries. Lost probes come back as
  ``(nan, nan)``, the wire format for "no answer".

:func:`parse_fault_spec` turns the CLI's ``--faults`` string into a model
list, including the named ``mild``/``harsh`` profiles used by the CI
fault-injection job.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cloudsim.trace import CalibrationTrace
from ..errors import ValidationError
from ..observability import emit_count
from ..utils.seeding import derive_seed, spawn_rng
from .models import (
    CorruptedReadings,
    CrashFault,
    FaultModel,
    FaultSchedule,
    ProbeLoss,
    ProbeStraggler,
    RackOutage,
    VMOutage,
    materialize_faults,
)

__all__ = [
    "InjectedTrace",
    "inject_faults",
    "FaultySubstrate",
    "FAULT_PROFILES",
    "parse_fault_spec",
]


@dataclass(frozen=True)
class InjectedTrace:
    """A faulty trace view plus the schedule that produced it."""

    trace: CalibrationTrace
    schedule: FaultSchedule

    @property
    def events(self):
        return self.schedule.events


def inject_faults(
    trace: CalibrationTrace,
    models: list[FaultModel] | tuple[FaultModel, ...],
    *,
    seed: int | None = None,
) -> InjectedTrace:
    """Derive a faulty view of *trace* under the given fault models.

    The returned trace has suspect entries perturbed (``alpha * factor``,
    ``beta / factor``) and lost entries masked out — their α/β values stay
    at ground truth, which is exactly what a downstream consumer must not
    rely on (the mask is the source of truth). Any mask already on *trace*
    is intersected with the fault mask.
    """
    schedule = materialize_faults(
        models, trace.n_snapshots, trace.n_machines, seed=seed
    )
    perturbed = (
        trace.with_multiplicative_noise(schedule.factor)
        if schedule.suspect.any()
        else trace
    )
    observed = ~schedule.missing
    if perturbed.mask is not None:
        observed = observed & perturbed.mask
    faulty = CalibrationTrace(
        alpha=perturbed.alpha,
        beta=perturbed.beta,
        timestamps=perturbed.timestamps,
        mask=observed,
    )
    return InjectedTrace(trace=faulty, schedule=schedule)


class FaultySubstrate:
    """Wrap a measurement substrate with scheduled and per-attempt faults.

    Persistent models (VM/rack outages) are materialized once at
    construction into a :class:`~repro.faults.models.FaultSchedule`; a probe
    touching a dark machine fails on every attempt for the outage's
    duration. Transient models (probe loss, stragglers, corruption) are
    rolled independently per probe *attempt*, so a retrying calibrator can
    recover from them — the asymmetry that makes retry-with-backoff
    worthwhile and outage detection necessary.

    Lost probes are reported as ``(nan, nan)``; perturbed probes return
    ``(alpha * f, beta / f)``.

    Parameters
    ----------
    substrate:
        The healthy substrate to wrap.
    models:
        Fault models to apply.
    n_snapshots:
        Horizon for materializing persistent outages; defaults to the
        substrate's own ``n_snapshots``. Only required when persistent
        models are present.
    seed:
        Drives both outage materialization and per-attempt rolls.
    """

    def __init__(
        self,
        substrate,
        models: list[FaultModel] | tuple[FaultModel, ...],
        *,
        n_snapshots: int | None = None,
        seed: int | None = None,
    ) -> None:
        for i, model in enumerate(models):
            if not isinstance(model, FaultModel):
                raise ValidationError(
                    f"faults[{i}] is {type(model).__name__}, not a FaultModel"
                )
        self.substrate = substrate
        self.models = tuple(models)
        self.transient = tuple(m for m in self.models if not m.persistent)
        persistent = tuple(m for m in self.models if m.persistent)
        if seed is None:
            seed = int(spawn_rng(None).integers(0, 2**31 - 1))
        self.seed = int(seed)
        if n_snapshots is None:
            n_snapshots = getattr(substrate, "n_snapshots", None)
        if persistent:
            if n_snapshots is None:
                raise ValidationError(
                    "persistent fault models need n_snapshots; the substrate "
                    "does not expose it — pass n_snapshots explicitly"
                )
            self.schedule = materialize_faults(
                persistent, int(n_snapshots), substrate.n_machines, seed=self.seed
            )
        else:
            self.schedule = None
        self._n_snapshots = None if n_snapshots is None else int(n_snapshots)
        self._rng = spawn_rng(derive_seed(self.seed, "probe_attempts"))

    @property
    def n_machines(self) -> int:
        return int(self.substrate.n_machines)

    @property
    def n_snapshots(self) -> int | None:
        return self._n_snapshots

    def outage_entries(self, snapshot: int) -> np.ndarray | None:
        """Scheduled-missing mask for *snapshot*, or None when clean."""
        if self.schedule is None:
            return None
        if not 0 <= snapshot < self.schedule.n_snapshots:
            return None
        missing = self.schedule.missing[snapshot]
        return missing if missing.any() else None

    def measure_round(
        self, pairs: tuple[tuple[int, int], ...], snapshot: int
    ) -> list[tuple[float, float]]:
        results = self.substrate.measure_round(pairs, snapshot)
        dark = self.outage_entries(snapshot)
        out: list[tuple[float, float]] = []
        for (s, r), (a_v, b_v) in zip(pairs, results):
            if dark is not None and dark[s, r]:
                emit_count("faults.probe.outage")
                out.append((float("nan"), float("nan")))
                continue
            lost = False
            factor = 1.0
            for model in self.transient:
                m_lost, m_factor = model.probe_effect(self._rng)
                lost = lost or m_lost
                factor *= m_factor
            if lost:
                emit_count("faults.probe.lost")
                out.append((float("nan"), float("nan")))
            elif factor != 1.0:
                emit_count("faults.probe.perturbed")
                out.append((a_v * factor, b_v / factor))
            else:
                out.append((a_v, b_v))
        return out


# Named profiles for the CI fault-injection job and quick CLI use.
FAULT_PROFILES: dict[str, str] = {
    "mild": "probe_loss=0.05,straggler=0.02",
    "harsh": "probe_loss=0.1,straggler=0.05,corrupt=0.01,vm_outage=0.01",
}


def _parse_rate_or_fields(value: str, token: str) -> tuple[float | None, list[int]]:
    """A spec value is either a float rate or colon-separated int fields."""
    if ":" in value:
        try:
            return None, [int(part) for part in value.split(":")]
        except ValueError:
            raise ValidationError(f"bad fault token {token!r}") from None
    try:
        return float(value), []
    except ValueError:
        raise ValidationError(f"bad fault token {token!r}") from None


def parse_fault_spec(spec: str) -> list[FaultModel]:
    """Parse a ``--faults`` specification into fault models.

    Grammar: a profile name (``mild``, ``harsh``) or comma-separated tokens:

    * ``probe_loss=RATE``
    * ``straggler=RATE`` (timeout/straggler inflation)
    * ``corrupt=RATE`` (garbage readings)
    * ``vm_outage=RATE`` or ``vm_outage=MACHINE:START[:DURATION]``
    * ``rack_outage=RATE`` or ``rack_outage=START[:DURATION]``
      (random rack membership)
    * ``crash=OPERATION`` (SIGKILL the process when the session's
      operation counter reaches OPERATION — the chaos-harness fault)

    Example: ``probe_loss=0.1,vm_outage=3:5:2`` — 10% probe loss plus
    machine 3 dark for snapshots 5–6.
    """
    text = spec.strip()
    if not text:
        raise ValidationError("empty fault specification")
    if text in FAULT_PROFILES:
        text = FAULT_PROFILES[text]
    models: list[FaultModel] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValidationError(
                f"bad fault token {token!r}; expected name=value "
                f"or a profile in {sorted(FAULT_PROFILES)}"
            )
        name, _, value = token.partition("=")
        name = name.strip()
        rate, fields = _parse_rate_or_fields(value.strip(), token)
        if name == "probe_loss" and rate is not None:
            models.append(ProbeLoss(rate=rate))
        elif name == "straggler" and rate is not None:
            models.append(ProbeStraggler(rate=rate))
        elif name == "corrupt" and rate is not None:
            models.append(CorruptedReadings(rate=rate))
        elif name == "vm_outage":
            if rate is not None:
                models.append(VMOutage(rate=rate))
            elif len(fields) in (2, 3):
                machine, start = fields[0], fields[1]
                duration = fields[2] if len(fields) == 3 else 2
                models.append(
                    VMOutage(machine=machine, start=start, duration=duration)
                )
            else:
                raise ValidationError(
                    f"bad fault token {token!r}; expected vm_outage=RATE "
                    "or vm_outage=MACHINE:START[:DURATION]"
                )
        elif name == "rack_outage":
            if rate is not None:
                models.append(RackOutage(rate=rate))
            elif len(fields) in (1, 2):
                start = fields[0]
                duration = fields[1] if len(fields) == 2 else 2
                models.append(RackOutage(start=start, duration=duration))
            else:
                raise ValidationError(
                    f"bad fault token {token!r}; expected rack_outage=RATE "
                    "or rack_outage=START[:DURATION]"
                )
        elif name == "crash":
            if rate is None or rate != int(rate) or rate < 0:
                raise ValidationError(
                    f"bad fault token {token!r}; expected crash=OPERATION "
                    "with a non-negative integer operation index"
                )
            models.append(CrashFault(at_operation=int(rate)))
        else:
            raise ValidationError(f"unknown fault model in token {token!r}")
    if not models:
        raise ValidationError("fault specification names no models")
    return models
