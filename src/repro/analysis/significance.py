"""Statistical significance for strategy comparisons.

The paper reports mean improvements over 100+ repetitions without
uncertainty; for a reproduction it is worth knowing when "RPCA is 3% better
than Heuristics" is signal and when it is noise. The tool of choice for
paired, non-Gaussian timing data is the paired bootstrap: resample
repetition indices with replacement and read the improvement's confidence
interval off the bootstrap distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_in_range
from ..errors import ValidationError
from ..utils.seeding import spawn_rng

__all__ = ["ImprovementCI", "bootstrap_improvement"]


@dataclass(frozen=True, slots=True)
class ImprovementCI:
    """Bootstrap confidence interval for ``1 − mean(a)/mean(b)``.

    ``significant`` is True when the interval excludes zero — i.e. the
    direction of the improvement is resolved at the chosen confidence.
    """

    point: float
    low: float
    high: float
    confidence: float
    n_samples: int

    @property
    def significant(self) -> bool:
        return self.low > 0.0 or self.high < 0.0


def bootstrap_improvement(
    times_a: np.ndarray,
    times_b: np.ndarray,
    *,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int | np.random.Generator | None = None,
) -> ImprovementCI:
    """CI for the improvement of *a* over *b* (paired by repetition).

    Parameters
    ----------
    times_a, times_b:
        Same-length elapsed-time arrays from a
        :class:`~repro.experiments.harness.ComparisonResult` (paired: index
        *i* of both arrays came from the same root and live snapshot).
    confidence:
        Interval mass (default 95%).
    n_boot:
        Bootstrap resamples.
    seed:
        Resampling seed.
    """
    a = np.asarray(times_a, dtype=np.float64).ravel()
    b = np.asarray(times_b, dtype=np.float64).ravel()
    if a.size != b.size or a.size == 0:
        raise ValidationError("times_a and times_b must be same-length, non-empty")
    if np.any(a <= 0) or np.any(b <= 0):
        raise ValidationError("elapsed times must be positive")
    check_in_range(confidence, 0.5, 0.999, "confidence")
    if int(n_boot) < 100:
        raise ValidationError("n_boot must be >= 100")
    rng = spawn_rng(seed)

    point = 1.0 - a.mean() / b.mean()
    idx = rng.integers(0, a.size, size=(int(n_boot), a.size))
    boot_a = a[idx].mean(axis=1)
    boot_b = b[idx].mean(axis=1)
    boots = 1.0 - boot_a / boot_b
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(boots, [tail, 1.0 - tail])
    return ImprovementCI(
        point=float(point),
        low=float(low),
        high=float(high),
        confidence=float(confidence),
        n_samples=int(a.size),
    )
