"""Fleet-scale parallel decomposition scheduling.

One :class:`FleetScheduler` drives many independent Algorithm-1 sessions —
one per virtual cluster — concurrently across a pool of worker processes:

* Each cluster's trace is copied into a shared-memory block **once**
  (:class:`~repro.fleet.shm.SharedTraceBlock`); workers map views. The only
  per-batch IPC is the operation specs going out and the session capsule
  coming back.
* Work is shipped in batches of ``batch_size`` operations over a **bounded**
  task queue (``n_workers + queue_depth`` slots). When workers fall behind,
  dispatch blocks — backpressure, not unbounded buffering.
* At most one batch per cluster is in flight at a time (the capsule is the
  cluster's single warm-state token), and completed clusters re-enter the
  ready queue at the **back**. Together these give round-robin fairness: a
  straggler cluster — say one whose network is too dynamic and re-solves
  every window — occupies at most one worker while the rest of the fleet
  flows around it.
* Results are deterministic by construction: each cluster's operations run
  sequentially in order, and the capsule round-trip is lossless, so per-
  cluster ``P_D`` is bit-identical to a serial run regardless of worker
  count or which worker served which batch. :meth:`FleetScheduler.run_serial`
  is that reference run (also the throughput baseline).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import queue as queue_mod
import time
from multiprocessing import resource_tracker
from collections import deque
from dataclasses import dataclass

from ..errors import FleetError, ValidationError
from ..observability import Instrumentation, instrumented
from ..persistence import CheckpointStore
from ..runtime.session import OperationSpec, SessionCapsule, TraceSession
from .config import ClusterSpec, FleetConfig
from .report import ClusterReport, FleetReport, FleetSweepReport, SweepClusterResult
from .shm import SharedStackBlock, SharedTraceBlock
from .worker import BatchResult, BatchTask, SweepResult, SweepTask, solve_shard, worker_main

__all__ = ["FleetScheduler", "SweepShard"]


@dataclass
class _ClusterState:
    """Scheduler-side bookkeeping for one cluster."""

    spec: ClusterSpec
    remaining: int
    capsule: SessionCapsule | None = None
    inflight: bool = False
    batches: int = 0
    store: CheckpointStore | None = None


@dataclass(frozen=True)
class SweepShard:
    """One unit of batched sweep work: B same-shape cluster windows.

    Produced by :meth:`FleetScheduler.plan_sweep`; ``tps[i]`` is cluster
    ``names[i]``'s trailing calibration window.
    """

    index: int
    names: tuple[str, ...]
    tps: tuple[object, ...]  # TPMatrix per cluster, shape-homogeneous


class FleetScheduler:
    """Run many clusters' calibration/maintenance loops across a process pool.

    Parameters
    ----------
    clusters:
        The fleet. Cluster names must be unique.
    config:
        Fleet-wide settings; defaults to ``FleetConfig()``.
    instrumentation:
        Fleet-level sink. Per-cluster engine counters, timers and solve
        spans (accumulated worker-side, carried home inside each capsule)
        are merged into it at the end of :meth:`run`, alongside the
        scheduler's own ``fleet.*`` counters.
    """

    def __init__(
        self,
        clusters: list[ClusterSpec] | tuple[ClusterSpec, ...],
        config: FleetConfig | None = None,
        *,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        clusters = tuple(clusters)
        if not clusters:
            raise ValidationError("fleet needs at least one cluster")
        names = [c.name for c in clusters]
        if len(set(names)) != len(names):
            raise ValidationError("cluster names must be unique")
        self.clusters = clusters
        self.config = config if config is not None else FleetConfig()
        self.instrumentation = (
            instrumentation if instrumentation is not None else Instrumentation("fleet")
        )

    # -- planning ------------------------------------------------------

    def _session_kwargs(self) -> dict[str, object]:
        cfg = self.config
        return {
            "nbytes": cfg.nbytes,
            "time_step": cfg.window,
            "threshold": cfg.threshold,
            "consecutive": cfg.consecutive,
            "solver": cfg.solver,
            "warm_start": cfg.warm_start,
            "svd_backend": cfg.svd_backend,
        }

    def _operations_for(self, spec: ClusterSpec) -> int:
        return int(
            spec.operations if spec.operations is not None else self.config.operations
        )

    def _next_specs(self, state: _ClusterState) -> tuple[OperationSpec, ...]:
        n = min(int(self.config.batch_size), state.remaining)
        return tuple(OperationSpec(op=self.config.op) for _ in range(n))

    def _make_store(self, name: str) -> CheckpointStore | None:
        root = self.config.checkpoint_root
        if root is None:
            return None
        directory = os.path.join(os.fspath(root), name)
        os.makedirs(directory, exist_ok=True)
        return CheckpointStore(directory, keep=self.config.keep_checkpoints)

    def _write_manifest(self) -> None:
        root = self.config.checkpoint_root
        if root is None:
            return
        os.makedirs(root, exist_ok=True)
        manifest = {
            "clusters": sorted(c.name for c in self.clusters),
            "n_workers": self.config.n_workers,
            "window": self.config.window,
            "threshold": self.config.threshold,
            "solver": self.config.solver,
            "svd_backend": self.config.svd_backend,
            "op": self.config.op,
        }
        with open(os.path.join(root, "fleet.json"), "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)

    # -- serial reference ---------------------------------------------

    def run_serial(self) -> FleetReport:
        """Run the identical plan in-process, one cluster after another.

        The determinism oracle and the throughput baseline: per-cluster
        results must (and do) match :meth:`run` bit for bit.
        """
        t0 = time.perf_counter()
        kwargs = self._session_kwargs()
        reports: dict[str, ClusterReport] = {}
        total_ops = 0
        total_batches = 0
        for spec in self.clusters:
            ops = self._operations_for(spec)
            session = TraceSession(spec.trace, **kwargs)
            op_spec = OperationSpec(op=self.config.op)
            batches = 0
            for start in range(0, ops, int(self.config.batch_size)):
                for _ in range(min(int(self.config.batch_size), ops - start)):
                    session.step(op_spec)
                batches += 1
            session.instrumentation.count("fleet.worker.batches", batches)
            capsule = session.capture_capsule()
            self.instrumentation.merge(capsule.meta["instrumentation"])
            reports[spec.name] = self._cluster_report(spec.name, capsule, batches)
            total_ops += ops
            total_batches += batches
        elapsed = time.perf_counter() - t0
        self._account(n_workers=1, elapsed=elapsed, ops=total_ops, batches=total_batches)
        return FleetReport(
            clusters=reports,
            n_workers=1,
            elapsed_s=elapsed,
            total_operations=total_ops,
            total_batches=total_batches,
            instrumentation=self.instrumentation.state_dict(),
        )

    # -- parallel run --------------------------------------------------

    def run(self) -> FleetReport:
        """Run the fleet across ``n_workers`` processes; returns the report."""
        cfg = self.config
        t0 = time.perf_counter()
        self._write_manifest()
        states = {
            spec.name: _ClusterState(
                spec=spec,
                remaining=self._operations_for(spec),
                store=self._make_store(spec.name),
            )
            for spec in self.clusters
        }
        n_workers = min(int(cfg.n_workers), len(self.clusters))
        ctx = mp.get_context()
        task_queue = ctx.Queue(maxsize=cfg.max_inflight)
        result_queue = ctx.Queue()
        blocks: dict[str, SharedTraceBlock] = {}
        workers: list[mp.process.BaseProcess] = []
        try:
            for spec in self.clusters:
                blocks[spec.name] = SharedTraceBlock.create(spec.trace)
            for _ in range(n_workers):
                proc = ctx.Process(
                    target=worker_main, args=(task_queue, result_queue), daemon=True
                )
                proc.start()
                workers.append(proc)

            total_batches = self._drive(states, blocks, task_queue, result_queue, workers)

            for _ in workers:
                task_queue.put(None)
            for proc in workers:
                proc.join(timeout=30.0)
        finally:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            for block in blocks.values():
                block.unlink()

        reports: dict[str, ClusterReport] = {}
        total_ops = 0
        for name, state in states.items():
            assert state.capsule is not None
            self.instrumentation.merge(state.capsule.meta["instrumentation"])
            reports[name] = self._cluster_report(name, state.capsule, state.batches)
            total_ops += self._operations_for(state.spec)
        elapsed = time.perf_counter() - t0
        self._account(
            n_workers=n_workers, elapsed=elapsed, ops=total_ops, batches=total_batches
        )
        return FleetReport(
            clusters=reports,
            n_workers=n_workers,
            elapsed_s=elapsed,
            total_operations=total_ops,
            total_batches=total_batches,
            instrumentation=self.instrumentation.state_dict(),
        )

    def _drive(
        self,
        states: dict[str, _ClusterState],
        blocks: dict[str, SharedTraceBlock],
        task_queue,
        result_queue,
        workers,
    ) -> int:
        """The scheduler loop: dispatch ready clusters, drain results.

        ``ready`` is a FIFO deque — clusters rejoin at the back after each
        completed batch, so with one batch in flight per cluster the fleet
        round-robins and no cluster can starve another.
        """
        cfg = self.config
        kwargs = self._session_kwargs()
        ready: deque[str] = deque(sorted(states))
        inflight = 0
        done = 0
        total_batches = 0
        while done < len(states):
            while ready and inflight < cfg.max_inflight:
                name = ready.popleft()
                state = states[name]
                task = BatchTask(
                    cluster=name,
                    descriptor=blocks[name].descriptor,
                    specs=self._next_specs(state),
                    capsule=state.capsule,
                    session_kwargs={} if state.capsule is not None else dict(kwargs),
                )
                task_queue.put(task)
                state.inflight = True
                inflight += 1

            result = self._next_result(result_queue, workers)
            inflight -= 1
            total_batches += 1
            state = states[result.cluster]
            state.inflight = False
            if result.error is not None:
                raise FleetError(
                    f"cluster {result.cluster!r} failed in worker "
                    f"{result.worker_pid}",
                    cluster=result.cluster,
                    worker_traceback=result.error,
                )
            state.capsule = result.capsule
            state.remaining -= result.operations
            state.batches += 1
            if state.store is not None:
                state.store.save(result.capsule.arrays, result.capsule.meta)
            if state.remaining > 0:
                ready.append(result.cluster)
            else:
                done += 1
        return total_batches

    @staticmethod
    def _next_result(result_queue, workers) -> BatchResult | SweepResult:
        """Blocking result fetch that notices dead workers instead of hanging."""
        while True:
            try:
                return result_queue.get(timeout=1.0)
            except queue_mod.Empty:
                dead = [p for p in workers if not p.is_alive()]
                if dead and len(dead) == len(workers):
                    codes = sorted({p.exitcode for p in dead})
                    raise FleetError(
                        f"all fleet workers exited (exit codes {codes}) "
                        "with work still pending"
                    ) from None

    # -- reporting -----------------------------------------------------

    @staticmethod
    def _cluster_report(
        name: str, capsule: SessionCapsule, batches: int
    ) -> ClusterReport:
        return ClusterReport(
            name=name,
            operations=capsule.operations,
            constant_row=capsule.constant_row,
            norm_ne=capsule.norm_ne,
            verdict=capsule.verdict,
            recalibrations=int(capsule.meta["stats"]["recalibrations"]),
            worker_batches=batches,
        )

    def _account(self, *, n_workers: int, elapsed: float, ops: int, batches: int) -> None:
        sink = self.instrumentation
        sink.count("fleet.clusters", len(self.clusters))
        sink.count("fleet.operations", ops)
        sink.count("fleet.batches", batches)
        sink.count("fleet.workers", n_workers)
        sink.add_time("fleet.elapsed", elapsed)

    # -- batched sweep -------------------------------------------------

    def plan_sweep(self) -> list[SweepShard]:
        """Partition the fleet's trailing windows into batched shards.

        Each cluster contributes its trailing ``window``-snapshot TP-matrix
        at the configured ``nbytes``. Clusters are grouped by matrix shape
        (shape-heterogeneous fleets still batch whatever matches), ordered
        by name within a group, and chunked into shards of at most
        ``batch_size`` — the ``(B, m, n)`` unit one batched solve handles
        and one shared stack block transports. The plan is deterministic:
        it depends only on the fleet's specs and config, never on timing.
        """
        cfg = self.config
        windows: dict[tuple[int, int], list[tuple[str, object]]] = {}
        for spec in self.clusters:
            trace = spec.trace
            count = min(int(cfg.window), int(trace.n_snapshots))
            start = int(trace.n_snapshots) - count
            tp = trace.tp_matrix(cfg.nbytes, start=start, count=count)
            windows.setdefault(tp.data.shape, []).append((spec.name, tp))
        shards: list[SweepShard] = []
        width = int(cfg.batch_size)
        for shape in sorted(windows):
            group = sorted(windows[shape], key=lambda item: item[0])
            for lo in range(0, len(group), width):
                chunk = group[lo : lo + width]
                shards.append(
                    SweepShard(
                        index=len(shards),
                        names=tuple(name for name, _ in chunk),
                        tps=tuple(tp for _, tp in chunk),
                    )
                )
        return shards

    def run_sweep_serial(self) -> FleetSweepReport:
        """Solve the identical sweep plan in-process, one shard at a time.

        The determinism oracle for :meth:`run_sweep`: per-cluster ``P_D``
        must (and does) match the parallel run bit for bit.
        """
        t0 = time.perf_counter()
        cfg = self.config
        shards = self.plan_sweep()
        results: dict[str, SweepClusterResult] = {}
        workspaces: dict[tuple[int, int, int], object] = {}
        with instrumented(self.instrumentation):
            for shard in shards:
                for res in solve_shard(
                    shard.names,
                    list(shard.tps),
                    solver=cfg.solver,
                    dtype=cfg.batch_dtype,
                    workspaces=workspaces,
                ):
                    results[res.name] = res
        elapsed = time.perf_counter() - t0
        self._account_sweep(n_workers=1, elapsed=elapsed, shards=len(shards))
        return FleetSweepReport(
            clusters=results,
            n_workers=1,
            elapsed_s=elapsed,
            total_shards=len(shards),
            batch_size=int(cfg.batch_size),
            batch_dtype=cfg.batch_dtype,
            instrumentation=self.instrumentation.state_dict(),
        )

    def run_sweep(self) -> FleetSweepReport:
        """Solve every cluster's trailing window as batched shards in parallel.

        Shards ship to workers as :class:`~repro.fleet.shm.SharedStackBlock`
        segments (stacked ``(B, m, n)`` windows, zero pickled matrix bytes);
        each worker solves its shard through one stacked iteration loop and
        sends back per-cluster results plus its instrumentation
        ``state_dict``, which is merged — ``kernel.batch.*`` counters and
        all — into the fleet sink.
        """
        cfg = self.config
        t0 = time.perf_counter()
        shards = self.plan_sweep()
        n_workers = min(int(cfg.n_workers), len(shards))
        ctx = mp.get_context()
        task_queue = ctx.Queue(maxsize=cfg.max_inflight)
        result_queue = ctx.Queue()
        blocks: dict[int, SharedStackBlock] = {}
        workers: list[mp.process.BaseProcess] = []
        results: dict[str, SweepClusterResult] = {}
        try:
            # Stack blocks are created lazily at dispatch (below), which is
            # *after* the fork — so the shared-memory resource tracker must
            # be running first, or each forked worker spawns its own tracker
            # and "cleans up" segments the scheduler already unlinked.
            resource_tracker.ensure_running()
            for _ in range(n_workers):
                proc = ctx.Process(
                    target=worker_main, args=(task_queue, result_queue), daemon=True
                )
                proc.start()
                workers.append(proc)

            pending = deque(shards)
            inflight = 0
            done = 0
            while done < len(shards):
                while pending and inflight < cfg.max_inflight:
                    shard = pending.popleft()
                    # Blocks are created at dispatch and unlinked as soon as
                    # their result lands, so shared memory stays bounded by
                    # the in-flight cap, not the fleet size.
                    block = SharedStackBlock.create(shard.tps)
                    blocks[shard.index] = block
                    task_queue.put(
                        SweepTask(
                            shard=shard.index,
                            descriptor=block.descriptor,
                            clusters=shard.names,
                            solver=cfg.solver,
                            dtype=cfg.batch_dtype,
                        )
                    )
                    inflight += 1

                result = self._next_result(result_queue, workers)
                inflight -= 1
                done += 1
                if result.instrumentation:
                    self.instrumentation.merge(result.instrumentation)
                if result.error is not None:
                    raise FleetError(
                        f"sweep shard {result.shard} "
                        f"(clusters {', '.join(shards[result.shard].names)}) "
                        f"failed in worker {result.worker_pid}",
                        worker_traceback=result.error,
                    )
                blocks.pop(result.shard).unlink()
                for res in result.results:
                    results[res.name] = res

            for _ in workers:
                task_queue.put(None)
            for proc in workers:
                proc.join(timeout=30.0)
        finally:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            for block in blocks.values():
                block.unlink()

        elapsed = time.perf_counter() - t0
        self._account_sweep(n_workers=n_workers, elapsed=elapsed, shards=len(shards))
        return FleetSweepReport(
            clusters=results,
            n_workers=n_workers,
            elapsed_s=elapsed,
            total_shards=len(shards),
            batch_size=int(cfg.batch_size),
            batch_dtype=cfg.batch_dtype,
            instrumentation=self.instrumentation.state_dict(),
        )

    def _account_sweep(self, *, n_workers: int, elapsed: float, shards: int) -> None:
        sink = self.instrumentation
        sink.count("fleet.clusters", len(self.clusters))
        sink.count("fleet.sweep.shards", shards)
        sink.count("fleet.workers", n_workers)
        sink.add_time("fleet.elapsed", elapsed)
