"""Result objects returned by a fleet run.

Per-cluster health vocabulary (``status``):

* ``"ok"`` — the cluster completed its full operation budget (or its sweep
  window solved).
* ``"quarantined"`` — the cluster's task kept raising; under
  ``on_error="degrade"`` it was removed from the rotation after exhausting
  its retry budget, and ``error`` carries the last worker traceback.
* ``"failed"`` — the cluster was given up on for infrastructure reasons
  (every attempt blew its ``task_timeout_s`` deadline) rather than because
  its own task raised; ``error`` says why.

A report whose clusters are not all ``"ok"`` is *degraded*
(:attr:`FleetReport.degraded`): the healthy clusters' results are complete
and bit-identical to a failure-free run, the sick ones are carried with
their status and traceback instead of poisoning the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "CLUSTER_STATUSES",
    "ClusterReport",
    "FleetReport",
    "FleetSweepReport",
    "SweepClusterResult",
]

#: Valid per-cluster health states in fleet reports.
CLUSTER_STATUSES = ("ok", "failed", "quarantined")

#: Scheduler health counters surfaced in every report summary. The
#: ``regime.*`` counters are session-side (merged from worker capsules),
#: so fleet health covers both planes: infrastructure self-healing and
#: network-regime churn.
_HEALTH_COUNTERS = {
    "worker_restarts": "fleet.worker.restarts",
    "task_retries": "fleet.task.retries",
    "task_timeouts": "fleet.task.timeouts",
    "clusters_quarantined": "fleet.cluster.quarantined",
    "regime_shifts": "regime.shift",
    "regime_spikes": "regime.spike",
    "forced_recalibrations": "regime.forced_recalibrations",
    "stream_updates": "kernel.stream.updates",
    "stream_fallbacks": "kernel.stream.fallbacks",
}


def _round_or_none(value: float, digits: int = 6) -> float | None:
    """Round for a summary; non-finite values become JSON-safe ``None``."""
    value = float(value)
    return round(value, digits) if math.isfinite(value) else None


def _health_summary(instrumentation: dict[str, Any]) -> dict[str, int]:
    counters = instrumentation.get("counters", {}) if instrumentation else {}
    return {key: int(counters.get(name, 0)) for key, name in _HEALTH_COUNTERS.items()}


@dataclass(frozen=True)
class ClusterReport:
    """Final state of one cluster after its operation budget ran out.

    ``constant_row`` is the flattened constant component ``P_D`` of the
    cluster's latest decomposition — the fleet's headline per-cluster
    output, and the quantity the throughput benchmark checks for
    bit-identity against a serial run. For a quarantined cluster that never
    completed a batch it is empty and ``verdict`` is ``"unavailable"``.
    """

    name: str
    operations: int
    constant_row: np.ndarray
    norm_ne: float
    verdict: str
    recalibrations: int
    worker_batches: int
    status: str = "ok"
    error: str | None = None
    retries: int = 0
    regime_shifts: int = 0
    regime_spikes: int = 0
    stream_updates: int = 0
    stream_fallbacks: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def summary(self) -> dict[str, Any]:
        out = {
            "name": self.name,
            "operations": self.operations,
            "norm_ne": _round_or_none(self.norm_ne),
            "verdict": self.verdict,
            "recalibrations": self.recalibrations,
            "worker_batches": self.worker_batches,
            "status": self.status,
            "retries": self.retries,
            "regime_shifts": self.regime_shifts,
            "regime_spikes": self.regime_spikes,
            "stream_updates": self.stream_updates,
            "stream_fallbacks": self.stream_fallbacks,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one :meth:`FleetScheduler.run` call."""

    clusters: dict[str, ClusterReport]
    n_workers: int
    elapsed_s: float
    total_operations: int
    total_batches: int
    instrumentation: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_ops_s(self) -> float:
        """Fleet-wide completed operations per wall-clock second."""
        return self.total_operations / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def degraded(self) -> bool:
        """True when any cluster did not finish healthy (``status != "ok"``)."""
        return any(rep.status != "ok" for rep in self.clusters.values())

    def statuses(self) -> dict[str, str]:
        return {name: rep.status for name, rep in self.clusters.items()}

    def health(self) -> dict[str, int]:
        """Scheduler self-healing counters (restarts, retries, timeouts)."""
        return _health_summary(self.instrumentation)

    def constant_rows(self) -> dict[str, np.ndarray]:
        return {name: rep.constant_row for name, rep in self.clusters.items()}

    def summary(self) -> dict[str, Any]:
        return {
            "n_workers": self.n_workers,
            "elapsed_s": round(self.elapsed_s, 3),
            "total_operations": self.total_operations,
            "total_batches": self.total_batches,
            "throughput_ops_s": round(self.throughput_ops_s, 2),
            "degraded": self.degraded,
            "health": self.health(),
            "clusters": [
                self.clusters[name].summary() for name in sorted(self.clusters)
            ],
        }


@dataclass(frozen=True)
class SweepClusterResult:
    """One cluster's trailing-window decomposition from a fleet sweep.

    ``constant_row`` is the flattened constant component ``P_D`` — the
    quantity the sweep benchmark checks for bit-identity between the
    batched parallel run and the serial reference. For a quarantined
    cluster it is empty and ``verdict`` is ``"unavailable"``.
    """

    name: str
    constant_row: np.ndarray
    norm_ne: float
    verdict: str
    rank: int
    iterations: int
    converged: bool
    residual: float
    status: str = "ok"
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def summary(self) -> dict[str, Any]:
        out = {
            "name": self.name,
            "norm_ne": _round_or_none(self.norm_ne),
            "verdict": self.verdict,
            "rank": int(self.rank),
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
            "status": self.status,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass(frozen=True)
class FleetSweepReport:
    """Aggregate outcome of one :meth:`FleetScheduler.run_sweep` call."""

    clusters: dict[str, SweepClusterResult]
    n_workers: int
    elapsed_s: float
    total_shards: int
    batch_size: int
    batch_dtype: str
    instrumentation: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_solves_s(self) -> float:
        """Cluster windows decomposed per wall-clock second."""
        return len(self.clusters) / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def degraded(self) -> bool:
        """True when any cluster's window did not solve (``status != "ok"``)."""
        return any(res.status != "ok" for res in self.clusters.values())

    def statuses(self) -> dict[str, str]:
        return {name: res.status for name, res in self.clusters.items()}

    def health(self) -> dict[str, int]:
        """Scheduler self-healing counters (restarts, retries, timeouts)."""
        return _health_summary(self.instrumentation)

    def constant_rows(self) -> dict[str, np.ndarray]:
        return {name: res.constant_row for name, res in self.clusters.items()}

    def summary(self) -> dict[str, Any]:
        return {
            "n_workers": self.n_workers,
            "elapsed_s": round(self.elapsed_s, 3),
            "total_shards": self.total_shards,
            "batch_size": self.batch_size,
            "batch_dtype": self.batch_dtype,
            "throughput_solves_s": round(self.throughput_solves_s, 2),
            "degraded": self.degraded,
            "health": self.health(),
            "clusters": [
                self.clusters[name].summary() for name in sorted(self.clusters)
            ],
        }
