"""Deterministic random-number management.

Every stochastic component in the package accepts either an integer seed or a
:class:`numpy.random.Generator`. These helpers normalize that convention and
let a parent component derive independent child streams reproducibly — the
same pattern :class:`numpy.random.SeedSequence` was designed for, so parallel
workers never share a stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_rng", "derive_seed"]

RngLike = int | np.random.Generator | None


def spawn_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (fresh entropy), an ``int``, or an existing generator
    (returned unchanged so state is shared deliberately, never copied).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(seed: int, *keys: int | str) -> int:
    """Derive a child seed from *seed* and a path of mix-in keys.

    The derivation is stable across processes and platforms: string keys are
    hashed with a small FNV-1a so the result does not depend on ``PYTHONHASHSEED``.
    """
    acc = np.uint64(seed) ^ np.uint64(0x9E3779B97F4A7C15)
    for key in keys:
        if isinstance(key, str):
            h = np.uint64(0xCBF29CE484222325)
            for byte in key.encode("utf-8"):
                h ^= np.uint64(byte)
                h = np.uint64((int(h) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF)
            k = h
        else:
            k = np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF)
        acc = np.uint64((int(acc) * 6364136223846793005 + int(k)) & 0xFFFFFFFFFFFFFFFF)
    return int(acc & np.uint64(0x7FFFFFFF))
