"""The v1.1 public API facade.

Three verbs cover the package's common uses, each a thin layer over the
underlying machinery with one consistent configuration vocabulary:

* :func:`solve` — one-shot decomposition of a trace into constant + error
  components (:class:`~repro.core.decompose.Decomposition`).
* :func:`open_session` — an Algorithm-1
  :class:`~repro.runtime.session.TraceSession` over one cluster, in batch
  or streaming mode (``mode="streaming"`` folds each snapshot in O(row)
  with a certified batch fallback).
* :func:`run_fleet` — many clusters concurrently via
  :class:`~repro.fleet.FleetScheduler`.

Configuration is a frozen dataclass per verb (:class:`SolveConfig`,
:class:`SessionConfig`, :class:`~repro.fleet.FleetConfig`) sharing canonical
field names: ``window`` for the calibration window length, ``threshold``
for the maintenance threshold, ``n_workers`` for parallelism. Keyword
overrides beat the config object.

Removed legacy spellings (v1.1)
-------------------------------
The historical spellings accepted for one release in v1 — ``time_step``,
``nsnap``, ``n_snapshots`` (all meaning ``window``), ``thresh``
(``threshold``) and ``workers`` (``n_workers``) — are **gone**: passing one
raises ``TypeError`` naming the canonical field. Any other unknown keyword
also raises ``TypeError``, with a did-you-mean hint when a near-miss field
exists. See ``docs/api_v1.md`` for the migration table.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields, replace
from typing import Any, Iterable

from .cloudsim.trace import CalibrationTrace
from .core.decompose import Decomposition, decompose
from .core.detectors import validate_regime_detector
from .core.elementwise import check_ew_svd_compatible, validate_ew_backend
from .core.kernels import validate_backend
from .core.streaming import StreamingConfig, validate_mode
from .errors import ValidationError
from .fleet import (
    ClusterSpec,
    FleetConfig,
    FleetReport,
    FleetScheduler,
    FleetSweepReport,
)
from .observability import Instrumentation
from .runtime.session import TraceSession

__all__ = [
    "SessionConfig",
    "SolveConfig",
    "open_session",
    "run_fleet",
    "solve",
    "sweep_fleet",
]

_MB = 1024 * 1024

# Legacy keyword -> the canonical v1.1 field. The remap itself is gone
# (the one-release deprecation window closed); the table survives only to
# point migrating callers at the right spelling in the TypeError message.
_RETIRED_SPELLINGS = {
    "time_step": "window",
    "nsnap": "window",
    "n_snapshots": "window",
    "thresh": "threshold",
    "workers": "n_workers",
}


@dataclass(frozen=True)
class SolveConfig:
    """Settings for a one-shot :func:`solve`.

    ``window`` is the number of leading snapshots to calibrate from
    (``None`` — the default — uses the whole trace).
    """

    nbytes: float = 8.0 * _MB
    window: int | None = None
    solver: str = "apg"
    extraction: str = "mean"
    svd_backend: str = "exact"
    elementwise_backend: str = "reference"

    def __post_init__(self) -> None:
        if self.window is not None and int(self.window) < 2:
            raise ValidationError("window must be >= 2 or None")
        validate_backend(self.svd_backend)
        validate_ew_backend(self.elementwise_backend)
        check_ew_svd_compatible(self.svd_backend, self.elementwise_backend)


@dataclass(frozen=True)
class SessionConfig:
    """Settings for :func:`open_session` (paper defaults throughout).

    ``regime_detector`` enables online regime-shift detection: the name of
    a registered detector (``"cusum"``, ``"signature"``, ``"noise-robust"``,
    ``"drift"`` — see :func:`repro.core.detectors.detector_names`), with
    ``regime_params`` as config overrides for it. ``None`` (the default)
    keeps the historical detector-free maintenance loop.

    ``mode`` selects the decomposition path: ``"batch"`` (default, full
    window re-solves) or ``"streaming"`` (O(row) per-snapshot folds with a
    certified fallback to the batch oracle — see
    :class:`~repro.core.streaming.StreamingDecomposer`).
    ``stream_tolerance`` (drift ceiling) and ``stream_refresh_every``
    (re-orthonormalization cadence) tune it; both require
    ``mode="streaming"`` and default to
    :class:`~repro.core.streaming.StreamingConfig`'s values when ``None``.
    """

    nbytes: float = 8.0 * _MB
    window: int = 10
    threshold: float = 1.0
    consecutive: int = 1
    solver: str = "apg"
    warm_start: bool = True
    svd_backend: str = "exact"
    elementwise_backend: str = "reference"
    mode: str = "batch"
    stream_tolerance: float | None = None
    stream_refresh_every: int | None = None
    regime_detector: str | None = None
    regime_params: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if int(self.window) < 1:
            raise ValidationError("window must be >= 1")
        validate_backend(self.svd_backend)
        validate_ew_backend(self.elementwise_backend)
        check_ew_svd_compatible(self.svd_backend, self.elementwise_backend)
        validate_mode(self.mode)
        if self.mode != "streaming" and (
            self.stream_tolerance is not None
            or self.stream_refresh_every is not None
        ):
            raise ValidationError(
                "stream_tolerance/stream_refresh_every require mode='streaming'"
            )
        if self.mode == "streaming":
            StreamingConfig(
                **{
                    k: v
                    for k, v in (
                        ("tolerance", self.stream_tolerance),
                        ("refresh_every", self.stream_refresh_every),
                    )
                    if v is not None
                }
            )
        validate_regime_detector(self.regime_detector, self.regime_params)


def _resolve(default_cls: type, config: Any, overrides: dict[str, Any]) -> Any:
    """Merge a config object with keyword overrides (canonical or legacy)."""
    if config is None:
        config = default_cls()
    elif not isinstance(config, default_cls):
        raise ValidationError(
            f"config must be a {default_cls.__name__}, got {type(config).__name__}"
        )
    if not overrides:
        return config
    allowed = {f.name for f in fields(default_cls)}
    resolved: dict[str, Any] = {}
    for key, value in overrides.items():
        if key not in allowed:
            raise TypeError(_unknown_keyword_message(default_cls, key, allowed))
        if key in resolved:
            raise TypeError(f"got multiple values for {key!r}")
        resolved[key] = value
    return replace(config, **resolved)


def _unknown_keyword_message(
    default_cls: type, key: str, allowed: set[str]
) -> str:
    """The hard-error text for a keyword no v1.1 config field matches.

    Retired v1 spellings name their canonical replacement outright; any
    other unknown keyword gets a closest-match did-you-mean hint.
    """
    canonical = _RETIRED_SPELLINGS.get(key)
    if canonical is not None and canonical in allowed:
        return (
            f"keyword {key!r} was removed in API v1.1; "
            f"use {canonical!r} for {default_cls.__name__}"
        )
    message = f"unexpected keyword {key!r} for {default_cls.__name__}"
    close = difflib.get_close_matches(key, sorted(allowed), n=1)
    if close:
        message += f"; did you mean {close[0]!r}?"
    return message


def solve(
    trace: CalibrationTrace,
    config: SolveConfig | None = None,
    **overrides: Any,
) -> Decomposition:
    """Decompose *trace* into constant + error components, one shot.

    >>> dec = solve(trace, window=10, solver="apg")
    >>> dec.report.verdict
    'stable'
    """
    cfg = _resolve(SolveConfig, config, overrides)
    count = None if cfg.window is None else int(cfg.window)
    tp = trace.tp_matrix(cfg.nbytes, start=0, count=count)
    # "exact" stays None so non-SVT solvers (pca, row_constant) keep working.
    backend = None if cfg.svd_backend == "exact" else cfg.svd_backend
    # "reference" likewise stays None for the same reason.
    ew = None if cfg.elementwise_backend == "reference" else cfg.elementwise_backend
    return decompose(
        tp,
        solver=cfg.solver,
        extraction=cfg.extraction,
        svd_backend=backend,
        elementwise_backend=ew,
    )


def open_session(
    trace: CalibrationTrace,
    config: SessionConfig | None = None,
    *,
    instrumentation: Instrumentation | None = None,
    **overrides: Any,
) -> TraceSession:
    """Open an Algorithm-1 maintenance session over *trace*.

    >>> session = open_session(trace, window=10, threshold=1.0)
    >>> session.broadcast(root=0)
    """
    cfg = _resolve(SessionConfig, config, overrides)
    return TraceSession(
        trace,
        nbytes=cfg.nbytes,
        time_step=cfg.window,
        threshold=cfg.threshold,
        consecutive=cfg.consecutive,
        solver=cfg.solver,
        warm_start=cfg.warm_start,
        svd_backend=cfg.svd_backend,
        elementwise_backend=cfg.elementwise_backend,
        mode=cfg.mode,
        stream_tolerance=cfg.stream_tolerance,
        stream_refresh_every=cfg.stream_refresh_every,
        regime=cfg.regime_detector,
        regime_params=cfg.regime_params,
        instrumentation=instrumentation,
    )


def _coerce_clusters(
    clusters: Iterable[Any],
) -> tuple[ClusterSpec, ...]:
    specs: list[ClusterSpec] = []
    for i, item in enumerate(clusters):
        if isinstance(item, ClusterSpec):
            specs.append(item)
        elif isinstance(item, CalibrationTrace):
            specs.append(ClusterSpec(name=f"cluster-{i}", trace=item))
        elif isinstance(item, tuple) and len(item) == 2:
            name, trace = item
            specs.append(ClusterSpec(name=str(name), trace=trace))
        else:
            raise ValidationError(
                "clusters must be ClusterSpec, CalibrationTrace, or "
                f"(name, trace) pairs; got {type(item).__name__}"
            )
    return tuple(specs)


def run_fleet(
    clusters: Iterable[ClusterSpec | CalibrationTrace | tuple[str, CalibrationTrace]],
    config: FleetConfig | None = None,
    *,
    instrumentation: Instrumentation | None = None,
    serial: bool = False,
    **overrides: Any,
) -> FleetReport:
    """Run many clusters' maintenance loops concurrently; returns the report.

    *clusters* may be :class:`~repro.fleet.ClusterSpec` objects, bare
    traces (auto-named ``cluster-<i>``) or ``(name, trace)`` pairs.
    ``serial=True`` runs the identical plan in-process — the determinism
    oracle and throughput baseline.

    The scheduler self-heals: dead workers are respawned (within
    ``max_worker_restarts``) with their tasks replayed bit-identically,
    failing tasks retry (``max_task_retries`` / ``retry_backoff_s``), and
    ``task_timeout_s`` bounds each attempt. ``on_error="degrade"``
    quarantines a cluster that exhausts its retries into the report
    (check :attr:`~repro.fleet.FleetReport.degraded` and per-cluster
    ``status``) instead of raising — see ``docs/fleet_failures.md``.

    >>> report = run_fleet([("a", trace_a), ("b", trace_b)], n_workers=4)
    >>> report.clusters["a"].verdict
    'stable'
    """
    cfg = _resolve(FleetConfig, config, overrides)
    scheduler = FleetScheduler(
        _coerce_clusters(clusters), cfg, instrumentation=instrumentation
    )
    return scheduler.run_serial() if serial else scheduler.run()


def sweep_fleet(
    clusters: Iterable[ClusterSpec | CalibrationTrace | tuple[str, CalibrationTrace]],
    config: FleetConfig | None = None,
    *,
    instrumentation: Instrumentation | None = None,
    serial: bool = False,
    **overrides: Any,
) -> FleetSweepReport:
    """Decompose every cluster's trailing window through batched solves.

    The batched counterpart of :func:`run_fleet`'s per-cluster sessions:
    one sweep solves each cluster's trailing ``window`` TP-matrix, with
    same-shape windows stacked ``batch_size`` at a time into single
    ``(B, m, n)`` iteration loops (see
    :func:`~repro.core.solve_rpca_batch`). ``batch_dtype`` selects the
    iterate precision; the default ``"float64"`` makes per-cluster ``P_D``
    bit-identical to per-cluster serial solves. ``serial=True`` runs the
    identical shard plan in-process — the determinism oracle and the
    speedup baseline. The sweep always runs the batched gram-kernel path;
    ``svd_backend`` only affects :func:`run_fleet` sessions. The same
    supervision as :func:`run_fleet` applies (worker respawn, shard
    retries, deadlines, ``on_error="degrade"`` quarantine).

    >>> report = sweep_fleet([("a", trace_a), ("b", trace_b)], n_workers=4)
    >>> report.clusters["a"].verdict
    'stable'
    """
    cfg = _resolve(FleetConfig, config, overrides)
    scheduler = FleetScheduler(
        _coerce_clusters(clusters), cfg, instrumentation=instrumentation
    )
    return scheduler.run_sweep_serial() if serial else scheduler.run_sweep()
