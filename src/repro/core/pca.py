"""Plain (non-robust) PCA baseline.

The paper motivates RPCA by PCA's known weakness: "the accuracy of PCA is
prone to noise or gross errors in the input data" (Sec II-B). This solver
implements that straw man — a rank-one truncated SVD of the TP-matrix with
the residual as the "error" — so the robustness claim can be demonstrated
quantitatively (see ``benchmarks/test_ablation_pca_vs_rpca.py``): a single
heavy outlier snapshot visibly drags PCA's constant row while RPCA's stays
put.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_matrix
from .result import SolverResult
from .svd_ops import truncated_svd

__all__ = ["PCAResult", "pca_rank1_decomposition"]

# Backward-compatible alias: every solver now returns the shared contract.
PCAResult = SolverResult


def pca_rank1_decomposition(a: np.ndarray) -> SolverResult:
    """Best rank-one L2 approximation of *a* plus residual.

    ``low_rank = σ₁ u₁ v₁ᵀ`` — the classic PCA/SVD answer, optimal in the
    Frobenius norm and therefore maximally sensitive to gross outliers
    (a single corrupted snapshot tilts u₁ toward it). The constant row is
    the least-squares row-constant fit to ``low_rank``, i.e. its column
    mean, matching the extraction used for the robust solvers.
    """
    A = as_float_matrix(a, "a")
    u, s, vt = truncated_svd(A)
    if s.size == 0 or s[0] == 0.0:
        zero = np.zeros_like(A)
        return SolverResult(
            low_rank=zero,
            sparse=zero.copy(),
            rank=0,
            iterations=1,
            converged=True,
            residual=0.0,
            constant_row=np.zeros(A.shape[1]),
        )
    low = np.outer(u[:, 0] * s[0], vt[0])
    sparse = A - low
    row = low.mean(axis=0)
    norm_a = float(np.linalg.norm(A))
    residual = float(np.linalg.norm(sparse)) / norm_a if norm_a else 0.0
    return SolverResult(
        low_rank=low,
        sparse=sparse,
        rank=1,
        iterations=1,
        converged=True,
        residual=residual,
        constant_row=row,
    )
