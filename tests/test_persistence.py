"""Unit tests for the journal / checkpoint / recovery persistence layer."""

import os

import numpy as np
import pytest

from repro.errors import CheckpointCorruption, PersistenceError
from repro.persistence import (
    CheckpointStore,
    PersistenceConfig,
    SnapshotJournal,
    read_checkpoint,
    recover,
    trace_from_arrays,
    trace_sha256,
    trace_to_arrays,
    write_checkpoint,
)
from repro.persistence.checkpoint import CHECKPOINT_MAGIC
from repro.persistence.journal import JOURNAL_MAGIC
from repro.persistence.recovery import journal_path
from repro.persistence.state import STATE_SCHEMA_VERSION


class TestJournal:
    def test_append_and_replay(self, tmp_path):
        path = tmp_path / "j.journal"
        with SnapshotJournal(path) as j:
            assert j.append_json({"op": "broadcast", "root": 0}) == 0
            assert j.append_json({"op": "reduce", "root": 3}) == 1
            assert j.seq == 2
        records = list(SnapshotJournal.replay(path))
        assert records == [{"op": "broadcast", "root": 0}, {"op": "reduce", "root": 3}]

    def test_scan_empty_journal(self, tmp_path):
        path = tmp_path / "j.journal"
        SnapshotJournal(path).close()
        scan = SnapshotJournal.scan(path)
        assert scan.records == () and scan.discarded_bytes == 0

    def test_torn_tail_is_amputated_not_fatal(self, tmp_path):
        path = tmp_path / "j.journal"
        with SnapshotJournal(path) as j:
            j.append(b"first record")
            j.append(b"second record")
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])  # tear the last frame mid-payload
        scan = SnapshotJournal.scan(path)
        assert scan.records == (b"first record",)
        assert scan.discarded_bytes > 0

    def test_reopen_truncates_torn_tail_and_continues(self, tmp_path):
        path = tmp_path / "j.journal"
        with SnapshotJournal(path) as j:
            j.append(b"alpha")
            j.append(b"beta")
        path.write_bytes(path.read_bytes()[:-3])
        with SnapshotJournal(path) as j:
            assert j.seq == 1  # torn record gone
            j.append(b"gamma")
        assert SnapshotJournal.scan(path).records == (b"alpha", b"gamma")

    def test_corrupted_frame_ends_the_stream(self, tmp_path):
        path = tmp_path / "j.journal"
        with SnapshotJournal(path) as j:
            j.append(b"good")
            j.append(b"flipped")
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(blob))
        assert SnapshotJournal.scan(path).records == (b"good",)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_bytes(b"definitely not " + JOURNAL_MAGIC + b" framed data")
        with pytest.raises(PersistenceError, match="not a journal"):
            SnapshotJournal.scan(path)

    def test_fsync_mode_appends(self, tmp_path):
        path = tmp_path / "j.journal"
        with SnapshotJournal(path, fsync=True) as j:
            j.append(b"durable")
        assert SnapshotJournal.scan(path).records == (b"durable",)


class TestCheckpointFile:
    def _payload(self):
        arrays = {
            "row": np.arange(16, dtype=np.float64),
            "mask": np.array([True, False, True]),
        }
        meta = {"schema": STATE_SCHEMA_VERSION, "cursor": 12, "note": "x"}
        return arrays, meta

    def test_round_trip(self, tmp_path):
        arrays, meta = self._payload()
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, arrays, meta)
        ckpt = read_checkpoint(path)
        assert ckpt.meta == meta
        np.testing.assert_array_equal(ckpt.arrays["row"], arrays["row"])
        np.testing.assert_array_equal(ckpt.arrays["mask"], arrays["mask"])

    @pytest.mark.parametrize("offset", [0, 4, 8, 17, -1])
    def test_flipped_byte_detected(self, tmp_path, offset):
        arrays, meta = self._payload()
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, arrays, meta)
        blob = bytearray(path.read_bytes())
        blob[offset] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruption):
            read_checkpoint(path)

    def test_truncated_file_detected(self, tmp_path):
        arrays, meta = self._payload()
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, arrays, meta)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(CheckpointCorruption):
            read_checkpoint(path)

    def test_foreign_magic_detected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"XXXX" + b"\x00" * 64)
        assert CHECKPOINT_MAGIC != b"XXXX"
        with pytest.raises(CheckpointCorruption):
            read_checkpoint(path)

    def test_no_temp_file_left_behind(self, tmp_path):
        arrays, meta = self._payload()
        write_checkpoint(tmp_path / "c.ckpt", arrays, meta)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["c.ckpt"]


class TestCheckpointStore:
    def _save(self, store, n):
        paths = []
        for i in range(n):
            paths.append(
                store.save(
                    {"x": np.full(4, float(i))},
                    {"schema": STATE_SCHEMA_VERSION, "journal_seq": i},
                )
            )
        return paths

    def test_retention_prunes_oldest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        self._save(store, 5)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "ckpt-00000002.ckpt", "ckpt-00000003.ckpt", "ckpt-00000004.ckpt",
        ]

    def test_load_latest_returns_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        self._save(store, 4)
        ckpt = store.load_latest()
        assert ckpt is not None and ckpt.meta["journal_seq"] == 3

    def test_load_latest_skips_corrupt_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        paths = self._save(store, 3)
        blob = bytearray(open(paths[-1], "rb").read())
        blob[10] ^= 0xFF
        open(paths[-1], "wb").write(bytes(blob))
        ckpt = store.load_latest()
        assert ckpt is not None and ckpt.meta["journal_seq"] == 1

    def test_empty_store(self, tmp_path):
        assert CheckpointStore(tmp_path).load_latest() is None


class TestRecovery:
    def _populate(self, directory, n_ckpts=2, extra_records=2):
        store = CheckpointStore(directory, keep=4)
        for i in range(n_ckpts):
            store.save(
                {"x": np.full(3, float(i))},
                {"schema": STATE_SCHEMA_VERSION, "journal_seq": i * 2},
            )
        with SnapshotJournal(journal_path(directory)) as j:
            for k in range((n_ckpts - 1) * 2 + extra_records):
                j.append_json({"op": "broadcast", "root": k})
        return store

    def test_happy_path(self, tmp_path):
        self._populate(tmp_path, n_ckpts=2, extra_records=2)
        state = recover(tmp_path)
        assert state.meta["journal_seq"] == 2
        assert state.fallbacks == 0
        assert [r["root"] for r in state.pending] == [2, 3]

    def test_fallback_past_flipped_byte(self, tmp_path):
        """The acceptance criterion: corrupt the newest checkpoint, recover
        from the previous one, and the journal tail just gets longer."""
        self._populate(tmp_path, n_ckpts=2, extra_records=2)
        newest = sorted(tmp_path.glob("ckpt-*.ckpt"))[-1]
        blob = bytearray(newest.read_bytes())
        blob[25] ^= 0x01
        newest.write_bytes(bytes(blob))
        state = recover(tmp_path)
        assert state.fallbacks == 1
        assert state.meta["journal_seq"] == 0
        assert [r["root"] for r in state.pending] == [0, 1, 2, 3]

    def test_all_checkpoints_corrupt_raises(self, tmp_path):
        self._populate(tmp_path, n_ckpts=2)
        for p in tmp_path.glob("ckpt-*.ckpt"):
            blob = bytearray(p.read_bytes())
            blob[6] ^= 0xFF
            p.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError, match="no valid checkpoint"):
            recover(tmp_path)

    def test_wrong_schema_version_is_corruption(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"x": np.zeros(2)}, {"schema": STATE_SCHEMA_VERSION + 7,
                                        "journal_seq": 0})
        with pytest.raises(PersistenceError, match="no valid checkpoint"):
            recover(tmp_path)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(PersistenceError, match="no persistence directory"):
            recover(tmp_path / "nope")

    def test_torn_journal_tail_tolerated(self, tmp_path):
        self._populate(tmp_path, n_ckpts=1, extra_records=3)
        jpath = journal_path(tmp_path)
        blob = open(jpath, "rb").read()
        open(jpath, "wb").write(blob[:-4])
        state = recover(tmp_path)
        assert state.discarded_tail_bytes > 0
        assert [r["root"] for r in state.pending] == [0, 1]


class TestTraceStateHelpers:
    def test_trace_round_trip(self, tiny_trace):
        arrays = trace_to_arrays(tiny_trace)
        back = trace_from_arrays(arrays)
        np.testing.assert_array_equal(back.alpha, tiny_trace.alpha)
        np.testing.assert_array_equal(back.beta, tiny_trace.beta)
        assert trace_sha256(back) == trace_sha256(tiny_trace)

    def test_sha_changes_with_content(self, tiny_trace):
        other = type(tiny_trace)(
            alpha=tiny_trace.alpha * 1.000001,
            beta=tiny_trace.beta,
            timestamps=tiny_trace.timestamps,
        )
        assert trace_sha256(other) != trace_sha256(tiny_trace)


class TestPersistenceConfig:
    def test_validation(self, tmp_path):
        with pytest.raises(PersistenceError):
            PersistenceConfig(directory=tmp_path, checkpoint_every=0)
        with pytest.raises(PersistenceError):
            PersistenceConfig(directory=tmp_path, keep_checkpoints=0)

    def test_defaults(self, tmp_path):
        cfg = PersistenceConfig(directory=tmp_path)
        assert cfg.checkpoint_every == 100 and cfg.keep_checkpoints == 3
        assert cfg.fsync is False and cfg.trace_path is None
        assert os.fspath(cfg.directory) == os.fspath(tmp_path)
