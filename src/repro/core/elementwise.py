"""Pluggable elementwise kernels for the APG/IALM iteration recurrences.

The partial-SVD kernel layer (:mod:`repro.core.kernels`) took singular
value thresholding from ~90% of solve time down to ~28%; what remains of
every APG/IALM step is 6–10 separate full-array ufunc passes over the
``m × n`` iterate buffers (momentum extrapolation, proximal inputs, soft
thresholding, stationarity/feasibility updates). This module owns those
recurrences behind the same backend-selection design ``SVTKernel`` uses
for the SVD side, with three backends:

``reference``
    The historical ufunc chains, verbatim — one full-array pass per
    operation. This is the bit-pinned implementation every other backend
    is measured against; with ``elementwise_backend="reference"``
    (the default everywhere) solver behavior is unchanged bit for bit.
``fused``
    The same per-element arithmetic applied cache-block-wise: each step
    phase walks the buffers once in ``chunk``-element blocks, applying the
    whole ufunc chain to a block while it is hot in cache instead of
    streaming every buffer through memory once per operation. Elementwise
    ufuncs commute with chunking, so the result is **bit-identical** to
    ``reference`` by construction (pinned by tests); the win is purely
    memory-traffic locality. Falls back to the reference chain (counted as
    ``kernel.ew.fallback``) for non-contiguous buffers, where flat block
    views cannot be formed.
``jit``
    numba ``@njit(parallel=True)`` kernels: one genuinely single-pass
    traversal per phase with a ``prange`` over column blocks, scratch
    values kept in registers instead of ``m × n`` buffers. Only available
    when numba is installed (see ``pip install repro[perf]``); selecting
    it otherwise raises. Results are *certified* against ``reference``
    within the same tolerance contract the batch float32 mode uses — the
    per-element arithmetic is the same, but compiler reassociation and
    skipped scratch stores void the bitwise guarantee. The kernel bodies
    are plain Python functions under the decorator, so their logic is
    testable (slowly) even where numba is absent.

Residual/feasibility **norms** are deliberately *not* part of this layer:
``np.linalg.norm`` over a full buffer stays a single pairwise-summed call
in every backend, because chunked partial sums would change summation
order and break the bitwise iteration-count parity the ``fused`` contract
promises.

Observability: every step emits ``kernel.ew.<backend>`` (a step count) and
``kernel.ew_seconds`` / ``kernel.ew.<backend>_seconds`` (elementwise time,
excluding the SVT call in the middle of the step) — the peers of
``kernel.svt.<backend>`` / ``kernel.svt_seconds``.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable

import numpy as np

from .. import observability
from ..errors import ValidationError
from .svd_ops import soft_threshold, soft_threshold_into

__all__ = [
    "EW_BACKENDS",
    "DEFAULT_EW_CHUNK",
    "ElementwiseKernel",
    "check_ew_svd_compatible",
    "ensure_ew_backend_available",
    "jit_available",
    "validate_ew_backend",
]

#: Selectable elementwise backends, in "most to least conservative" order.
EW_BACKENDS = ("reference", "fused", "jit")

#: Fused block size in elements: 256 KiB of float64 — comfortably inside a
#: per-core L2 slice together with the ~8 buffers a step touches.
DEFAULT_EW_CHUNK = 32768

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit
    from numba import prange as _prange

    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the supported no-numba path
    _HAVE_NUMBA = False
    _prange = range

    def _njit(*args: Any, **kwargs: Any):
        """Identity decorator: keeps the kernel bodies importable (and
        testable as plain Python) when numba is absent."""

        def wrap(fn: Callable) -> Callable:
            return fn

        if args and callable(args[0]):
            return args[0]
        return wrap


def jit_available() -> bool:
    """Whether the optional ``jit`` backend can actually run (numba present)."""
    return _HAVE_NUMBA


def validate_ew_backend(backend: str) -> str:
    """Validate an elementwise backend *name* (availability checked later).

    Name-only on purpose: a config naming ``"jit"`` may be built on a
    machine without numba and shipped to workers that have it. Use
    :func:`ensure_ew_backend_available` (or construct an
    :class:`ElementwiseKernel`) to also assert the backend can run here.
    """
    if backend not in EW_BACKENDS:
        raise ValidationError(
            f"unknown elementwise backend {backend!r}; choose from {EW_BACKENDS}"
        )
    return backend


def check_ew_svd_compatible(svd_backend: str, elementwise_backend: str) -> None:
    """Reject elementwise backends on the exact (historical) solver loops.

    The ``exact`` SVD path *is* the bit-pinned historical implementation —
    allocating expressions, no step functions — so it has no seam for an
    elementwise kernel and must stay byte-identical to previous releases.
    Only the workspace fast paths (any non-``exact`` *svd_backend*) route
    their steps through :class:`ElementwiseKernel`.
    """
    if elementwise_backend != "reference" and svd_backend == "exact":
        raise ValidationError(
            f"elementwise backend {elementwise_backend!r} requires a "
            "non-exact SVD backend (the exact loop is the bit-pinned "
            "historical path); pick svd_backend='auto' or keep "
            "elementwise_backend='reference'"
        )


def ensure_ew_backend_available(backend: str) -> str:
    """Validate *backend* and assert it can run in this process."""
    validate_ew_backend(backend)
    if backend == "jit" and not _HAVE_NUMBA:
        raise ValidationError(
            "elementwise backend 'jit' requires numba, which is not "
            "installed (pip install repro[perf]); use 'fused' for the "
            "pure-NumPy fast path"
        )
    return backend


def _kernel_pyfunc(fn: Callable) -> Callable:
    """The plain-Python body of a (possibly numba-compiled) kernel."""
    return getattr(fn, "py_func", fn)


# ---------------------------------------------------------------------------
# numba kernels (plain Python bodies when numba is absent)
#
# All operate on flat 1-D views with scalar thresholds; the ElementwiseKernel
# driver loops batch slices. Scratch quantities (M_E, the working matrix W,
# the proximal input M) live in registers — the tolerance contract lets the
# jit backend skip their buffer stores.
# ---------------------------------------------------------------------------


@_njit(parallel=True)
def _k_apg_pre_unmasked(A, F, Fp, T, MD, beta, chunk):  # pragma: no cover
    n = A.shape[0]
    for b in _prange((n + chunk - 1) // chunk):
        lo = b * chunk
        hi = min(lo + chunk, n)
        for i in range(lo, hi):
            t = (1.0 + beta) * F[i] - beta * Fp[i]
            T[i] = t
            MD[i] = (t + A[i]) * 0.5


@_njit(parallel=True)
def _k_apg_post_unmasked(A, MD, T, Dn, En, Fp, S, tau, chunk):  # pragma: no cover
    n = A.shape[0]
    for b in _prange((n + chunk - 1) // chunk):
        lo = b * chunk
        hi = min(lo + chunk, n)
        for i in range(lo, hi):
            me = A[i] - MD[i]
            mag = abs(me) - tau
            if mag < 0.0:
                mag = 0.0
            en = math.copysign(mag, me)
            En[i] = en
            fp = Dn[i] - en
            Fp[i] = fp
            S[i] = T[i] - fp


@_njit(parallel=True)
def _k_apg_pre_masked(A, omega, D, Dp, E, Ep, YD, YE, G, M, beta, chunk):  # pragma: no cover
    n = A.shape[0]
    for b in _prange((n + chunk - 1) // chunk):
        lo = b * chunk
        hi = min(lo + chunk, n)
        for i in range(lo, hi):
            yd = (D[i] - Dp[i]) * beta + D[i]
            ye = (E[i] - Ep[i]) * beta + E[i]
            g = ((yd + ye) - A[i]) * 0.5
            if not omega[i]:
                g = 0.0
            YD[i] = yd
            YE[i] = ye
            G[i] = g
            M[i] = yd - g


@_njit(parallel=True)
def _k_apg_post1_masked(omega, YD, YE, G, Dn, En, S, tau, chunk):  # pragma: no cover
    n = YD.shape[0]
    for b in _prange((n + chunk - 1) // chunk):
        lo = b * chunk
        hi = min(lo + chunk, n)
        for i in range(lo, hi):
            m = YE[i] - G[i]
            mag = abs(m) - tau
            if mag < 0.0:
                mag = 0.0
            en = math.copysign(mag, m)
            if not omega[i]:
                en = 0.0
            En[i] = en
            s = ((Dn[i] + en) - YD[i]) - YE[i]
            if not omega[i]:
                s = 0.0
            S[i] = s
            G[i] = (YD[i] - Dn[i]) * 2.0 + s


@_njit(parallel=True)
def _k_apg_post2_masked(YE, En, G, S, chunk):  # pragma: no cover
    n = YE.shape[0]
    for b in _prange((n + chunk - 1) // chunk):
        lo = b * chunk
        hi = min(lo + chunk, n)
        for i in range(lo, hi):
            G[i] = (YE[i] - En[i]) * 2.0 + S[i]


@_njit(parallel=True)
def _k_ialm_pre_unmasked(A, E, Yinv, M, chunk):  # pragma: no cover
    n = A.shape[0]
    for b in _prange((n + chunk - 1) // chunk):
        lo = b * chunk
        hi = min(lo + chunk, n)
        for i in range(lo, hi):
            M[i] = (A[i] - E[i]) + Yinv[i]


@_njit(parallel=True)
def _k_ialm_post_unmasked(A, D, E, Yinv, Z, tau, mu_ratio, chunk):  # pragma: no cover
    n = A.shape[0]
    for b in _prange((n + chunk - 1) // chunk):
        lo = b * chunk
        hi = min(lo + chunk, n)
        for i in range(lo, hi):
            m = (A[i] - D[i]) + Yinv[i]
            mag = abs(m) - tau
            if mag < 0.0:
                mag = 0.0
            e = math.copysign(mag, m)
            E[i] = e
            z = (A[i] - D[i]) - e
            Z[i] = z
            Yinv[i] = (Yinv[i] + z) * mu_ratio


@_njit(parallel=True)
def _k_ialm_pre_masked(A, omega, D, E, Yinv, M, chunk):  # pragma: no cover
    n = A.shape[0]
    for b in _prange((n + chunk - 1) // chunk):
        lo = b * chunk
        hi = min(lo + chunk, n)
        for i in range(lo, hi):
            w = A[i] if omega[i] else D[i] + E[i]
            M[i] = (w - E[i]) + Yinv[i]


@_njit(parallel=True)
def _k_ialm_post_masked(A, omega, D, E, Yinv, Z, tau, mu_ratio, chunk):  # pragma: no cover
    n = A.shape[0]
    for b in _prange((n + chunk - 1) // chunk):
        lo = b * chunk
        hi = min(lo + chunk, n)
        for i in range(lo, hi):
            m = (A[i] - D[i]) + Yinv[i]
            mag = abs(m) - tau
            if mag < 0.0:
                mag = 0.0
            e = math.copysign(mag, m)
            if not omega[i]:
                e = 0.0
            E[i] = e
            z = (A[i] - D[i]) - e
            if not omega[i]:
                z = 0.0
            Z[i] = z
            Yinv[i] = (Yinv[i] + z) * mu_ratio


@_njit(parallel=True)
def _k_shrink(x, out, tau, chunk):  # pragma: no cover
    n = x.shape[0]
    for b in _prange((n + chunk - 1) // chunk):
        lo = b * chunk
        hi = min(lo + chunk, n)
        for i in range(lo, hi):
            mag = abs(x[i]) - tau
            if mag < 0.0:
                mag = 0.0
            out[i] = math.copysign(mag, x[i])


# ---------------------------------------------------------------------------
# Fused/JIT drivers: flatten (m, n) — or each slice of (B, m, n) — into
# contiguous 1-D views and walk them block-wise.
# ---------------------------------------------------------------------------


def _fusable(*arrays: np.ndarray | None) -> bool:
    return all(a is None or a.flags.c_contiguous for a in arrays)


def _flat_slices(arrays: tuple[np.ndarray, ...]):
    """Yield ``(slice_index, flat_views)`` per matrix of a (stacked) group."""
    lead = arrays[0]
    if lead.ndim == 2:
        yield 0, tuple(a.reshape(-1) for a in arrays)
    else:
        for i in range(lead.shape[0]):
            yield i, tuple(a[i].reshape(-1) for a in arrays)


def _tau_at(tau: Any, i: int) -> Any:
    """Per-slice threshold: ``(B, 1, 1)`` arrays index, scalars pass through.

    Array thresholds stay numpy scalars (not ``float()``-coerced) so mixed
    float32-buffer/float64-threshold promotion matches the reference
    broadcast exactly — a bitwise requirement for the fused backend in the
    batch float32 mode.
    """
    if isinstance(tau, np.ndarray):
        return tau[i, 0, 0]
    return tau


class ElementwiseKernel:
    """Backend-routed APG/IALM step recurrences over preallocated buffers.

    One kernel serves one solve (or one batched group); it owns no ``m×n``
    state of its own — all iterate buffers come from the caller's
    :class:`~repro.core.kernels.SolveWorkspace` — only small per-shape row
    scratch for :meth:`shrink`. Every step method matches the historical
    module-level step functions argument for argument, with *svt* the
    caller's singular-value-thresholding callable sandwiched between the
    elementwise phases.
    """

    def __init__(
        self, backend: str = "reference", *, chunk: int = DEFAULT_EW_CHUNK
    ) -> None:
        self.backend = ensure_ew_backend_available(backend)
        if int(chunk) < 1:
            raise ValidationError("chunk must be >= 1")
        self.chunk = int(chunk)
        self._elapsed = 0.0
        self._row_scratch: dict[tuple[int, ...], np.ndarray] = {}

    # -- observability ----------------------------------------------------
    def _emit_step(self, elapsed: float) -> None:
        observability.emit_count(f"kernel.ew.{self.backend}")
        observability.emit_time("kernel.ew_seconds", elapsed)
        observability.emit_time(f"kernel.ew.{self.backend}_seconds", elapsed)

    def _route(self, *arrays: np.ndarray | None) -> str:
        """The backend that will actually run for these buffers."""
        if self.backend == "reference":
            return "reference"
        if _fusable(*arrays):
            return self.backend
        observability.emit_count("kernel.ew.fallback")
        return "reference"

    # -- APG, unmasked -----------------------------------------------------
    def apg_step_unmasked(
        self, A, F, Fp, T, MD, ME, Dn, En, S, beta, tau_d, tau_e, svt
    ):
        """One unmasked APG iteration over preallocated buffers.

        Arrays may carry a leading batch axis, with *tau_d*/*tau_e* either
        scalars or per-matrix ``(B, 1, 1)`` thresholds and *svt* the
        matching thresholding callable (returns the surviving rank, or a
        rank vector for a stack). Writes the new momentum carrier
        ``D₊ − E₊`` into *Fp* (callers swap the names afterwards) and the
        stationarity block ``S_D`` into *S*; the residual norm stays with
        the caller, which is where single and batched paths differ.
        """
        mode = self._route(A, F, Fp, T, MD, ME, Dn, En, S)
        chunk = self.chunk
        t0 = time.perf_counter()
        if mode == "reference":
            # T = Y_D − Y_E = (1 + β)·F − β·F_prev
            np.multiply(F, 1.0 + beta, out=T)
            np.multiply(Fp, beta, out=S)
            np.subtract(T, S, out=T)
            # Proximal input M_D = (T + A)/2.
            np.add(T, A, out=MD)
            MD *= 0.5
        elif mode == "fused":
            for _, (a, f, fp, t, md, s) in _flat_slices((A, F, Fp, T, MD, S)):
                for lo in range(0, a.size, chunk):
                    sl = slice(lo, lo + chunk)
                    tc, mc = t[sl], md[sl]
                    np.multiply(f[sl], 1.0 + beta, out=tc)
                    np.multiply(fp[sl], beta, out=s[sl])
                    np.subtract(tc, s[sl], out=tc)
                    np.add(tc, a[sl], out=mc)
                    mc *= 0.5
        else:
            for _, (a, f, fp, t, md) in _flat_slices((A, F, Fp, T, MD)):
                _k_apg_pre_unmasked(a, f, fp, t, md, float(beta), chunk)
        elapsed = time.perf_counter() - t0

        rank = svt(MD, tau_d, Dn)

        t0 = time.perf_counter()
        if mode == "reference":
            np.subtract(A, MD, out=ME)  # M_E = A − M_D
            soft_threshold_into(ME, tau_e, out=En)
            # Stationarity: S_D = T − (D₊ − E₊), ‖S‖ = √2·‖S_D‖.
            np.subtract(Dn, En, out=Fp)
            np.subtract(T, Fp, out=S)
        elif mode == "fused":
            for i, (a, md, me, t, dn, en, fp, s) in _flat_slices(
                (A, MD, ME, T, Dn, En, Fp, S)
            ):
                te = _tau_at(tau_e, i)
                for lo in range(0, a.size, chunk):
                    sl = slice(lo, lo + chunk)
                    mec = me[sl]
                    np.subtract(a[sl], md[sl], out=mec)
                    soft_threshold_into(mec, te, out=en[sl])
                    np.subtract(dn[sl], en[sl], out=fp[sl])
                    np.subtract(t[sl], fp[sl], out=s[sl])
        else:
            for i, (a, md, t, dn, en, fp, s) in _flat_slices(
                (A, MD, T, Dn, En, Fp, S)
            ):
                _k_apg_post_unmasked(
                    a, md, t, dn, en, fp, s, float(_tau_at(tau_e, i)), chunk
                )
        self._emit_step(elapsed + time.perf_counter() - t0)
        return rank

    # -- APG, masked -------------------------------------------------------
    def apg_step_masked(
        self, A, omega, D, Dp, E, Ep, YD, YE, G, M, S, Dn, En,
        beta, tau_d, tau_e, svt, norms,
    ):
        """One masked APG iteration over preallocated buffers.

        Batch-axis-capable like :meth:`apg_step_unmasked`. The two
        stationarity norms must be taken mid-step (``G`` is reused between
        the blocks), so *norms* is a Frobenius-norm callable — a scalar for
        a single matrix, a per-slice vector for a stack — and the triple
        ``(rank, ‖S_D‖, ‖S_E‖)`` is returned. The norm itself is never
        chunked (see the module docstring).
        """
        mode = self._route(A, omega, D, Dp, E, Ep, YD, YE, G, M, S, Dn, En)
        chunk = self.chunk
        t0 = time.perf_counter()
        if mode == "reference":
            np.subtract(D, Dp, out=YD)
            YD *= beta
            YD += D
            np.subtract(E, Ep, out=YE)
            YE *= beta
            YE += E
            # G = P_Ω(Y_D + Y_E − A)/2
            np.add(YD, YE, out=G)
            G -= A
            G *= 0.5
            G *= omega
            np.subtract(YD, G, out=M)
        elif mode == "fused":
            for _, (a, om, d, dp, e, ep, yd, ye, g, mm) in _flat_slices(
                (A, omega, D, Dp, E, Ep, YD, YE, G, M)
            ):
                for lo in range(0, a.size, chunk):
                    sl = slice(lo, lo + chunk)
                    ydc, yec, gc = yd[sl], ye[sl], g[sl]
                    np.subtract(d[sl], dp[sl], out=ydc)
                    ydc *= beta
                    ydc += d[sl]
                    np.subtract(e[sl], ep[sl], out=yec)
                    yec *= beta
                    yec += e[sl]
                    np.add(ydc, yec, out=gc)
                    gc -= a[sl]
                    gc *= 0.5
                    gc *= om[sl]
                    np.subtract(ydc, gc, out=mm[sl])
        else:
            for _, (a, om, d, dp, e, ep, yd, ye, g, mm) in _flat_slices(
                (A, omega, D, Dp, E, Ep, YD, YE, G, M)
            ):
                _k_apg_pre_masked(
                    a, om, d, dp, e, ep, yd, ye, g, mm, float(beta), chunk
                )
        elapsed = time.perf_counter() - t0

        rank = svt(M, tau_d, Dn)

        t0 = time.perf_counter()
        if mode == "reference":
            np.subtract(YE, G, out=M)
            soft_threshold_into(M, tau_e, out=En)
            En *= omega  # a transient error needs a witness
            # diff = P_Ω(D₊ + E₊ − Y_D − Y_E); S_X = 2(Y_X − X₊) + diff
            np.add(Dn, En, out=S)
            S -= YD
            S -= YE
            S *= omega
            np.subtract(YD, Dn, out=G)
            G *= 2.0
            G += S
        elif mode == "fused":
            for i, (om, yd, ye, g, mm, dn, en, s) in _flat_slices(
                (omega, YD, YE, G, M, Dn, En, S)
            ):
                te = _tau_at(tau_e, i)
                for lo in range(0, om.size, chunk):
                    sl = slice(lo, lo + chunk)
                    mc, ec, sc, gc = mm[sl], en[sl], s[sl], g[sl]
                    np.subtract(ye[sl], gc, out=mc)
                    soft_threshold_into(mc, te, out=ec)
                    ec *= om[sl]
                    np.add(dn[sl], ec, out=sc)
                    sc -= yd[sl]
                    sc -= ye[sl]
                    sc *= om[sl]
                    np.subtract(yd[sl], dn[sl], out=gc)
                    gc *= 2.0
                    gc += sc
        else:
            for i, (om, yd, ye, g, dn, en, s) in _flat_slices(
                (omega, YD, YE, G, Dn, En, S)
            ):
                _k_apg_post1_masked(
                    om, yd, ye, g, dn, en, s, float(_tau_at(tau_e, i)), chunk
                )
        elapsed += time.perf_counter() - t0
        sd = norms(G)

        t0 = time.perf_counter()
        if mode == "reference":
            np.subtract(YE, En, out=G)
            G *= 2.0
            G += S
        elif mode == "fused":
            for _, (ye, en, g, s) in _flat_slices((YE, En, G, S)):
                for lo in range(0, ye.size, chunk):
                    sl = slice(lo, lo + chunk)
                    gc = g[sl]
                    np.subtract(ye[sl], en[sl], out=gc)
                    gc *= 2.0
                    gc += s[sl]
        else:
            for _, (ye, en, g, s) in _flat_slices((YE, En, G, S)):
                _k_apg_post2_masked(ye, en, g, s, chunk)
        self._emit_step(elapsed + time.perf_counter() - t0)
        se = norms(G)
        return rank, sd, se

    # -- IALM, unmasked ----------------------------------------------------
    def ialm_step_unmasked(self, A, D, E, Yinv, M, Z, tau_d, tau_e, mu_ratio, svt):
        """One unmasked IALM iteration over preallocated buffers.

        Arrays may carry a leading batch axis, with *tau_d*/*tau_e*/
        *mu_ratio* scalars or per-matrix ``(B, 1, 1)`` values and *svt* the
        matching thresholding callable. ``mu_ratio = μ_k/μ_{k+1}`` folds
        the dual ascent (see :func:`repro.core.ialm._rpca_ialm_fast`); the
        feasibility gap is left in *Z* for the caller's residual norm.
        """
        mode = self._route(A, D, E, Yinv, M, Z)
        chunk = self.chunk
        t0 = time.perf_counter()
        if mode == "reference":
            np.subtract(A, E, out=M)
            M += Yinv
        elif mode == "fused":
            for _, (a, e, yi, mm) in _flat_slices((A, E, Yinv, M)):
                for lo in range(0, a.size, chunk):
                    sl = slice(lo, lo + chunk)
                    mc = mm[sl]
                    np.subtract(a[sl], e[sl], out=mc)
                    mc += yi[sl]
        else:
            for _, (a, e, yi, mm) in _flat_slices((A, E, Yinv, M)):
                _k_ialm_pre_unmasked(a, e, yi, mm, chunk)
        elapsed = time.perf_counter() - t0

        rank = svt(M, tau_d, D)

        t0 = time.perf_counter()
        if mode == "reference":
            np.subtract(A, D, out=M)
            M += Yinv
            soft_threshold_into(M, tau_e, out=E)
            np.subtract(A, D, out=Z)
            Z -= E
            # Folded dual ascent: Ȳ_{k+1} = (μ_k/μ_{k+1})·(Ȳ_k + Z_k).
            Yinv += Z
            Yinv *= mu_ratio
        elif mode == "fused":
            for i, (a, d, e, yi, mm, z) in _flat_slices((A, D, E, Yinv, M, Z)):
                te = _tau_at(tau_e, i)
                ratio = _tau_at(mu_ratio, i)
                for lo in range(0, a.size, chunk):
                    sl = slice(lo, lo + chunk)
                    mc, ec, zc, yc = mm[sl], e[sl], z[sl], yi[sl]
                    np.subtract(a[sl], d[sl], out=mc)
                    mc += yc
                    soft_threshold_into(mc, te, out=ec)
                    np.subtract(a[sl], d[sl], out=zc)
                    zc -= ec
                    yc += zc
                    yc *= ratio
        else:
            for i, (a, d, e, yi, z) in _flat_slices((A, D, E, Yinv, Z)):
                _k_ialm_post_unmasked(
                    a, d, e, yi, z,
                    float(_tau_at(tau_e, i)), float(_tau_at(mu_ratio, i)), chunk,
                )
        self._emit_step(elapsed + time.perf_counter() - t0)
        return rank

    # -- IALM, masked ------------------------------------------------------
    def ialm_step_masked(
        self, A, omega, D, E, W, Yinv, M, Z, tau_d, tau_e, mu_ratio, svt
    ):
        """One masked IALM iteration over preallocated buffers.

        Batch-axis-capable like :meth:`ialm_step_unmasked`; *W* is the
        completion-trick working matrix ``P_Ω(A) + P_Ω̄(D + E)`` (kept in
        registers by the jit backend).
        """
        mode = self._route(A, omega, D, E, W, Yinv, M, Z)
        chunk = self.chunk
        t0 = time.perf_counter()
        if mode == "reference":
            np.add(D, E, out=W)
            np.copyto(W, A, where=omega)
            np.subtract(W, E, out=M)
            M += Yinv
        elif mode == "fused":
            for _, (a, om, d, e, w, yi, mm) in _flat_slices(
                (A, omega, D, E, W, Yinv, M)
            ):
                for lo in range(0, a.size, chunk):
                    sl = slice(lo, lo + chunk)
                    wc, mc = w[sl], mm[sl]
                    np.add(d[sl], e[sl], out=wc)
                    np.copyto(wc, a[sl], where=om[sl])
                    np.subtract(wc, e[sl], out=mc)
                    mc += yi[sl]
        else:
            for _, (a, om, d, e, yi, mm) in _flat_slices(
                (A, omega, D, E, Yinv, M)
            ):
                _k_ialm_pre_masked(a, om, d, e, yi, mm, chunk)
        elapsed = time.perf_counter() - t0

        rank = svt(M, tau_d, D)

        t0 = time.perf_counter()
        if mode == "reference":
            np.subtract(A, D, out=M)
            M += Yinv
            soft_threshold_into(M, tau_e, out=E)
            E *= omega
            np.subtract(A, D, out=Z)
            Z -= E
            Z *= omega
            Yinv += Z
            Yinv *= mu_ratio
        elif mode == "fused":
            for i, (a, om, d, e, yi, mm, z) in _flat_slices(
                (A, omega, D, E, Yinv, M, Z)
            ):
                te = _tau_at(tau_e, i)
                ratio = _tau_at(mu_ratio, i)
                for lo in range(0, a.size, chunk):
                    sl = slice(lo, lo + chunk)
                    mc, ec, zc, yc = mm[sl], e[sl], z[sl], yi[sl]
                    np.subtract(a[sl], d[sl], out=mc)
                    mc += yc
                    soft_threshold_into(mc, te, out=ec)
                    ec *= om[sl]
                    np.subtract(a[sl], d[sl], out=zc)
                    zc -= ec
                    zc *= om[sl]
                    yc += zc
                    yc *= ratio
        else:
            for i, (a, om, d, e, yi, z) in _flat_slices(
                (A, omega, D, E, Yinv, Z)
            ):
                _k_ialm_post_masked(
                    a, om, d, e, yi, z,
                    float(_tau_at(tau_e, i)), float(_tau_at(mu_ratio, i)), chunk,
                )
        self._emit_step(elapsed + time.perf_counter() - t0)
        return rank

    # -- streaming row shrinkage ------------------------------------------
    def shrink(self, x: np.ndarray, tau: float) -> np.ndarray:
        """Soft-threshold *x* — the streaming fold's per-row shrinkage.

        ``reference`` returns a fresh array via the historical
        :func:`~repro.core.svd_ops.soft_threshold` spelling, bit for bit.
        ``fused`` applies the same arithmetic through kernel-owned scratch
        (no temporaries); ``jit`` runs the single-pass kernel. Both return
        a buffer owned by this kernel, valid until the next :meth:`shrink`
        call — callers that retain the result must copy it (the streaming
        window slide does, via ``np.vstack``).
        """
        mode = self._route(x)
        if mode == "reference":
            t0 = time.perf_counter()
            out = soft_threshold(x, tau)
            self._emit_step(time.perf_counter() - t0)
            return out
        t0 = time.perf_counter()
        key = x.shape
        bufs = self._row_scratch.get(key)
        if bufs is None:
            bufs = np.empty((2,) + key, dtype=np.float64)
            self._row_scratch[key] = bufs
        out, sgn = bufs[0], bufs[1]
        if mode == "fused":
            # sign(x)·max(|x|−τ, 0) with every pass in place — the same
            # per-element arithmetic as the reference spelling.
            np.abs(x, out=out)
            out -= tau
            np.maximum(out, 0.0, out=out)
            np.sign(x, out=sgn)
            out *= sgn
        else:
            _k_shrink(x.reshape(-1), out.reshape(-1), float(tau), self.chunk)
        self._emit_step(time.perf_counter() - t0)
        return out
