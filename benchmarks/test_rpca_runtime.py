"""Sec V-B runtime claims: RPCA solves the 196-instance TP-matrix fast.

Paper: "The execution time for running RPCA once is less than 1 minute in
the experiments with 196 instances" (a 10 × 38416 matrix), and the RPCA
calculation contributes <2% of total overhead. Our numpy solvers are far
faster than that bound; the benchmark records the actual per-solve time.

The backend matrix below additionally tracks the partial-SVD kernel layer
(``repro.core.kernels``): each solver runs under the ``exact`` (historical
full-``gesdd``) and ``auto`` (Gram-trick partial SVT) backends, and the
final test writes ``BENCH_rpca.json`` at the repo root — mean solve time,
iterations, SVD share (recorded for *every* backend, the exact full-SVD
path included) and auto-vs-exact speedup per solver — so future PRs can
track the perf trajectory. Numerical parity between the backends is
asserted unconditionally; the ≥5x speedup target is only *asserted* when
``REPRO_PERF_STRICT=1`` (CI runs record timings but fail on parity, not on
a noisy shared runner's clock).
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro import observability
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.decompose import decompose
from repro.observability.benchrecord import bench_record, write_bench_json

MB = 1024 * 1024
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_rpca.json"
SPEEDUP_TARGET = 5.0
ROUNDS = 3
SEED = 196

# Filled by the backend-matrix benchmarks, consumed (and written out) by
# test_backend_speedup_and_emit below. Keyed by (solver, backend).
_MATRIX: dict[tuple[str, str], dict] = {}


@pytest.fixture(scope="module")
def tp_196():
    trace = generate_trace(TraceConfig(n_machines=196, n_snapshots=10), seed=SEED)
    return trace.tp_matrix(8 * MB)


@pytest.mark.parametrize("solver", ["apg", "ialm", "row_constant"])
def test_rpca_solver_runtime_196_instances(benchmark, tp_196, solver):
    dec = benchmark(decompose, tp_196, solver=solver)
    assert dec.constant.row.size == 196 * 196
    # The paper's bound, with two orders of magnitude to spare expected.
    stats = benchmark.stats.stats
    assert stats.mean < 60.0


@pytest.mark.parametrize("backend", ["exact", "auto"])
@pytest.mark.parametrize("solver", ["apg", "ialm"])
def test_rpca_backend_matrix_196_instances(benchmark, tp_196, solver, backend):
    """One (solver, backend) cell: benchmark it and record the diagnostics."""
    sink = observability.Instrumentation(f"{solver}-{backend}")

    def run():
        with observability.instrumented(sink):
            return decompose(tp_196, solver=solver, svd_backend=backend)

    dec = benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=0)
    stats = benchmark.stats.stats
    assert stats.mean < 60.0  # the paper's bound holds for every backend

    total_seconds = float(sum(span.seconds for span in sink.spans))
    svt_seconds = sink.timers.get("kernel.svt_seconds")
    _MATRIX[(solver, backend)] = {
        "solver": solver,
        "backend": backend,
        "rounds": ROUNDS,
        "mean_seconds": float(stats.mean),
        "iterations": dec.solver_iterations,
        "rank": dec.solver_result.rank,
        "converged": dec.solver_converged,
        # Fraction of solve time spent inside singular value thresholding.
        # Both paths report it: partial backends time SVTKernel.svt, the
        # exact path times its full-SVD shrinkage in the solver loop.
        "svd_share": (
            float(svt_seconds / total_seconds)
            if svt_seconds is not None and total_seconds > 0
            else None
        ),
        "full_width_svds": sink.counters.get("kernel.svt.full_width", 0),
        "constant_row": dec.constant.row,
    }


def test_backend_speedup_and_emit(tp_196, emit):
    """Parity across backends, the perf record, and the strict speedup gate.

    Runs after the matrix cells above (pytest executes in definition
    order). Parity is unconditional; the ≥5x auto-vs-exact target is only
    an assertion under ``REPRO_PERF_STRICT=1`` so CI fails on correctness,
    not on a loaded runner's timings.
    """
    assert len(_MATRIX) == 4, "backend matrix did not populate (run whole module)"

    speedups = {}
    for solver in ("apg", "ialm"):
        exact = _MATRIX[(solver, "exact")]
        auto = _MATRIX[(solver, "auto")]
        # Cold partial-backend solves agree with exact to solver tolerance.
        scale = float(np.abs(exact["constant_row"]).max())
        diff = float(np.abs(auto["constant_row"] - exact["constant_row"]).max())
        assert diff <= 1e-6 * scale, (
            f"{solver}: auto backend P_D diverged from exact "
            f"(max abs diff {diff:.3e} vs scale {scale:.3e})"
        )
        assert auto["iterations"] == exact["iterations"]
        assert auto["rank"] == exact["rank"]
        # Steady state never falls back to a full-width SVD on this shape.
        assert auto["full_width_svds"] == 0
        speedups[solver] = exact["mean_seconds"] / auto["mean_seconds"]

    record = bench_record(
        "rpca_runtime_196_instances",
        seeds=[SEED],
        backend=None,  # per-cell backends live in "results"
        matrix_shape=[tp_196.data.shape[0], tp_196.data.shape[1]],
        speedup_target=SPEEDUP_TARGET,
        speedup_auto_vs_exact={k: float(v) for k, v in speedups.items()},
        results=[
            {k: v for k, v in cell.items() if k != "constant_row"}
            for cell in _MATRIX.values()
        ],
    )
    write_bench_json(BENCH_JSON, record)

    lines = [f"rpca backend matrix ({tp_196.data.shape}, {ROUNDS} rounds):"]
    for cell in record["results"]:
        share = cell["svd_share"]
        lines.append(
            f"  {cell['solver']:<5} {cell['backend']:<6} "
            f"{cell['mean_seconds'] * 1e3:9.1f} ms  "
            f"{cell['iterations']:4d} iters  "
            f"svd share {'—' if share is None else f'{share:.0%}'}"
        )
    lines.append(
        "  speedup auto vs exact: "
        + ", ".join(f"{s} {v:.1f}x" for s, v in speedups.items())
        + f"  (target >= {SPEEDUP_TARGET}x, wrote {BENCH_JSON.name})"
    )
    emit("\n".join(lines))

    best = max(speedups.values())
    if os.environ.get("REPRO_PERF_STRICT") == "1":
        assert best >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x auto-vs-exact speedup on at "
            f"least one solver, measured {speedups}"
        )
    elif best < SPEEDUP_TARGET:
        pytest.skip(
            f"speedup {best:.1f}x below {SPEEDUP_TARGET}x target but "
            "REPRO_PERF_STRICT not set (recorded, not enforced)"
        )
