"""Batched RPCA: B clusters' TP-matrices as one stacked solver loop.

A fleet monitoring many clusters re-runs Algorithm 1 on one small
``n_snapshots × N²`` TP-matrix per cluster. Each solve is elementwise-bound
(BENCH_rpca.json: with the partial-SVD kernels the SVT is ~28% of runtime,
the rest is shrinkage/momentum/residual traffic), and a single 10 × 38416
matrix is too small to keep the memory system busy. This module stacks B
independent problems into one ``(B, m, n)`` tensor and runs the *same*
per-iteration recurrence (the :class:`~repro.core.elementwise.ElementwiseKernel`
step methods — shared with the single-matrix fast paths) over the stack, so
every ufunc and GEMM touches B matrices per pass.

Bit-parity design
-----------------
Every operation in the batched loop is *slice-separable*: elementwise ufuncs
trivially, and the batched GEMM / stacked ``eigh`` under
:class:`~repro.core.kernels.BatchedSVTKernel` by construction (one LAPACK /
BLAS call per slice internally). Per-matrix scalars (``μ``, ``‖A‖_F``,
thresholds) ride along as ``(B,)`` vectors broadcast per slice. Slice ``b``
of a batched solve is therefore bit-identical to the single-matrix
``gram``-backend solve of matrix ``b`` — independent of batch composition,
iteration-by-iteration. Two things follow:

* converged matrices can *drop out* (swap-compaction below) without
  perturbing the remaining solves, and
* any sharding of a fleet across workers produces bit-identical results to
  a serial run — the property the fleet sweep asserts unconditionally.

The per-matrix solvers (``svd_backend="exact"``/``"gram"``) stay untouched
and serve as the bit-parity oracle; the batched path agrees with ``gram``
bitwise and with ``exact`` to solver tolerance (the PR-5 bound).

Convergence dropout
-------------------
Each iteration computes per-matrix residuals; matrices that meet the
tolerance retire immediately: their result is copied out and the last
active slice is swapped into their position across all state buffers (the
``slots`` vector remembers original indices). Active slices stay in a
contiguous ``[:k]`` prefix, so the batch never stalls on its slowest
member and the elementwise passes shrink as the batch drains.

float32 iterate mode
--------------------
``dtype="float32"`` runs the stacked iteration in single precision to a
loose tolerance, then re-runs the float64 loop warm-started from the
float32 split (one refinement pass, counted as
``kernel.batch.refine_passes``). Half the memory traffic for the bulk of
the iterations; final results are float64. The parity guarantees above
apply only to the default ``"float64"`` mode.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

import numpy as np

from .. import observability
from .._validation import as_float_matrix, check_positive
from ..errors import ValidationError
from .apg import default_lambda, validate_mask
from .elementwise import ElementwiseKernel, validate_ew_backend
from .kernels import _GRAM_MAX_SIDE, BatchedSVTKernel, BatchRankPredictor
from .result import SolverResult
from .solvers import solve_rpca
from .svd_ops import spectral_norm

__all__ = [
    "BATCH_DTYPES",
    "BatchedSolveWorkspace",
    "solve_rpca_batch",
    "validate_batch_dtype",
]

BATCH_DTYPES = ("float64", "float32")

# Loose stationarity tolerance for the float32 iterate phase: tighter is
# unreachable in single precision (eps ≈ 1.2e-7 on unit-scale data).
_F32_TOL = 1e-5

# Keyword arguments the batched loops implement per solver. Anything else
# (warm_start, raise_on_fail, svd_backend, ...) routes to the certified
# per-matrix fallback, which accepts the full solver surface.
_APG_BATCH_KWARGS = frozenset({"tol", "max_iter", "eta", "mu_floor_factor"})
_IALM_BATCH_KWARGS = frozenset({"tol", "max_iter", "rho"})


def validate_batch_dtype(dtype: str) -> str:
    """Return *dtype* if it names a supported batch iterate dtype, else raise."""
    if dtype not in BATCH_DTYPES:
        raise ValidationError(
            f"unknown batch dtype {dtype!r}; available: {list(BATCH_DTYPES)}"
        )
    return dtype


class BatchedSolveWorkspace:
    """Preallocated ``(B, m, n)`` stacked buffers, handed out by name.

    The batched counterpart of :class:`~repro.core.kernels.SolveWorkspace`:
    a batched solve asks for its stacked iteration buffers once, before the
    loop; every iteration reuses them through ``out=`` ufunc calls over the
    active ``[:k]`` prefix. Buffers may carry a per-name dtype override
    (the float32 iterate phase keys its buffers under ``f32.``-prefixed
    names), and every fresh allocation emits a
    ``kernel.batch.workspace.alloc_bmn`` count so the no-allocation
    property of steady-state iterations stays a counter assertion.

    One workspace serves every batch of its shape — the engine keeps one
    per ``(B, m, n)`` and threads it through successive sweeps.
    """

    __slots__ = ("shape", "dtype", "_bufs")

    def __init__(
        self, shape: tuple[int, int, int], dtype: np.dtype | str = np.float64
    ) -> None:
        b, m, n = (int(s) for s in shape)
        if b < 1 or m < 1 or n < 1:
            raise ValidationError(f"workspace shape must be positive, got {shape}")
        self.shape = (b, m, n)
        self.dtype = np.dtype(dtype)
        self._bufs: dict[str, np.ndarray] = {}

    def buf(self, name: str, dtype: np.dtype | str | None = None) -> np.ndarray:
        """The stacked buffer registered under *name* (allocated on first use)."""
        want = self.dtype if dtype is None else np.dtype(dtype)
        arr = self._bufs.get(name)
        if arr is None:
            arr = np.empty(self.shape, dtype=want)
            self._bufs[name] = arr
            observability.emit_count("kernel.batch.workspace.alloc_bmn")
        elif arr.dtype != want:
            raise ValidationError(
                f"workspace buffer {name!r} is {arr.dtype}, requested {want}"
            )
        return arr

    def bufs(
        self, *names: str, dtype: np.dtype | str | None = None
    ) -> tuple[np.ndarray, ...]:
        """Several buffers at once, in the order requested."""
        return tuple(self.buf(name, dtype=dtype) for name in names)

    @property
    def allocated(self) -> int:
        """Number of ``B × m × n`` buffers allocated so far."""
        return len(self._bufs)


class _StackResult:
    """Per-group result accumulator for one batched loop run."""

    __slots__ = (
        "low_rank", "sparse", "rank", "iterations",
        "converged", "residual", "loop_iterations",
    )

    def __init__(self, b: int, m: int, n: int, dtype: np.dtype) -> None:
        self.low_rank = np.zeros((b, m, n), dtype=dtype)
        self.sparse = np.zeros((b, m, n), dtype=dtype)
        self.rank = np.zeros(b, dtype=np.int64)
        self.iterations = np.zeros(b, dtype=np.int64)
        self.converged = np.zeros(b, dtype=bool)
        self.residual = np.zeros(b, dtype=np.float64)
        self.loop_iterations = 0


def _slice_norms(stack: np.ndarray, k: int, out: np.ndarray) -> np.ndarray:
    """Per-slice Frobenius norms of ``stack[:k]`` into ``out[:k]``.

    An explicit loop of single-matrix ``np.linalg.norm`` calls: each slice
    is contiguous, so every norm is the same ``ddot`` the single-matrix
    solver performs — bit-identical, which a vectorized
    ``einsum``/``sum`` reduction would not be.
    """
    for i in range(k):
        out[i] = np.linalg.norm(stack[i])
    return out[:k]


def _emit_loop_counters(res: _StackResult, participating: np.ndarray) -> None:
    """Batch-occupancy counters for one finished group loop."""
    loop_iters = res.loop_iterations
    slice_iters = int(res.iterations[participating].sum())
    saved = int(loop_iters * participating.size - slice_iters)
    observability.emit_count("kernel.batch.iterations", loop_iters)
    observability.emit_count("kernel.batch.active_iterations", slice_iters)
    observability.emit_count("kernel.batch.dropout_iterations", saved)


def _retire(
    res: _StackResult,
    pos: int,
    k: int,
    it: int,
    converged: bool,
    state: tuple[np.ndarray, ...],
    vectors: tuple[np.ndarray, ...],
    slots: np.ndarray,
    D: np.ndarray,
    E: np.ndarray,
    ranks: np.ndarray,
    resid: np.ndarray,
) -> int:
    """Copy slice *pos*'s result out and compact the active prefix.

    Swaps the last active slice into position *pos* across every state
    buffer and bookkeeping vector; returns the new active count. Safe
    because per-slice arithmetic is independent of slice position (see the
    module docstring).
    """
    idx = int(slots[pos])
    res.low_rank[idx] = D[pos]
    res.sparse[idx] = E[pos]
    res.rank[idx] = int(ranks[pos])
    res.iterations[idx] = it
    res.converged[idx] = converged
    res.residual[idx] = float(resid[pos])
    last = k - 1
    if pos != last:
        for arr in state:
            arr[pos] = arr[last]
        for vec in vectors + (slots, ranks, resid):
            vec[pos] = vec[last]
    return last


def _apg_batch(
    A0: np.ndarray,
    omega0: np.ndarray | None,
    lam_v: float,
    *,
    tol: float,
    max_iter: int,
    eta: float,
    mu_floor_factor: float,
    warm: tuple[np.ndarray, np.ndarray] | None,
    warm_mu_factor: float,
    ws: BatchedSolveWorkspace,
    predictor: BatchRankPredictor,
    dtype: np.dtype,
    ew: ElementwiseKernel,
) -> _StackResult:
    """Stacked APG loop over one homogeneous group (all-masked or all-unmasked).

    Same recurrence as :func:`repro.core.apg._rpca_apg_fast` — literally the
    same :class:`~repro.core.elementwise.ElementwiseKernel` step methods —
    with per-matrix scalars as ``(B,)`` vectors and convergence dropout via
    swap-compaction. The FISTA momentum scalars ``t``/``β`` depend only on
    the iteration index, so they stay global.
    """
    B, m, n = A0.shape
    masked = omega0 is not None
    p = "f32." if dtype == np.float32 else ""
    res = _StackResult(B, m, n, dtype)

    norm_a = np.empty(B)
    mu_top = np.empty(B)
    for i in range(B):
        norm_a[i] = np.linalg.norm(A0[i])
        mu_top[i] = spectral_norm(A0[i]) if norm_a[i] > 0.0 else 0.0
    order = np.flatnonzero(norm_a > 0.0)
    res.converged[norm_a == 0.0] = True  # ‖A‖=0 ⇒ D=E=0, matches single path
    k = order.size
    if k == 0:
        return res

    if masked:
        names = ("A", "omega", "D", "Dp", "Dn", "E", "Ep", "En",
                 "YD", "YE", "G", "M", "S")
        A, D, Dp, Dn, E, Ep, En, YD, YE, G, M, S = ws.bufs(
            *(p + nm for nm in names if nm != "omega"), dtype=dtype
        )
        omega = ws.buf(p + "omega", dtype=np.bool_)
        state: tuple[np.ndarray, ...] = (A, omega, D, Dp, E, Ep)
    else:
        A, F, Fp, T, MD, ME, Dn, En, S, D, E = ws.bufs(
            *(p + nm for nm in
              ("A", "F", "Fp", "T", "MD", "ME", "Dn", "En", "S", "D", "E")),
            dtype=dtype,
        )
        state = (A, F, Fp, D, E)

    slots = order.astype(np.int64)
    for i, src in enumerate(order):
        A[i] = A0[src]
        if masked:
            omega[i] = omega0[src]
    norm_a_v = norm_a[order].copy()
    mu_bar = mu_floor_factor * 0.99 * mu_top[order]
    if warm is not None:
        D0s, E0s = warm
        for i, src in enumerate(order):
            D[i] = D0s[src]
            E[i] = E0s[src]
            if masked:
                Dp[i] = D0s[src]
                Ep[i] = E0s[src]
            else:
                np.subtract(D[i], E[i], out=F[i])
        if not masked:
            np.copyto(Fp[:k], F[:k])
        mu = np.maximum(mu_bar, warm_mu_factor * mu_top[order])
    else:
        for arr in ((D, Dp, E, Ep) if masked else (D, E, F, Fp)):
            arr[:k] = 0.0
        mu = 0.99 * mu_top[order]

    kernel = BatchedSVTKernel((B, m, n), rank_predictor=predictor, dtype=dtype)

    def svt(Ms: np.ndarray, tau: np.ndarray, out: np.ndarray) -> np.ndarray:
        return kernel.svt(Ms, tau, out, slots=slots[: Ms.shape[0]])

    def norms(X: np.ndarray) -> np.ndarray:
        kk = X.shape[0]
        vals = np.empty(kk)
        return _slice_norms(X, kk, vals)

    t = t_prev = 1.0
    sqrt2 = float(np.sqrt(2.0))
    resid = np.full(B, np.inf)
    ranks = np.zeros(B, dtype=np.int64)
    participating = order.copy()

    for it in range(1, max_iter + 1):
        beta = (t_prev - 1.0) / t
        tau_d = (mu[:k] / 2.0).reshape(k, 1, 1)
        tau_e = (lam_v * mu[:k] / 2.0).reshape(k, 1, 1)
        if masked:
            step_ranks, sd, se = ew.apg_step_masked(
                A[:k], omega[:k], D[:k], Dp[:k], E[:k], Ep[:k],
                YD[:k], YE[:k], G[:k], M[:k], S[:k], Dn[:k], En[:k],
                beta, tau_d, tau_e, svt, norms,
            )
            np.divide(np.sqrt(sd * sd + se * se), norm_a_v[:k], out=resid[:k])
            Dp, D, Dn = D, Dn, Dp
            Ep, E, En = E, En, Ep
            state = (A, omega, D, Dp, E, Ep)
        else:
            step_ranks = ew.apg_step_unmasked(
                A[:k], F[:k], Fp[:k], T[:k], MD[:k], ME[:k],
                Dn[:k], En[:k], S[:k], beta, tau_d, tau_e, svt,
            )
            F, Fp = Fp, F
            vals = _slice_norms(S, k, np.empty(k))
            np.divide(sqrt2 * vals, norm_a_v[:k], out=resid[:k])
            D, Dn = Dn, D
            E, En = En, E
            state = (A, F, Fp, D, E)
        ranks[:k] = step_ranks
        t_prev, t = t, (1.0 + np.sqrt(1.0 + 4.0 * t * t)) / 2.0
        np.maximum(eta * mu[:k], mu_bar[:k], out=mu[:k])
        res.loop_iterations += 1

        done = np.flatnonzero(resid[:k] < tol)
        for pos in done[::-1]:
            k = _retire(
                res, int(pos), k, it, True,
                state, (mu, mu_bar, norm_a_v), slots, D, E, ranks, resid,
            )
        if k == 0:
            break

    for pos in range(k - 1, -1, -1):
        k = _retire(
            res, pos, k, max_iter, False,
            state, (mu, mu_bar, norm_a_v), slots, D, E, ranks, resid,
        )
    _emit_loop_counters(res, participating)
    return res


def _ialm_batch(
    A0: np.ndarray,
    omega0: np.ndarray | None,
    lam_v: float,
    *,
    tol: float,
    max_iter: int,
    rho: float,
    warm: tuple[np.ndarray, np.ndarray] | None,
    warm_mu_steps: float,
    ws: BatchedSolveWorkspace,
    predictor: BatchRankPredictor,
    dtype: np.dtype,
    ew: ElementwiseKernel,
) -> _StackResult:
    """Stacked IALM loop over one homogeneous group; mirrors
    :func:`repro.core.ialm._rpca_ialm_fast` via the shared step methods."""
    B, m, n = A0.shape
    masked = omega0 is not None
    p = "f32." if dtype == np.float32 else ""
    res = _StackResult(B, m, n, dtype)

    norm_a = np.empty(B)
    norm_two = np.empty(B)
    norm_inf = np.empty(B)
    for i in range(B):
        norm_a[i] = np.linalg.norm(A0[i])
        if norm_a[i] > 0.0:
            norm_two[i] = spectral_norm(A0[i])
            norm_inf[i] = float(np.abs(A0[i]).max()) / lam_v
        else:
            norm_two[i] = norm_inf[i] = 0.0
    order = np.flatnonzero(norm_a > 0.0)
    res.converged[norm_a == 0.0] = True
    k = order.size
    if k == 0:
        return res

    base = ("A", "D", "E", "Yinv", "M", "Z")
    if masked:
        A, D, E, Yinv, M, Z, W = ws.bufs(*(p + nm for nm in base + ("W",)),
                                         dtype=dtype)
        omega = ws.buf(p + "omega", dtype=np.bool_)
        state: tuple[np.ndarray, ...] = (A, omega, D, E, Yinv)
    else:
        A, D, E, Yinv, M, Z = ws.bufs(*(p + nm for nm in base), dtype=dtype)
        state = (A, D, E, Yinv)

    slots = order.astype(np.int64)
    for i, src in enumerate(order):
        A[i] = A0[src]
        if masked:
            omega[i] = omega0[src]
    norm_a_v = norm_a[order].copy()
    mu = 1.25 / norm_two[order]
    mu_bar = mu * 1e7
    if warm is not None:
        D0s, E0s = warm
        for i, src in enumerate(order):
            D[i] = D0s[src]
            E[i] = E0s[src]
        mu = np.minimum(mu * rho**warm_mu_steps, mu_bar)
    else:
        D[:k] = 0.0
        E[:k] = 0.0
    # Ȳ₀ = A/(J(A)·μ₀) with the (possibly ramped) μ — see the single path.
    coef = 1.0 / (np.maximum(norm_two[order], norm_inf[order]) * mu)
    np.multiply(A[:k], coef.reshape(k, 1, 1), out=Yinv[:k])

    kernel = BatchedSVTKernel((B, m, n), rank_predictor=predictor, dtype=dtype)

    def svt(Ms: np.ndarray, tau: np.ndarray, out: np.ndarray) -> np.ndarray:
        return kernel.svt(Ms, tau, out, slots=slots[: Ms.shape[0]])

    resid = np.full(B, np.inf)
    ranks = np.zeros(B, dtype=np.int64)
    participating = order.copy()

    for it in range(1, max_iter + 1):
        mu_next = np.minimum(mu[:k] * rho, mu_bar[:k])
        tau_d = (1.0 / mu[:k]).reshape(k, 1, 1)
        tau_e = (lam_v / mu[:k]).reshape(k, 1, 1)
        ratio = (mu[:k] / mu_next).reshape(k, 1, 1)
        if masked:
            step_ranks = ew.ialm_step_masked(
                A[:k], omega[:k], D[:k], E[:k], W[:k], Yinv[:k], M[:k], Z[:k],
                tau_d, tau_e, ratio, svt,
            )
        else:
            step_ranks = ew.ialm_step_unmasked(
                A[:k], D[:k], E[:k], Yinv[:k], M[:k], Z[:k],
                tau_d, tau_e, ratio, svt,
            )
        ranks[:k] = step_ranks
        mu[:k] = mu_next
        vals = _slice_norms(Z, k, np.empty(k))
        np.divide(vals, norm_a_v[:k], out=resid[:k])
        res.loop_iterations += 1

        done = np.flatnonzero(resid[:k] < tol)
        for pos in done[::-1]:
            k = _retire(
                res, int(pos), k, it, True,
                state, (mu, mu_bar, norm_a_v), slots, D, E, ranks, resid,
            )
        if k == 0:
            break

    for pos in range(k - 1, -1, -1):
        k = _retire(
            res, pos, k, max_iter, False,
            state, (mu, mu_bar, norm_a_v), slots, D, E, ranks, resid,
        )
    _emit_loop_counters(res, participating)
    return res


def _solve_group(
    solver: str,
    A0: np.ndarray,
    omega0: np.ndarray | None,
    lam_v: float,
    kwargs: dict[str, Any],
    *,
    ws: BatchedSolveWorkspace,
    predictor: BatchRankPredictor,
    dtype: str,
    elementwise_backend: str = "reference",
) -> _StackResult:
    """Run one homogeneous group, with the optional f32-iterate/f64-refine split."""
    ew = ElementwiseKernel(elementwise_backend)
    if solver == "apg":
        def run(warm, loop_dtype, tol_override=None):
            return _apg_batch(
                A0, omega0, lam_v,
                tol=tol_override if tol_override is not None
                else kwargs.get("tol", 1e-7),
                max_iter=kwargs.get("max_iter", 500),
                eta=kwargs.get("eta", 0.9),
                mu_floor_factor=kwargs.get("mu_floor_factor", 1e-9),
                warm=warm, warm_mu_factor=0.1,
                ws=ws, predictor=predictor, dtype=loop_dtype, ew=ew,
            )
    else:
        def run(warm, loop_dtype, tol_override=None):
            return _ialm_batch(
                A0, omega0, lam_v,
                tol=tol_override if tol_override is not None
                else kwargs.get("tol", 1e-7),
                max_iter=kwargs.get("max_iter", 1000),
                rho=kwargs.get("rho", 1.5),
                warm=warm, warm_mu_steps=8.0,
                ws=ws, predictor=predictor, dtype=loop_dtype, ew=ew,
            )

    if dtype == "float64":
        return run(None, np.float64)
    # float32 iterate phase to a loose tolerance, then one float64
    # refinement pass warm-started from the single-precision split.
    tol = kwargs.get("tol", 1e-7)
    rough = run(None, np.float32, tol_override=max(tol, _F32_TOL))
    observability.emit_count("kernel.batch.refine_passes")
    refined = run(
        (rough.low_rank.astype(np.float64), rough.sparse.astype(np.float64)),
        np.float64,
    )
    refined.iterations += rough.iterations
    return refined


def solve_rpca_batch(
    matrices: Sequence[np.ndarray] | np.ndarray,
    masks: Sequence[np.ndarray | None] | None = None,
    *,
    solver: str = "apg",
    lam: float | None = None,
    dtype: str = "float64",
    elementwise_backend: str = "reference",
    workspace: BatchedSolveWorkspace | None = None,
    rank_predictor: BatchRankPredictor | None = None,
    context: str = "batch",
    fallback: bool = True,
    **solver_kwargs: Any,
) -> list[SolverResult]:
    """Solve B same-shape RPCA problems through one stacked iteration loop.

    Parameters
    ----------
    matrices:
        ``(B, m, n)`` array or sequence of B ``(m, n)`` data matrices.
    masks:
        Optional per-matrix observation masks (``None`` entries = fully
        observed). Masked and unmasked matrices are partitioned into two
        homogeneous sub-batches internally; results return in input order.
    solver:
        ``"apg"`` or ``"ialm"`` run batched; any other registered solver
        routes to the per-matrix fallback.
    lam:
        Shared sparsity trade-off λ; defaults to ``1/sqrt(max(m, n))``.
    dtype:
        ``"float64"`` (default — the bit-parity mode) or ``"float32"``
        (single-precision iterate + float64 refinement pass).
    elementwise_backend:
        Elementwise kernel for the stacked step recurrences — one of
        :data:`repro.core.elementwise.EW_BACKENDS`. ``"fused"`` is
        bit-identical to the default ``"reference"``; ``"jit"`` needs
        numba. The per-matrix fallback ignores it (like *dtype*): fallback
        solves run the certified per-matrix path as-is.
    workspace:
        A :class:`BatchedSolveWorkspace` of shape ``(B, m, n)`` to reuse
        across calls; allocated fresh when omitted.
    rank_predictor:
        Shared :class:`~repro.core.kernels.BatchRankPredictor` threaded
        across sweeps; fresh when omitted.
    context:
        Instrumentation span label.
    fallback:
        When the batched path cannot run the request (unsupported solver,
        short side above the gram limit, solver keywords the batched loop
        does not implement), solve each matrix through
        :func:`~repro.core.solvers.solve_rpca` instead (counted as
        ``kernel.batch.fallback``). ``False`` raises instead.
    **solver_kwargs:
        Per-solver iteration controls (``tol``, ``max_iter``, ``eta``,
        ``mu_floor_factor`` for APG; ``tol``, ``max_iter``, ``rho`` for
        IALM). Anything else triggers the fallback.

    Returns
    -------
    list[SolverResult]
        One result per input matrix, in input order, always float64.
    """
    if isinstance(matrices, np.ndarray) and matrices.ndim == 3:
        mats = [
            as_float_matrix(matrices[i], f"matrices[{i}]")
            for i in range(matrices.shape[0])
        ]
    else:
        mats = [as_float_matrix(x, f"matrices[{i}]") for i, x in enumerate(matrices)]
    B = len(mats)
    if B == 0:
        raise ValidationError("matrices must contain at least one matrix")
    shape = mats[0].shape
    for i, x in enumerate(mats):
        if x.shape != shape:
            raise ValidationError(
                f"matrices[{i}] has shape {x.shape}, expected {shape} — "
                "a batch must be shape-homogeneous"
            )
    m, n = shape
    if masks is None:
        omegas: list[np.ndarray | None] = [None] * B
    else:
        if len(masks) != B:
            raise ValidationError(
                f"masks has {len(masks)} entries for {B} matrices"
            )
        omegas = [validate_mask(mk, shape) for mk in masks]
    lam_v = default_lambda(shape) if lam is None else check_positive(lam, "lam")
    validate_batch_dtype(dtype)
    validate_ew_backend(elementwise_backend)

    unsupported = set(solver_kwargs) - (
        _APG_BATCH_KWARGS if solver == "apg" else _IALM_BATCH_KWARGS
    )
    needs_fallback = (
        solver not in ("apg", "ialm")
        or min(m, n) > _GRAM_MAX_SIDE
        or bool(unsupported)
    )
    if needs_fallback:
        if not fallback:
            reason = (
                f"solver {solver!r}" if solver not in ("apg", "ialm")
                else f"short side {min(m, n)} > {_GRAM_MAX_SIDE}"
                if min(m, n) > _GRAM_MAX_SIDE
                else f"keyword(s) {sorted(unsupported)}"
            )
            raise ValidationError(f"batched solve cannot run: {reason}")
        observability.emit_count("kernel.batch.fallback", B)
        out: list[SolverResult] = []
        for i in range(B):
            kw = dict(solver_kwargs)
            if omegas[i] is not None:
                kw["mask"] = omegas[i]
            if lam is not None:
                kw["lam"] = lam
            out.append(solve_rpca(mats[i], solver=solver, context=context, **kw))
        return out

    if workspace is None:
        workspace = BatchedSolveWorkspace((B, m, n))
    elif workspace.shape != (B, m, n):
        raise ValidationError(
            f"workspace shape {workspace.shape} does not match batch ({B}, {m}, {n})"
        )
    if rank_predictor is None:
        rank_predictor = BatchRankPredictor(min_dim=min(m, n), batch=B)

    start = time.perf_counter()
    observability.emit_count("kernel.batch.solves")
    observability.emit_count("kernel.batch.matrices", B)

    un_idx = [i for i in range(B) if omegas[i] is None]
    ma_idx = [i for i in range(B) if omegas[i] is not None]
    group_results: dict[int, tuple[_StackResult, int]] = {}
    for idx_list, use_mask in ((un_idx, False), (ma_idx, True)):
        if not idx_list:
            continue
        A0 = np.stack([mats[i] for i in idx_list])
        omega0 = None
        if use_mask:
            omega0 = np.stack([omegas[i] for i in idx_list])
            A0 = np.where(omega0, A0, 0.0)  # placeholders carry no signal
        res = _solve_group(
            solver, A0, omega0, lam_v, solver_kwargs,
            ws=workspace, predictor=rank_predictor, dtype=dtype,
            elementwise_backend=elementwise_backend,
        )
        for gpos, i in enumerate(idx_list):
            group_results[i] = (res, gpos)
    elapsed = time.perf_counter() - start
    observability.emit_time("kernel.batch.solve_seconds", elapsed)

    results: list[SolverResult] = []
    for i in range(B):
        res, gpos = group_results[i]
        sr = SolverResult(
            low_rank=np.array(res.low_rank[gpos], dtype=np.float64),
            sparse=np.array(res.sparse[gpos], dtype=np.float64),
            rank=int(res.rank[gpos]),
            iterations=int(res.iterations[gpos]),
            converged=bool(res.converged[gpos]),
            residual=float(res.residual[gpos]),
        )
        results.append(sr)
        if observability.active():
            observability.emit_span(
                observability.SolveSpan(
                    solver=solver, rows=m, cols=n,
                    iterations=sr.iterations, rank=sr.rank,
                    residual=sr.residual, converged=sr.converged,
                    warm=False, seconds=elapsed / B, context=context,
                )
            )
    return results
