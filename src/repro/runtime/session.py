"""The Algorithm-1 session over a replayed trace.

A :class:`TraceSession` walks a :class:`~repro.cloudsim.trace.CalibrationTrace`
forward in time. The first ``time_step`` snapshots are consumed as the
initial calibration; every subsequent operation is priced on the *live*
snapshot at the session's cursor while its tree/mapping is built from the
*current constant component*. After each operation the session compares the
expected time against the observed one and re-calibrates (from the trailing
window, charging the calibration overhead) when the relative deviation
crosses the threshold — exactly lines 4–9 of the paper's Algorithm 1.

Calibration goes through a :class:`~repro.core.engine.DecompositionEngine`:
TP-matrix rows are cached across overlapping windows and re-calibration
solves warm-start from the previous solution (pass ``warm_start=False`` for
the historical cold path). The engine's instrumentation — per-solve spans,
warm/cold and cache counters — is exposed as
:attr:`TraceSession.instrumentation`.

The same class serves live substrates by first materializing their
measurements as a trace (see
:func:`~repro.experiments.netsim_support.calibrate_netsim_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_nonnegative, check_positive
from ..calibration.overhead import calibration_overhead_seconds
from ..cloudsim.trace import CalibrationTrace
from ..collectives.exec_model import collective_time, weights_to_alphabeta
from ..collectives.fnf import fnf_tree
from ..core.decompose import Decomposition
from ..core.engine import DecompositionEngine
from ..core.maintenance import (
    DegradedModeController,
    HealthState,
    HealthTransition,
    MaintenanceController,
    MaintenanceDecision,
    ResilienceConfig,
)
from ..core.solvers import solver_spec
from ..errors import CalibrationError, ConvergenceError, ValidationError
from ..faults import FaultModel, FaultSchedule, inject_faults, parse_fault_spec
from ..mapping.evaluate import bandwidth_from_weights, mapping_total_time
from ..mapping.greedy import greedy_mapping
from ..mapping.taskgraph import TaskGraph
from ..observability import Instrumentation

__all__ = ["OperationRecord", "SessionStats", "TraceSession"]


@dataclass(frozen=True, slots=True)
class OperationRecord:
    """One operation executed through the session."""

    op: str
    snapshot: int
    root: int
    elapsed: float
    expected: float
    decision: MaintenanceDecision
    health: str = HealthState.HEALTHY.value


@dataclass
class SessionStats:
    """Aggregate accounting of a session's lifetime.

    ``epochs`` counts how many times the replay cursor wrapped past the end
    of the trace back to the evaluation-window start — i.e. how many times
    the finite trace was reused. Long-running replays report it so "1000
    operations" can be read as "the 20-snapshot trace replayed 50 times"
    rather than mistaken for 1000 fresh measurements.
    """

    operations: int = 0
    communication_seconds: float = 0.0
    overhead_seconds: float = 0.0
    recalibrations: int = 0
    failed_recalibrations: int = 0
    deferred_recalibrations: int = 0
    holdover_operations: int = 0
    epochs: int = 0
    history: list[OperationRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.communication_seconds + self.overhead_seconds

    @property
    def average_total_seconds(self) -> float:
        return self.total_seconds / self.operations if self.operations else 0.0


class TraceSession:
    """Adaptive network-aware optimization over a replayed trace.

    Parameters
    ----------
    trace:
        The network ground truth, walked forward one snapshot per operation
        (wrapping around at the end).
    nbytes:
        Default message size for calibration weights and collectives.
    time_step:
        Calibration window length (paper default 10).
    threshold:
        Maintenance threshold (paper default 1.0).
    consecutive:
        Consecutive above-threshold observations required before a
        re-calibration fires (default 1, the paper's immediate rule).
        Use 2 to debounce one-off interference spikes when individual
        observations are single collectives rather than whole runs.
    solver:
        RPCA backend.
    calibration_cost:
        Seconds charged per (re-)calibration; defaults to the Fig-4 model.
    warm_start:
        Warm-start re-calibration solves from the previous window's solution
        (default on; only solvers that support it — APG/IALM — are affected).
        Disable to reproduce the historical cold-solve path bit for bit.
    instrumentation:
        Observability sink shared with the session's
        :class:`~repro.core.engine.DecompositionEngine`; a fresh one is
        created if omitted (read it back via :attr:`instrumentation`).
    faults:
        Fault models to inject into the *calibration view* of the trace — a
        list of :class:`~repro.faults.FaultModel` or a spec string for
        :func:`~repro.faults.parse_fault_spec` (e.g.
        ``"probe_loss=0.1,vm_outage=3:12:2"`` or ``"harsh"``). Faults only
        affect what calibration observes; operations are still priced on
        the ground-truth trace (a lost probe does not slow the network).
        Enables degraded-mode maintenance (see *resilience*).
    fault_seed:
        Seed for fault materialization (default: derived fresh).
    resilience:
        :class:`~repro.core.maintenance.ResilienceConfig` controlling
        snapshot-completeness thresholds, re-calibration backoff and the
        HEALTHY → DEGRADED → HOLDOVER health machine. Defaults to the
        standard config when *faults* are given, ``None`` (strict
        historical behavior: calibration failures propagate) otherwise.
    """

    def __init__(
        self,
        trace: CalibrationTrace,
        *,
        nbytes: float = 8.0 * 1024 * 1024,
        time_step: int = 10,
        threshold: float = 1.0,
        consecutive: int = 1,
        solver: str = "apg",
        calibration_cost: float | None = None,
        warm_start: bool = True,
        instrumentation: Instrumentation | None = None,
        faults: list[FaultModel] | tuple[FaultModel, ...] | str | None = None,
        fault_seed: int | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        if trace.n_snapshots <= time_step:
            raise ValidationError(
                "trace too short: need more snapshots than the time step"
            )
        check_positive(nbytes, "nbytes")
        self.trace = trace
        self.nbytes = float(nbytes)
        self.time_step = int(time_step)
        self.solver = solver
        self.controller = MaintenanceController(
            threshold=threshold, consecutive=consecutive
        )
        self.calibration_cost = (
            calibration_cost
            if calibration_cost is not None
            else calibration_overhead_seconds(trace.n_machines, time_step)
        )
        check_nonnegative(self.calibration_cost, "calibration_cost")

        self.fault_schedule: FaultSchedule | None = None
        calibration_view = trace
        if faults is not None:
            models = parse_fault_spec(faults) if isinstance(faults, str) else faults
            injected = inject_faults(trace, models, seed=fault_seed)
            calibration_view = injected.trace
            self.fault_schedule = injected.schedule
            if resilience is None:
                resilience = ResilienceConfig()
        self.resilience = resilience
        self.health: DegradedModeController | None = (
            DegradedModeController(resilience) if resilience is not None else None
        )

        engine_kwargs: dict = {}
        if resilience is not None:
            engine_kwargs["min_snapshot_observed"] = resilience.min_snapshot_observed
            engine_kwargs["min_window_observed"] = resilience.min_window_observed
            spec = solver_spec(solver)
            if resilience.strict_convergence and (
                spec.accepts_any_kwargs or "raise_on_fail" in spec.accepted_kwargs
            ):
                engine_kwargs["raise_on_fail"] = True
        self._engine = DecompositionEngine(
            calibration_view,
            nbytes=self.nbytes,
            time_step=self.time_step,
            solver=solver,
            warm_start=warm_start,
            instrumentation=(
                instrumentation
                if instrumentation is not None
                else Instrumentation("session")
            ),
            **engine_kwargs,
        )
        self.stats = SessionStats()
        self._cursor = self.time_step  # next live snapshot
        self._decomposition: Decomposition | None = None
        # The session cannot start without one good constant component, so
        # the initial calibration is not fault-tolerant: a failure here
        # propagates even in resilient mode (pick fault schedules, window
        # position or thresholds that let the session boot).
        self._calibrate(end=self.time_step, charge=True)
        if self.health is not None:
            self.health.record_success()

    # -- state ------------------------------------------------------------
    @property
    def decomposition(self) -> Decomposition:
        assert self._decomposition is not None
        return self._decomposition

    @property
    def norm_ne(self) -> float:
        """Current ``Norm(N_E)`` — the effectiveness predictor."""
        return self.decomposition.norm_ne

    @property
    def verdict(self) -> str:
        return self.decomposition.report.verdict

    def weight_matrix(self) -> np.ndarray:
        """The current constant-component weight matrix."""
        return self.decomposition.performance_matrix().weights.copy()

    @property
    def instrumentation(self) -> Instrumentation:
        """Counters/timers/solve spans of this session's engine."""
        return self._engine.instrumentation

    @property
    def health_state(self) -> HealthState:
        """Current calibration-plane health (HEALTHY without resilience)."""
        return self.health.state if self.health is not None else HealthState.HEALTHY

    @property
    def health_transitions(self) -> list[HealthTransition]:
        """Recorded health state machine edges (empty without resilience)."""
        return list(self.health.transitions) if self.health is not None else []

    @property
    def staleness(self) -> int:
        """Operations run on the current constant component since its solve."""
        return self.health.staleness if self.health is not None else 0

    @property
    def fault_events(self):
        """Materialized fault events, if faults were injected."""
        return self.fault_schedule.events if self.fault_schedule is not None else ()

    # -- internals ----------------------------------------------------------
    def _calibrate(self, end: int, *, charge: bool) -> None:
        self._decomposition = self._engine.calibrate(end)
        if charge:
            self.stats.overhead_seconds += self.calibration_cost

    def _request_recalibration(self, end: int) -> None:
        """Algorithm-1 re-calibration, degraded-mode aware.

        Without a health controller this is the historical strict path: a
        calibration failure propagates to the caller. With one, a failed
        attempt (not enough probes answered, solver budget exhausted) keeps
        the last good constant component in service — HOLDOVER — and backs
        off exponentially before the next attempt; a deferred request
        (still inside backoff) is counted but does not re-measure.
        """
        if self.health is None:
            self._calibrate(end=end, charge=True)
            self.stats.recalibrations += 1
            return
        if not self.health.should_attempt():
            self.stats.deferred_recalibrations += 1
            self.instrumentation.count("session.recalibration.deferred")
            return
        try:
            self._calibrate(end=end, charge=True)
        except (CalibrationError, ConvergenceError) as exc:
            self.stats.failed_recalibrations += 1
            self.instrumentation.count("session.recalibration.failed")
            self.health.record_failure(exc)
            # The engine may have been left warm-seeded by a failed solve's
            # predecessor; the last *good* decomposition stays in service.
            return
        self.stats.recalibrations += 1
        self.instrumentation.count("session.recalibration.ok")
        self.health.record_success()

    def _advance(self) -> int:
        k = self._cursor
        self._cursor += 1
        if self._cursor >= self.trace.n_snapshots:
            self._cursor = self.time_step  # wrap the evaluation window
            self.stats.epochs += 1
        if self.health is not None:
            self.health.tick()
            if not self.health.healthy:
                self.stats.holdover_operations += 1
        return k

    # -- operations -----------------------------------------------------------
    def run_collective(
        self,
        op: str,
        *,
        root: int = 0,
        nbytes: float | None = None,
        machines: list[int] | np.ndarray | None = None,
    ) -> OperationRecord:
        """Run one collective; returns its record after maintenance feedback.

        *machines* restricts the operation to a virtual sub-cluster
        ``C' ⊆ C`` (paper Algorithm 1 line 3): the constant component and
        the live snapshot are both restricted to those machines, and *root*
        indexes into the sub-cluster.
        """
        size = self.nbytes if nbytes is None else float(nbytes)
        check_positive(size, "nbytes")
        k = self._advance()
        weights = self.weight_matrix()
        live_alpha, live_beta = self.trace.alpha[k], self.trace.beta[k]
        if machines is not None:
            idx = np.asarray(machines, dtype=np.intp)
            if idx.size < 2 or len(set(idx.tolist())) != idx.size:
                raise ValidationError("machines must be >= 2 distinct indices")
            if idx.min() < 0 or idx.max() >= self.trace.n_machines:
                raise ValidationError("machine index out of range")
            sel = np.ix_(idx, idx)
            weights = weights[sel]
            np.fill_diagonal(weights, 0.0)
            live_alpha = live_alpha[sel]
            live_beta = live_beta[sel]
        tree = fnf_tree(weights, root)
        ea, eb = weights_to_alphabeta(weights, size)
        expected = collective_time(op, tree, ea, eb, size)
        elapsed = collective_time(op, tree, live_alpha, live_beta, size)

        decision = self.controller.observe(expected, elapsed)
        if decision is MaintenanceDecision.RECALIBRATE:
            self._request_recalibration(end=k + 1)

        record = OperationRecord(
            op=op, snapshot=k, root=int(root), elapsed=elapsed,
            expected=expected, decision=decision,
            health=self.health_state.value,
        )
        self.stats.operations += 1
        self.stats.communication_seconds += elapsed
        self.stats.history.append(record)
        return record

    def broadcast(self, *, root: int = 0, nbytes: float | None = None) -> OperationRecord:
        return self.run_collective("broadcast", root=root, nbytes=nbytes)

    def scatter(self, *, root: int = 0, block_bytes: float | None = None) -> OperationRecord:
        return self.run_collective("scatter", root=root, nbytes=block_bytes)

    def reduce(self, *, root: int = 0, nbytes: float | None = None) -> OperationRecord:
        return self.run_collective("reduce", root=root, nbytes=nbytes)

    def gather(self, *, root: int = 0, block_bytes: float | None = None) -> OperationRecord:
        return self.run_collective("gather", root=root, nbytes=block_bytes)

    def communicator(self, snapshot: int | None = None):
        """An MPI-style :class:`~repro.mpisim.SimComm` bound to this session.

        The communicator's live network is the trace snapshot at the
        session's cursor (or *snapshot* if given) and its trees come from
        the current constant component — i.e. programs written against it
        run network-aware without knowing about RPCA at all. The
        communicator is a snapshot view: it does not advance the session's
        cursor or feed the maintenance loop.
        """
        from ..mpisim.comm import SimComm

        k = self._cursor if snapshot is None else int(snapshot)
        if not 0 <= k < self.trace.n_snapshots:
            raise ValidationError(f"snapshot {k} out of range")
        return SimComm(
            self.trace.alpha[k], self.trace.beta[k], weights=self.weight_matrix()
        )

    def map_tasks(self, graph: TaskGraph) -> tuple[np.ndarray, float]:
        """Map *graph* greedily on the constant component; price it live.

        Returns ``(mapping, elapsed_seconds)``. Mapping operations also feed
        the maintenance loop (their expected cost comes from the estimate).
        """
        if graph.n_tasks > self.trace.n_machines:
            raise ValidationError("task graph larger than the cluster")
        k = self._advance()
        weights = self.weight_matrix()
        mapping = greedy_mapping(graph, bandwidth_from_weights(weights))
        ea, eb = weights_to_alphabeta(weights, self.nbytes)
        expected = mapping_total_time(graph, mapping, ea, eb)
        elapsed = mapping_total_time(
            graph, mapping, self.trace.alpha[k], self.trace.beta[k]
        )
        decision = self.controller.observe(expected, elapsed)
        if decision is MaintenanceDecision.RECALIBRATE:
            self._request_recalibration(end=k + 1)
        self.stats.operations += 1
        self.stats.communication_seconds += elapsed
        self.stats.history.append(
            OperationRecord(
                op="mapping", snapshot=k, root=-1, elapsed=elapsed,
                expected=expected, decision=decision,
                health=self.health_state.value,
            )
        )
        return mapping, elapsed
