"""Fleet sweeps: stack-block transport, shard planning, parity, counters.

The sweep path is PR 6's batched execution strategy: every cluster's
trailing window solves inside a stacked ``(B, m, n)`` loop, sharded
across workers through :class:`SharedStackBlock` segments. These tests
pin the transport round-trip, the deterministic shard plan, bit parity
between the serial oracle and the parallel run, worker-failure
surfacing, and that ``kernel.batch.*`` counters from batch-shard workers
fold into the fleet sink (``Instrumentation.merge``).
"""

import os
import pickle

import numpy as np
import pytest

from repro import sweep_fleet
from repro.cloudsim.trace import CalibrationTrace
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.errors import FleetError, ValidationError
from repro.fleet import (
    ClusterSpec,
    FleetConfig,
    FleetScheduler,
    SharedStackBlock,
)
from repro.observability import Instrumentation

pytestmark = pytest.mark.fleet

N_WORKERS = int(os.environ.get("REPRO_FLEET_WORKERS", "2"))

MB = 1024 * 1024


def _trace(seed, *, n_machines=6, n_snapshots=16, mask=False):
    trace = generate_trace(
        TraceConfig(n_machines=n_machines, n_snapshots=n_snapshots), seed=seed
    )
    if not mask:
        return trace
    rng = np.random.default_rng(seed)
    m = rng.random(trace.alpha.shape) > 0.1
    return CalibrationTrace(
        alpha=trace.alpha, beta=trace.beta, timestamps=trace.timestamps, mask=m
    )


def _clusters(n, **kwargs):
    return [ClusterSpec(name=f"c{i}", trace=_trace(50 + i, **kwargs)) for i in range(n)]


def _tps(n, *, seed0=50, mask=False, **kwargs):
    return [
        _trace(seed0 + i, mask=mask, **kwargs).tp_matrix(8 * MB) for i in range(n)
    ]


CFG = dict(batch_size=3, window=6)


class TestSharedStackBlock:
    def test_round_trip_unmasked(self):
        tps = _tps(3)
        with SharedStackBlock.create(tps) as block:
            attached = SharedStackBlock.attach(block.descriptor)
            try:
                rebuilt = attached.tp_matrices()
                assert len(rebuilt) == 3
                for orig, back in zip(tps, rebuilt):
                    assert np.array_equal(back.data, orig.data)
                    assert np.array_equal(back.timestamps, orig.timestamps)
                    assert back.n_machines == orig.n_machines
                    assert back.mask is None
            finally:
                attached.close()

    def test_round_trip_mixed_masks(self):
        tps = _tps(2, mask=True) + _tps(1, seed0=90)
        assert tps[0].mask is not None and tps[2].mask is None
        with SharedStackBlock.create(tps) as block:
            rebuilt = block.tp_matrices()
            assert np.array_equal(rebuilt[0].mask, tps[0].mask)
            assert np.array_equal(rebuilt[1].mask, tps[1].mask)
            # The unmasked slice travels as all-ones and normalizes back.
            assert rebuilt[2].mask is None
            assert np.array_equal(rebuilt[2].data, tps[2].data)

    def test_views_are_zero_copy(self):
        tps = _tps(2)
        with SharedStackBlock.create(tps) as block:
            for tp in block.tp_matrices():
                assert not tp.data.flags.owndata
                assert not tp.timestamps.flags.owndata

    def test_descriptor_is_small_and_picklable(self):
        tps = _tps(4)
        with SharedStackBlock.create(tps) as block:
            blob = pickle.dumps(block.descriptor)
            # The whole point: descriptors ship over queues, matrices don't.
            assert len(blob) < 1024
            desc = pickle.loads(blob)
            assert desc.batch == 4
            assert desc.nbytes >= 4 * tps[0].data.nbytes

    def test_attach_after_unlink_raises(self):
        block = SharedStackBlock.create(_tps(1))
        desc = block.descriptor
        block.unlink()
        with pytest.raises(FleetError, match="gone"):
            SharedStackBlock.attach(desc)

    def test_only_owner_may_unlink(self):
        with SharedStackBlock.create(_tps(1)) as block:
            attached = SharedStackBlock.attach(block.descriptor)
            try:
                with pytest.raises(FleetError, match="owner|creating"):
                    attached.unlink()
            finally:
                attached.close()

    def test_heterogeneous_stack_rejected(self):
        tps = _tps(1) + _tps(1, n_machines=5)
        with pytest.raises(ValidationError, match="shape-homogeneous"):
            SharedStackBlock.create(tps)

    def test_empty_stack_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            SharedStackBlock.create([])


class TestPlanSweep:
    def test_plan_is_deterministic_and_respects_batch_size(self):
        sched = FleetScheduler(_clusters(7), FleetConfig(**CFG))
        plan_a = sched.plan_sweep()
        plan_b = sched.plan_sweep()
        assert [s.names for s in plan_a] == [s.names for s in plan_b]
        assert [s.index for s in plan_a] == list(range(len(plan_a)))
        # 7 same-shape clusters at width 3 -> shards of 3, 3, 1.
        assert [len(s.names) for s in plan_a] == [3, 3, 1]
        assert sorted(n for s in plan_a for n in s.names) == [
            f"c{i}" for i in range(7)
        ]

    def test_plan_groups_by_shape(self):
        clusters = _clusters(3) + [
            ClusterSpec(name=f"w{i}", trace=_trace(80 + i, n_machines=8))
            for i in range(2)
        ]
        shards = FleetScheduler(clusters, FleetConfig(batch_size=4, window=6)).plan_sweep()
        for shard in shards:
            shapes = {tp.data.shape for tp in shard.tps}
            assert len(shapes) == 1  # a shard never mixes shapes
        assert {s.names for s in shards} == {("c0", "c1", "c2"), ("w0", "w1")}

    def test_plan_clamps_window_to_short_traces(self):
        clusters = [ClusterSpec(name="short", trace=_trace(9, n_snapshots=4))]
        shards = FleetScheduler(clusters, FleetConfig(**CFG)).plan_sweep()
        assert shards[0].tps[0].data.shape[0] == 4  # min(window=6, snapshots=4)


class TestSweepParity:
    def test_parallel_matches_serial_bitwise(self):
        clusters = _clusters(5) + [
            ClusterSpec(name="masked0", trace=_trace(70, mask=True)),
            ClusterSpec(name="masked1", trace=_trace(71, mask=True)),
        ]
        serial = sweep_fleet(clusters, serial=True, **CFG)
        parallel = sweep_fleet(clusters, n_workers=N_WORKERS, **CFG)
        assert parallel.n_workers == min(N_WORKERS, parallel.total_shards)
        assert set(serial.clusters) == set(parallel.clusters) == {
            c.name for c in clusters
        }
        for name, s in serial.clusters.items():
            p = parallel.clusters[name]
            assert np.array_equal(s.constant_row, p.constant_row)
            assert s.iterations == p.iterations
            assert s.rank == p.rank
            assert s.residual == p.residual
            assert s.norm_ne == p.norm_ne
            assert s.verdict == p.verdict

    def test_sweep_is_repeatable(self):
        clusters = _clusters(3)
        first = sweep_fleet(clusters, n_workers=N_WORKERS, **CFG)
        second = sweep_fleet(clusters, n_workers=N_WORKERS, **CFG)
        for name in first.clusters:
            assert np.array_equal(
                first.clusters[name].constant_row, second.clusters[name].constant_row
            )

    def test_worker_failure_surfaces_as_fleet_error(self):
        # An unknown solver passes FleetConfig but blows up inside the
        # worker's fallback; the scheduler must surface it as a FleetError
        # naming the shard and carrying the worker traceback.
        cfg = FleetConfig(n_workers=N_WORKERS, solver="no-such-solver", **CFG)
        with pytest.raises(FleetError, match="sweep shard") as exc_info:
            FleetScheduler(_clusters(2), cfg).run_sweep()
        assert "no-such-solver" in exc_info.value.worker_traceback


class TestSweepInstrumentation:
    def test_merge_folds_kernel_batch_counters(self):
        """Satellite regression: worker state_dicts carry kernel.batch.*
        counters and Instrumentation.merge accumulates them additively."""
        sink = Instrumentation("fleet")
        sink.count("kernel.batch.solves", 1)
        worker_state = {
            "name": "sweep-worker",
            "counters": {
                "kernel.batch.solves": 2,
                "kernel.batch.matrices": 6,
                "kernel.batch.dropout_iterations": 17,
            },
            "timers": {"kernel.batch.solve_seconds": 0.25},
            "spans": [],
        }
        sink.merge(worker_state)
        sink.merge(worker_state)
        assert sink.counters["kernel.batch.solves"] == 5
        assert sink.counters["kernel.batch.matrices"] == 12
        assert sink.counters["kernel.batch.dropout_iterations"] == 34
        assert sink.timers["kernel.batch.solve_seconds"] == pytest.approx(0.5)

    def test_parallel_sweep_ships_batch_counters_to_fleet_sink(self):
        sink = Instrumentation("fleet")
        clusters = _clusters(5)
        report = FleetScheduler(
            clusters, FleetConfig(n_workers=N_WORKERS, **CFG), instrumentation=sink
        ).run_sweep()
        # 5 clusters at width 3 -> 2 shards, each one batched solve in a
        # worker process; the counters must land in the parent sink.
        assert sink.counters["kernel.batch.solves"] == 2
        assert sink.counters["kernel.batch.matrices"] == 5
        assert sink.counters["fleet.sweep.shards"] == 2
        assert sink.counters["fleet.clusters"] == 5
        assert "kernel.batch.solve_seconds" in sink.timers
        # The report snapshot carries the merged state too.
        assert report.instrumentation["counters"]["kernel.batch.matrices"] == 5
        # One solve span per cluster window, shipped from the workers.
        assert sink.solves == 5

    def test_serial_sweep_records_same_counter_names(self):
        sink = Instrumentation("fleet-serial")
        FleetScheduler(
            _clusters(4), FleetConfig(**CFG), instrumentation=sink
        ).run_sweep_serial()
        assert sink.counters["kernel.batch.solves"] == 2
        assert sink.counters["kernel.batch.matrices"] == 4
        assert sink.counters["fleet.workers"] == 1
