"""Instance pricing and run-cost computation.

Defaults model 2013-era EC2 m1.medium on-demand pricing (USD 0.12/hour,
hourly billing granularity — the era the paper measured). Per-second
billing (modern clouds) is also supported, since it changes which
optimizations pay off: hourly billing quantizes savings, per-second billing
rewards every shaved second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from .._validation import check_nonnegative, check_positive

__all__ = ["BillingGranularity", "InstancePricing", "run_cost_usd"]


class BillingGranularity(Enum):
    """How the provider rounds billable time per instance."""

    HOURLY = "hourly"
    PER_MINUTE = "per_minute"
    PER_SECOND = "per_second"

    @property
    def quantum_seconds(self) -> float:
        return {"hourly": 3600.0, "per_minute": 60.0, "per_second": 1.0}[self.value]


@dataclass(frozen=True, slots=True)
class InstancePricing:
    """One instance type's price sheet.

    Attributes
    ----------
    usd_per_hour:
        On-demand hourly rate (m1.medium 2013 default).
    granularity:
        Billing rounding (2013 EC2 billed by the hour).
    minimum_seconds:
        Minimum billable duration per instance (some providers bill at
        least one quantum even for instant termination).
    """

    usd_per_hour: float = 0.12
    granularity: BillingGranularity = BillingGranularity.HOURLY
    minimum_seconds: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.usd_per_hour, "usd_per_hour")
        check_nonnegative(self.minimum_seconds, "minimum_seconds")

    def billable_seconds(self, elapsed_seconds: float) -> float:
        """Round *elapsed_seconds* up to the billing quantum."""
        check_nonnegative(elapsed_seconds, "elapsed_seconds")
        q = self.granularity.quantum_seconds
        clamped = max(elapsed_seconds, self.minimum_seconds)
        return math.ceil(clamped / q) * q if clamped > 0 else 0.0


def run_cost_usd(
    elapsed_seconds: float,
    n_instances: int,
    pricing: InstancePricing | None = None,
) -> float:
    """Total cost of running *n_instances* for *elapsed_seconds*."""
    if n_instances < 1:
        raise ValueError("n_instances must be >= 1")
    p = pricing if pricing is not None else InstancePricing()
    hours = p.billable_seconds(elapsed_seconds) / 3600.0
    return n_instances * hours * p.usd_per_hour
