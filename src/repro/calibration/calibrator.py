"""The calibrator: drive a measurement substrate through a pairing schedule.

A *measurement substrate* answers ping-pong probes — the trace replay
substrate reads the synthetic trace (optionally with measurement noise), the
netsim substrate (:mod:`repro.netsim.probe`) actually simulates the probe
flows. The calibrator walks the schedule round by round, assembles full
(α, β) matrices per snapshot, and stacks them into TP-matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from .._validation import check_nonnegative, check_probability
from ..cloudsim.trace import CalibrationTrace
from ..core.matrices import TPMatrix
from ..errors import CalibrationError
from ..observability import emit_count
from ..utils.seeding import spawn_rng
from .schedule import PairingSchedule, pairing_rounds

__all__ = [
    "MeasurementSubstrate",
    "TraceSubstrate",
    "SnapshotMeasurement",
    "Calibrator",
    "CalibratorWindowSource",
]


def _probe_ok(a_v: float, b_v: float) -> bool:
    """A probe answer is usable iff finite, α ≥ 0 and β > 0."""
    return bool(np.isfinite(a_v) and np.isfinite(b_v) and a_v >= 0 and b_v > 0)


@dataclass(frozen=True)
class SnapshotMeasurement:
    """One snapshot's (α, β) matrices plus what was actually observed.

    ``mask`` is ``True`` where a probe answered with a usable value (the
    diagonal is always ``True``); unobserved entries hold benign
    placeholders (α = 0, β = +inf, i.e. zero weight) that downstream
    consumers must ignore per the mask. ``retry_waves`` counts how many
    retry rounds were needed; ``backoff_seconds`` is the wall-clock cost
    those waves are modelled to have added.
    """

    alpha: np.ndarray
    beta: np.ndarray
    mask: np.ndarray
    retry_waves: int = 0
    backoff_seconds: float = 0.0

    @property
    def observed_fraction(self) -> float:
        """Fraction of off-diagonal entries that were measured."""
        n = self.mask.shape[0]
        off = ~np.eye(n, dtype=bool)
        total = int(off.sum())
        return float(self.mask[off].sum()) / total if total else 1.0

    @property
    def complete(self) -> bool:
        return bool(self.mask.all())


@runtime_checkable
class MeasurementSubstrate(Protocol):
    """Anything that can answer a batch of concurrent ping-pong probes."""

    @property
    def n_machines(self) -> int:
        """Number of machines probes may address."""
        ...

    def measure_round(
        self, pairs: tuple[tuple[int, int], ...], snapshot: int
    ) -> list[tuple[float, float]]:
        """Measure the given concurrent (sender, receiver) pairs.

        Returns one ``(alpha, beta)`` tuple per pair, in order. *snapshot*
        identifies the calibration epoch (trace row / simulation window).
        """
        ...


class TraceSubstrate:
    """Replay substrate: answers probes from a :class:`CalibrationTrace`.

    Parameters
    ----------
    trace:
        The ground-truth trace.
    measurement_noise:
        Relative σ of multiplicative lognormal measurement error added on
        top of the trace values (0 = exact replay).
    seed:
        Drives the measurement noise.
    """

    def __init__(
        self,
        trace: CalibrationTrace,
        *,
        measurement_noise: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        check_nonnegative(measurement_noise, "measurement_noise")
        self.trace = trace
        self.measurement_noise = float(measurement_noise)
        self._rng = spawn_rng(seed)

    @property
    def n_machines(self) -> int:
        return self.trace.n_machines

    @property
    def n_snapshots(self) -> int:
        """Number of snapshots this substrate can answer probes for."""
        return self.trace.n_snapshots

    def measure_round(
        self, pairs: tuple[tuple[int, int], ...], snapshot: int
    ) -> list[tuple[float, float]]:
        if not 0 <= snapshot < self.trace.n_snapshots:
            raise CalibrationError(
                f"snapshot {snapshot} outside trace of {self.trace.n_snapshots}"
            )
        out: list[tuple[float, float]] = []
        a = self.trace.alpha[snapshot]
        b = self.trace.beta[snapshot]
        for s, r in pairs:
            alpha, beta = float(a[s, r]), float(b[s, r])
            if self.measurement_noise > 0:
                alpha *= float(self._rng.lognormal(0.0, self.measurement_noise))
                beta *= float(self._rng.lognormal(0.0, self.measurement_noise))
            out.append((alpha, beta))
        return out


class Calibrator:
    """Assemble TP-matrices by driving a substrate through the schedule.

    Parameters
    ----------
    substrate:
        Where measurements come from.
    schedule:
        Pairing schedule; defaults to the circle method for the substrate's
        machine count.
    cache_snapshots:
        Memoize :meth:`calibrate_snapshot` results by snapshot index, so
        overlapping re-calibration windows re-*use* measurements instead of
        re-*taking* them (each snapshot costs ``2N`` probe rounds — paper
        Fig 4). With a noisy substrate the cached draw is what gets reused;
        that is the semantics of a rolling window over past measurements.
    resilient:
        Tolerate failed probes: :class:`CalibratorWindowSource` (and hence
        :meth:`engine`) reads snapshots through :meth:`measure_snapshot`,
        which retries failed probes and returns a masked measurement,
        instead of the strict :meth:`calibrate_snapshot`, which raises on
        the first bad answer. Off by default — the historical behavior.
    max_retries:
        Retry waves per snapshot in resilient mode. Each wave re-probes
        only the still-failed pairs; transient faults re-roll per attempt,
        persistent outages keep failing.
    retry_backoff:
        Modelled wall-clock seconds the first retry wave costs; each
        further wave doubles it. Accumulated in :attr:`retry_seconds` for
        overhead accounting.
    min_observed:
        Minimum off-diagonal observed fraction :meth:`measure_snapshot`
        accepts; below it the snapshot is rejected with
        :class:`~repro.errors.CalibrationError`. 0.0 accepts anything.
    """

    def __init__(
        self,
        substrate: MeasurementSubstrate,
        schedule: PairingSchedule | None = None,
        *,
        cache_snapshots: bool = False,
        resilient: bool = False,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        min_observed: float = 0.0,
    ) -> None:
        self.substrate = substrate
        n = substrate.n_machines
        self.schedule = schedule if schedule is not None else pairing_rounds(n)
        if self.schedule.n_machines != n:
            raise CalibrationError(
                f"schedule is for {self.schedule.n_machines} machines, "
                f"substrate has {n}"
            )
        self.cache_snapshots = bool(cache_snapshots)
        self.resilient = bool(resilient)
        if int(max_retries) < 0:
            raise CalibrationError("max_retries must be >= 0")
        self.max_retries = int(max_retries)
        check_nonnegative(retry_backoff, "retry_backoff")
        self.retry_backoff = float(retry_backoff)
        self.min_observed = check_probability(min_observed, "min_observed")
        self.retry_seconds = 0.0  # modelled backoff cost accumulated so far
        self._snapshot_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._measurement_cache: dict[int, SnapshotMeasurement] = {}

    def calibrate_snapshot(self, snapshot: int) -> tuple[np.ndarray, np.ndarray]:
        """Measure every ordered pair once; return full (α, β) matrices."""
        if self.cache_snapshots:
            cached = self._snapshot_cache.get(int(snapshot))
            if cached is not None:
                return cached
        n = self.substrate.n_machines
        alpha = np.zeros((n, n))
        beta = np.full((n, n), np.inf)
        for rnd in self.schedule.rounds:
            results = self.substrate.measure_round(rnd, snapshot)
            if len(results) != len(rnd):
                raise CalibrationError(
                    "substrate returned a result count mismatching the round"
                )
            for (s, r), (a_v, b_v) in zip(rnd, results):
                if not (a_v >= 0 and b_v > 0):
                    raise CalibrationError(
                        f"invalid measurement on pair {(s, r)}: α={a_v}, β={b_v}"
                    )
                alpha[s, r] = a_v
                beta[s, r] = b_v
        if self.cache_snapshots:
            alpha.setflags(write=False)
            beta.setflags(write=False)
            self._snapshot_cache[int(snapshot)] = (alpha, beta)
        return alpha, beta

    def measure_snapshot(self, snapshot: int) -> SnapshotMeasurement:
        """Measure one snapshot tolerantly: retry failures, mask what's left.

        The fault-aware counterpart to :meth:`calibrate_snapshot`. A probe
        that returns an unusable answer (NaN, negative α, non-positive β) is
        retried up to :attr:`max_retries` waves — each wave re-probing only
        the still-failed pairs — with exponentially growing modelled backoff
        charged to :attr:`retry_seconds`. Pairs that never answer are marked
        unobserved in the returned mask (placeholders α = 0, β = +inf).

        Raises
        ------
        CalibrationError
            When, after all retries, fewer than :attr:`min_observed` of the
            off-diagonal entries were measured.
        """
        if self.cache_snapshots:
            cached = self._measurement_cache.get(int(snapshot))
            if cached is not None:
                return cached
        n = self.substrate.n_machines
        alpha = np.zeros((n, n))
        beta = np.full((n, n), np.inf)
        mask = np.eye(n, dtype=bool)  # diagonal counts as observed
        failed: list[tuple[int, int]] = []
        for rnd in self.schedule.rounds:
            results = self.substrate.measure_round(rnd, snapshot)
            if len(results) != len(rnd):
                raise CalibrationError(
                    "substrate returned a result count mismatching the round"
                )
            for (s, r), (a_v, b_v) in zip(rnd, results):
                if _probe_ok(a_v, b_v):
                    alpha[s, r] = a_v
                    beta[s, r] = b_v
                    mask[s, r] = True
                else:
                    emit_count("calibrator.probe.failed")
                    failed.append((s, r))
        waves = 0
        backoff = 0.0
        while failed and waves < self.max_retries:
            waves += 1
            backoff += self.retry_backoff * 2.0 ** (waves - 1)
            emit_count("calibrator.probe.retried", len(failed))
            retry_pairs = tuple(failed)
            results = self.substrate.measure_round(retry_pairs, snapshot)
            if len(results) != len(retry_pairs):
                raise CalibrationError(
                    "substrate returned a result count mismatching the round"
                )
            failed = []
            for (s, r), (a_v, b_v) in zip(retry_pairs, results):
                if _probe_ok(a_v, b_v):
                    alpha[s, r] = a_v
                    beta[s, r] = b_v
                    mask[s, r] = True
                    emit_count("calibrator.probe.recovered")
                else:
                    failed.append((s, r))
        self.retry_seconds += backoff
        for s, r in failed:
            emit_count("calibrator.probe.lost")
        measurement = SnapshotMeasurement(
            alpha=alpha, beta=beta, mask=mask,
            retry_waves=waves, backoff_seconds=backoff,
        )
        if measurement.observed_fraction < self.min_observed:
            emit_count("calibrator.snapshot.rejected")
            raise CalibrationError(
                f"snapshot {snapshot}: only {measurement.observed_fraction:.1%} "
                f"of probes answered (< {self.min_observed:.1%} required) "
                f"after {waves} retry wave(s)"
            )
        if self.cache_snapshots:
            for arr in (alpha, beta, mask):
                arr.setflags(write=False)
            self._measurement_cache[int(snapshot)] = measurement
        return measurement

    def calibrate(
        self, snapshots: list[int] | range, nbytes: float
    ) -> TPMatrix:
        """Calibrate the listed snapshots into a TP-matrix of link weights."""
        check_nonnegative(nbytes, "nbytes")
        snaps = list(snapshots)
        if not snaps:
            raise CalibrationError("at least one snapshot is required")
        n = self.substrate.n_machines
        off = ~np.eye(n, dtype=bool)
        rows = np.empty((len(snaps), n * n))
        for i, k in enumerate(snaps):
            alpha, beta = self.calibrate_snapshot(k)
            w = np.zeros((n, n))
            w[off] = alpha[off] + nbytes / beta[off]
            rows[i] = w.ravel()
        return TPMatrix(
            data=rows, n_machines=n, timestamps=np.asarray(snaps, dtype=np.float64)
        )

    def engine(self, *, nbytes: float, n_snapshots: int | None = None, **kwargs):
        """A :class:`~repro.core.engine.DecompositionEngine` over this calibrator.

        The engine reads snapshots through :class:`CalibratorWindowSource`,
        so rolling re-calibration windows share measurements (enable
        ``cache_snapshots`` to also avoid re-probing) and warm-start their
        solves. *n_snapshots* bounds the addressable snapshot range; it
        defaults to the substrate's own ``n_snapshots`` when it has one.
        Remaining keyword arguments go to the engine constructor
        (``time_step``, ``solver``, ``warm_start``, ...).
        """
        from ..core.engine import DecompositionEngine

        source = CalibratorWindowSource(self, n_snapshots=n_snapshots)
        return DecompositionEngine(source, nbytes=nbytes, **kwargs)


class CalibratorWindowSource:
    """Adapt a :class:`Calibrator` to :class:`repro.core.engine.WindowSource`.

    Each snapshot row is assembled with the same elementwise operations
    :meth:`Calibrator.calibrate` uses, so engine windows are byte-identical
    to direct ``calibrate(range(start, stop), nbytes)`` calls (given the
    same measurement draws — use ``cache_snapshots=True`` on a noisy
    substrate to pin them). Snapshot indices double as timestamps, matching
    :meth:`Calibrator.calibrate`.

    In resilient mode (``Calibrator(resilient=True)``) rows come from
    :meth:`Calibrator.measure_snapshot` instead: failed probes are retried
    and what remains unanswered is reported through :meth:`snapshot_mask`
    (the engine reads the mask right after the row for the same snapshot;
    the measurement is memoized so both views come from the same draws).
    """

    def __init__(self, calibrator: Calibrator, n_snapshots: int | None = None) -> None:
        self.calibrator = calibrator
        if n_snapshots is None:
            n_snapshots = getattr(calibrator.substrate, "n_snapshots", None)
        if n_snapshots is None:
            raise CalibrationError(
                "substrate does not expose n_snapshots; pass it explicitly"
            )
        if int(n_snapshots) < 1:
            raise CalibrationError("n_snapshots must be >= 1")
        self._n_snapshots = int(n_snapshots)
        n = calibrator.substrate.n_machines
        self._off = ~np.eye(n, dtype=bool)
        self._last: tuple[int, SnapshotMeasurement] | None = None

    @property
    def n_machines(self) -> int:
        return int(self.calibrator.substrate.n_machines)

    @property
    def n_snapshots(self) -> int:
        return self._n_snapshots

    def _measure(self, k: int) -> SnapshotMeasurement:
        if self._last is not None and self._last[0] == int(k):
            return self._last[1]
        measurement = self.calibrator.measure_snapshot(int(k))
        self._last = (int(k), measurement)
        return measurement

    def snapshot_row(self, k: int, nbytes: float) -> np.ndarray:
        if self.calibrator.resilient:
            m = self._measure(k)
            alpha, beta = m.alpha, m.beta
        else:
            alpha, beta = self.calibrator.calibrate_snapshot(k)
        w = np.zeros_like(alpha)
        w[self._off] = alpha[self._off] + nbytes / beta[self._off]
        return w.ravel()

    def snapshot_mask(self, k: int) -> np.ndarray | None:
        """Observation mask of the memoized measurement (resilient mode)."""
        if not self.calibrator.resilient:
            return None
        m = self._measure(k)
        return None if m.complete else m.mask.reshape(-1).copy()

    def timestamp(self, k: int) -> float:
        return float(k)
