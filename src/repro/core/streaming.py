"""Online/streaming RPCA: fold one snapshot into the decomposition in O(row).

Algorithm 1 re-solves a full ``time_step × N²`` window on every
re-calibration, but a service ingesting live calibration data sees exactly
one new snapshot per operation: the window slides by a single row. The
:class:`StreamingDecomposer` exploits that — it keeps the current low-rank
component factored as ``L = coeffs · basis`` (``basis``: ``r × N²``
orthonormal rows, ``coeffs``: ``time_step × r``) plus the sparse component
``S``, and folds each arriving snapshot with work linear in the row:

1. **Robust projection** — alternate a least-squares projection of the new
   row onto ``basis`` with MAD-scaled soft-thresholding of the residual, so
   transient interference lands in the sparse term instead of polluting the
   subspace (the streaming analogue of RPCA's ``D`` / ``E`` split).
2. **Rank-1 subspace update** — when the *unexplained* residual (neither in
   the subspace nor absorbed as sparse) is large, the normalized residual is
   appended as a new basis direction. Growth is bounded by the kernel
   layer's :class:`~repro.core.kernels.RankPredictor`: exceeding its
   predicted rank means the subspace itself has moved, which is a batch
   solver's job — the fold reports a ``"rank"`` fallback instead.
3. **Sliding window** — the oldest row's coefficients and sparse row drop
   off; per-row unexplained residuals slide along with them and their mean
   is the **drift** of the streaming model. Drift past the configured
   tolerance reports a ``"drift"`` fallback.
4. **Periodic re-orthonormalization** — every ``refresh_every`` folds the
   reconstruction ``coeffs · basis`` (a ``time_step × N²`` matrix with
   ``time_step ≈ 10`` rows — a thin SVD is trivial) is re-factored, rank-1
   growth directions are merged or shrunk away, and the rank predictor
   observes the surviving rank. The reconstruction buffer comes from a
   :class:`~repro.core.kernels.SolveWorkspace`, so steady-state folds
   allocate no new ``m × n`` temporaries.

The streaming path is an *approximation in service*, never an oracle: the
engine seeds it from a **cold** batch solve, and any fallback (rank growth,
drift, masked row, regime shift upstream) routes back to another cold batch
solve — bit-identical to :func:`~repro.core.decompose.decompose` on the
same window, which is what "certified fallback" means. To keep that
certification airtight, a fold's in-service result is deliberately *not* a
:class:`~repro.core.result.SolverResult`:
:func:`~repro.core.decompose.decomposition_from_result` therefore stores
``solver_result=None`` and no batch solve can ever warm-start from
streaming state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..errors import ValidationError
from ..observability import emit_count
from .elementwise import ElementwiseKernel
from .kernels import RankPredictor, SolveWorkspace

__all__ = [
    "ENGINE_MODES",
    "StreamingConfig",
    "StreamResult",
    "StreamState",
    "StreamingDecomposer",
    "stream_state_from_payload",
    "stream_state_to_payload",
    "validate_mode",
]

ENGINE_MODES = ("batch", "streaming")

# Guard against division by an all-zero snapshot row; weight rows are
# strictly positive off-diagonal in practice.
_TINY = 1e-300

# MAD → σ for Gaussian noise; ×3 puts the shrinkage threshold at the
# conventional 3σ outlier boundary.
_MAD_SIGMA = 1.4826
_TAU_SIGMAS = 3.0

# Singular values below this fraction of σ₁ are dropped at refresh — far
# below any structure RPCA could certify, so the truncation is lossless for
# every consumer of the reconstruction.
_REFRESH_RTOL = 1e-9


def validate_mode(mode: str) -> str:
    """Return *mode* if it names a known engine mode, else raise."""
    if mode not in ENGINE_MODES:
        raise ValidationError(
            f"unknown engine mode {mode!r}; available: {list(ENGINE_MODES)}"
        )
    return mode


@dataclass(frozen=True)
class StreamingConfig:
    """Knobs of the streaming path (engine/session spell the first two
    ``stream_tolerance`` / ``stream_refresh_every``).

    Attributes
    ----------
    tolerance:
        Drift ceiling: when the window-mean relative L1 unexplained
        residual of the streaming model exceeds it, the next fold reports a
        ``"drift"`` fallback and the engine re-solves cold.
    refresh_every:
        Re-orthonormalization cadence in folds.
    passes:
        Projection/shrinkage alternations per fold (2 is enough for the
        near-rank-one subspaces TP-matrices have).
    growth_tol:
        Relative unexplained residual of a *single* row above which a
        rank-1 subspace expansion is attempted.
    """

    tolerance: float = 0.25
    refresh_every: int = 16
    passes: int = 2
    growth_tol: float = 0.1

    def __post_init__(self) -> None:
        if not self.tolerance > 0.0:
            raise ValidationError("stream tolerance must be > 0")
        if int(self.refresh_every) < 1:
            raise ValidationError("stream refresh_every must be >= 1")
        if int(self.passes) < 1:
            raise ValidationError("passes must be >= 1")
        if not self.growth_tol >= 0.0:
            raise ValidationError("growth_tol must be >= 0")
        object.__setattr__(self, "refresh_every", int(self.refresh_every))
        object.__setattr__(self, "passes", int(self.passes))


@dataclass(frozen=True)
class StreamResult:
    """Duck-typed solver result of one streaming fold.

    Field-compatible with :class:`~repro.core.result.SolverResult` but
    deliberately a distinct type:
    :func:`~repro.core.decompose.decomposition_from_result` stores
    ``solver_result=None`` for anything that is not a real
    :class:`~repro.core.result.SolverResult`, so a streaming decomposition
    can never seed a warm start and every batch solve in streaming mode
    stays a certified cold solve.
    """

    low_rank: np.ndarray
    sparse: np.ndarray
    rank: int
    iterations: int
    converged: bool
    residual: float
    constant_row: np.ndarray | None = None
    warm_started: bool = True

    @property
    def shape(self) -> tuple[int, int]:
        return self.low_rank.shape  # type: ignore[return-value]


@dataclass
class StreamState:
    """Picklable subspace state of a :class:`StreamingDecomposer`.

    Plain float64/int64 numpy arrays plus scalars, so the state round-trips
    bit-identically through the checkpoint array channel (and through
    ``pickle`` inside a :class:`~repro.runtime.session.SessionCapsule`).
    """

    basis: np.ndarray  # (r, n) orthonormal rows
    coeffs: np.ndarray  # (m, r)
    sparse: np.ndarray  # (m, n)
    keys: np.ndarray  # (m,) int64 snapshot indices, window order
    row_err: np.ndarray  # (m,) relative L1 unexplained residual per row
    end: int  # window is [end - m, end)
    updates: int = 0  # folds since seed (drives the refresh cadence)
    predictor: RankPredictor = field(
        default_factory=lambda: RankPredictor(min_dim=1)
    )

    @property
    def rank(self) -> int:
        return int(self.basis.shape[0])

    @property
    def drift(self) -> float:
        """Window-mean relative unexplained residual of the model."""
        return float(self.row_err.mean())


def _rel_l1(x: np.ndarray, ref: np.ndarray) -> float:
    return float(np.abs(x).sum() / max(np.abs(ref).sum(), _TINY))


def _robust_tau(resid: np.ndarray) -> float:
    """MAD-scaled shrinkage threshold: 3σ̂ of the residual's noise floor."""
    med = np.median(resid)
    mad = np.median(np.abs(resid - med))
    return _TAU_SIGMAS * _MAD_SIGMA * float(mad)


class StreamingDecomposer:
    """Rank-1 incremental RPCA over a sliding snapshot window.

    Owns the :class:`StreamState` between folds plus the per-shape scratch
    (a :class:`~repro.core.kernels.SolveWorkspace` for the reconstruction
    buffer). One decomposer serves one window shape; the engine reseeds it
    from every batch solve and drops its state on any fallback.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        config: StreamingConfig | None = None,
        *,
        elementwise_backend: str = "reference",
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.config = config if config is not None else StreamingConfig()
        self.workspace = SolveWorkspace(self.shape)
        # Per-fold shrinkage routes through the elementwise layer; the
        # ``reference`` spelling is the historical soft_threshold, bit for
        # bit, and fused/jit reuse kernel scratch rows (safe: the window
        # slide copies the shrunk row via np.vstack).
        self._ew = ElementwiseKernel(elementwise_backend)
        self.elementwise_backend = self._ew.backend
        self.state: StreamState | None = None

    # -- seeding -----------------------------------------------------------
    def seed(
        self,
        *,
        end: int,
        data: np.ndarray,
        low_rank: np.ndarray,
        sparse: np.ndarray,
    ) -> StreamState:
        """(Re)initialize streaming state from a batch solve of ``data``.

        ``low_rank``/``sparse`` are the solver's ``D``/``E`` for the window
        ``[end - m, end)`` whose rows are ``data``. The thin SVD here is of
        an ``m × n`` matrix with ``m ≈ 10`` rows — trivial next to the
        solve that produced it.
        """
        m, n = self.shape
        if data.shape != (m, n):
            raise ValidationError(
                f"seed window shape {data.shape} != decomposer shape {self.shape}"
            )
        u, s, vt = np.linalg.svd(np.asarray(low_rank, dtype=np.float64),
                                 full_matrices=False)
        if s.size and s[0] > 0.0:
            r = max(1, int((s > s[0] * _REFRESH_RTOL).sum()))
        else:
            r = 1
        basis = vt[:r].copy()
        coeffs = (u[:, :r] * s[:r]).copy()
        sparse = np.asarray(sparse, dtype=np.float64).copy()
        unexplained = data - low_rank - sparse
        row_err = np.array(
            [_rel_l1(unexplained[i], data[i]) for i in range(m)]
        )
        predictor = RankPredictor.for_shape(self.shape)
        predictor.observe(r)
        self.state = StreamState(
            basis=basis,
            coeffs=coeffs,
            sparse=sparse,
            keys=np.arange(end - m, end, dtype=np.int64),
            row_err=row_err,
            end=int(end),
            updates=0,
            predictor=predictor,
        )
        emit_count("kernel.stream.reseeds")
        return self.state

    # -- persistence -------------------------------------------------------
    def export_state(self) -> StreamState | None:
        """Current state (None when unseeded); arrays are shared, not copied."""
        return self.state

    def import_state(self, state: StreamState | None) -> None:
        """Adopt a state captured by :meth:`export_state` (possibly after a
        checkpoint round-trip); subsequent folds are bit-identical to the
        exporting decomposer's."""
        if state is None:
            self.state = None
            return
        if state.basis.shape[1] != self.shape[1] or (
            state.coeffs.shape[0] != self.shape[0]
        ):
            raise ValidationError(
                f"stream state for window {state.sparse.shape} does not fit "
                f"decomposer shape {self.shape}"
            )
        self.state = replace(
            state,
            basis=np.asarray(state.basis, dtype=np.float64),
            coeffs=np.asarray(state.coeffs, dtype=np.float64),
            sparse=np.asarray(state.sparse, dtype=np.float64),
            keys=np.asarray(state.keys, dtype=np.int64),
            row_err=np.asarray(state.row_err, dtype=np.float64),
        )

    # -- folding -----------------------------------------------------------
    def fold(self, key: int, row: np.ndarray) -> str | None:
        """Fold snapshot *key* (= window end ``key + 1``) into the model.

        Returns ``None`` on success — the state now covers the slid window
        — or a fallback reason (``"rank"`` / ``"drift"``) with the state
        cleared, in which case the caller must batch-solve and reseed.
        """
        st = self.state
        if st is None:
            raise ValidationError("streaming state not seeded; calibrate first")
        cfg = self.config
        y = np.asarray(row, dtype=np.float64)

        v, s_row, resid = self._project(y, st.basis, cfg.passes)
        unexplained = resid - s_row
        rel = _rel_l1(unexplained, y)
        if rel > cfg.growth_tol:
            if st.rank + 1 > st.predictor.predict():
                # The subspace itself has moved past the predicted rank —
                # structural change, the batch oracle's job.
                self.state = None
                return "rank"
            q = unexplained - (unexplained @ st.basis.T) @ st.basis
            nq = float(np.linalg.norm(q))
            if nq > _TINY:
                st.basis = np.vstack([st.basis, q / nq])
                st.coeffs = np.hstack(
                    [st.coeffs, np.zeros((st.coeffs.shape[0], 1))]
                )
                emit_count("kernel.stream.rank_growths")
                v, s_row, resid = self._project(y, st.basis, 1)
                rel = _rel_l1(resid - s_row, y)

        # Slide the window: oldest row out, new row in.
        st.coeffs = np.vstack([st.coeffs[1:], v[None, :]])
        st.sparse = np.vstack([st.sparse[1:], s_row[None, :]])
        st.keys = np.append(st.keys[1:], np.int64(key))
        st.row_err = np.append(st.row_err[1:], rel)
        st.end = int(key) + 1
        st.updates += 1
        if st.updates % cfg.refresh_every == 0:
            self._refresh(st)
        if st.drift > cfg.tolerance:
            self.state = None
            return "drift"
        return None

    def _project(
        self, y: np.ndarray, basis: np.ndarray, passes: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Alternate subspace projection and robust shrinkage for one row."""
        s_row = np.zeros_like(y)
        v = resid = y  # placeholders; passes >= 1 always overwrites
        for _ in range(passes):
            v = (y - s_row) @ basis.T
            resid = y - v @ basis
            s_row = self._ew.shrink(resid, _robust_tau(resid))
        return v, s_row, resid

    def _refresh(self, st: StreamState) -> None:
        """Re-orthonormalize the factorization; shrink merged-away rank.

        Exact up to dropping singular values below ``1e-9 σ₁``; per-row
        residuals keep their fold-time values (the truncation is orders of
        magnitude below the drift tolerance).
        """
        recon = np.matmul(st.coeffs, st.basis, out=self.workspace.buf("recon"))
        u, s, vt = np.linalg.svd(recon, full_matrices=False)
        if s.size and s[0] > 0.0:
            r = max(1, int((s > s[0] * _REFRESH_RTOL).sum()))
        else:
            r = 1
        st.basis = vt[:r].copy()
        st.coeffs = (u[:, :r] * s[:r]).copy()
        st.predictor.observe(r)
        emit_count("kernel.stream.refreshes")

    # -- in-service result -------------------------------------------------
    def as_result(self) -> StreamResult:
        """The current model as a duck-typed solver result.

        ``low_rank`` is materialized into the workspace's reconstruction
        buffer — valid until the next fold/refresh, which is fine: nothing
        retains a streaming ``low_rank`` (``solver_result`` is ``None`` on
        the decomposition built from it).
        """
        st = self.state
        if st is None:
            raise ValidationError("streaming state not seeded; calibrate first")
        recon = np.matmul(st.coeffs, st.basis, out=self.workspace.buf("recon"))
        return StreamResult(
            low_rank=recon,
            sparse=st.sparse,
            rank=st.rank,
            iterations=self.config.passes,
            converged=True,
            residual=st.drift,
        )


def stream_state_to_payload(
    state: StreamState,
) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Split a :class:`StreamState` into checkpoint arrays + JSON metadata.

    Float64/int64 arrays travel the (bit-exact) array channel; scalars and
    the rank-predictor state travel the JSON channel. Inverse:
    :func:`stream_state_from_payload`.
    """
    arrays = {
        "stream_basis": state.basis,
        "stream_coeffs": state.coeffs,
        "stream_sparse": state.sparse,
        "stream_keys": state.keys,
        "stream_row_err": state.row_err,
    }
    meta = {
        "end": int(state.end),
        "updates": int(state.updates),
        "predictor": {
            "min_dim": int(state.predictor.min_dim),
            "sv": int(state.predictor.sv),
            "growth": float(state.predictor.growth),
            "observations": int(state.predictor.observations),
        },
    }
    return arrays, meta


def stream_state_from_payload(
    arrays: dict[str, np.ndarray], meta: dict[str, Any]
) -> StreamState:
    """Rebuild a :class:`StreamState` from :func:`stream_state_to_payload`."""
    pred = meta["predictor"]
    return StreamState(
        basis=np.asarray(arrays["stream_basis"], dtype=np.float64),
        coeffs=np.asarray(arrays["stream_coeffs"], dtype=np.float64),
        sparse=np.asarray(arrays["stream_sparse"], dtype=np.float64),
        keys=np.asarray(arrays["stream_keys"], dtype=np.int64),
        row_err=np.asarray(arrays["stream_row_err"], dtype=np.float64),
        end=int(meta["end"]),
        updates=int(meta["updates"]),
        predictor=RankPredictor(
            min_dim=int(pred["min_dim"]),
            sv=int(pred["sv"]),
            growth=float(pred["growth"]),
            observations=int(pred["observations"]),
        ),
    )
