"""Pricing communication trees under the α-β model.

All four collectives of the paper share one cost structure:

* **broadcast / scatter** flow root→leaves: a parent, once it holds the
  data, sends to its children sequentially (store-and-forward).
* **reduce / gather** are the duals — leaves→root, a parent receives from
  its children sequentially, each receive gated by the child having
  finished its own subtree.

Scatter/gather move *per-node blocks*: the message on edge (u, c) carries
``subtree_size(c)`` blocks. Broadcast/reduce move the full message on every
edge. These four functions evaluate a tree against *any* (α, β) snapshot —
the one the tree was optimized for, or the live one during replay — which is
exactly the expected-vs-real comparison Algorithm 1's maintenance needs.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_square_matrix, check_nonnegative
from ..errors import ValidationError
from .trees import CommTree

__all__ = [
    "broadcast_time",
    "scatter_time",
    "scatterv_time",
    "reduce_time",
    "gather_time",
    "gatherv_time",
    "collective_time",
    "weights_to_alphabeta",
]


def weights_to_alphabeta(
    weights: np.ndarray, nbytes: float
) -> tuple[np.ndarray, np.ndarray]:
    """Interpret a weight matrix as pure-bandwidth (α=0) link parameters.

    Useful for pricing a tree directly from an optimizer's weight matrix:
    ``β = nbytes / w`` reproduces ``w`` as the transfer time of *nbytes*.
    """
    w = as_square_matrix(weights, "weights")
    check_nonnegative(nbytes, "nbytes")
    n = w.shape[0]
    off = ~np.eye(n, dtype=bool)
    if np.any(w[off] <= 0):
        raise ValidationError("weights must be positive off-diagonal")
    beta = np.full_like(w, np.inf)
    beta[off] = nbytes / w[off]
    alpha = np.zeros_like(w)
    return alpha, beta


def _check_inputs(
    tree: CommTree, alpha: np.ndarray, beta: np.ndarray, nbytes: float
) -> tuple[np.ndarray, np.ndarray]:
    a = as_square_matrix(alpha, "alpha")
    b = np.asarray(beta, dtype=np.float64)
    if b.shape != a.shape:
        raise ValidationError("alpha/beta shape mismatch")
    if a.shape[0] != tree.n_nodes:
        raise ValidationError(
            f"matrix size {a.shape[0]} does not match tree size {tree.n_nodes}"
        )
    check_nonnegative(nbytes, "nbytes")
    return a, b


def _edge_cost(
    alpha: np.ndarray, beta: np.ndarray, src: int, dst: int, nbytes: float
) -> float:
    b = beta[src, dst]
    if not b > 0:
        raise ValidationError(f"non-positive bandwidth on link ({src}, {dst})")
    return float(alpha[src, dst] + nbytes / b)


def broadcast_time(
    tree: CommTree, alpha: np.ndarray, beta: np.ndarray, nbytes: float
) -> float:
    """Completion time of a broadcast of *nbytes* along *tree*."""
    a, b = _check_inputs(tree, alpha, beta, nbytes)
    arrival = np.zeros(tree.n_nodes)
    order = [tree.root]
    for u in order:
        t_free = arrival[u]
        for c in tree.children[u]:
            t_free += _edge_cost(a, b, u, c, nbytes)
            arrival[c] = t_free
            order.append(c)
    return float(arrival.max())


def scatter_time(
    tree: CommTree, alpha: np.ndarray, beta: np.ndarray, block_bytes: float
) -> float:
    """Completion time of a scatter with *block_bytes* per destination node.

    On edge (u, c) the parent forwards the blocks of c's entire subtree.
    """
    a, b = _check_inputs(tree, alpha, beta, block_bytes)
    sizes = tree.subtree_sizes()
    arrival = np.zeros(tree.n_nodes)
    order = [tree.root]
    for u in order:
        t_free = arrival[u]
        for c in tree.children[u]:
            t_free += _edge_cost(a, b, u, c, block_bytes * sizes[c])
            arrival[c] = t_free
            order.append(c)
    return float(arrival.max())


def _subtree_payloads(tree: CommTree, block_sizes: np.ndarray) -> np.ndarray:
    """Per-node payload of its entire subtree (vector-collective edges)."""
    sizes = np.asarray(block_sizes, dtype=np.float64).ravel()
    if sizes.size != tree.n_nodes:
        raise ValidationError("block_sizes must have one entry per node")
    if np.any(sizes < 0):
        raise ValidationError("block_sizes must be non-negative")
    payload = sizes.copy()
    order = [tree.root]
    for u in order:
        order.extend(tree.children[u])
    for u in reversed(order):
        for c in tree.children[u]:
            payload[u] += payload[c]
    return payload


def scatterv_time(
    tree: CommTree, alpha: np.ndarray, beta: np.ndarray, block_sizes: np.ndarray
) -> float:
    """Scatter with per-destination block sizes (MPI's ``Scatterv``).

    ``block_sizes[i]`` is the payload destined for node *i*; the edge to a
    child carries the total of its subtree's blocks.
    """
    a, b = _check_inputs(tree, alpha, beta, 0.0)
    payload = _subtree_payloads(tree, block_sizes)
    arrival = np.zeros(tree.n_nodes)
    order = [tree.root]
    for u in order:
        t_free = arrival[u]
        for c in tree.children[u]:
            t_free += _edge_cost(a, b, u, c, payload[c])
            arrival[c] = t_free
            order.append(c)
    return float(arrival.max())


def gatherv_time(
    tree: CommTree, alpha: np.ndarray, beta: np.ndarray, block_sizes: np.ndarray
) -> float:
    """Gather with per-source block sizes (MPI's ``Gatherv``)."""
    a, b = _check_inputs(tree, alpha, beta, 0.0)
    payload = _subtree_payloads(tree, block_sizes)
    return _fan_in_time(tree, a, b, payload)


def _fan_in_time(
    tree: CommTree,
    alpha: np.ndarray,
    beta: np.ndarray,
    edge_bytes: np.ndarray,
) -> float:
    """Shared leaves→root schedule for reduce/gather.

    ``edge_bytes[c]`` is the payload on the edge child→parent. Receives at a
    parent are sequential in reverse send order (the dual schedule); each is
    gated by the child having finished its own fan-in.
    """
    n = tree.n_nodes
    finish = np.zeros(n)
    order = [tree.root]
    for u in order:
        order.extend(tree.children[u])
    for u in reversed(order):
        t = 0.0
        for c in reversed(tree.children[u]):
            t = max(t, float(finish[c])) + _edge_cost(alpha, beta, c, u, edge_bytes[c])
        finish[u] = t
    return float(finish[tree.root])


def reduce_time(
    tree: CommTree, alpha: np.ndarray, beta: np.ndarray, nbytes: float
) -> float:
    """Completion time of a reduce of *nbytes* along *tree* (dual of broadcast)."""
    a, b = _check_inputs(tree, alpha, beta, nbytes)
    edge_bytes = np.full(tree.n_nodes, float(nbytes))
    return _fan_in_time(tree, a, b, edge_bytes)


def gather_time(
    tree: CommTree, alpha: np.ndarray, beta: np.ndarray, block_bytes: float
) -> float:
    """Completion time of a gather with *block_bytes* per node (dual of scatter)."""
    a, b = _check_inputs(tree, alpha, beta, block_bytes)
    sizes = tree.subtree_sizes().astype(np.float64)
    edge_bytes = sizes * float(block_bytes)
    return _fan_in_time(tree, a, b, edge_bytes)


_DISPATCH = {
    "broadcast": broadcast_time,
    "scatter": scatter_time,
    "reduce": reduce_time,
    "gather": gather_time,
}


def collective_time(
    op: str, tree: CommTree, alpha: np.ndarray, beta: np.ndarray, nbytes: float
) -> float:
    """Dispatch to the named collective's pricing function.

    For broadcast/reduce *nbytes* is the full message size; for
    scatter/gather it is the per-node block size.
    """
    try:
        fn = _DISPATCH[op]
    except KeyError:
        raise ValueError(f"unknown collective {op!r}; one of {sorted(_DISPATCH)}") from None
    return fn(tree, alpha, beta, nbytes)
