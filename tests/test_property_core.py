"""Property-based tests (hypothesis) for the core RPCA machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.matrices import PerformanceMatrix, TCMatrix, TPMatrix
from repro.core.metrics import pseudo_l0_norm, relative_difference, relative_error_norm
from repro.core.row_constant import row_constant_decomposition
from repro.core.svd_ops import singular_value_threshold, soft_threshold

finite_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 8), st.integers(2, 12)),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False, width=64),
)

taus = st.floats(0.0, 50.0, allow_nan=False)


class TestSoftThresholdProperties:
    @given(finite_matrices, taus)
    def test_shrinkage_bound(self, x, tau):
        out = soft_threshold(x, tau)
        assert np.all(np.abs(out) <= np.maximum(np.abs(x) - tau, 0.0) + 1e-12)

    @given(finite_matrices, taus)
    def test_distance_at_most_tau(self, x, tau):
        out = soft_threshold(x, tau)
        assert np.all(np.abs(out - x) <= tau + 1e-12)

    @given(finite_matrices)
    def test_idempotent_at_zero(self, x):
        np.testing.assert_array_equal(soft_threshold(x, 0.0), x)


class TestSVTProperties:
    @given(finite_matrices, st.floats(0.0, 20.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_nuclear_norm_shrinks(self, a, tau):
        d, rank, _ = singular_value_threshold(a, tau)
        s_a = np.linalg.svd(a, compute_uv=False)
        s_d = np.linalg.svd(d, compute_uv=False)
        assert s_d.sum() <= s_a.sum() + 1e-8
        assert rank <= min(a.shape)

    @given(finite_matrices, st.floats(0.0, 20.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_singular_values_shifted(self, a, tau):
        d, _, _ = singular_value_threshold(a, tau)
        s_a = np.linalg.svd(a, compute_uv=False)
        s_d = np.linalg.svd(d, compute_uv=False)
        expected = np.maximum(s_a - tau, 0.0)
        np.testing.assert_allclose(np.sort(s_d), np.sort(expected), atol=1e-7)


class TestRowConstantProperties:
    @given(finite_matrices)
    @settings(max_examples=60)
    def test_exact_additive_split(self, a):
        res = row_constant_decomposition(a)
        np.testing.assert_allclose(res.low_rank + res.sparse, a, atol=1e-10)

    @given(finite_matrices)
    @settings(max_examples=60)
    def test_l1_optimality_vs_mean(self, a):
        # The median row never loses to the mean row in L1.
        res = row_constant_decomposition(a)
        err_median = np.abs(a - res.constant_row).sum()
        err_mean = np.abs(a - a.mean(axis=0)).sum()
        assert err_median <= err_mean + 1e-9

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(1, 10)),
            elements=st.floats(0.1, 100, allow_nan=False, width=64),
        ),
        st.integers(2, 7),
    )
    @settings(max_examples=40)
    def test_row_constant_input_recovered(self, row_mat, n_rows):
        row = row_mat[0]
        a = np.tile(row, (n_rows, 1))
        res = row_constant_decomposition(a)
        np.testing.assert_allclose(res.constant_row, row)
        np.testing.assert_allclose(res.sparse, 0.0, atol=1e-12)


class TestMetricProperties:
    @given(finite_matrices)
    def test_relative_error_norm_self_is_one(self, a):
        if np.abs(a).sum() > 0:
            assert relative_error_norm(a, a) == 1.0

    @given(finite_matrices, st.floats(0.1, 10.0, allow_nan=False))
    def test_relative_error_norm_scale_invariant(self, a, c):
        if np.abs(a).sum() == 0:
            return
        e = a * 0.3
        assert np.isclose(
            relative_error_norm(e, a), relative_error_norm(e * c, a * c)
        )

    @given(finite_matrices)
    def test_pseudo_l0_bounds(self, a):
        n = pseudo_l0_norm(a)
        assert 0 <= n <= a.size

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(1, 30),
            elements=st.floats(-50, 50, allow_nan=False, width=64),
        )
    )
    def test_relative_difference_identity(self, v):
        assert relative_difference(v, v) == 0.0


class TestMatrixRoundtripProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(2, 7).map(lambda n: (n, n)),
            elements=st.floats(0.1, 100, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=60)
    def test_flatten_roundtrip(self, w):
        np.fill_diagonal(w, 0.0)
        pm = PerformanceMatrix(weights=w)
        back = PerformanceMatrix.from_flat(pm.flatten())
        np.testing.assert_array_equal(back.weights, pm.weights)

    @given(st.integers(2, 6), st.integers(1, 8))
    def test_tc_matrix_rank(self, n, rows):
        rng = np.random.default_rng(0)
        row = rng.uniform(0.5, 2.0, size=n * n)
        tc = TCMatrix(row=row, n_rows=rows, n_machines=n)
        assert np.linalg.matrix_rank(tc.as_matrix()) == 1

    @given(st.integers(2, 6), st.integers(2, 9))
    def test_tp_head_preserves_rows(self, n, rows):
        rng = np.random.default_rng(1)
        tp = TPMatrix(data=rng.uniform(0.1, 1, size=(rows, n * n)), n_machines=n)
        h = tp.head(rows - 1)
        np.testing.assert_array_equal(h.data, tp.data[: rows - 1])
