"""The α-β network performance model (Thakur & Rabenseifner, paper Sec III).

Every link between two virtual machines is described by a latency ``α``
(seconds) and a bandwidth ``β`` (bytes/second); transferring ``n`` bytes
costs ``α + n/β``. The module also provides per-link time-series statistics
used to characterize traces (constant band, volatility).
"""

from .alphabeta import AlphaBeta, transfer_time, transfer_time_matrix, weight_matrix
from .linkstats import LinkSeriesStats, summarize_link_series
from .coordinates import (
    TriangleStats,
    triangle_violation_stats,
    VivaldiResult,
    vivaldi_embedding,
)

__all__ = [
    "AlphaBeta",
    "transfer_time",
    "transfer_time_matrix",
    "weight_matrix",
    "LinkSeriesStats",
    "summarize_link_series",
    "TriangleStats",
    "triangle_violation_stats",
    "VivaldiResult",
    "vivaldi_embedding",
]
