"""RPCA: the paper's approach (Sec IV, Algorithm 1).

Fit = decompose the calibration TP-matrix with an RPCA solver and keep the
constant row as the link-weight estimate. The strategy also owns a
:class:`~repro.core.maintenance.MaintenanceController` so a replay loop can
feed back (expected, observed) operation times and learn when to
re-calibrate, plus the :class:`~repro.core.metrics.StabilityReport` that
tells the user whether network-aware optimization is worth running at all.
"""

from __future__ import annotations

import numpy as np

from ..core.decompose import Decomposition, decompose
from ..core.maintenance import MaintenanceController, MaintenanceDecision
from ..core.matrices import TPMatrix
from ..errors import ValidationError
from .base import Strategy

__all__ = ["RPCAStrategy"]


class RPCAStrategy(Strategy):
    """Decompose, optimize on the constant component, maintain adaptively.

    Parameters
    ----------
    solver:
        RPCA backend (``"apg"`` — the paper's choice — ``"ialm"`` or
        ``"row_constant"``).
    threshold:
        Maintenance threshold (paper default 1.0 = 100%).
    time_step:
        Number of calibration snapshots consumed per fit (paper default 10).
        ``fit`` uses at most this many of the newest rows of the TP-matrix
        it is given.
    extraction:
        Constant-row extraction rule (see
        :func:`~repro.core.decompose.constant_row`).
    """

    tree_algorithm = "fnf"
    mapping_algorithm = "greedy"

    def __init__(
        self,
        solver: str = "apg",
        *,
        threshold: float = 1.0,
        time_step: int = 10,
        extraction: str = "mean",
        name: str = "RPCA",
    ) -> None:
        if int(time_step) < 1:
            raise ValidationError("time_step must be >= 1")
        self.solver = solver
        self.time_step = int(time_step)
        self.extraction = extraction
        self.name = name
        self.controller = MaintenanceController(threshold=threshold)
        self.decomposition: Decomposition | None = None

    def fit(self, tp: TPMatrix) -> None:
        if tp.n_snapshots > self.time_step:
            start = tp.n_snapshots - self.time_step
            tp = TPMatrix(
                data=tp.data[start:].copy(),
                n_machines=tp.n_machines,
                timestamps=tp.timestamps[start:].copy(),
            )
        self.decomposition = decompose(
            tp, solver=self.solver, extraction=self.extraction
        )

    def weight_matrix(self) -> np.ndarray | None:
        if self.decomposition is None:
            raise ValidationError("RPCAStrategy.fit() has not been called")
        return self.decomposition.performance_matrix().weights.copy()

    @property
    def norm_ne(self) -> float:
        """``Norm(N_E)`` of the most recent decomposition."""
        if self.decomposition is None:
            raise ValidationError("RPCAStrategy.fit() has not been called")
        return self.decomposition.norm_ne

    def observe(self, expected: float, observed: float) -> MaintenanceDecision:
        """Feed one operation's (expected, observed) time pair (Alg. 1 L4-9)."""
        return self.controller.observe(expected, observed)
