"""Conjugate gradient: real sparse numerics plus the communication profile.

The paper's CG "is an iterative method, with the core operation of sparse
matrix vector multiplication (SpMV). CG converges as more iterations are
conducted, and we set the convergence condition ||r|| ≤ 1e-5 × g0." The
iteration count — the quantity that drives total communication — comes from
*actually running* CG on a generated sparse SPD system whose condition
number grows with the vector size, reproducing the paper's observation that
larger vectors need more iterations.

Per iteration the distributed SpMV exchanges the full vector all-to-all
(gather + broadcast, per MPICH2), and each machine computes its slice of the
SpMV locally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .._validation import check_positive
from ..errors import ConvergenceError, ValidationError
from ..utils.seeding import spawn_rng
from .breakdown import StepProfile, alltoall_collectives

__all__ = ["CGConfig", "build_spd_system", "run_cg_numerics", "cg_profile"]


@dataclass(frozen=True, slots=True)
class CGConfig:
    """Distributed CG run description.

    Attributes
    ----------
    vector_size:
        Unknowns n (paper sweeps 1000–1024000).
    nnz_per_row:
        Off-diagonal nonzeros per row of the generated system.
    rtol:
        Convergence threshold relative to the initial residual (paper 1e-5).
    flops_rate:
        Local compute rate, flop/s.
    condition_growth:
        κ(n) ≈ ``condition_growth × sqrt(n)``; CG iterations then grow like
        n^(1/4), matching the paper's mild growth.
    max_iterations:
        Safety budget for the numerical solve.
    """

    vector_size: int
    nnz_per_row: int = 4
    rtol: float = 1e-5
    flops_rate: float = 2.0e9
    condition_growth: float = 4.0
    max_iterations: int = 100_000

    def __post_init__(self) -> None:
        if int(self.vector_size) < 4:
            raise ValidationError("vector_size must be >= 4")
        if int(self.nnz_per_row) < 1:
            raise ValidationError("nnz_per_row must be >= 1")
        check_positive(self.rtol, "rtol")
        check_positive(self.flops_rate, "flops_rate")
        check_positive(self.condition_growth, "condition_growth")

    @property
    def vector_bytes(self) -> float:
        return 8.0 * float(self.vector_size)

    @property
    def condition_number(self) -> float:
        return self.condition_growth * float(np.sqrt(self.vector_size))

    def computation_seconds_per_iteration(self, n_machines: int) -> float:
        """Local SpMV + vector-update flops per iteration, per machine."""
        if n_machines < 1:
            raise ValidationError("n_machines must be >= 1")
        n = float(self.vector_size)
        nnz = n * (self.nnz_per_row + 1)
        flops = 2.0 * nnz + 10.0 * n  # SpMV + the dot/axpy bookkeeping
        return (flops / n_machines) / self.flops_rate


def build_spd_system(
    config: CGConfig, *, seed: int | np.random.Generator | None = None
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Generate a sparse SPD system ``(A, b)`` with κ(A) ≈ config.condition_number.

    Construction: a log-uniform diagonal spanning [1, κ] plus a random
    symmetric sparse part scaled to preserve diagonal dominance (hence SPD
    by Gershgorin).
    """
    rng = spawn_rng(seed)
    n = int(config.vector_size)
    kappa = config.condition_number
    diag = np.exp(rng.uniform(0.0, np.log(kappa), size=n))
    diag[0], diag[-1] = 1.0, kappa  # pin the spectrum endpoints

    k = int(config.nnz_per_row)
    rows = np.repeat(np.arange(n), k)
    cols = rng.integers(0, n, size=n * k)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    vals = rng.uniform(-1.0, 1.0, size=rows.size)
    s = sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    s = (s + s.T) * 0.5
    s = s.tocsr()

    # Scale the off-diagonal part so each row's off-diagonal magnitude stays
    # below a fraction of its diagonal entry → strict diagonal dominance.
    row_abs = np.abs(s).sum(axis=1).A1 if hasattr(np.abs(s).sum(axis=1), "A1") else np.asarray(np.abs(s).sum(axis=1)).ravel()
    with np.errstate(divide="ignore", invalid="ignore"):
        limit = np.where(row_abs > 0, 0.45 * diag / np.maximum(row_abs, 1e-300), np.inf)
    scale = float(min(1.0, limit.min()))
    a = sp.diags(diag) + s * scale
    b = rng.standard_normal(n)
    return a.tocsr(), b


def run_cg_numerics(
    a: sp.csr_matrix, b: np.ndarray, *, rtol: float = 1e-5, max_iterations: int = 100_000
) -> tuple[np.ndarray, int]:
    """Plain conjugate gradient; returns ``(x, iterations)``.

    Convergence per the paper: ``||r|| ≤ rtol × ||g0||`` with ``g0`` the
    initial residual (= b for the zero start). Implemented directly so the
    iteration count is under our control (SciPy's cg hides its count).
    """
    n = b.size
    x = np.zeros(n)
    r = b - a @ x
    g0 = float(np.linalg.norm(r))
    if g0 == 0.0:
        return x, 0
    p = r.copy()
    rs_old = float(r @ r)
    target = rtol * g0
    for it in range(1, int(max_iterations) + 1):
        ap = a @ p
        denom = float(p @ ap)
        if denom <= 0:
            raise ConvergenceError(
                "matrix is not positive definite along the search direction",
                iterations=it,
                residual=float(np.sqrt(rs_old)),
            )
        alpha = rs_old / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) <= target:
            return x, it
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    raise ConvergenceError(
        f"CG did not converge in {max_iterations} iterations",
        iterations=int(max_iterations),
        residual=float(np.sqrt(rs_old)),
    )


def estimate_cg_iterations(config: CGConfig) -> int:
    """Chebyshev bound estimate: ``⌈½ √κ ln(2/rtol)⌉``.

    Used instead of the real solve above a size threshold where building and
    solving the actual system would dominate an experiment's wall clock; the
    bound has the same growth law the real solves exhibit.
    """
    kappa = config.condition_number
    return int(np.ceil(0.5 * np.sqrt(kappa) * np.log(2.0 / config.rtol)))


def cg_profile(
    config: CGConfig,
    n_machines: int,
    *,
    iterations: int | None = None,
    numerics_size_limit: int = 200_000,
    seed: int | np.random.Generator | None = None,
) -> tuple[list[StepProfile], int]:
    """Build the per-iteration step profiles for a distributed CG run.

    Parameters
    ----------
    config:
        Run description.
    n_machines:
        Cluster size.
    iterations:
        Override the iteration count (skips numerics entirely).
    numerics_size_limit:
        Above this vector size the Chebyshev estimate replaces the real
        solve (documented substitution; growth law identical).
    seed:
        System-generation seed.

    Returns
    -------
    (steps, iterations)
    """
    if iterations is None:
        if config.vector_size <= int(numerics_size_limit):
            a, b = build_spd_system(config, seed=seed)
            _, iterations = run_cg_numerics(
                a, b, rtol=config.rtol, max_iterations=config.max_iterations
            )
        else:
            iterations = estimate_cg_iterations(config)
    if iterations < 1:
        iterations = 1
    comp = config.computation_seconds_per_iteration(n_machines)
    coll = alltoall_collectives(config.vector_bytes, n_machines)
    step = StepProfile(collectives=coll, computation_seconds=comp)
    return [step] * int(iterations), int(iterations)
