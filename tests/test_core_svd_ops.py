"""Unit tests for the proximal operators in repro.core.svd_ops."""

import numpy as np
import pytest

from repro.core.svd_ops import singular_value_threshold, soft_threshold, truncated_svd
from repro.errors import ValidationError


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        x = np.array([-3.0, -0.5, 0.0, 0.5, 3.0])
        out = soft_threshold(x, 1.0)
        np.testing.assert_allclose(out, [-2.0, 0.0, 0.0, 0.0, 2.0])

    def test_zero_tau_is_identity(self):
        x = np.array([[1.0, -2.0], [0.0, 3.0]])
        np.testing.assert_array_equal(soft_threshold(x, 0.0), x)

    def test_preserves_sign(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(100)
        out = soft_threshold(x, 0.3)
        nz = out != 0
        assert np.all(np.sign(out[nz]) == np.sign(x[nz]))

    def test_never_increases_magnitude(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(50)
        out = soft_threshold(x, 0.2)
        assert np.all(np.abs(out) <= np.abs(x) + 1e-15)

    def test_negative_tau_rejected(self):
        with pytest.raises(ValidationError):
            soft_threshold(np.ones(3), -0.1)

    def test_is_prox_of_l1(self):
        # prox_{tau||.||_1}(x) minimizes tau|z| + 0.5(z-x)^2 per entry.
        x, tau = 1.7, 0.4
        z_star = soft_threshold(np.array([x]), tau)[0]
        zs = np.linspace(-3, 3, 20001)
        objective = tau * np.abs(zs) + 0.5 * (zs - x) ** 2
        assert abs(zs[np.argmin(objective)] - z_star) < 1e-3


class TestTruncatedSVD:
    def test_reconstructs(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((6, 9))
        u, s, vt = truncated_svd(a)
        np.testing.assert_allclose((u * s) @ vt, a, atol=1e-10)

    def test_thin_shapes(self):
        a = np.random.default_rng(3).standard_normal((4, 10))
        u, s, vt = truncated_svd(a)
        assert u.shape == (4, 4) and s.shape == (4,) and vt.shape == (4, 10)

    def test_singular_values_sorted(self):
        a = np.random.default_rng(4).standard_normal((8, 8))
        _, s, _ = truncated_svd(a)
        assert np.all(np.diff(s) <= 0)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            truncated_svd(np.ones(5))


class TestSingularValueThreshold:
    def test_zero_tau_reconstructs(self):
        a = np.random.default_rng(5).standard_normal((5, 7))
        d, rank, top = singular_value_threshold(a, 0.0)
        np.testing.assert_allclose(d, a, atol=1e-10)
        assert rank == 5
        assert top == pytest.approx(np.linalg.svd(a, compute_uv=False)[0])

    def test_huge_tau_gives_zero(self):
        a = np.random.default_rng(6).standard_normal((5, 5))
        d, rank, _ = singular_value_threshold(a, 1e6)
        assert rank == 0
        np.testing.assert_array_equal(d, np.zeros((5, 5)))

    def test_reduces_rank(self):
        rng = np.random.default_rng(7)
        # Rank-2 matrix with well-separated singular values.
        a = 10.0 * np.outer(rng.standard_normal(6), rng.standard_normal(6))
        a += 0.1 * np.outer(rng.standard_normal(6), rng.standard_normal(6))
        s = np.linalg.svd(a, compute_uv=False)
        d, rank, _ = singular_value_threshold(a, (s[0] + s[1]) / 2)
        assert rank == 1

    def test_shrinks_singular_values_exactly(self):
        a = np.diag([5.0, 3.0, 1.0])
        d, rank, top = singular_value_threshold(a, 2.0)
        np.testing.assert_allclose(np.sort(np.diag(d))[::-1], [3.0, 1.0, 0.0], atol=1e-12)
        assert rank == 2
        assert top == pytest.approx(5.0)

    def test_is_prox_of_nuclear_norm(self):
        # For symmetric PSD diag input the prox acts on eigenvalues directly.
        a = np.diag([4.0, 0.5])
        d, _, _ = singular_value_threshold(a, 1.0)
        np.testing.assert_allclose(d, np.diag([3.0, 0.0]), atol=1e-12)
