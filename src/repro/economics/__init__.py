"""Monetary-cost analysis (the paper's stated future work, Sec VI).

"As for future work, we plan to investigate the economic impacts [42] of
our approach." Pay-as-you-go clouds bill per instance-hour, so shaving
elapsed time off a run directly shaves dollars; this package prices runs
and computes the savings a network-aware strategy buys net of its
calibration overhead.
"""

from .pricing import InstancePricing, run_cost_usd, BillingGranularity
from .savings import SavingsReport, savings_report

__all__ = [
    "InstancePricing",
    "BillingGranularity",
    "run_cost_usd",
    "SavingsReport",
    "savings_report",
]
