"""Trace persistence: ``.npz`` archives plus CSV import of real measurements.

Calibration campaigns are expensive (the paper's took a week on EC2), so
traces are first-class artifacts: generated or measured once, replayed many
times. The binary format is a compressed numpy archive with a format
version; :func:`load_trace_csv` ingests real ping-pong measurement logs
(one row per probe) so the whole pipeline — decomposition, stability
verdicts, strategy comparison — runs on actual cluster data.
"""

from __future__ import annotations

import csv
import os

import numpy as np

from ..errors import ValidationError
from .trace import CalibrationTrace

__all__ = ["save_trace", "load_trace", "load_trace_csv", "TRACE_FORMAT_VERSION"]

TRACE_FORMAT_VERSION = 1


def save_trace(trace: CalibrationTrace, path: str | os.PathLike) -> None:
    """Write *trace* to *path* as a compressed ``.npz`` archive.

    A partially-observed trace also persists its observation mask (the
    array is simply absent for fully-observed traces, which keeps old
    archives loadable and new full archives identical to old ones).
    """
    arrays = dict(
        format_version=np.int64(TRACE_FORMAT_VERSION),
        alpha=trace.alpha,
        beta=trace.beta,
        timestamps=trace.timestamps,
    )
    if trace.mask is not None:
        arrays["mask"] = trace.mask
    np.savez_compressed(os.fspath(path), **arrays)


def _finite_violations(alpha: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """Boolean (T, N, N) of off-diagonal entries with unusable values.

    Unusable means non-finite, α < 0 or β ≤ 0 — values the α-β model cannot
    price. The diagonal (α = 0, β = +inf by convention) is exempt.
    """
    n = alpha.shape[-1]
    off = ~np.eye(n, dtype=bool)
    bad = np.zeros(alpha.shape, dtype=bool)
    a_off, b_off = alpha[:, off], beta[:, off]
    bad[:, off] = (
        ~np.isfinite(a_off) | ~np.isfinite(b_off) | (a_off < 0) | (b_off <= 0)
    )
    return bad


def _sanitize(
    alpha: np.ndarray,
    beta: np.ndarray,
    mask: np.ndarray | None,
    *,
    allow_missing: bool,
    source: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Validate values; either reject unusable entries or mask them out."""
    bad = _finite_violations(alpha, beta)
    if mask is not None:
        bad = bad & mask  # already-masked entries may hold any placeholder
    if bad.any():
        if not allow_missing:
            t, n = alpha.shape[0], alpha.shape[1]
            raise ValidationError(
                f"{source} has {int(bad.sum())} of {t * n * (n - 1)} "
                "off-diagonal entries non-finite or out of range; pass "
                "allow_missing=True to load them as unobserved"
            )
        alpha = np.where(bad, 0.0, alpha)
        beta = np.where(bad, np.inf, beta)
        mask = (~bad) if mask is None else (mask & ~bad)
    return alpha, beta, mask


def load_trace(
    path: str | os.PathLike, *, allow_missing: bool = False
) -> CalibrationTrace:
    """Read a trace written by :func:`save_trace`.

    Parameters
    ----------
    path:
        The ``.npz`` archive.
    allow_missing:
        Load non-finite / out-of-range (α, β) entries as *unobserved*
        (masked out, with benign placeholders) instead of rejecting the
        file. A persisted observation mask is honored either way.

    Raises
    ------
    ValidationError
        If the file is corrupted or truncated, missing required arrays,
        has an unknown format version, or (without *allow_missing*)
        contains unusable measurement values.
    """
    try:
        with np.load(os.fspath(path)) as data:
            missing = {"format_version", "alpha", "beta", "timestamps"} - set(
                data.files
            )
            if missing:
                raise ValidationError(
                    f"trace file missing arrays: {sorted(missing)}"
                )
            raw_version = np.asarray(data["format_version"])
            if (
                raw_version.size != 1
                or not np.issubdtype(raw_version.dtype, np.number)
                or float(raw_version) != int(raw_version)
            ):
                raise ValidationError(
                    "malformed trace format version "
                    f"{raw_version!r} (expected a single integer)"
                )
            version = int(raw_version)
            if version != TRACE_FORMAT_VERSION:
                raise ValidationError(
                    f"unsupported trace format version {version} "
                    f"(expected {TRACE_FORMAT_VERSION})"
                )
            alpha = np.asarray(data["alpha"], dtype=np.float64).copy()
            beta = np.asarray(data["beta"], dtype=np.float64).copy()
            timestamps = data["timestamps"].copy()
            mask = (
                np.asarray(data["mask"], dtype=bool).copy()
                if "mask" in data.files
                else None
            )
    except ValidationError:
        raise
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, zlib, EOF, pickle, ...
        raise ValidationError(
            f"unreadable trace file {os.fspath(path)!r}: {exc}"
        ) from exc
    if alpha.ndim != 3 or alpha.shape[1] != alpha.shape[2]:
        raise ValidationError(f"alpha must be (T, N, N), got {alpha.shape}")
    if beta.shape != alpha.shape:
        raise ValidationError("alpha/beta shape mismatch in trace file")
    if mask is not None and mask.shape != alpha.shape:
        raise ValidationError("mask shape mismatch in trace file")
    alpha, beta, mask = _sanitize(
        alpha, beta, mask, allow_missing=allow_missing, source="trace file"
    )
    return CalibrationTrace(
        alpha=alpha, beta=beta, timestamps=timestamps, mask=mask
    )


#: Required CSV header for :func:`load_trace_csv`.
CSV_COLUMNS = ("snapshot", "src", "dst", "alpha_s", "beta_Bps")


def load_trace_csv(
    path: str | os.PathLike, *, allow_missing: bool = False
) -> CalibrationTrace:
    """Build a trace from a CSV log of real ping-pong measurements.

    Expected columns (header required): ``snapshot`` (0-based calibration
    round index), ``src``, ``dst`` (machine indices), ``alpha_s`` (latency,
    seconds), ``beta_Bps`` (bandwidth, bytes/second). Optionally a
    ``timestamp`` column gives each snapshot's wall-clock second (the
    snapshot's first occurrence wins; defaults to the snapshot index).

    By default every ordered off-diagonal pair must be measured in every
    snapshot with finite, in-range values — the paper's optimizations need
    the *all-link* matrix, so a partial log is an error, not something to
    silently impute. Real campaigns lose probes, though: with
    ``allow_missing=True`` absent pairs and unusable readings (NaN/inf
    ``alpha_s``/``beta_Bps``, negative latency, non-positive bandwidth —
    the way many probe harnesses record timeouts) become *unobserved*
    entries in the returned trace's observation mask, ready for masked
    decomposition.
    """
    rows: list[dict[str, str]] = []
    with open(os.fspath(path), newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or not set(CSV_COLUMNS) <= set(reader.fieldnames):
            raise ValidationError(
                f"CSV must have columns {CSV_COLUMNS}, got {reader.fieldnames}"
            )
        rows = list(reader)
    if not rows:
        raise ValidationError("CSV contains no measurements")

    try:
        snaps = np.array([int(r["snapshot"]) for r in rows])
        srcs = np.array([int(r["src"]) for r in rows])
        dsts = np.array([int(r["dst"]) for r in rows])
        alphas = np.array([float(r["alpha_s"]) for r in rows])
        betas = np.array([float(r["beta_Bps"]) for r in rows])
    except (KeyError, ValueError) as exc:
        raise ValidationError(f"malformed CSV row: {exc}") from exc

    if snaps.min() < 0 or srcs.min() < 0 or dsts.min() < 0:
        raise ValidationError("snapshot and machine indices must be non-negative")
    if np.any(srcs == dsts):
        raise ValidationError("self-measurements (src == dst) are not allowed")
    unusable = (
        ~np.isfinite(alphas) | ~np.isfinite(betas) | (alphas < 0) | (betas <= 0)
    )
    if unusable.any() and not allow_missing:
        raise ValidationError(
            f"{int(unusable.sum())} measurement(s) have non-finite or "
            "out-of-range values (need finite alpha_s >= 0 and finite "
            "beta_Bps > 0); pass allow_missing=True to load them as "
            "unobserved"
        )

    n = int(max(srcs.max(), dsts.max())) + 1
    t = int(snaps.max()) + 1
    alpha = np.full((t, n, n), np.nan)
    beta = np.full((t, n, n), np.nan)
    usable = ~unusable
    alpha[snaps[usable], srcs[usable], dsts[usable]] = alphas[usable]
    beta[snaps[usable], srcs[usable], dsts[usable]] = betas[usable]

    timestamps = np.arange(t, dtype=np.float64)
    if "timestamp" in rows[0]:
        for r in rows:
            k = int(r["snapshot"])
            if np.isnan(timestamps[k]) or timestamps[k] == float(k):
                timestamps[k] = float(r["timestamp"])

    off = ~np.eye(n, dtype=bool)
    unobserved = np.isnan(beta)
    unobserved[:, ~off] = False
    missing = int(unobserved.sum())
    mask = None
    if missing:
        if not allow_missing:
            raise ValidationError(
                f"CSV is missing {missing} of {t * n * (n - 1)} ordered-pair "
                "measurements; the all-link matrix must be complete "
                "(pass allow_missing=True to load a partial log)"
            )
        mask = ~unobserved
        alpha = np.where(unobserved, 0.0, alpha)
        beta = np.where(unobserved, np.inf, beta)
    for k in range(t):
        np.fill_diagonal(alpha[k], 0.0)
        np.fill_diagonal(beta[k], np.inf)
    order = np.argsort(timestamps, kind="stable")
    return CalibrationTrace(
        alpha=alpha[order],
        beta=beta[order],
        timestamps=timestamps[order],
        mask=None if mask is None else mask[order],
    )
