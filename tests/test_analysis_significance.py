"""Unit tests for the paired-bootstrap significance analysis."""

import numpy as np
import pytest

from repro.analysis.significance import ImprovementCI, bootstrap_improvement
from repro.errors import ValidationError


class TestBootstrapImprovement:
    def test_clear_improvement_is_significant(self):
        rng = np.random.default_rng(0)
        b = rng.uniform(1.0, 1.2, size=100)
        a = b * 0.7  # 30% faster, paired
        ci = bootstrap_improvement(a, b, seed=1)
        assert ci.point == pytest.approx(0.3, abs=0.02)
        assert ci.significant
        assert ci.low > 0.2

    def test_noise_is_not_significant(self):
        rng = np.random.default_rng(2)
        b = rng.uniform(1.0, 2.0, size=40)
        a = rng.uniform(1.0, 2.0, size=40)  # same distribution
        ci = bootstrap_improvement(a, b, seed=3)
        assert not ci.significant or abs(ci.point) < 0.1

    def test_interval_contains_point(self):
        rng = np.random.default_rng(4)
        b = rng.uniform(1, 3, size=60)
        a = b * rng.uniform(0.8, 1.0, size=60)
        ci = bootstrap_improvement(a, b, seed=5)
        assert ci.low <= ci.point <= ci.high

    def test_deterministic(self):
        rng = np.random.default_rng(6)
        b = rng.uniform(1, 2, size=30)
        a = b * 0.9
        c1 = bootstrap_improvement(a, b, seed=7)
        c2 = bootstrap_improvement(a, b, seed=7)
        assert (c1.low, c1.high) == (c2.low, c2.high)

    def test_degradation_detected(self):
        rng = np.random.default_rng(8)
        b = rng.uniform(1.0, 1.1, size=80)
        a = b * 1.5  # 50% slower
        ci = bootstrap_improvement(a, b, seed=9)
        assert ci.point < -0.3
        assert ci.significant and ci.high < 0.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            bootstrap_improvement(np.ones(3), np.ones(4))
        with pytest.raises(ValidationError):
            bootstrap_improvement(np.zeros(3), np.ones(3))
        with pytest.raises(ValidationError):
            bootstrap_improvement(np.ones(3), np.ones(3), n_boot=10)

    def test_works_with_comparison_result(self, small_trace):
        from repro.experiments.harness import ReplayContext, collective_comparison
        from repro.strategies import BaselineStrategy, RPCAStrategy

        ctx = ReplayContext(trace=small_trace, time_step=10)
        arms = [BaselineStrategy(), RPCAStrategy("row_constant", time_step=10)]
        res = collective_comparison(ctx, arms, repetitions=60, seed=2)
        ci = bootstrap_improvement(
            res.times["RPCA"], res.times["Baseline"], seed=0
        )
        assert isinstance(ci, ImprovementCI)
        assert ci.point == pytest.approx(res.improvement("RPCA", "Baseline"))
