"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An argument failed structural validation (shape, dtype, range)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver exhausted its iteration budget without converging.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual value (solver-specific meaning).
    """

    def __init__(self, message: str, *, iterations: int, residual: float) -> None:
        super().__init__(message)
        self.iterations = int(iterations)
        self.residual = float(residual)


class CalibrationError(ReproError, RuntimeError):
    """A calibration run could not produce a usable TP-matrix."""


class PersistenceError(ReproError, RuntimeError):
    """A durable-state operation (checkpoint, journal, recovery) failed.

    Raised when no usable state can be produced — e.g. recovery finds no
    valid checkpoint at all. Individual corrupt artifacts are skipped
    silently where a fallback exists (an older checkpoint, a torn journal
    tail); this error means the fallbacks are exhausted too.
    """


class CheckpointCorruption(PersistenceError):
    """A single checkpoint file failed its integrity checks.

    Recovery catches this internally and falls back to the next-older
    checkpoint; it only escapes when a caller reads one file directly.
    """


class FleetError(ReproError, RuntimeError):
    """The fleet scheduler could not complete a cluster's work.

    Carries the failing cluster's name (``cluster``) and, when the failure
    happened inside a worker process, the worker-side traceback text
    (``worker_traceback``) — the original exception object cannot cross the
    process boundary reliably.
    """

    def __init__(
        self,
        message: str,
        *,
        cluster: str | None = None,
        worker_traceback: str | None = None,
    ) -> None:
        super().__init__(message)
        self.cluster = cluster
        self.worker_traceback = worker_traceback


class TopologyError(ReproError, ValueError):
    """A network topology description is inconsistent."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class MappingError(ReproError, ValueError):
    """A task-to-machine mapping request cannot be satisfied."""
