"""Fig 7 — overall comparison on the EC2-like trace (64-VM cluster).

Paper shape (196 medium instances, 100+ repetitions over a week): Heuristics
and RPCA beat Baseline by 32-40% on broadcast/scatter; RPCA beats Heuristics
by a further 8-10%; Norm(N_E) ≈ 0.1; the broadcast CDF separates the arms.
The paper's numbers average a week of runs, so this bench averages several
independently generated traces (= placements + dynamics draws).
"""

import numpy as np

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.experiments import fig07_overall_ec2
from repro.experiments.report import format_table

MB = 1024 * 1024
TRACE_SEEDS = (2014, 2015, 2016)


def run_all():
    results = []
    for seed in TRACE_SEEDS:
        trace = generate_trace(TraceConfig(n_machines=64, n_snapshots=30), seed=seed)
        results.append(
            fig07_overall_ec2.run(trace, repetitions=100, solver="apg", seed=seed)
        )
    return results


def test_fig07_overall_comparison(benchmark, emit):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    apps = ("broadcast", "scatter", "mapping")
    names = list(results[0].broadcast.times)
    mean_norm = {
        app: {
            n: float(np.mean([getattr(r, app).normalized_means()[n] for r in results]))
            for n in names
        }
        for app in apps
    }
    norm_ne = float(np.mean([r.norm_ne for r in results]))

    emit(
        format_table(
            ["strategy", "broadcast", "scatter", "topo-mapping"],
            [(n, mean_norm["broadcast"][n], mean_norm["scatter"][n], mean_norm["mapping"][n])
             for n in names],
            title=(
                f"Fig 7a: normalized mean elapsed time, 64 VMs, 100 reps x "
                f"{len(TRACE_SEEDS)} traces (mean Norm(N_E) = {norm_ne:.3f})"
            ),
        )
    )

    cdf_rows = []
    for name in names:
        v = np.concatenate([r.broadcast.times[name] for r in results])
        cdf_rows.append((name, *np.percentile(v, [10, 25, 50, 75, 90]).round(4)))
    emit(
        format_table(
            ["strategy", "p10", "p25", "p50", "p75", "p90"],
            cdf_rows,
            title="Fig 7b: broadcast elapsed-time CDF quantiles (s), pooled",
        )
    )

    # Paper orderings, averaged across traces.
    for app in apps:
        assert mean_norm[app]["RPCA"] < 1.0
        assert mean_norm[app]["Heuristics"] < 1.0
    # Broadcast/scatter gains over Baseline in (or near) the 32-40% band.
    assert 1.0 - mean_norm["broadcast"]["RPCA"] > 0.25
    assert 1.0 - mean_norm["scatter"]["RPCA"] > 0.25
    # RPCA at least matches, and typically beats, Heuristics on average.
    assert mean_norm["broadcast"]["RPCA"] <= mean_norm["broadcast"]["Heuristics"] * 1.02
    # EC2-like stability level.
    assert 0.05 < norm_ne < 0.25
