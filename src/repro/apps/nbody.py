"""N-body: real gravity numerics plus the distributed communication profile.

The paper's N-body "simulat[es] the movement, position and other attributes
of bodies with gravitational forces exerted on one another", parameterized
by #Step and the number of bodies (message size grows with bodies). Each
distributed step exchanges every body's state all-to-all (gather + broadcast
per MPICH2) and computes O(n²) pairwise forces locally.

:class:`NBodySimulation` is a genuine vectorized leapfrog integrator with
Plummer softening — used by the examples and by tests that check momentum
conservation — while :func:`nbody_profile` produces the
:class:`~repro.apps.breakdown.StepProfile` sequence the replay runner prices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive
from ..errors import ValidationError
from ..utils.seeding import spawn_rng
from .breakdown import StepProfile, alltoall_collectives

__all__ = ["NBodyConfig", "NBodySimulation", "nbody_profile"]

#: Bytes per body on the wire: 3 position + 3 velocity + 1 mass float64.
BYTES_PER_BODY = 7 * 8


@dataclass(frozen=True, slots=True)
class NBodyConfig:
    """Distributed N-body run description.

    Attributes
    ----------
    n_steps:
        #Step — number of integration steps (paper sweeps 10–2560).
    message_bytes:
        All-to-all payload per step (paper sweeps 1 KB–1 MB). The implied
        body count is ``message_bytes / BYTES_PER_BODY``.
    flops_rate:
        Local compute rate in flop/s (2013 medium instance ≈ 2 Gflop/s).
    flops_per_pair:
        Floating ops per body-pair interaction (≈ 20 for softened gravity).
    """

    n_steps: int
    message_bytes: float
    flops_rate: float = 2.0e9
    flops_per_pair: float = 20.0

    def __post_init__(self) -> None:
        if int(self.n_steps) < 1:
            raise ValidationError("n_steps must be >= 1")
        check_positive(self.message_bytes, "message_bytes")
        check_positive(self.flops_rate, "flops_rate")
        check_positive(self.flops_per_pair, "flops_per_pair")

    @property
    def n_bodies(self) -> int:
        return max(2, int(self.message_bytes / BYTES_PER_BODY))

    def computation_seconds_per_step(self, n_machines: int) -> float:
        """Per-machine force computation time: each machine owns n/N bodies."""
        if n_machines < 1:
            raise ValidationError("n_machines must be >= 1")
        n = self.n_bodies
        local_pairs = (n / n_machines) * n
        return local_pairs * self.flops_per_pair / self.flops_rate


def nbody_profile(config: NBodyConfig, n_machines: int) -> list[StepProfile]:
    """Per-step profiles: one all-to-all plus the local force computation."""
    comp = config.computation_seconds_per_step(n_machines)
    coll = alltoall_collectives(config.message_bytes, n_machines)
    step = StepProfile(collectives=coll, computation_seconds=comp)
    return [step] * int(config.n_steps)


class NBodySimulation:
    """Vectorized leapfrog (kick-drift-kick) gravity integrator.

    Parameters
    ----------
    n_bodies:
        Number of bodies.
    softening:
        Plummer softening length ε; forces use ``(r² + ε²)^(3/2)``.
    G:
        Gravitational constant (1 in simulation units).
    seed:
        Initial-condition seed (uniform cube positions, cold start).
    """

    def __init__(
        self,
        n_bodies: int,
        *,
        softening: float = 0.05,
        G: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n_bodies < 2:
            raise ValidationError("n_bodies must be >= 2")
        check_positive(softening, "softening")
        check_positive(G, "G")
        rng = spawn_rng(seed)
        self.G = float(G)
        self.softening = float(softening)
        self.pos = rng.uniform(-1.0, 1.0, size=(n_bodies, 3))
        self.vel = np.zeros((n_bodies, 3))
        self.mass = rng.uniform(0.5, 1.5, size=n_bodies)

    @property
    def n_bodies(self) -> int:
        return self.pos.shape[0]

    def accelerations(self) -> np.ndarray:
        """Pairwise softened gravitational accelerations, O(n²) vectorized."""
        dx = self.pos[None, :, :] - self.pos[:, None, :]  # (i, j, 3): r_j - r_i
        r2 = np.einsum("ijk,ijk->ij", dx, dx) + self.softening**2
        inv_r3 = r2**-1.5
        np.fill_diagonal(inv_r3, 0.0)
        # a_i = G Σ_j m_j (r_j - r_i) / |r|³
        return self.G * np.einsum("ij,j,ijk->ik", inv_r3, self.mass, dx)

    def step(self, dt: float) -> None:
        """One kick-drift-kick leapfrog step."""
        check_positive(dt, "dt")
        acc = self.accelerations()
        self.vel += 0.5 * dt * acc
        self.pos += dt * self.vel
        acc = self.accelerations()
        self.vel += 0.5 * dt * acc

    def run(self, n_steps: int, dt: float = 1e-3) -> None:
        for _ in range(int(n_steps)):
            self.step(dt)

    def total_momentum(self) -> np.ndarray:
        """Σ mᵢvᵢ — conserved exactly by the symmetric force law."""
        return (self.mass[:, None] * self.vel).sum(axis=0)

    def total_energy(self) -> float:
        """Kinetic + softened potential energy (drifts only at O(dt²))."""
        kinetic = 0.5 * float(
            (self.mass * np.einsum("ik,ik->i", self.vel, self.vel)).sum()
        )
        dx = self.pos[None, :, :] - self.pos[:, None, :]
        r = np.sqrt(np.einsum("ijk,ijk->ij", dx, dx) + self.softening**2)
        mm = np.outer(self.mass, self.mass)
        iu = np.triu_indices(self.n_bodies, k=1)
        potential = -self.G * float((mm[iu] / r[iu]).sum())
        return kinetic + potential
