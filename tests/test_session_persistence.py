"""Session-level crash safety: checkpoint/resume parity, fallback, guards.

These tests exercise the full recovery protocol in-process (clean stop →
``TraceSession.resume``) — the subprocess SIGKILL variant lives in
``test_chaos_recovery.py``. The bar throughout is *bit-exact parity*: a
resumed session must be indistinguishable from one that never stopped.
"""

import numpy as np
import pytest

from repro.cloudsim.io import save_trace
from repro.core.detectors import CusumRegimeDetector, detector_names
from repro.errors import PersistenceError
from repro.faults import ProbeLoss
from repro.mapping.taskgraph import TaskGraph
from repro.persistence import PersistenceConfig
from repro.persistence.checkpoint import CheckpointStore
from repro.runtime.session import TraceSession


def _graph():
    volumes = np.zeros((4, 4))
    volumes[0, 1] = 5e6
    volumes[1, 2] = 3e6
    volumes[3, 0] = 1e6
    return TaskGraph(volumes=volumes)


def _drive(session, n_ops):
    """Advance *n_ops* operations on a schedule keyed to the lifetime
    operation count, so any split across stop/resume replays identically."""
    n = session.trace.n_machines
    for _ in range(n_ops):
        k = session.stats.operations
        if k % 7 == 3:
            session.map_tasks(_graph())
        elif k % 2 == 0:
            session.broadcast(root=k % n)
        else:
            session.reduce(root=k % n)


@pytest.fixture()
def persist_cfg(small_trace, tmp_path):
    tpath = tmp_path / "trace.npz"
    save_trace(small_trace, tpath)
    return PersistenceConfig(
        directory=tmp_path / "state",
        checkpoint_every=5,
        trace_path=str(tpath),
    )


def _assert_parity(resumed, reference):
    np.testing.assert_array_equal(
        resumed.decomposition.constant.row, reference.decomposition.constant.row
    )
    assert resumed.stats == reference.stats
    assert resumed._cursor == reference._cursor
    assert resumed.norm_ne == reference.norm_ne


class TestResumeParity:
    def test_clean_stop_resume_matches_uninterrupted_run(
        self, small_trace, persist_cfg
    ):
        reference = TraceSession(small_trace, time_step=8)
        _drive(reference, 20)

        session = TraceSession(small_trace, time_step=8, persistence=persist_cfg)
        _drive(session, 12)
        session.close()

        resumed = TraceSession.resume(persist_cfg.directory)
        assert resumed.stats.operations == 12
        _drive(resumed, 8)
        resumed.close()
        _assert_parity(resumed, reference)

    def test_resume_survives_corrupt_newest_checkpoint(
        self, small_trace, persist_cfg
    ):
        """Acceptance scenario: flip a byte in the newest checkpoint; the
        resume falls back to an older one and replays a longer journal
        tail to the exact same state."""
        reference = TraceSession(small_trace, time_step=8)
        _drive(reference, 20)

        session = TraceSession(small_trace, time_step=8, persistence=persist_cfg)
        _drive(session, 12)  # checkpoints at ops 0, 5, 10
        session.close()

        newest = sorted(persist_cfg.directory.glob("ckpt-*.ckpt"))[-1]
        blob = bytearray(newest.read_bytes())
        blob[31] ^= 0x01
        newest.write_bytes(bytes(blob))

        resumed = TraceSession.resume(persist_cfg.directory)
        assert resumed.stats.operations == 12
        assert resumed.instrumentation.counters["session.recovery.fallbacks"] == 1
        _drive(resumed, 8)
        resumed.close()
        _assert_parity(resumed, reference)

    def test_double_resume(self, small_trace, persist_cfg):
        """Stop/resume twice — recovery must compose."""
        reference = TraceSession(small_trace, time_step=8)
        _drive(reference, 18)

        session = TraceSession(small_trace, time_step=8, persistence=persist_cfg)
        _drive(session, 7)
        session.close()
        mid = TraceSession.resume(persist_cfg.directory)
        _drive(mid, 6)
        mid.close()
        final = TraceSession.resume(persist_cfg.directory)
        assert final.stats.operations == 13
        _drive(final, 5)
        final.close()
        _assert_parity(final, reference)

    def test_fault_spec_round_trips_through_checkpoint(
        self, small_trace, persist_cfg
    ):
        reference = TraceSession(
            small_trace, time_step=8, faults="probe_loss=0.05", fault_seed=3
        )
        _drive(reference, 16)

        session = TraceSession(
            small_trace,
            time_step=8,
            faults="probe_loss=0.05",
            fault_seed=3,
            persistence=persist_cfg,
        )
        _drive(session, 9)
        session.close()

        resumed = TraceSession.resume(persist_cfg.directory)
        assert resumed.faults_spec == "probe_loss=0.05"
        assert resumed.fault_seed == 3
        assert resumed.fault_schedule is not None
        _drive(resumed, 7)
        resumed.close()
        _assert_parity(resumed, reference)

    def test_model_list_faults_resume_with_explicit_models(
        self, small_trace, persist_cfg
    ):
        """Fault model *lists* have no spec string to checkpoint; the caller
        re-supplies them at resume and the remembered seed re-materializes
        the identical schedule."""
        models = [ProbeLoss(rate=0.05)]
        reference = TraceSession(
            small_trace, time_step=8, faults=models, fault_seed=11
        )
        _drive(reference, 14)

        session = TraceSession(
            small_trace,
            time_step=8,
            faults=models,
            fault_seed=11,
            persistence=persist_cfg,
        )
        _drive(session, 8)
        session.close()

        resumed = TraceSession.resume(persist_cfg.directory, faults=models)
        assert resumed.fault_seed == 11
        _drive(resumed, 6)
        resumed.close()
        _assert_parity(resumed, reference)

    @pytest.mark.parametrize("detector", detector_names())
    def test_regime_detector_state_round_trips(
        self, small_trace, persist_cfg, detector
    ):
        """Every registered detector must survive stop/resume mid-warmup,
        mid-window — the split at 9 ops lands inside whatever internal
        buffers the detector keeps."""
        reference = TraceSession(small_trace, time_step=8, regime=detector)
        _drive(reference, 15)

        session = TraceSession(
            small_trace, time_step=8, regime=detector, persistence=persist_cfg
        )
        _drive(session, 9)
        session.close()

        resumed = TraceSession.resume(persist_cfg.directory)
        assert resumed.regime_detector is not None
        assert resumed.regime_detector.name == detector
        _drive(resumed, 6)
        resumed.close()
        _assert_parity(resumed, reference)
        assert (
            resumed.regime_detector.state_dict()
            == reference.regime_detector.state_dict()
        )

    def test_legacy_bare_regime_config_checkpoint_still_resumes(
        self, small_trace, persist_cfg
    ):
        """Pre-registry checkpoints stored the CUSUM config as a bare field
        dict (no ``name`` key); ``_rebuild`` must keep accepting them."""
        session = TraceSession(
            small_trace, time_step=8, regime=True, persistence=persist_cfg
        )
        _drive(session, 9)
        session.close()

        store = CheckpointStore(persist_cfg.directory)
        ckpt = store.load_latest()
        regime = ckpt.meta["config"]["regime"]
        ckpt.meta["config"]["regime"] = dict(regime["params"])  # drop the name
        store.save(ckpt.arrays, ckpt.meta)

        resumed = TraceSession.resume(persist_cfg.directory)
        assert isinstance(resumed.regime_detector, CusumRegimeDetector)
        assert resumed.regime_detector.params() == regime["params"]
        resumed.close()


class TestGuards:
    def test_fresh_session_refuses_occupied_directory(
        self, small_trace, persist_cfg
    ):
        session = TraceSession(small_trace, time_step=8, persistence=persist_cfg)
        _drive(session, 3)
        session.close()
        with pytest.raises(PersistenceError, match="already holds"):
            TraceSession(small_trace, time_step=8, persistence=persist_cfg)

    def test_resume_rejects_wrong_trace(self, small_trace, persist_cfg):
        session = TraceSession(small_trace, time_step=8, persistence=persist_cfg)
        _drive(session, 4)
        session.close()
        other = type(small_trace)(
            alpha=small_trace.alpha * 1.000001,
            beta=small_trace.beta,
            timestamps=small_trace.timestamps,
        )
        with pytest.raises(PersistenceError, match="sha256"):
            TraceSession.resume(persist_cfg.directory, trace=other)

    def test_resume_without_trace_path_needs_explicit_trace(
        self, small_trace, tmp_path
    ):
        cfg = PersistenceConfig(directory=tmp_path / "state", checkpoint_every=5)
        session = TraceSession(small_trace, time_step=8, persistence=cfg)
        _drive(session, 4)
        session.close()
        with pytest.raises(PersistenceError, match="no trace path"):
            TraceSession.resume(cfg.directory)
        resumed = TraceSession.resume(cfg.directory, trace=small_trace)
        assert resumed.stats.operations == 4
        resumed.close()

    def test_resume_must_keep_directory(self, small_trace, persist_cfg, tmp_path):
        session = TraceSession(small_trace, time_step=8, persistence=persist_cfg)
        _drive(session, 4)
        session.close()
        elsewhere = PersistenceConfig(directory=tmp_path / "elsewhere")
        with pytest.raises(PersistenceError, match="keep persisting"):
            TraceSession.resume(persist_cfg.directory, persistence=elsewhere)

    def test_resume_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError, match="no persistence directory"):
            TraceSession.resume(tmp_path / "never-existed")


class TestCheckpointApi:
    def test_checkpoint_disabled_returns_none(self, small_trace):
        session = TraceSession(small_trace, time_step=8)
        assert session.checkpoint() is None
        session.close()  # idempotent no-op without persistence
        session.close()

    def test_manual_checkpoint_returns_path(self, small_trace, persist_cfg):
        session = TraceSession(small_trace, time_step=8, persistence=persist_cfg)
        _drive(session, 2)
        path = session.checkpoint()
        assert path is not None and path.endswith(".ckpt")
        session.close()

    def test_cadence_and_retention(self, small_trace, persist_cfg):
        session = TraceSession(small_trace, time_step=8, persistence=persist_cfg)
        _drive(session, 16)  # cadence 5 → ckpts at 0, 5, 10, 15; keep 3
        session.close()
        names = sorted(p.name for p in persist_cfg.directory.glob("*.ckpt"))
        assert len(names) == 3
        written = session.instrumentation.counters["session.checkpoint.written"]
        assert written == 4
