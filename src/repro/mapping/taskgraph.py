"""Task graphs: vertices are tasks, edge weights are data volumes (bytes).

The paper's topology-mapping experiments "create the task graph by randomly
generating the weight between 5MB to 10MB" (Sec V-A); :func:`random_task_graph`
reproduces that. Ring and 2-D stencil generators model the communication
patterns of the real applications the paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_square_matrix, check_probability
from ..errors import ValidationError
from ..utils.seeding import spawn_rng

__all__ = ["TaskGraph", "random_task_graph", "ring_task_graph", "stencil_task_graph"]

MB = 1024 * 1024


@dataclass(frozen=True)
class TaskGraph:
    """Directed task-communication graph as a dense volume matrix.

    ``volumes[s, t]`` is the number of bytes task *s* sends to task *t* per
    application step; 0 means no edge. The diagonal must be zero.
    """

    volumes: np.ndarray

    def __post_init__(self) -> None:
        v = as_square_matrix(self.volumes, "volumes")
        if np.any(v < 0):
            raise ValidationError("volumes must be non-negative")
        if np.any(np.diagonal(v) != 0):
            raise ValidationError("task graph diagonal must be zero")
        v.setflags(write=False)
        object.__setattr__(self, "volumes", v)

    @property
    def n_tasks(self) -> int:
        return self.volumes.shape[0]

    @property
    def n_edges(self) -> int:
        return int(np.count_nonzero(self.volumes))

    def vertex_weights(self) -> np.ndarray:
        """Sum of weights of all edges touching each vertex (paper's definition)."""
        return self.volumes.sum(axis=1) + self.volumes.sum(axis=0)

    def total_volume(self) -> float:
        return float(self.volumes.sum())


def random_task_graph(
    n_tasks: int,
    *,
    density: float = 0.3,
    lo_bytes: float = 5 * MB,
    hi_bytes: float = 10 * MB,
    seed: int | np.random.Generator | None = None,
) -> TaskGraph:
    """Random directed task graph with uniform volumes in [lo, hi].

    Every vertex is guaranteed at least one incident edge so the greedy
    mapper never sees an isolated task.
    """
    if n_tasks < 2:
        raise ValidationError("n_tasks must be >= 2")
    check_probability(density, "density")
    if not 0 < lo_bytes <= hi_bytes:
        raise ValidationError("need 0 < lo_bytes <= hi_bytes")
    rng = spawn_rng(seed)
    mask = rng.random((n_tasks, n_tasks)) < density
    np.fill_diagonal(mask, False)
    # Connectivity guarantee: give any isolated vertex one random edge.
    isolated = ~(mask.any(axis=0) | mask.any(axis=1))
    for v in np.flatnonzero(isolated):
        other = int(rng.integers(n_tasks - 1))
        other = other if other < v else other + 1
        mask[v, other] = True
    vols = rng.uniform(lo_bytes, hi_bytes, size=(n_tasks, n_tasks))
    return TaskGraph(volumes=np.where(mask, vols, 0.0))


def ring_task_graph(
    n_tasks: int, volume_bytes: float = 8 * MB
) -> TaskGraph:
    """Ring pattern: task *i* sends to task *(i+1) mod n*."""
    if n_tasks < 2:
        raise ValidationError("n_tasks must be >= 2")
    v = np.zeros((n_tasks, n_tasks))
    idx = np.arange(n_tasks)
    v[idx, (idx + 1) % n_tasks] = float(volume_bytes)
    return TaskGraph(volumes=v)


def stencil_task_graph(
    rows: int, cols: int, volume_bytes: float = 8 * MB
) -> TaskGraph:
    """2-D 4-point stencil on a rows×cols grid (bidirectional halo exchange)."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValidationError("grid must contain at least 2 tasks")
    n = rows * cols
    v = np.zeros((n, n))

    def tid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                v[tid(r, c), tid(r + 1, c)] = volume_bytes
                v[tid(r + 1, c), tid(r, c)] = volume_bytes
            if c + 1 < cols:
                v[tid(r, c), tid(r, c + 1)] = volume_bytes
                v[tid(r, c + 1), tid(r, c)] = volume_bytes
    return TaskGraph(volumes=v)
