"""The Algorithm-1 session over a replayed trace.

A :class:`TraceSession` walks a :class:`~repro.cloudsim.trace.CalibrationTrace`
forward in time. The first ``time_step`` snapshots are consumed as the
initial calibration; every subsequent operation is priced on the *live*
snapshot at the session's cursor while its tree/mapping is built from the
*current constant component*. After each operation the session compares the
expected time against the observed one and re-calibrates (from the trailing
window, charging the calibration overhead) when the relative deviation
crosses the threshold — exactly lines 4–9 of the paper's Algorithm 1.

Calibration goes through a :class:`~repro.core.engine.DecompositionEngine`:
TP-matrix rows are cached across overlapping windows and re-calibration
solves warm-start from the previous solution (pass ``warm_start=False`` for
the historical cold path). The engine's instrumentation — per-solve spans,
warm/cold and cache counters — is exposed as
:attr:`TraceSession.instrumentation`.

The same class serves live substrates by first materializing their
measurements as a trace (see
:func:`~repro.experiments.netsim_support.calibrate_netsim_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import check_nonnegative, check_positive
from ..calibration.overhead import calibration_overhead_seconds
from ..cloudsim.trace import CalibrationTrace
from ..collectives.exec_model import collective_time, weights_to_alphabeta
from ..collectives.fnf import fnf_tree
from ..core.decompose import Decomposition
from ..core.engine import DecompositionEngine
from ..core.maintenance import MaintenanceController, MaintenanceDecision
from ..errors import ValidationError
from ..mapping.evaluate import bandwidth_from_weights, mapping_total_time
from ..mapping.greedy import greedy_mapping
from ..mapping.taskgraph import TaskGraph
from ..observability import Instrumentation

__all__ = ["OperationRecord", "SessionStats", "TraceSession"]


@dataclass(frozen=True, slots=True)
class OperationRecord:
    """One operation executed through the session."""

    op: str
    snapshot: int
    root: int
    elapsed: float
    expected: float
    decision: MaintenanceDecision


@dataclass
class SessionStats:
    """Aggregate accounting of a session's lifetime.

    ``epochs`` counts how many times the replay cursor wrapped past the end
    of the trace back to the evaluation-window start — i.e. how many times
    the finite trace was reused. Long-running replays report it so "1000
    operations" can be read as "the 20-snapshot trace replayed 50 times"
    rather than mistaken for 1000 fresh measurements.
    """

    operations: int = 0
    communication_seconds: float = 0.0
    overhead_seconds: float = 0.0
    recalibrations: int = 0
    epochs: int = 0
    history: list[OperationRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.communication_seconds + self.overhead_seconds

    @property
    def average_total_seconds(self) -> float:
        return self.total_seconds / self.operations if self.operations else 0.0


class TraceSession:
    """Adaptive network-aware optimization over a replayed trace.

    Parameters
    ----------
    trace:
        The network ground truth, walked forward one snapshot per operation
        (wrapping around at the end).
    nbytes:
        Default message size for calibration weights and collectives.
    time_step:
        Calibration window length (paper default 10).
    threshold:
        Maintenance threshold (paper default 1.0).
    consecutive:
        Consecutive above-threshold observations required before a
        re-calibration fires (default 1, the paper's immediate rule).
        Use 2 to debounce one-off interference spikes when individual
        observations are single collectives rather than whole runs.
    solver:
        RPCA backend.
    calibration_cost:
        Seconds charged per (re-)calibration; defaults to the Fig-4 model.
    warm_start:
        Warm-start re-calibration solves from the previous window's solution
        (default on; only solvers that support it — APG/IALM — are affected).
        Disable to reproduce the historical cold-solve path bit for bit.
    instrumentation:
        Observability sink shared with the session's
        :class:`~repro.core.engine.DecompositionEngine`; a fresh one is
        created if omitted (read it back via :attr:`instrumentation`).
    """

    def __init__(
        self,
        trace: CalibrationTrace,
        *,
        nbytes: float = 8.0 * 1024 * 1024,
        time_step: int = 10,
        threshold: float = 1.0,
        consecutive: int = 1,
        solver: str = "apg",
        calibration_cost: float | None = None,
        warm_start: bool = True,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if trace.n_snapshots <= time_step:
            raise ValidationError(
                "trace too short: need more snapshots than the time step"
            )
        check_positive(nbytes, "nbytes")
        self.trace = trace
        self.nbytes = float(nbytes)
        self.time_step = int(time_step)
        self.solver = solver
        self.controller = MaintenanceController(
            threshold=threshold, consecutive=consecutive
        )
        self.calibration_cost = (
            calibration_cost
            if calibration_cost is not None
            else calibration_overhead_seconds(trace.n_machines, time_step)
        )
        check_nonnegative(self.calibration_cost, "calibration_cost")
        self._engine = DecompositionEngine(
            trace,
            nbytes=self.nbytes,
            time_step=self.time_step,
            solver=solver,
            warm_start=warm_start,
            instrumentation=(
                instrumentation
                if instrumentation is not None
                else Instrumentation("session")
            ),
        )
        self.stats = SessionStats()
        self._cursor = self.time_step  # next live snapshot
        self._decomposition: Decomposition | None = None
        self._calibrate(end=self.time_step, charge=True)

    # -- state ------------------------------------------------------------
    @property
    def decomposition(self) -> Decomposition:
        assert self._decomposition is not None
        return self._decomposition

    @property
    def norm_ne(self) -> float:
        """Current ``Norm(N_E)`` — the effectiveness predictor."""
        return self.decomposition.norm_ne

    @property
    def verdict(self) -> str:
        return self.decomposition.report.verdict

    def weight_matrix(self) -> np.ndarray:
        """The current constant-component weight matrix."""
        return self.decomposition.performance_matrix().weights.copy()

    @property
    def instrumentation(self) -> Instrumentation:
        """Counters/timers/solve spans of this session's engine."""
        return self._engine.instrumentation

    # -- internals ----------------------------------------------------------
    def _calibrate(self, end: int, *, charge: bool) -> None:
        self._decomposition = self._engine.calibrate(end)
        if charge:
            self.stats.overhead_seconds += self.calibration_cost

    def _advance(self) -> int:
        k = self._cursor
        self._cursor += 1
        if self._cursor >= self.trace.n_snapshots:
            self._cursor = self.time_step  # wrap the evaluation window
            self.stats.epochs += 1
        return k

    # -- operations -----------------------------------------------------------
    def run_collective(
        self,
        op: str,
        *,
        root: int = 0,
        nbytes: float | None = None,
        machines: list[int] | np.ndarray | None = None,
    ) -> OperationRecord:
        """Run one collective; returns its record after maintenance feedback.

        *machines* restricts the operation to a virtual sub-cluster
        ``C' ⊆ C`` (paper Algorithm 1 line 3): the constant component and
        the live snapshot are both restricted to those machines, and *root*
        indexes into the sub-cluster.
        """
        size = self.nbytes if nbytes is None else float(nbytes)
        check_positive(size, "nbytes")
        k = self._advance()
        weights = self.weight_matrix()
        live_alpha, live_beta = self.trace.alpha[k], self.trace.beta[k]
        if machines is not None:
            idx = np.asarray(machines, dtype=np.intp)
            if idx.size < 2 or len(set(idx.tolist())) != idx.size:
                raise ValidationError("machines must be >= 2 distinct indices")
            if idx.min() < 0 or idx.max() >= self.trace.n_machines:
                raise ValidationError("machine index out of range")
            sel = np.ix_(idx, idx)
            weights = weights[sel]
            np.fill_diagonal(weights, 0.0)
            live_alpha = live_alpha[sel]
            live_beta = live_beta[sel]
        tree = fnf_tree(weights, root)
        ea, eb = weights_to_alphabeta(weights, size)
        expected = collective_time(op, tree, ea, eb, size)
        elapsed = collective_time(op, tree, live_alpha, live_beta, size)

        decision = self.controller.observe(expected, elapsed)
        if decision is MaintenanceDecision.RECALIBRATE:
            self._calibrate(end=k + 1, charge=True)
            self.stats.recalibrations += 1

        record = OperationRecord(
            op=op, snapshot=k, root=int(root), elapsed=elapsed,
            expected=expected, decision=decision,
        )
        self.stats.operations += 1
        self.stats.communication_seconds += elapsed
        self.stats.history.append(record)
        return record

    def broadcast(self, *, root: int = 0, nbytes: float | None = None) -> OperationRecord:
        return self.run_collective("broadcast", root=root, nbytes=nbytes)

    def scatter(self, *, root: int = 0, block_bytes: float | None = None) -> OperationRecord:
        return self.run_collective("scatter", root=root, nbytes=block_bytes)

    def reduce(self, *, root: int = 0, nbytes: float | None = None) -> OperationRecord:
        return self.run_collective("reduce", root=root, nbytes=nbytes)

    def gather(self, *, root: int = 0, block_bytes: float | None = None) -> OperationRecord:
        return self.run_collective("gather", root=root, nbytes=block_bytes)

    def communicator(self, snapshot: int | None = None):
        """An MPI-style :class:`~repro.mpisim.SimComm` bound to this session.

        The communicator's live network is the trace snapshot at the
        session's cursor (or *snapshot* if given) and its trees come from
        the current constant component — i.e. programs written against it
        run network-aware without knowing about RPCA at all. The
        communicator is a snapshot view: it does not advance the session's
        cursor or feed the maintenance loop.
        """
        from ..mpisim.comm import SimComm

        k = self._cursor if snapshot is None else int(snapshot)
        if not 0 <= k < self.trace.n_snapshots:
            raise ValidationError(f"snapshot {k} out of range")
        return SimComm(
            self.trace.alpha[k], self.trace.beta[k], weights=self.weight_matrix()
        )

    def map_tasks(self, graph: TaskGraph) -> tuple[np.ndarray, float]:
        """Map *graph* greedily on the constant component; price it live.

        Returns ``(mapping, elapsed_seconds)``. Mapping operations also feed
        the maintenance loop (their expected cost comes from the estimate).
        """
        if graph.n_tasks > self.trace.n_machines:
            raise ValidationError("task graph larger than the cluster")
        k = self._advance()
        weights = self.weight_matrix()
        mapping = greedy_mapping(graph, bandwidth_from_weights(weights))
        ea, eb = weights_to_alphabeta(weights, self.nbytes)
        expected = mapping_total_time(graph, mapping, ea, eb)
        elapsed = mapping_total_time(
            graph, mapping, self.trace.alpha[k], self.trace.beta[k]
        )
        decision = self.controller.observe(expected, elapsed)
        if decision is MaintenanceDecision.RECALIBRATE:
            self._calibrate(end=k + 1, charge=True)
            self.stats.recalibrations += 1
        self.stats.operations += 1
        self.stats.communication_seconds += elapsed
        self.stats.history.append(
            OperationRecord(
                op="mapping", snapshot=k, root=-1, elapsed=elapsed,
                expected=expected, decision=decision,
            )
        )
        return mapping, elapsed
