"""End-to-end bench — the paper's week-long campaign protocol (Sec V-A).

One run every 30 minutes for a synthetic week (288+ snapshots is a real
week; 72 here keep the bench under a minute), each run executing
application-sized broadcast + scatter + topology mapping under all three
EC2 arms, with the RPCA arm living inside the Algorithm-1 session (three
calibrations in the paper's week; ours re-calibrates when its own
maintenance loop says so). The bottom line is the week's wall clock and
dollar bill per arm.
"""

from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.experiments.campaign import run_campaign
from repro.experiments.report import format_table


def test_campaign_protocol(benchmark, emit):
    cfg = TraceConfig(
        n_machines=32,
        n_snapshots=72,  # 1.5 synthetic days at the paper's 30-min cadence
        dynamics=DynamicsConfig(migration_rate=0.01),  # occasional migrations
    )
    trace = generate_trace(cfg, seed=2013)

    result = benchmark.pedantic(
        run_campaign,
        args=(trace,),
        kwargs=dict(time_step=10, threshold=1.0, solver="apg", seed=0),
        rounds=1,
        iterations=1,
    )

    emit(
        format_table(
            ["arm", "comm (s)", "overhead (s)", "total (s)", "recals", "cost $"],
            result.as_rows(),
            title=(
                "Sec V-A protocol: one run per 30-min slot, 32 VMs "
                f"(mean Norm(N_E) = {sum(result.norm_ne_series) / len(result.norm_ne_series):.3f})"
            ),
        )
    )

    # The paper's bottom line, end to end: RPCA wins the week over Baseline
    # net of all its own overheads, and at least matches the Heuristics arm
    # (see EXPERIMENTS.md on the margin's variance at this scale).
    assert result.improvement("RPCA", "Baseline") > 0.25
    assert result.arm("RPCA").total_seconds <= result.arm("Heuristics").total_seconds * 1.03
    # Re-calibration is rare ("less than once for a day in our experiment").
    assert result.arm("RPCA").recalibrations <= 8
    # And it costs fewer dollars.
    assert result.arm("RPCA").cost_usd <= result.arm("Baseline").cost_usd