"""Fig 12 — background traffic vs Norm(N_E) in the flow simulator.

Paper shape on the 1024-machine tree: Norm(N_E) falls as the background
waiting time λ grows (12a) and rises roughly linearly with the background
message size (12b). The bench runs a 256-machine datacenter with the same
3.2:1 uplink oversubscription to keep the wall clock bounded.
"""

import numpy as np

from repro.experiments import fig12_interference
from repro.experiments.report import format_series
from repro.netsim.topology import GBIT

MB = 1024 * 1024
GEOM = dict(
    n_racks=16,
    servers_per_rack=16,
    cluster_size=24,
    n_pairs=96,
    n_snapshots=8,
    gap_seconds=20.0,
    core_bandwidth=5.0 * GBIT,  # 16 x 1 Gb/s vs 5 Gb/s = 3.2:1
)


def test_fig12a_lambda_sweep(benchmark, emit):
    result = benchmark.pedantic(
        fig12_interference.run_lambda_sweep,
        kwargs=dict(lambdas=(1.0, 2.0, 5.0, 10.0, 30.0), message_bytes=100.0 * MB,
                    seed=0, **GEOM),
        rounds=1,
        iterations=1,
    )
    emit(
        format_series(
            "lambda (s)", "Norm(N_E)", result.as_rows(),
            title="Fig 12a: interference frequency vs Norm(N_E)",
        )
    )
    norms = np.array(result.norms())
    # Overall decreasing trend: busiest clearly above calmest, and the
    # first half's mean above the second half's.
    assert norms[0] > norms[-1]
    assert norms[:2].mean() > norms[-2:].mean()


def test_fig12b_message_size_sweep(benchmark, emit):
    result = benchmark.pedantic(
        fig12_interference.run_msgsize_sweep,
        kwargs=dict(
            message_sizes=(10 * MB, 50 * MB, 100 * MB, 250 * MB, 500 * MB),
            mean_wait_seconds=5.0,
            seed=0,
            **GEOM,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        format_series(
            "background message (bytes)", "Norm(N_E)", result.as_rows(),
            title="Fig 12b: interference volume vs Norm(N_E)",
        )
    )
    norms = np.array(result.norms())
    assert norms[-1] > norms[0]
    # Roughly monotone growth (one inversion tolerated for noise).
    inversions = int(np.sum(np.diff(norms) < -0.01))
    assert inversions <= 1
