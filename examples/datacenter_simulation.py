#!/usr/bin/env python3
"""Datacenter simulation: interference and the Topology-aware arm (Figs 12-13).

Stands up the ns-2-substitute flow simulator — a two-level tree with Poisson
background traffic — then (a) shows how background intensity drives
Norm(N_E), and (b) runs the four-arm comparison including Topology-aware,
which only exists here because real clouds hide their topology.

A small datacenter (8 racks x 8 servers) keeps the run under a minute; the
core bandwidth is scaled to preserve the paper's 3.2:1 oversubscription.

Run:  python examples/datacenter_simulation.py
"""

from __future__ import annotations

from repro.experiments import fig12_interference, fig13_simulation
from repro.experiments.report import format_series, format_table
from repro.netsim.background import BackgroundConfig
from repro.netsim.topology import GBIT

MB = 1024 * 1024
CORE = 2.5 * GBIT  # 8 servers x 1 Gb/s vs 2.5 Gb/s uplink = 3.2:1


def main() -> None:
    print("=== Norm(N_E) vs background waiting time (Fig 12a) ========")
    lam = fig12_interference.run_lambda_sweep(
        lambdas=(1.0, 3.0, 10.0),
        message_bytes=100 * MB,
        n_pairs=48,
        n_racks=8,
        servers_per_rack=8,
        cluster_size=16,
        n_snapshots=8,
        gap_seconds=15.0,
        core_bandwidth=CORE,
        seed=0,
    )
    print(format_series("lambda (s)", "Norm(N_E)", lam.as_rows()))
    print()

    print("=== Norm(N_E) vs background message size (Fig 12b) ========")
    msg = fig12_interference.run_msgsize_sweep(
        message_sizes=(10 * MB, 100 * MB, 250 * MB),
        mean_wait_seconds=5.0,
        n_pairs=48,
        n_racks=8,
        servers_per_rack=8,
        cluster_size=16,
        n_snapshots=8,
        gap_seconds=15.0,
        core_bandwidth=CORE,
        seed=0,
    )
    print(format_series("message (bytes)", "Norm(N_E)", msg.as_rows()))
    print()

    print("=== four-arm comparison in the simulator (Fig 13) =========")
    res = fig13_simulation.run(
        n_racks=8,
        servers_per_rack=8,
        cluster_size=16,
        background=BackgroundConfig(
            n_pairs=96, message_bytes=100 * MB, mean_wait_seconds=1.0
        ),
        n_snapshots=16,
        time_step=8,
        gap_seconds=15.0,
        repetitions=40,
        solver="apg",
        core_bandwidth=CORE,
        seed=3,
    )
    print(f"measured Norm(N_E) = {res.norm_ne:.3f} (paper targets ~0.1)")
    print(
        format_table(
            ["strategy", "broadcast", "scatter", "mapping"],
            res.normalized_table(),
            title="Normalized to Baseline (lower is better)",
        )
    )
    print()
    print(
        "paper shape: Topology-aware ~ Baseline; RPCA 25-40% better than "
        "both; RPCA 10-15% better than Heuristics"
    )


if __name__ == "__main__":
    main()
