"""Poisson background traffic (paper Sec V-A, "Simulations").

"We make some of the machines keep on sending messages to some others. …
we first choose the links and then vary two parameters to control the
background traffic: message size and the distribution of waiting time
between sending the message. For each link, we assume the waiting time
satisfies poisson distribution and the expected value is λ."

Each chosen (src, dst) pair runs an independent renewal process: send
``message_bytes``, wait ``Exp(mean=λ)``, repeat. Larger λ = rarer
interference; larger messages = longer-lived contention. Both knobs drive
``Norm(N_E)`` in Fig 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive
from ..errors import ValidationError
from ..utils.seeding import spawn_rng
from .simulator import FlowRecord, FlowSimulator

__all__ = ["BackgroundConfig", "BackgroundTraffic"]


@dataclass(frozen=True, slots=True)
class BackgroundConfig:
    """Knobs of the background workload.

    Attributes
    ----------
    n_pairs:
        Number of persistent sender→receiver pairs.
    message_bytes:
        Size of every background message (paper sweeps 10–500 MB).
    mean_wait_seconds:
        λ — expected wait between a message's completion and the next send
        (paper sweeps 1–30 s).
    """

    n_pairs: int = 64
    message_bytes: float = 100.0 * 1024 * 1024
    mean_wait_seconds: float = 5.0

    def __post_init__(self) -> None:
        if int(self.n_pairs) < 0:
            raise ValidationError("n_pairs must be >= 0")
        check_positive(self.message_bytes, "message_bytes")
        check_positive(self.mean_wait_seconds, "mean_wait_seconds")


class BackgroundTraffic:
    """Self-perpetuating background senders attached to a simulator.

    Parameters
    ----------
    sim:
        The simulator to feed.
    config:
        Workload parameters.
    exclude:
        Machines that must not carry background traffic (e.g. the virtual
        cluster under test, when studying interference-free operation).
    seed:
        Drives pair selection and waiting times.
    """

    TAG = "background"

    def __init__(
        self,
        sim: FlowSimulator,
        config: BackgroundConfig,
        *,
        exclude: set[int] | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.rng = spawn_rng(seed)
        n = sim.topology.n_machines
        excl = exclude or set()
        candidates = np.array([m for m in range(n) if m not in excl], dtype=np.intp)
        if config.n_pairs > 0 and candidates.size < 2:
            raise ValidationError("not enough machines for background traffic")
        self.pairs: list[tuple[int, int]] = []
        for _ in range(int(config.n_pairs)):
            s, d = self.rng.choice(candidates, size=2, replace=False)
            self.pairs.append((int(s), int(d)))
        self.messages_sent = 0

    def start(self) -> None:
        """Kick off every pair with an initial random phase."""
        for s, d in self.pairs:
            first = float(self.rng.exponential(self.config.mean_wait_seconds))
            self._schedule_send(s, d, self.sim.now + first)

    def _schedule_send(self, src: int, dst: int, at: float) -> None:
        def _on_complete(sim: FlowSimulator, record: FlowRecord) -> None:
            wait = float(self.rng.exponential(self.config.mean_wait_seconds))
            self._schedule_send(src, dst, sim.now + wait)

        self.sim.schedule_flow(
            at,
            src,
            dst,
            self.config.message_bytes,
            tag=self.TAG,
            on_complete=_on_complete,
        )
        self.messages_sent += 1
