"""Sec V-B runtime claims: RPCA solves the 196-instance TP-matrix fast.

Paper: "The execution time for running RPCA once is less than 1 minute in
the experiments with 196 instances" (a 10 × 38416 matrix), and the RPCA
calculation contributes <2% of total overhead. Our numpy solvers are far
faster than that bound; the benchmark records the actual per-solve time.
"""

import numpy as np
import pytest

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.decompose import decompose

MB = 1024 * 1024


@pytest.fixture(scope="module")
def tp_196():
    trace = generate_trace(TraceConfig(n_machines=196, n_snapshots=10), seed=196)
    return trace.tp_matrix(8 * MB)


@pytest.mark.parametrize("solver", ["apg", "ialm", "row_constant"])
def test_rpca_solver_runtime_196_instances(benchmark, tp_196, solver):
    dec = benchmark(decompose, tp_196, solver=solver)
    assert dec.constant.row.size == 196 * 196
    # The paper's bound, with two orders of magnitude to spare expected.
    stats = benchmark.stats.stats
    assert stats.mean < 60.0
