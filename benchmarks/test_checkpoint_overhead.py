"""Crash-safety tax: journaled-checkpoint overhead on the steady-state path.

Persistence must be cheap enough to leave on: the write-ahead journal adds
a tiny append to every operation and a full checkpoint every
``checkpoint_every`` operations. The benchmark measures both against the
plain per-operation cost across TP-window sizes (the window sets the
checkpoint's array payload), and the assertion pins the design target from
the issue: amortized checkpoint cost under 5% of steady-state operation
time. Recovery latency (checkpoint load + journal replay) is reported
alongside, since it bounds the restart blackout after a crash.
"""

import time

import pytest

from repro.cloudsim.dynamics import DynamicsConfig
from repro.cloudsim.io import save_trace
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.persistence import PersistenceConfig
from repro.runtime.session import TraceSession

OPS = 40
TIME_STEPS = [5, 10, 20]


@pytest.fixture(scope="module")
def trace_16():
    cfg = TraceConfig(
        n_machines=16,
        n_snapshots=48,
        dynamics=DynamicsConfig(volatility_sigma=0.05),
    )
    return generate_trace(cfg, seed=16)


def _drive(session, n_ops):
    n = session.trace.n_machines
    for _ in range(n_ops):
        session.broadcast(root=session.stats.operations % n)


def _best_of(measure, repeats=5):
    """Fastest of *repeats* timed batches — robust against scheduler noise."""
    return min(measure() for _ in range(repeats))


def _steady_per_op_seconds(trace, time_step):
    # threshold high: no recalibrations, so this is the pure serving path.
    session = TraceSession(trace, time_step=time_step, threshold=10.0)
    _drive(session, 5)  # warm caches before timing

    def batch():
        t0 = time.perf_counter()
        _drive(session, OPS)
        return (time.perf_counter() - t0) / OPS

    return _best_of(batch)


def _checkpoint_seconds(trace, time_step, tmp_path, n_ckpts=10):
    session = TraceSession(
        trace,
        time_step=time_step,
        threshold=10.0,
        persistence=PersistenceConfig(
            directory=tmp_path / f"ts{time_step}", checkpoint_every=10**9
        ),
    )
    _drive(session, 30)  # non-trivial history + journal in the payload
    session.checkpoint()  # warm the write path

    def batch():
        t0 = time.perf_counter()
        for _ in range(n_ckpts):
            session.checkpoint()
        return (time.perf_counter() - t0) / n_ckpts

    elapsed = _best_of(batch)
    session.close()
    return elapsed


@pytest.mark.parametrize("time_step", TIME_STEPS)
def test_checkpoint_write_latency(benchmark, trace_16, tmp_path, time_step):
    session = TraceSession(
        trace_16,
        time_step=time_step,
        threshold=10.0,
        persistence=PersistenceConfig(
            directory=tmp_path / "bench", checkpoint_every=10**9
        ),
    )
    _drive(session, 5)
    benchmark(session.checkpoint)
    session.close()


@pytest.mark.parametrize("time_step", TIME_STEPS)
def test_recovery_latency(benchmark, trace_16, tmp_path, time_step):
    tpath = tmp_path / "trace.npz"
    save_trace(trace_16, tpath)
    session = TraceSession(
        trace_16,
        time_step=time_step,
        threshold=10.0,
        persistence=PersistenceConfig(
            directory=tmp_path / "state",
            checkpoint_every=20,
            trace_path=str(tpath),
        ),
    )
    _drive(session, 24)  # newest checkpoint at op 20 → 4 records to replay
    session.close()

    def _resume():
        resumed = TraceSession.resume(tmp_path / "state", trace=trace_16)
        resumed.close()
        return resumed

    resumed = benchmark(_resume)
    assert resumed.stats.operations == 24


def test_amortized_checkpoint_overhead_under_five_percent(
    trace_16, tmp_path, emit
):
    """The acceptance bound: at the default cadence, checkpointing costs
    less than 5% of the steady-state serving time per operation."""
    cadence = PersistenceConfig(directory=tmp_path / "x").checkpoint_every
    rows = [f"{'T_window':>9} {'per-op':>12} {'ckpt':>12} {'amortized':>10}"]
    worst = 0.0
    for time_step in TIME_STEPS:
        per_op = _steady_per_op_seconds(trace_16, time_step)
        ckpt = _checkpoint_seconds(trace_16, time_step, tmp_path)
        ratio = (ckpt / cadence) / per_op
        worst = max(worst, ratio)
        rows.append(
            f"{time_step:>9} {per_op * 1e3:>10.3f}ms {ckpt * 1e3:>10.3f}ms "
            f"{ratio:>9.1%}"
        )
    emit(
        f"checkpoint overhead at cadence {cadence} "
        "(amortized ckpt cost / steady per-op cost):\n" + "\n".join(rows)
    )
    assert worst < 0.05, (
        f"amortized checkpoint overhead {worst:.1%} exceeds the 5% budget"
    )
