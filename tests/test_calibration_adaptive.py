"""Unit tests for warm-started APG and online time-step selection."""

import numpy as np
import pytest

from repro.calibration.adaptive import select_time_step_online
from repro.core.apg import rpca_apg
from repro.core.decompose import decompose
from repro.errors import CalibrationError, ValidationError

MB = 1024 * 1024


class TestAPGDeterminism:
    def test_overlapping_windows_stay_consistent(self, small_trace):
        # Algorithm-1 re-calibrations solve cold on overlapping windows;
        # consecutive constant rows must agree closely (same network).
        tp1 = small_trace.tp_matrix(8 * MB, start=0, count=10)
        tp2 = small_trace.tp_matrix(8 * MB, start=1, count=10)
        from repro.core.decompose import constant_row

        r1 = constant_row(rpca_apg(tp1.data).low_rank)
        r2 = constant_row(rpca_apg(tp2.data).low_rank)
        rel = np.abs(r1 - r2)[r1 > 0] / r1[r1 > 0]
        assert np.median(rel) < 0.05

    def test_repeat_solve_identical(self, small_trace):
        tp = small_trace.tp_matrix(8 * MB, start=0, count=10)
        a = rpca_apg(tp.data)
        b = rpca_apg(tp.data)
        np.testing.assert_array_equal(a.low_rank, b.low_rank)
        assert a.iterations == b.iterations


class TestOnlineTimeStep:
    def test_selects_reasonable_step(self, small_trace):
        tp = small_trace.tp_matrix(8 * MB)
        res = select_time_step_online(tp, tolerance=0.02)
        assert res.converged
        assert 4 <= res.selected <= tp.n_snapshots
        assert len(res.deltas) == res.selected - 3  # min_step default 3

    def test_calm_trace_converges_immediately(self, calm_trace):
        tp = calm_trace.tp_matrix(8 * MB)
        res = select_time_step_online(tp, tolerance=0.02)
        assert res.converged and res.selected <= 6

    def test_tight_tolerance_needs_more_snapshots(self, small_trace):
        tp = small_trace.tp_matrix(8 * MB)
        loose = select_time_step_online(tp, tolerance=0.05)
        tight = select_time_step_online(tp, tolerance=0.005)
        assert tight.selected >= loose.selected

    def test_budget_exhaustion_reported(self, small_trace):
        tp = small_trace.tp_matrix(8 * MB)
        res = select_time_step_online(tp, tolerance=1e-9, max_step=8)
        assert not res.converged and res.selected == 8

    def test_selected_step_close_to_oracle_estimate(self, small_trace):
        # The step the online rule picks gives a constant row close to the
        # whole-trace oracle — the Fig 5 guarantee, without the oracle.
        from repro.core.metrics import relative_difference

        tp = small_trace.tp_matrix(8 * MB)
        res = select_time_step_online(tp, tolerance=0.02)
        oracle = decompose(tp, solver="row_constant").constant.row
        picked = decompose(
            tp.head(res.selected), solver="row_constant"
        ).constant.row
        assert relative_difference(picked, oracle) < 0.10

    def test_too_few_snapshots_rejected(self, tiny_trace):
        tp = tiny_trace.tp_matrix(8 * MB)  # 10 snapshots
        with pytest.raises(CalibrationError):
            select_time_step_online(tp, min_step=10)

    def test_validation(self, small_trace):
        tp = small_trace.tp_matrix(8 * MB)
        with pytest.raises(ValidationError):
            select_time_step_online(tp, consecutive=0)
        with pytest.raises(ValidationError):
            select_time_step_online(tp, min_step=1)