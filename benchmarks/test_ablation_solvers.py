"""Ablation — RPCA solver choice (DESIGN.md Sec 5).

Compares the paper's APG solver against IALM and the exact row-constant
median on (a) constant-row recovery accuracy against the generator's ground
truth and (b) the downstream broadcast improvement they enable. Finding to
verify: the three solvers are interchangeable for this workload (the
row-constant projection dominates), so the paper's APG choice is about
generality, not accuracy.
"""

import numpy as np

from repro.cloudsim.bands import derive_bands
from repro.cloudsim.placement import place_cluster
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.core.decompose import decompose
from repro.core.metrics import relative_difference
from repro.experiments.harness import ReplayContext, collective_comparison
from repro.experiments.report import format_table
from repro.strategies import BaselineStrategy, RPCAStrategy

MB = 1024 * 1024
SOLVERS = ("apg", "ialm", "row_constant")


def test_ablation_solver_choice(benchmark, emit):
    n = 32
    placement = place_cluster(n, seed=1)
    trace = generate_trace(
        TraceConfig(n_machines=n, n_snapshots=30), seed=1, placement=placement
    )
    # Ground-truth constant weights from the generator's bands.
    bands = derive_bands(placement, seed=np.random.default_rng(1))

    def run_all():
        out = {}
        tp = trace.tp_matrix(8 * MB, start=0, count=10)
        for solver in SOLVERS:
            dec = decompose(tp, solver=solver)
            ctx = ReplayContext(trace=trace, time_step=10)
            arms = [
                BaselineStrategy(),
                RPCAStrategy(solver, time_step=10),
            ]
            cmp = collective_comparison(ctx, arms, repetitions=60, seed=7)
            out[solver] = (dec, cmp.improvement("RPCA", "Baseline"))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    accuracies = {}
    for solver, (dec, improvement) in results.items():
        rows.append(
            (solver, dec.norm_ne, dec.solver_iterations, improvement)
        )
        accuracies[solver] = dec.norm_ne
    emit(
        format_table(
            ["solver", "Norm(N_E)", "iterations", "bcast improvement vs Baseline"],
            rows,
            title="Ablation: RPCA solver choice (32 VMs)",
        )
    )

    # All solvers land on nearly the same error norm ...
    vals = list(accuracies.values())
    assert max(vals) - min(vals) < 0.05
    # ... and all enable a solid improvement over Baseline.
    for solver, (_, improvement) in results.items():
        assert improvement > 0.1, solver


def test_ablation_constant_row_extraction(benchmark, emit):
    # Column-mean vs top-singular-vector extraction from APG's low-rank D.
    trace = generate_trace(TraceConfig(n_machines=24, n_snapshots=20), seed=3)
    tp = trace.tp_matrix(8 * MB, start=0, count=10)

    def run_both():
        mean_row = decompose(tp, solver="apg", extraction="mean").constant.row
        sv_row = decompose(tp, solver="apg", extraction="top_sv").constant.row
        return mean_row, sv_row

    mean_row, sv_row = benchmark.pedantic(run_both, rounds=1, iterations=1)
    diff = relative_difference(sv_row, mean_row)
    emit(f"Ablation: extraction rules differ by {diff:.2%} (relative L1)")
    assert diff < 0.05  # the two extraction rules agree on this workload
