"""Shared replay harness (paper Sec V methodology).

The paper's method: calibrate a trace, fit every strategy on the calibration
prefix, then repeatedly run operations whose trees/mappings are built from
each strategy's estimate but *priced on the measured network of the moment*
(a later trace snapshot). Repetitions randomize the collective root and
advance through evaluation snapshots; reported numbers are means over
repetitions and are normalized to Baseline exactly as in Figs 7/11/13.

Harness entry points emit into any active :mod:`repro.observability` sink
(repetition/evaluation counters, strategy-fit timers, plus the solve spans
the strategies' own RPCA calls produce), so ``repro compare --profile``
and experiment drivers can report where replay time goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cloudsim.trace import CalibrationTrace
from ..collectives.exec_model import collective_time
from ..collectives.operations import build_tree
from ..errors import ValidationError
from ..mapping.evaluate import bandwidth_from_weights, mapping_total_time
from ..mapping.greedy import greedy_mapping
from ..mapping.ring import ring_mapping
from ..mapping.taskgraph import TaskGraph
from ..observability import emit_count, timed
from ..strategies.base import Strategy
from ..utils.seeding import spawn_rng

__all__ = [
    "ReplayContext",
    "ComparisonResult",
    "collective_comparison",
    "mapping_comparison",
    "empirical_cdf",
]


@dataclass(frozen=True)
class ReplayContext:
    """A trace split into calibration prefix and evaluation window.

    Parameters
    ----------
    trace:
        Ground-truth network trace.
    time_step:
        Calibration prefix length (paper default 10).
    nbytes:
        Message size strategies calibrate for.
    """

    trace: CalibrationTrace
    time_step: int = 10
    nbytes: float = 8.0 * 1024 * 1024

    def __post_init__(self) -> None:
        if not 1 <= self.time_step < self.trace.n_snapshots:
            raise ValidationError(
                "time_step must leave at least one evaluation snapshot"
            )

    @property
    def n_eval(self) -> int:
        return self.trace.n_snapshots - self.time_step

    def fit(self, strategies: list[Strategy]) -> None:
        """Fit every strategy on the calibration prefix."""
        tp = self.trace.tp_matrix(self.nbytes, start=0, count=self.time_step)
        for s in strategies:
            with timed(f"harness.fit.{s.name}"):
                s.fit(tp)
        emit_count("harness.fits", len(strategies))

    def eval_snapshot(self, rep: int) -> int:
        """Evaluation snapshot index for repetition *rep* (cycles the window)."""
        return self.time_step + (rep % self.n_eval)


@dataclass
class ComparisonResult:
    """Per-strategy elapsed times over repetitions."""

    times: dict[str, np.ndarray] = field(default_factory=dict)

    def mean(self, name: str) -> float:
        return float(np.mean(self.times[name]))

    def normalized_means(self, to: str = "Baseline") -> dict[str, float]:
        """Means normalized to one arm's mean (the paper's Fig 7 bars)."""
        ref = self.mean(to)
        return {k: float(np.mean(v)) / ref for k, v in self.times.items()}

    def improvement(self, of: str, over: str) -> float:
        """Relative improvement ``1 − mean(of)/mean(over)`` (positive = faster)."""
        return 1.0 - self.mean(of) / self.mean(over)

    def cdf(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        return empirical_cdf(self.times[name])


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted values and cumulative fractions, for CDF plots (Figs 7b/11b/13b)."""
    v = np.sort(np.asarray(values, dtype=np.float64).ravel())
    if v.size == 0:
        raise ValidationError("values must be non-empty")
    frac = np.arange(1, v.size + 1, dtype=np.float64) / v.size
    return v, frac


def collective_comparison(
    ctx: ReplayContext,
    strategies: list[Strategy],
    *,
    op: str = "broadcast",
    nbytes: float | None = None,
    repetitions: int = 100,
    seed: int | np.random.Generator | None = None,
    refit: bool = False,
) -> ComparisonResult:
    """Compare strategies on one collective over the evaluation window.

    Each repetition draws a random root, builds every strategy's tree for
    that root, and prices all trees on the same live snapshot. With
    ``refit=True`` the strategies are re-fitted each repetition on the
    ``time_step`` snapshots preceding the evaluation snapshot (sliding
    calibration — used by maintenance studies).
    """
    if repetitions < 1:
        raise ValidationError("repetitions must be >= 1")
    rng = spawn_rng(seed)
    size = nbytes if nbytes is not None else ctx.nbytes
    n = ctx.trace.n_machines
    if not refit:
        ctx.fit(strategies)
    out: dict[str, list[float]] = {s.name: [] for s in strategies}
    for rep in range(repetitions):
        k = ctx.eval_snapshot(rep)
        if refit:
            start = max(0, k - ctx.time_step)
            tp = ctx.trace.tp_matrix(ctx.nbytes, start=start, count=k - start)
            for s in strategies:
                with timed(f"harness.fit.{s.name}"):
                    s.fit(tp)
            emit_count("harness.fits", len(strategies))
        root = int(rng.integers(n))
        alpha = ctx.trace.alpha[k]
        beta = ctx.trace.beta[k]
        for s in strategies:
            weights = s.weight_matrix() if s.is_network_aware else None
            tree = build_tree(n, root, algorithm=s.tree_algorithm, weights=weights)
            out[s.name].append(collective_time(op, tree, alpha, beta, size))
        emit_count("harness.repetitions")
        emit_count("harness.evaluations", len(strategies))
    return ComparisonResult(times={k: np.asarray(v) for k, v in out.items()})


def mapping_comparison(
    ctx: ReplayContext,
    strategies: list[Strategy],
    task_graphs: list[TaskGraph],
    *,
    seed: int | np.random.Generator | None = None,
) -> ComparisonResult:
    """Compare strategies on topology mapping over the evaluation window.

    Each task graph is one repetition: strategies map it using their
    estimates (Baseline uses ring mapping), and the mapping is priced on a
    live snapshot.
    """
    if not task_graphs:
        raise ValidationError("task_graphs must be non-empty")
    rng = spawn_rng(seed)
    n = ctx.trace.n_machines
    ctx.fit(strategies)
    out: dict[str, list[float]] = {s.name: [] for s in strategies}
    for rep, g in enumerate(task_graphs):
        if g.n_tasks > n:
            raise ValidationError("task graph larger than the cluster")
        k = ctx.eval_snapshot(rep)
        alpha = ctx.trace.alpha[k]
        beta = ctx.trace.beta[k]
        offset = int(rng.integers(n))
        for s in strategies:
            if s.mapping_algorithm == "ring":
                mapping = ring_mapping(g.n_tasks, n, offset=offset)
            else:
                w = s.weight_matrix()
                assert w is not None
                mapping = greedy_mapping(g, bandwidth_from_weights(w))
            out[s.name].append(mapping_total_time(g, mapping, alpha, beta))
        emit_count("harness.repetitions")
        emit_count("harness.evaluations", len(strategies))
    return ComparisonResult(times={k: np.asarray(v) for k, v in out.items()})
