"""Worker-kill chaos harness for the self-healing fleet scheduler.

The acceptance test for fleet supervision is behavioral, mirroring the
session-level harness in :mod:`repro.persistence.chaos`: SIGKILL live
worker processes while a fleet run is in flight and require that

1. the run still completes (no hang, no abort),
2. ``fleet.worker.restarts >= 1`` — the scheduler actually noticed and
   replaced the corpse rather than getting lucky, and
3. every cluster's constant component ``P_D`` is **bit-identical** to an
   uninterrupted serial run of the same fleet — deterministic replay of the
   requeued task means a kill must be invisible in the results.

Workers are found by process name (the scheduler names them
``repro-fleet-worker-N``), so the killer needs no scheduler internals: it
is an outside attacker, the same way the CI chaos job would be.

A second scenario exercises ``on_error="degrade"``: one cluster whose task
raises on every attempt must end up quarantined in the report while every
healthy cluster still reports ``ok`` with bit-identical results.

Run it directly for the CI fleet-chaos job::

    python -m repro.fleet.chaos --mode both --seed 1 --kills 1
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import random
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..cloudsim.tracegen import TraceConfig, generate_trace
from .config import ClusterSpec, FleetConfig
from .scheduler import FleetScheduler

__all__ = [
    "FleetChaosResult",
    "WorkerKiller",
    "build_fleet",
    "run_chaos",
    "run_degraded",
    "main",
]

_WORKER_PREFIX = "repro-fleet-worker-"


@dataclass(frozen=True)
class FleetChaosResult:
    """Outcome of one chaos scenario.

    ``parity`` is the headline: every cluster the parallel run reports
    ``ok`` matches the serial reference bit for bit (``max_abs_diff`` is
    0.0 and the byte patterns are equal). ``passed`` folds in the
    scenario's other obligations (restarts observed for kill scenarios,
    quarantine observed for the degrade scenario).
    """

    scenario: str
    passed: bool
    parity: bool
    kills: int
    restarts: int
    max_abs_diff: float
    degraded: bool
    statuses: dict[str, str] = field(default_factory=dict)
    health: dict[str, int] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "passed": self.passed,
            "parity": self.parity,
            "kills": self.kills,
            "restarts": self.restarts,
            "max_abs_diff": self.max_abs_diff,
            "degraded": self.degraded,
            "statuses": dict(self.statuses),
            "health": dict(self.health),
        }


class WorkerKiller:
    """Background thread that SIGKILLs fleet workers as they appear.

    Use as a context manager around a scheduler run. The thread polls
    :func:`multiprocessing.active_children` for live processes named
    ``repro-fleet-worker-*`` and SIGKILLs up to ``kills`` distinct pids,
    choosing victims with a seeded RNG so a failing CI run is replayable.
    """

    def __init__(self, *, kills: int = 1, seed: int = 0, poll_s: float = 0.005) -> None:
        self.kills = int(kills)
        self.seed = int(seed)
        self.poll_s = float(poll_s)
        self.killed: list[int] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="fleet-chaos-killer", daemon=True
        )

    def __enter__(self) -> "WorkerKiller":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        rng = random.Random(self.seed)
        while not self._stop.is_set() and len(self.killed) < self.kills:
            victims = [
                proc
                for proc in mp.active_children()
                if (proc.name or "").startswith(_WORKER_PREFIX)
                and proc.pid is not None
                and proc.pid not in self.killed
                and proc.is_alive()
            ]
            if not victims:
                time.sleep(self.poll_s)
                continue
            victim = rng.choice(victims)
            try:
                os.kill(victim.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                continue
            self.killed.append(victim.pid)


def build_fleet(
    n_clusters: int,
    *,
    seed: int = 0,
    n_machines: int = 6,
    n_snapshots: int = 16,
) -> list[ClusterSpec]:
    """A deterministic synthetic fleet: one seeded trace per cluster."""
    return [
        ClusterSpec(
            name=f"c{i:02d}",
            trace=generate_trace(
                TraceConfig(n_machines=n_machines, n_snapshots=n_snapshots),
                seed=seed * 1000 + i,
            ),
        )
        for i in range(n_clusters)
    ]


def _row_parity(
    reference: dict[str, np.ndarray], survived: dict[str, np.ndarray]
) -> tuple[bool, float]:
    """Bit-identity across per-cluster constant rows, plus the worst |diff|."""
    parity = True
    max_diff = 0.0
    for name, ref_row in reference.items():
        row = survived.get(name)
        if row is None or row.shape != ref_row.shape:
            return False, float("inf")
        if row.tobytes() != ref_row.tobytes():
            parity = False
            if row.size:
                max_diff = max(max_diff, float(np.max(np.abs(row - ref_row))))
    return parity, max_diff


def run_chaos(
    mode: str,
    *,
    seed: int = 0,
    kills: int = 1,
    n_workers: int = 4,
) -> FleetChaosResult:
    """SIGKILL ``kills`` workers mid-``mode`` and assert survival + parity.

    ``mode`` is ``"run"`` (session fleet) or ``"sweep"`` (batched trailing
    windows). The serial reference runs first — same fleet, same config —
    then the parallel run executes under the killer thread.
    """
    if mode == "run":
        clusters = build_fleet(8, seed=seed)
        config = FleetConfig(
            n_workers=n_workers,
            operations=60,
            batch_size=4,
            window=6,
            max_worker_restarts=kills + 2,
        )
        serial = FleetScheduler(clusters, config).run_serial()
        with WorkerKiller(kills=kills, seed=seed) as killer:
            report = FleetScheduler(clusters, config).run()
    elif mode == "sweep":
        clusters = build_fleet(48, seed=seed, n_machines=12, n_snapshots=40)
        config = FleetConfig(
            n_workers=n_workers,
            window=16,
            batch_size=4,
            max_worker_restarts=kills + 2,
        )
        serial = FleetScheduler(clusters, config).run_sweep_serial()
        with WorkerKiller(kills=kills, seed=seed) as killer:
            report = FleetScheduler(clusters, config).run_sweep()
    else:
        raise ValueError(f"mode must be 'run' or 'sweep', got {mode!r}")

    parity, max_diff = _row_parity(serial.constant_rows(), report.constant_rows())
    restarts = report.health()["worker_restarts"]
    passed = (
        parity
        and not report.degraded
        and len(killer.killed) >= 1
        and restarts >= 1
    )
    return FleetChaosResult(
        scenario=f"kill-{mode}",
        passed=passed,
        parity=parity,
        kills=len(killer.killed),
        restarts=restarts,
        max_abs_diff=max_diff,
        degraded=report.degraded,
        statuses=report.statuses(),
        health=report.health(),
    )


def run_degraded(*, seed: int = 0, n_workers: int = 2) -> FleetChaosResult:
    """One always-failing cluster under ``on_error="degrade"``.

    The sick cluster's trace is shorter than the calibration window, so
    every attempt raises inside the worker; after the retry budget it must
    be quarantined while every healthy cluster reports ``ok`` with results
    bit-identical to the (equally degraded) serial reference.
    """
    clusters = build_fleet(5, seed=seed)
    sick_trace = generate_trace(
        TraceConfig(n_machines=6, n_snapshots=3), seed=seed + 99
    )
    clusters.append(ClusterSpec(name="sick", trace=sick_trace))
    config = FleetConfig(
        n_workers=n_workers,
        operations=24,
        batch_size=4,
        window=6,
        on_error="degrade",
        max_task_retries=1,
        retry_backoff_s=0.01,
    )
    serial = FleetScheduler(clusters, config).run_serial()
    report = FleetScheduler(clusters, config).run()

    ok_rows_ref = {
        name: rep.constant_row
        for name, rep in serial.clusters.items()
        if rep.ok
    }
    ok_rows = {name: rep.constant_row for name, rep in report.clusters.items()}
    parity, max_diff = _row_parity(ok_rows_ref, ok_rows)
    statuses = report.statuses()
    passed = (
        parity
        and report.degraded
        and statuses.get("sick") == "quarantined"
        and all(s == "ok" for name, s in statuses.items() if name != "sick")
        and report.health()["clusters_quarantined"] >= 1
        and report.clusters["sick"].error is not None
    )
    return FleetChaosResult(
        scenario="degrade",
        passed=passed,
        parity=parity,
        kills=0,
        restarts=report.health()["worker_restarts"],
        max_abs_diff=max_diff,
        degraded=report.degraded,
        statuses=statuses,
        health=report.health(),
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CI entry point: run the requested scenarios, exit 0 when all pass."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.chaos",
        description="SIGKILL fleet workers mid-run and assert report parity",
    )
    parser.add_argument("--mode", default="both", choices=["run", "sweep", "both"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--kills", type=int, default=1,
                        help="distinct workers to SIGKILL per scenario")
    parser.add_argument("--n-workers", type=int, default=4)
    parser.add_argument("--skip-degrade", action="store_true",
                        help="only run the worker-kill scenarios")
    parser.add_argument("--report", default=None,
                        help="write a JSON report here (CI artifact)")
    args = parser.parse_args(argv)

    modes = ["run", "sweep"] if args.mode == "both" else [args.mode]
    results = [
        run_chaos(mode, seed=args.seed, kills=args.kills, n_workers=args.n_workers)
        for mode in modes
    ]
    if not args.skip_degrade:
        results.append(run_degraded(seed=args.seed))

    for res in results:
        print(
            f"fleet-chaos[{res.scenario}]: passed={res.passed} "
            f"parity={res.parity} kills={res.kills} restarts={res.restarts} "
            f"max |dP_D|={res.max_abs_diff:.3e} degraded={res.degraded}"
        )
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump([res.summary() for res in results], fh, indent=2)
    return 0 if all(res.passed for res in results) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
