"""α-β transfer-time model.

The paper models each directed link with a latency ``α`` and bandwidth ``β``
and estimates the time to move ``n`` bytes as ``α + n / β`` (Sec III,
"Network performance"). All optimizers in this package consume *weights*
(estimated transfer times for a message size of interest), so converting an
(α, β) pair of matrices into a weight matrix is the single funnel between
measurement and optimization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_square_matrix, check_nonnegative, check_positive

__all__ = ["AlphaBeta", "transfer_time", "transfer_time_matrix", "weight_matrix"]


@dataclass(frozen=True, slots=True)
class AlphaBeta:
    """A single link's α-β parameters.

    Parameters
    ----------
    alpha:
        Latency in seconds; must be non-negative.
    beta:
        Bandwidth in bytes per second; must be positive.
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        check_nonnegative(self.alpha, "alpha")
        check_positive(self.beta, "beta")

    def time(self, nbytes: float) -> float:
        """Transfer time in seconds for *nbytes* bytes."""
        check_nonnegative(nbytes, "nbytes")
        return self.alpha + nbytes / self.beta


def transfer_time(alpha: float, beta: float, nbytes: float) -> float:
    """Scalar α-β transfer time ``alpha + nbytes / beta``."""
    check_nonnegative(alpha, "alpha")
    check_positive(beta, "beta")
    check_nonnegative(nbytes, "nbytes")
    return alpha + nbytes / beta


def transfer_time_matrix(
    alpha: np.ndarray, beta: np.ndarray, nbytes: float
) -> np.ndarray:
    """Element-wise α-β transfer times for matched (α, β) matrices.

    Diagonal entries (self-links) are forced to zero: a machine never pays
    network cost to talk to itself, and keeping the diagonal at zero lets the
    result be used directly as an optimizer weight matrix.
    """
    a = as_square_matrix(alpha, "alpha")
    # Beta may carry +inf on the diagonal (self-links are free), so it gets
    # a shape/off-diagonal check instead of the strict all-finite coercion.
    b = np.asarray(beta, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"alpha/beta shape mismatch: {a.shape} vs {b.shape}")
    check_nonnegative(nbytes, "nbytes")
    off = ~np.eye(a.shape[0], dtype=bool)
    if np.any(a[off] < 0):
        raise ValueError("alpha must be non-negative off-diagonal")
    if not np.all(np.isfinite(b[off])):
        raise ValueError("beta must be finite off-diagonal")
    if np.any(b[off] <= 0):
        raise ValueError("beta must be positive off-diagonal")
    out = np.zeros_like(a)
    out[off] = a[off] + nbytes / b[off]
    return out


def weight_matrix(alpha: np.ndarray, beta: np.ndarray, nbytes: float) -> np.ndarray:
    """Alias of :func:`transfer_time_matrix` named for the optimizer-facing role.

    A *weight matrix* in the sense of paper Fig 1: entry ``(i, j)`` is the
    predicted cost of sending the message of interest from machine *i* to
    machine *j*; smaller is better.
    """
    return transfer_time_matrix(alpha, beta, nbytes)
