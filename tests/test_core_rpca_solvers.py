"""Unit tests for the three RPCA solvers (APG, IALM, row-constant).

The canonical recovery scenario: a ground-truth low-rank matrix plus sparse
corruption; a correct solver separates the two to good accuracy.
"""

import numpy as np
import pytest

from repro.core.apg import APGResult, default_lambda, rpca_apg
from repro.core.ialm import IALMResult, rpca_ialm
from repro.core.row_constant import row_constant_decomposition
from repro.core.solvers import available_solvers, register_solver, solve_rpca
from repro.errors import ConvergenceError, ValidationError


def make_low_rank_plus_sparse(m=30, n=40, rank=2, sparsity=0.05, seed=0):
    rng = np.random.default_rng(seed)
    low = rng.standard_normal((m, rank)) @ rng.standard_normal((rank, n))
    mask = rng.random((m, n)) < sparsity
    sparse = np.where(mask, rng.standard_normal((m, n)) * 5.0, 0.0)
    return low, sparse


class TestAPG:
    def test_recovers_low_rank_plus_sparse(self):
        low, sparse = make_low_rank_plus_sparse()
        res = rpca_apg(low + sparse, max_iter=800)
        assert res.converged
        err_low = np.linalg.norm(res.low_rank - low) / np.linalg.norm(low)
        assert err_low < 0.05
        # Sparse support recovered: large corruption entries show up in E.
        big = np.abs(sparse) > 2.0
        assert np.all(np.abs(res.sparse[big]) > 0.1)

    def test_sum_is_close_to_input(self):
        low, sparse = make_low_rank_plus_sparse(seed=1)
        a = low + sparse
        res = rpca_apg(a)
        # APG solves a relaxation; the split must still track the data.
        assert np.linalg.norm(res.low_rank + res.sparse - a) / np.linalg.norm(a) < 0.05

    def test_zero_matrix(self):
        res = rpca_apg(np.zeros((5, 6)))
        assert res.converged and res.rank == 0 and res.iterations == 0
        np.testing.assert_array_equal(res.low_rank, 0)
        np.testing.assert_array_equal(res.sparse, 0)

    def test_pure_low_rank_yields_small_sparse(self):
        low, _ = make_low_rank_plus_sparse(sparsity=0.0, seed=2)
        res = rpca_apg(low)
        assert np.abs(res.sparse).sum() / np.abs(low).sum() < 0.02

    def test_rank_one_input_detected(self):
        rng = np.random.default_rng(3)
        a = np.outer(np.ones(10), rng.uniform(1, 2, size=12))
        res = rpca_apg(a)
        assert res.rank == 1

    def test_result_type(self):
        res = rpca_apg(np.eye(4))
        assert isinstance(res, APGResult)

    def test_raise_on_fail(self):
        low, sparse = make_low_rank_plus_sparse()
        with pytest.raises(ConvergenceError) as exc:
            rpca_apg(low + sparse, max_iter=2, tol=1e-14, raise_on_fail=True)
        assert exc.value.iterations == 2
        assert exc.value.residual > 0

    def test_no_raise_by_default(self):
        low, sparse = make_low_rank_plus_sparse()
        res = rpca_apg(low + sparse, max_iter=2, tol=1e-14)
        assert not res.converged and res.iterations == 2

    def test_bad_eta_rejected(self):
        with pytest.raises(ValueError):
            rpca_apg(np.eye(3), eta=1.5)

    def test_bad_lambda_rejected(self):
        with pytest.raises(ValidationError):
            rpca_apg(np.eye(3), lam=-1.0)

    def test_nonfinite_rejected(self):
        a = np.eye(3)
        a[0, 0] = np.nan
        with pytest.raises(ValidationError):
            rpca_apg(a)

    def test_default_lambda(self):
        assert default_lambda((4, 25)) == pytest.approx(0.2)
        assert default_lambda((25, 4)) == pytest.approx(0.2)


class TestIALM:
    def test_recovers_low_rank_plus_sparse(self):
        low, sparse = make_low_rank_plus_sparse(seed=4)
        res = rpca_ialm(low + sparse)
        assert res.converged
        err = np.linalg.norm(res.low_rank - low) / np.linalg.norm(low)
        assert err < 0.05

    def test_feasibility(self):
        low, sparse = make_low_rank_plus_sparse(seed=5)
        a = low + sparse
        res = rpca_ialm(a, tol=1e-8)
        assert np.linalg.norm(res.low_rank + res.sparse - a) / np.linalg.norm(a) < 1e-6

    def test_zero_matrix(self):
        res = rpca_ialm(np.zeros((4, 4)))
        assert res.converged and res.rank == 0

    def test_result_type(self):
        assert isinstance(rpca_ialm(np.eye(4)), IALMResult)

    def test_bad_rho_rejected(self):
        with pytest.raises(ValueError):
            rpca_ialm(np.eye(3), rho=0.9)

    def test_raise_on_fail(self):
        low, sparse = make_low_rank_plus_sparse(seed=6)
        with pytest.raises(ConvergenceError):
            rpca_ialm(low + sparse, max_iter=1, tol=1e-15, raise_on_fail=True)

    def test_agrees_with_apg(self):
        low, sparse = make_low_rank_plus_sparse(seed=7)
        a = low + sparse
        r1 = rpca_apg(a, max_iter=1000)
        r2 = rpca_ialm(a)
        rel = np.linalg.norm(r1.low_rank - r2.low_rank) / np.linalg.norm(low)
        assert rel < 0.10


class TestRowConstant:
    def test_exact_split(self):
        rng = np.random.default_rng(8)
        a = rng.uniform(1, 2, size=(7, 9))
        res = row_constant_decomposition(a)
        np.testing.assert_allclose(res.low_rank + res.sparse, a, atol=1e-14)

    def test_rows_all_equal(self):
        a = np.random.default_rng(9).uniform(size=(5, 6))
        res = row_constant_decomposition(a)
        for k in range(5):
            np.testing.assert_array_equal(res.low_rank[k], res.constant_row)

    def test_column_median(self):
        a = np.array([[1.0, 10.0], [2.0, 20.0], [9.0, 30.0]])
        res = row_constant_decomposition(a)
        np.testing.assert_array_equal(res.constant_row, [2.0, 20.0])

    def test_row_constant_input_gives_zero_sparse(self):
        row = np.array([3.0, 1.0, 4.0])
        a = np.tile(row, (6, 1))
        res = row_constant_decomposition(a)
        np.testing.assert_array_equal(res.sparse, np.zeros_like(a))
        assert res.rank == 1

    def test_zero_matrix_rank(self):
        res = row_constant_decomposition(np.zeros((3, 3)))
        assert res.rank == 0

    def test_median_is_l1_optimal(self):
        # For each column, the constant minimizing sum |a_kj - c| is the median.
        rng = np.random.default_rng(10)
        a = rng.standard_normal((9, 4))
        res = row_constant_decomposition(a)
        for j in range(4):
            c_star = res.constant_row[j]
            best = np.abs(a[:, j] - c_star).sum()
            for c in np.linspace(a[:, j].min(), a[:, j].max(), 101):
                assert best <= np.abs(a[:, j] - c).sum() + 1e-9


class TestSolverRegistry:
    def test_available(self):
        names = available_solvers()
        assert {"apg", "ialm", "row_constant"} <= set(names)

    def test_dispatch(self):
        a = np.random.default_rng(11).uniform(1, 2, size=(6, 8))
        for name in ("apg", "ialm", "row_constant"):
            res = solve_rpca(a, solver=name)
            assert res.low_rank.shape == a.shape
            assert res.sparse.shape == a.shape

    def test_unknown_solver(self):
        with pytest.raises(ValueError, match="unknown RPCA solver"):
            solve_rpca(np.eye(3), solver="nope")

    def test_kwargs_forwarded(self):
        res = solve_rpca(np.eye(6) * 3, solver="apg", max_iter=5, tol=1e-20)
        assert res.iterations == 5

    def test_register_custom(self):
        calls = []

        def fake(a, **kw):
            calls.append(a.shape)
            return row_constant_decomposition(a)

        register_solver("fake_for_test", fake)
        solve_rpca(np.ones((2, 3)), solver="fake_for_test")
        assert calls == [(2, 3)]

    def test_register_non_callable_rejected(self):
        with pytest.raises(TypeError):
            register_solver("bad", 42)
