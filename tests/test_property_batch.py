"""Property-based tests (hypothesis) for the batched stacked solvers.

The batched path's headline invariant is bit parity: for *any* random
stack of masked/unmasked matrices — any batch size, any mask pattern,
any heterogeneous convergence profile — slice ``b`` of a float64 batched
solve equals the single-matrix ``gram``-backend solve of matrix ``b``
bit for bit. Hypothesis hunts for a stack composition that breaks it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import solve_rpca_batch
from repro.core.kernels import BatchRankPredictor, RankPredictor
from repro.core.solvers import solve_rpca

# One random low-rank + sparse problem per (seed, masked) pair. Matrices
# stay small so each hypothesis example solves in milliseconds; shapes are
# fixed per test (a batch must be shape-homogeneous) while seeds and mask
# patterns vary freely.
_SHAPE = (6, 14)


def _problem(seed, masked):
    rng = np.random.default_rng(seed)
    m, n = _SHAPE
    low = np.outer(rng.normal(size=m), rng.normal(size=n))
    sparse = rng.normal(scale=5.0, size=(m, n)) * (rng.random((m, n)) < 0.08)
    data = low + sparse
    if not masked:
        return data, None
    mask = rng.random((m, n)) > 0.15
    return np.where(mask, data, 0.0), mask


batch_specs = st.lists(
    st.tuples(st.integers(0, 10_000), st.booleans()),
    min_size=1,
    max_size=6,
)


class TestBatchedBitParity:
    @given(batch_specs, st.sampled_from(["apg", "ialm"]))
    @settings(max_examples=25, deadline=None)
    def test_matches_per_matrix_gram_solves(self, specs, solver):
        mats, masks = [], []
        for seed, masked in specs:
            data, mask = _problem(seed, masked)
            mats.append(data)
            masks.append(mask)
        results = solve_rpca_batch(mats, masks, solver=solver, max_iter=200)
        assert len(results) == len(mats)
        for data, mask, res in zip(mats, masks, results):
            kwargs = {"svd_backend": "gram", "max_iter": 200}
            if mask is not None:
                kwargs["mask"] = mask
            ref = solve_rpca(data, solver=solver, **kwargs)
            assert np.array_equal(res.low_rank, ref.low_rank)
            assert np.array_equal(res.sparse, ref.sparse)
            assert res.iterations == ref.iterations
            assert res.rank == ref.rank
            assert res.converged == ref.converged
            assert res.residual == ref.residual

    @given(batch_specs)
    @settings(max_examples=10, deadline=None)
    def test_slicewise_independence_of_batch_composition(self, specs):
        """Any sub-batch reproduces the full batch's bits slice for slice."""
        mats, masks = [], []
        for seed, masked in specs:
            data, mask = _problem(seed, masked)
            mats.append(data)
            masks.append(mask)
        full = solve_rpca_batch(mats, masks, max_iter=200)
        # Re-solve the reversed stack: same slices, different companions.
        rev = solve_rpca_batch(mats[::-1], masks[::-1], max_iter=200)
        for res, other in zip(full, rev[::-1]):
            assert np.array_equal(res.low_rank, other.low_rank)
            assert np.array_equal(res.sparse, other.sparse)
            assert res.iterations == other.iterations


class TestBatchRankPredictorProperties:
    @given(
        st.integers(2, 24),
        st.integers(1, 8),
        st.lists(st.lists(st.integers(0, 30), min_size=1, max_size=8),
                 min_size=1, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_elementwise_equivalence_and_no_undershoot(self, min_dim, b, rounds):
        batch = BatchRankPredictor(min_dim=min_dim, batch=b)
        singles = [RankPredictor(min_dim=min_dim) for _ in range(b)]
        for survivors in rounds:
            vals = np.array([survivors[i % len(survivors)] for i in range(b)])
            vals = np.minimum(vals, min_dim)
            batch.observe(vals)
            for s, v in zip(singles, vals):
                s.observe(int(v))
            pred = batch.predict()
            assert np.array_equal(pred, [s.predict() for s in singles])
            # The no-undershoot invariant, per slot.
            assert np.all((pred > vals) | (pred == min_dim))
            assert np.all(pred <= min_dim)
