"""The v1 public API facade.

Three verbs cover the package's common uses, each a thin layer over the
underlying machinery with one consistent configuration vocabulary:

* :func:`solve` — one-shot decomposition of a trace into constant + error
  components (:class:`~repro.core.decompose.Decomposition`).
* :func:`open_session` — an Algorithm-1
  :class:`~repro.runtime.session.TraceSession` over one cluster.
* :func:`run_fleet` — many clusters concurrently via
  :class:`~repro.fleet.FleetScheduler`.

Configuration is a frozen dataclass per verb (:class:`SolveConfig`,
:class:`SessionConfig`, :class:`~repro.fleet.FleetConfig`) sharing canonical
field names: ``window`` for the calibration window length, ``threshold``
for the maintenance threshold, ``n_workers`` for parallelism. Keyword
overrides beat the config object.

Deprecation policy
------------------
Historical spellings that accumulated across layers — ``time_step``,
``nsnap``, ``n_snapshots`` (all meaning ``window``), ``thresh``
(``threshold``) and ``workers`` (``n_workers``) — are accepted as keyword
overrides by every facade function for **one release**: they are remapped
to the canonical field and raise a :class:`DeprecationWarning`. They will
become errors in v2. The repo's own test suite runs with
``error::DeprecationWarning`` so nothing inside the package can depend on
them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Iterable

from .cloudsim.trace import CalibrationTrace
from .core.decompose import Decomposition, decompose
from .core.detectors import validate_regime_detector
from .core.kernels import validate_backend
from .errors import ValidationError
from .fleet import (
    ClusterSpec,
    FleetConfig,
    FleetReport,
    FleetScheduler,
    FleetSweepReport,
)
from .observability import Instrumentation
from .runtime.session import TraceSession

__all__ = [
    "SessionConfig",
    "SolveConfig",
    "open_session",
    "run_fleet",
    "solve",
    "sweep_fleet",
]

_MB = 1024 * 1024

# Legacy keyword -> canonical field. Kept for one release; every use warns.
_LEGACY_ALIASES = {
    "time_step": "window",
    "nsnap": "window",
    "n_snapshots": "window",
    "thresh": "threshold",
    "workers": "n_workers",
}


@dataclass(frozen=True)
class SolveConfig:
    """Settings for a one-shot :func:`solve`.

    ``window`` is the number of leading snapshots to calibrate from
    (``None`` — the default — uses the whole trace).
    """

    nbytes: float = 8.0 * _MB
    window: int | None = None
    solver: str = "apg"
    extraction: str = "mean"
    svd_backend: str = "exact"

    def __post_init__(self) -> None:
        if self.window is not None and int(self.window) < 2:
            raise ValidationError("window must be >= 2 or None")
        validate_backend(self.svd_backend)


@dataclass(frozen=True)
class SessionConfig:
    """Settings for :func:`open_session` (paper defaults throughout).

    ``regime_detector`` enables online regime-shift detection: the name of
    a registered detector (``"cusum"``, ``"signature"``, ``"noise-robust"``,
    ``"drift"`` — see :func:`repro.core.detectors.detector_names`), with
    ``regime_params`` as config overrides for it. ``None`` (the default)
    keeps the historical detector-free maintenance loop.
    """

    nbytes: float = 8.0 * _MB
    window: int = 10
    threshold: float = 1.0
    consecutive: int = 1
    solver: str = "apg"
    warm_start: bool = True
    svd_backend: str = "exact"
    regime_detector: str | None = None
    regime_params: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if int(self.window) < 1:
            raise ValidationError("window must be >= 1")
        validate_backend(self.svd_backend)
        validate_regime_detector(self.regime_detector, self.regime_params)


def _resolve(default_cls: type, config: Any, overrides: dict[str, Any]) -> Any:
    """Merge a config object with keyword overrides (canonical or legacy)."""
    if config is None:
        config = default_cls()
    elif not isinstance(config, default_cls):
        raise ValidationError(
            f"config must be a {default_cls.__name__}, got {type(config).__name__}"
        )
    if not overrides:
        return config
    allowed = {f.name for f in fields(default_cls)}
    resolved: dict[str, Any] = {}
    for key, value in overrides.items():
        canonical = _LEGACY_ALIASES.get(key, key)
        if canonical != key:
            warnings.warn(
                f"keyword {key!r} is deprecated and will be removed in v2; "
                f"use {canonical!r}",
                DeprecationWarning,
                stacklevel=3,
            )
        if canonical not in allowed:
            raise TypeError(
                f"unexpected keyword {key!r} for {default_cls.__name__}"
            )
        if canonical in resolved:
            raise TypeError(f"got multiple values for {canonical!r}")
        resolved[canonical] = value
    return replace(config, **resolved)


def solve(
    trace: CalibrationTrace,
    config: SolveConfig | None = None,
    **overrides: Any,
) -> Decomposition:
    """Decompose *trace* into constant + error components, one shot.

    >>> dec = solve(trace, window=10, solver="apg")
    >>> dec.report.verdict
    'stable'
    """
    cfg = _resolve(SolveConfig, config, overrides)
    count = None if cfg.window is None else int(cfg.window)
    tp = trace.tp_matrix(cfg.nbytes, start=0, count=count)
    # "exact" stays None so non-SVT solvers (pca, row_constant) keep working.
    backend = None if cfg.svd_backend == "exact" else cfg.svd_backend
    return decompose(
        tp, solver=cfg.solver, extraction=cfg.extraction, svd_backend=backend
    )


def open_session(
    trace: CalibrationTrace,
    config: SessionConfig | None = None,
    *,
    instrumentation: Instrumentation | None = None,
    **overrides: Any,
) -> TraceSession:
    """Open an Algorithm-1 maintenance session over *trace*.

    >>> session = open_session(trace, window=10, threshold=1.0)
    >>> session.broadcast(root=0)
    """
    cfg = _resolve(SessionConfig, config, overrides)
    return TraceSession(
        trace,
        nbytes=cfg.nbytes,
        time_step=cfg.window,
        threshold=cfg.threshold,
        consecutive=cfg.consecutive,
        solver=cfg.solver,
        warm_start=cfg.warm_start,
        svd_backend=cfg.svd_backend,
        regime=cfg.regime_detector,
        regime_params=cfg.regime_params,
        instrumentation=instrumentation,
    )


def _coerce_clusters(
    clusters: Iterable[Any],
) -> tuple[ClusterSpec, ...]:
    specs: list[ClusterSpec] = []
    for i, item in enumerate(clusters):
        if isinstance(item, ClusterSpec):
            specs.append(item)
        elif isinstance(item, CalibrationTrace):
            specs.append(ClusterSpec(name=f"cluster-{i}", trace=item))
        elif isinstance(item, tuple) and len(item) == 2:
            name, trace = item
            specs.append(ClusterSpec(name=str(name), trace=trace))
        else:
            raise ValidationError(
                "clusters must be ClusterSpec, CalibrationTrace, or "
                f"(name, trace) pairs; got {type(item).__name__}"
            )
    return tuple(specs)


def run_fleet(
    clusters: Iterable[ClusterSpec | CalibrationTrace | tuple[str, CalibrationTrace]],
    config: FleetConfig | None = None,
    *,
    instrumentation: Instrumentation | None = None,
    serial: bool = False,
    **overrides: Any,
) -> FleetReport:
    """Run many clusters' maintenance loops concurrently; returns the report.

    *clusters* may be :class:`~repro.fleet.ClusterSpec` objects, bare
    traces (auto-named ``cluster-<i>``) or ``(name, trace)`` pairs.
    ``serial=True`` runs the identical plan in-process — the determinism
    oracle and throughput baseline.

    The scheduler self-heals: dead workers are respawned (within
    ``max_worker_restarts``) with their tasks replayed bit-identically,
    failing tasks retry (``max_task_retries`` / ``retry_backoff_s``), and
    ``task_timeout_s`` bounds each attempt. ``on_error="degrade"``
    quarantines a cluster that exhausts its retries into the report
    (check :attr:`~repro.fleet.FleetReport.degraded` and per-cluster
    ``status``) instead of raising — see ``docs/fleet_failures.md``.

    >>> report = run_fleet([("a", trace_a), ("b", trace_b)], n_workers=4)
    >>> report.clusters["a"].verdict
    'stable'
    """
    cfg = _resolve(FleetConfig, config, overrides)
    scheduler = FleetScheduler(
        _coerce_clusters(clusters), cfg, instrumentation=instrumentation
    )
    return scheduler.run_serial() if serial else scheduler.run()


def sweep_fleet(
    clusters: Iterable[ClusterSpec | CalibrationTrace | tuple[str, CalibrationTrace]],
    config: FleetConfig | None = None,
    *,
    instrumentation: Instrumentation | None = None,
    serial: bool = False,
    **overrides: Any,
) -> FleetSweepReport:
    """Decompose every cluster's trailing window through batched solves.

    The batched counterpart of :func:`run_fleet`'s per-cluster sessions:
    one sweep solves each cluster's trailing ``window`` TP-matrix, with
    same-shape windows stacked ``batch_size`` at a time into single
    ``(B, m, n)`` iteration loops (see
    :func:`~repro.core.solve_rpca_batch`). ``batch_dtype`` selects the
    iterate precision; the default ``"float64"`` makes per-cluster ``P_D``
    bit-identical to per-cluster serial solves. ``serial=True`` runs the
    identical shard plan in-process — the determinism oracle and the
    speedup baseline. The sweep always runs the batched gram-kernel path;
    ``svd_backend`` only affects :func:`run_fleet` sessions. The same
    supervision as :func:`run_fleet` applies (worker respawn, shard
    retries, deadlines, ``on_error="degrade"`` quarantine).

    >>> report = sweep_fleet([("a", trace_a), ("b", trace_b)], n_workers=4)
    >>> report.clusters["a"].verdict
    'stable'
    """
    cfg = _resolve(FleetConfig, config, overrides)
    scheduler = FleetScheduler(
        _coerce_clusters(clusters), cfg, instrumentation=instrumentation
    )
    return scheduler.run_sweep_serial() if serial else scheduler.run_sweep()
