#!/usr/bin/env python3
"""Real-world applications: N-body and conjugate gradient (paper Fig 9).

Both applications run their *numerics* for real — a leapfrog gravity
integrator and an actual CG solve on a generated sparse SPD system — while
their distributed execution (all-to-all per step as gather + broadcast, per
MPICH2) is priced on a replayed network trace under each strategy.

Run:  python examples/nbody_cg_applications.py
"""

from __future__ import annotations

from repro import TraceConfig, generate_trace
from repro.apps.cg import CGConfig, build_spd_system, cg_profile, run_cg_numerics
from repro.apps.nbody import NBodyConfig, NBodySimulation, nbody_profile
from repro.experiments.fig09_apps import run_cg, run_nbody_steps
from repro.experiments.report import format_table

MB = 1024 * 1024


def demo_real_numerics() -> None:
    print("=== real numerics =========================================")
    sim = NBodySimulation(64, seed=1)
    e0 = sim.total_energy()
    sim.run(50, dt=1e-3)
    print(
        f"N-body: 64 bodies, 50 leapfrog steps; energy drift "
        f"{abs(sim.total_energy() - e0) / abs(e0):.2e}"
    )

    cfg = CGConfig(vector_size=20_000)
    a, b = build_spd_system(cfg, seed=2)
    import numpy as np

    x, iters = run_cg_numerics(a, b, rtol=cfg.rtol)
    res = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
    print(f"CG: n=20000, kappa~{cfg.condition_number:.0f}; "
          f"converged in {iters} iterations, residual {res:.1e}")
    print()


def demo_distributed_breakdown() -> None:
    print("=== distributed execution (replayed trace) ================")
    trace = generate_trace(TraceConfig(n_machines=16, n_snapshots=24), seed=42)

    cg_res = run_cg(trace, vector_sizes=(8000, 256000), time_step=10, solver="apg")
    rows = [
        (int(p.x), p.strategy, p.breakdown.computation, p.breakdown.communication,
         p.breakdown.overhead, p.breakdown.total)
        for p in cg_res.points
    ]
    print(format_table(
        ["vector size", "strategy", "comp (s)", "comm (s)", "overhead (s)", "total (s)"],
        rows, title="CG time breakdown (paper Fig 9a)",
    ))
    print()

    nb_res = run_nbody_steps(
        trace, step_counts=(160, 2560), message_bytes=1 * MB, time_step=10, solver="apg"
    )
    rows = [
        (int(p.x), p.strategy, p.breakdown.communication, p.breakdown.total)
        for p in nb_res.points
    ]
    print(format_table(
        ["#Step", "strategy", "comm (s)", "total (s)"],
        rows, title="N-body (1 MB messages) — paper Fig 9b",
    ))
    print()
    big = 2560.0
    print(
        f"N-body @ #Step=2560: RPCA vs Baseline "
        f"{nb_res.improvement(big, 'RPCA', 'Baseline'):+.1%} "
        "(paper: ~25%); vs Heuristics "
        f"{nb_res.improvement(big, 'RPCA', 'Heuristics'):+.1%} (paper: ~10%)"
    )


def main() -> None:
    demo_real_numerics()
    demo_distributed_breakdown()


if __name__ == "__main__":
    main()
