"""Observability: sinks, the activation stack, and emission from solve_rpca."""

from __future__ import annotations

import pytest

from repro.core.solvers import solve_rpca
from repro.observability import (
    Instrumentation,
    SolveSpan,
    active,
    emit_count,
    emit_time,
    instrumented,
    timed,
)

MB = 1024 * 1024


def _span(**overrides):
    base = dict(
        solver="apg", rows=10, cols=64, iterations=100, rank=3,
        residual=1e-8, converged=True, warm=False, seconds=0.01,
    )
    base.update(overrides)
    return SolveSpan(**base)


class TestInstrumentation:
    def test_counters_accumulate(self):
        instr = Instrumentation()
        instr.count("x")
        instr.count("x", 4)
        assert instr.counters == {"x": 5}

    def test_timers_accumulate(self):
        instr = Instrumentation()
        instr.add_time("t", 0.5)
        with instr.timed("t"):
            pass
        assert instr.timers["t"] >= 0.5

    def test_span_aggregates(self):
        instr = Instrumentation()
        instr.record_span(_span())
        instr.record_span(_span(warm=True, iterations=60))
        assert instr.solves == 2
        assert instr.warm_solves == 1
        assert instr.cold_solves == 1
        assert instr.solve_iterations == 160
        assert instr.solve_seconds == pytest.approx(0.02)

    def test_reset_keeps_name(self):
        instr = Instrumentation("keeper")
        instr.count("x")
        instr.record_span(_span())
        instr.reset()
        assert instr.name == "keeper"
        assert instr.solves == 0 and not instr.counters

    def test_report_contains_everything(self):
        instr = Instrumentation("rep")
        instr.record_span(_span(warm=True))
        instr.count("engine.solve.warm")
        instr.add_time("engine.solve_seconds", 0.25)
        text = instr.report()
        assert "instrumentation report [rep]" in text
        assert "1 warm" in text and "warm" in text
        assert "engine.solve.warm" in text
        assert "engine.solve_seconds" in text

    def test_report_empty(self):
        assert "none recorded" in Instrumentation().report()


class TestActivationStack:
    def test_no_sink_is_noop(self):
        assert active() == ()
        emit_count("free")  # must not raise
        emit_time("free", 1.0)

    def test_nested_sinks_both_receive(self):
        outer, inner = Instrumentation("outer"), Instrumentation("inner")
        with instrumented(outer):
            with instrumented(inner):
                emit_count("n")
                with timed("t"):
                    pass
        assert outer.counters["n"] == 1 and inner.counters["n"] == 1
        assert "t" in outer.timers and "t" in inner.timers

    def test_same_sink_twice_counts_once(self):
        sink = Instrumentation()
        with instrumented(sink), instrumented(sink):
            emit_count("n")
        assert sink.counters["n"] == 1

    def test_stack_unwinds_on_error(self):
        sink = Instrumentation()
        with pytest.raises(RuntimeError):
            with instrumented(sink):
                raise RuntimeError("boom")
        assert active() == ()

    def test_default_sink_created(self):
        with instrumented() as sink:
            emit_count("n")
        assert sink.counters["n"] == 1


class TestSolveRpcaEmission:
    def test_span_emitted_with_context(self, tiny_trace):
        a = tiny_trace.tp_matrix(8 * MB).data
        sink = Instrumentation()
        with instrumented(sink):
            res = solve_rpca(a, solver="apg", context="unit-test")
        (span,) = sink.spans
        assert span.solver == "apg"
        assert (span.rows, span.cols) == a.shape
        assert span.iterations == res.iterations
        assert span.converged == res.converged
        assert span.context == "unit-test"
        assert span.seconds > 0

    def test_no_sink_no_span(self, tiny_trace):
        a = tiny_trace.tp_matrix(8 * MB).data
        res = solve_rpca(a, solver="row_constant")
        assert res.constant_row is not None  # solve itself unaffected

    def test_warm_flag_lands_on_span(self, tiny_trace):
        a = tiny_trace.tp_matrix(8 * MB).data
        sink = Instrumentation()
        with instrumented(sink):
            cold = solve_rpca(a, solver="ialm")
            solve_rpca(a, solver="ialm", warm_start=cold)
        assert [s.warm for s in sink.spans] == [False, True]
