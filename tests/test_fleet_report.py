"""Direct unit tests for the fleet report objects.

The schedulers exercise these end-to-end; this module pins the report
layer itself — construction, aggregation properties, and that every
``summary()`` is plain-JSON serializable and round-trips losslessly.
"""

import json

import numpy as np
import pytest

from repro.fleet.report import (
    ClusterReport,
    FleetReport,
    FleetSweepReport,
    SweepClusterResult,
)


def _cluster_report(name, ops=12, batches=3):
    return ClusterReport(
        name=name,
        operations=ops,
        constant_row=np.full(16, 2.5),
        norm_ne=0.0123456789,
        verdict="stable",
        recalibrations=2,
        worker_batches=batches,
    )


def _sweep_result(name, *, iterations=140):
    return SweepClusterResult(
        name=name,
        constant_row=np.arange(9, dtype=np.float64),
        norm_ne=0.25,
        verdict="moderate",
        rank=np.int64(1),
        iterations=np.int64(iterations),
        converged=np.bool_(True),
        residual=3.2e-8,
    )


class TestClusterReport:
    def test_summary_contents(self):
        rep = _cluster_report("c0")
        s = rep.summary()
        assert s == {
            "name": "c0",
            "operations": 12,
            "norm_ne": 0.012346,  # rounded to 6 places
            "verdict": "stable",
            "recalibrations": 2,
            "worker_batches": 3,
            "status": "ok",
            "retries": 0,
            "regime_shifts": 0,
            "regime_spikes": 0,
            "stream_updates": 0,
            "stream_fallbacks": 0,
        }

    def test_quarantined_summary_is_json_safe(self):
        rep = ClusterReport(
            name="sick",
            operations=0,
            constant_row=np.empty(0),
            norm_ne=float("nan"),
            verdict="unavailable",
            recalibrations=0,
            worker_batches=0,
            status="quarantined",
            error="Traceback ...",
            retries=2,
        )
        assert not rep.ok
        s = rep.summary()
        decoded = json.loads(json.dumps(s))  # nan would not survive this
        assert decoded["norm_ne"] is None
        assert decoded["status"] == "quarantined"
        assert decoded["error"] == "Traceback ..."
        assert decoded["retries"] == 2

    def test_frozen(self):
        rep = _cluster_report("c0")
        with pytest.raises(AttributeError):
            rep.name = "other"


class TestFleetReport:
    def _report(self, elapsed=2.0):
        clusters = {f"c{i}": _cluster_report(f"c{i}", ops=10 + i) for i in range(3)}
        return FleetReport(
            clusters=clusters,
            n_workers=2,
            elapsed_s=elapsed,
            total_operations=33,
            total_batches=9,
            instrumentation={"counters": {"fleet.batches": 9}},
        )

    def test_throughput_aggregation(self):
        assert self._report().throughput_ops_s == pytest.approx(16.5)
        assert self._report(elapsed=0.0).throughput_ops_s == 0.0

    def test_constant_rows_alias_cluster_arrays(self):
        rep = self._report()
        rows = rep.constant_rows()
        assert set(rows) == {"c0", "c1", "c2"}
        assert rows["c1"] is rep.clusters["c1"].constant_row

    def test_summary_json_round_trip(self):
        s = self._report().summary()
        decoded = json.loads(json.dumps(s))
        assert decoded == s
        assert [c["name"] for c in decoded["clusters"]] == ["c0", "c1", "c2"]
        assert decoded["throughput_ops_s"] == 16.5

    def test_health_and_degraded(self):
        rep = self._report()
        assert not rep.degraded
        assert rep.statuses() == {"c0": "ok", "c1": "ok", "c2": "ok"}
        assert rep.health() == {
            "worker_restarts": 0,
            "task_retries": 0,
            "task_timeouts": 0,
            "clusters_quarantined": 0,
            "regime_shifts": 0,
            "regime_spikes": 0,
            "forced_recalibrations": 0,
            "stream_updates": 0,
            "stream_fallbacks": 0,
        }
        clusters = dict(rep.clusters)
        clusters["sick"] = ClusterReport(
            name="sick", operations=0, constant_row=np.empty(0),
            norm_ne=float("nan"), verdict="unavailable", recalibrations=0,
            worker_batches=0, status="quarantined", error="boom",
        )
        degraded = FleetReport(
            clusters=clusters, n_workers=2, elapsed_s=1.0,
            total_operations=33, total_batches=9,
            instrumentation={
                "counters": {
                    "fleet.worker.restarts": 1,
                    "fleet.task.retries": 3,
                    "fleet.cluster.quarantined": 1,
                }
            },
        )
        assert degraded.degraded
        assert degraded.statuses()["sick"] == "quarantined"
        health = degraded.health()
        assert health["worker_restarts"] == 1
        assert health["task_retries"] == 3
        assert health["clusters_quarantined"] == 1
        s = json.loads(json.dumps(degraded.summary()))
        assert s["degraded"] is True
        assert s["health"]["worker_restarts"] == 1


class TestSweepClusterResult:
    def test_summary_coerces_numpy_scalars(self):
        s = _sweep_result("west").summary()
        # numpy scalar fields must come back as plain JSON types.
        assert type(s["rank"]) is int and type(s["iterations"]) is int
        assert type(s["converged"]) is bool
        decoded = json.loads(json.dumps(s))
        assert decoded == {
            "name": "west",
            "norm_ne": 0.25,
            "verdict": "moderate",
            "rank": 1,
            "iterations": 140,
            "converged": True,
            "status": "ok",
        }


class TestFleetSweepReport:
    def _report(self, n=4, elapsed=2.0):
        clusters = {f"c{i}": _sweep_result(f"c{i}") for i in range(n)}
        return FleetSweepReport(
            clusters=clusters,
            n_workers=3,
            elapsed_s=elapsed,
            total_shards=2,
            batch_size=2,
            batch_dtype="float64",
            instrumentation={"counters": {"kernel.batch.solves": 2}},
        )

    def test_throughput_is_windows_per_second(self):
        assert self._report().throughput_solves_s == pytest.approx(2.0)
        assert self._report(elapsed=0.0).throughput_solves_s == 0.0

    def test_constant_rows(self):
        rep = self._report(n=2)
        rows = rep.constant_rows()
        assert set(rows) == {"c0", "c1"}
        assert np.array_equal(rows["c0"], np.arange(9, dtype=np.float64))

    def test_summary_json_round_trip(self):
        rep = self._report()
        s = rep.summary()
        decoded = json.loads(json.dumps(s))
        assert decoded == s
        assert decoded["batch_size"] == 2
        assert decoded["batch_dtype"] == "float64"
        assert decoded["total_shards"] == 2
        assert [c["name"] for c in decoded["clusters"]] == ["c0", "c1", "c2", "c3"]

    def test_instrumentation_payload_preserved(self):
        rep = self._report()
        assert rep.instrumentation["counters"]["kernel.batch.solves"] == 2
        assert FleetSweepReport(
            clusters={}, n_workers=1, elapsed_s=0.0,
            total_shards=0, batch_size=8, batch_dtype="float32",
        ).instrumentation == {}
