"""Ablation — calibration schedule: concurrent N/2 pairing vs sequential.

The paper reduces calibration cost by measuring N/2 disjoint pairs per round
(2N rounds) instead of one pair at a time (N² − N rounds), arguing the
concurrent probes barely interfere in a large datacenter. This bench
quantifies both sides on the flow simulator: the overhead ratio and the
measurement error the concurrency introduces.
"""

import numpy as np

from repro.calibration.calibrator import Calibrator
from repro.calibration.schedule import PairingSchedule, pairing_rounds
from repro.experiments.report import format_table
from repro.netsim.background import BackgroundConfig, BackgroundTraffic
from repro.netsim.probe import NetsimSubstrate
from repro.netsim.simulator import FlowSimulator
from repro.netsim.topology import GBIT, TreeTopology

MB = 1024 * 1024


def sequential_schedule(n: int) -> PairingSchedule:
    """One ordered pair per round — the naive O(N²) schedule."""
    rounds = tuple(
        ((i, j),) for i in range(n) for j in range(n) if i != j
    )
    return PairingSchedule(n_machines=n, rounds=rounds)


def test_ablation_calibration_schedule(benchmark, emit):
    """Pure concurrency effect: idle datacenter, paper-like 10:1 scale.

    With the cluster spread across many racks and 10 Gb/s uplinks (the
    paper's argument: "the data center is usually large enough ... the
    interference of the virtual cluster should be small"), the concurrent
    probes of one matching share no links, so both schedules must measure
    the same bandwidths; the concurrent one just needs ~N/2 x fewer rounds
    and far less wall-clock.
    """
    n = 12
    machines = list(range(0, 64, 64 // n))[:n]  # spread over the racks

    def run_both():
        out = {}
        for label, schedule in (
            ("concurrent N/2", pairing_rounds(n)),
            ("sequential", sequential_schedule(n)),
        ):
            topo = TreeTopology(n_racks=8, servers_per_rack=8)  # 10 Gb/s core
            sim = FlowSimulator(topo)
            sub = NetsimSubstrate(sim, machines, probe_bytes=8 * MB)
            cal = Calibrator(sub, schedule=schedule)
            t0 = sim.now
            _alpha, beta = cal.calibrate_snapshot(0)
            out[label] = (sim.now - t0, schedule.n_rounds, beta)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    (t_conc, r_conc, b_conc) = results["concurrent N/2"]
    (t_seq, r_seq, b_seq) = results["sequential"]
    off = ~np.eye(n, dtype=bool)
    rel_err = float(np.max(np.abs(b_conc[off] - b_seq[off]) / b_seq[off]))
    emit(
        format_table(
            ["schedule", "rounds", "simulated seconds"],
            [
                ("concurrent N/2", r_conc, t_conc),
                ("sequential", r_seq, t_seq),
            ],
            title=(
                f"Ablation: calibration schedules, 12-VM cluster on an idle "
                f"datacenter (max bandwidth disagreement {rel_err:.2%})"
            ),
        )
    )

    # The concurrent schedule is dramatically cheaper ...
    assert r_conc < r_seq / 4
    assert t_conc < t_seq / 2
    # ... while measuring the same bandwidths (no probe interference at the
    # paper's datacenter-to-cluster scale ratio).
    assert rel_err < 0.02


def test_ablation_maintenance_debounce(benchmark, emit):
    """Debounced change detection (consecutive=2) vs the paper's immediate rule."""
    from repro.cloudsim.dynamics import DynamicsConfig
    from repro.cloudsim.tracegen import TraceConfig, generate_trace
    from repro.experiments import fig06_threshold

    cfg = TraceConfig(
        n_machines=16,
        n_snapshots=100,
        dynamics=DynamicsConfig(
            volatility_sigma=0.10,
            spike_probability=0.03,
            spike_severity=4.0,
            migration_rate=0.04,
        ),
    )
    trace = generate_trace(cfg, seed=31)

    result = benchmark.pedantic(
        fig06_threshold.run,
        args=(trace,),
        kwargs=dict(thresholds=(0.5, 1.0), time_step=10, calibration_cost=45.0, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["threshold", "avg total (s)", "avg comm (s)", "avg overhead (s)", "recals"],
            result.as_rows(),
            title="Maintenance on a spiky, migrating trace (immediate rule)",
        )
    )
    # Sanity: the loop recalibrates at least once on this dynamic trace.
    assert any(o.recalibrations > 0 for o in result.outcomes)
