"""repro — reproduction of "Finding Constant from Change: Revisiting Network
Performance Aware Optimizations on IaaS Clouds" (Gong, He & Li, SC 2014).

The package decouples the *constant* component of a virtual cluster's
dynamic network performance from its transient *error* component using
Robust PCA, uses the constant component to drive classic network-
performance-aware optimizations (FNF collective trees, greedy topology
mapping), and uses the error component's relative norm to predict whether
those optimizations will pay off.

Quick start
-----------
>>> from repro import TraceConfig, generate_trace, decompose
>>> trace = generate_trace(TraceConfig(n_machines=8, n_snapshots=12), seed=0)
>>> tp = trace.tp_matrix(nbytes=8 << 20)
>>> dec = decompose(tp)
>>> dec.report.verdict in {"stable", "moderately-stable", "dynamic", "too-dynamic"}
True

Sub-packages
------------
core
    RPCA solvers, TP/TC/TE matrices, Norm(N_E), Algorithm-1 maintenance,
    and the warm-started :class:`DecompositionEngine`.
observability
    Counters, timers and per-solve span records; ``--profile`` plumbing.
netmodel
    The α-β transfer-time model.
cloudsim
    EC2 substitute: placement, bands, dynamics, trace synthesis, noise.
netsim
    ns-2 substitute: tree topology, max-min fair flow simulation, probes.
calibration
    Pairing schedule, calibrator, overhead model.
faults
    Seeded fault models (probe loss, stragglers, corruption, VM/rack
    outages) and injectors for traces and live substrates.
collectives
    Binomial/FNF trees and the collective execution model.
mapping
    Task graphs, greedy/ring mapping, evaluation.
fleet
    Parallel multi-cluster decomposition service: shared-memory trace
    transport, process-pool scheduling, deterministic per-cluster results.
strategies
    The four comparison arms.
apps
    N-body and CG with real numerics and communication profiles.
experiments
    One driver per paper figure (Figs 4–13).
"""

from .core import (
    PerformanceMatrix,
    TPMatrix,
    TCMatrix,
    TEMatrix,
    decompose,
    Decomposition,
    DecompositionEngine,
    BatchDecompositionEngine,
    solve_rpca_batch,
    BatchedSolveWorkspace,
    BATCH_DTYPES,
    SolverResult,
    SVD_BACKENDS,
    EW_BACKENDS,
    spectral_norm,
    rpca_apg,
    rpca_ialm,
    row_constant_decomposition,
    solve_rpca,
    available_solvers,
    register_solver,
    solver_spec,
    relative_error_norm,
    StreamingConfig,
    MaintenanceController,
    MaintenanceDecision,
    HealthState,
    ResilienceConfig,
    DegradedModeController,
)
from .observability import Instrumentation, SolveSpan, instrumented
from .cloudsim import TraceConfig, generate_trace, CalibrationTrace
from .cloudsim.io import save_trace, load_trace, load_trace_csv
from .faults import (
    FaultModel,
    ProbeLoss,
    ProbeStraggler,
    CorruptedReadings,
    VMOutage,
    RackOutage,
    FaultySubstrate,
    inject_faults,
    materialize_faults,
    parse_fault_spec,
)
from .collectives import binomial_tree, fnf_tree, CommTree, run_collective
from .runtime import OperationSpec, SessionCapsule, TraceSession
from .fleet import (
    ClusterReport,
    ClusterSpec,
    FleetConfig,
    FleetReport,
    FleetScheduler,
    FleetSweepReport,
    SweepClusterResult,
)
from .api import (
    SessionConfig,
    SolveConfig,
    open_session,
    run_fleet,
    solve,
    sweep_fleet,
)
from .strategies import (
    BaselineStrategy,
    HeuristicStrategy,
    RPCAStrategy,
    TopologyAwareStrategy,
)

__version__ = "1.0.0"

__all__ = [
    "PerformanceMatrix",
    "TPMatrix",
    "TCMatrix",
    "TEMatrix",
    "decompose",
    "Decomposition",
    "DecompositionEngine",
    "BatchDecompositionEngine",
    "solve_rpca_batch",
    "BatchedSolveWorkspace",
    "BATCH_DTYPES",
    "SolverResult",
    "SVD_BACKENDS",
    "EW_BACKENDS",
    "spectral_norm",
    "rpca_apg",
    "rpca_ialm",
    "row_constant_decomposition",
    "solve_rpca",
    "available_solvers",
    "register_solver",
    "solver_spec",
    "relative_error_norm",
    "StreamingConfig",
    "Instrumentation",
    "SolveSpan",
    "instrumented",
    "MaintenanceController",
    "MaintenanceDecision",
    "HealthState",
    "ResilienceConfig",
    "DegradedModeController",
    "FaultModel",
    "ProbeLoss",
    "ProbeStraggler",
    "CorruptedReadings",
    "VMOutage",
    "RackOutage",
    "FaultySubstrate",
    "inject_faults",
    "materialize_faults",
    "parse_fault_spec",
    "TraceConfig",
    "generate_trace",
    "CalibrationTrace",
    "save_trace",
    "load_trace",
    "load_trace_csv",
    "TraceSession",
    "OperationSpec",
    "SessionCapsule",
    "solve",
    "open_session",
    "run_fleet",
    "sweep_fleet",
    "SolveConfig",
    "SessionConfig",
    "FleetConfig",
    "ClusterSpec",
    "FleetScheduler",
    "FleetReport",
    "ClusterReport",
    "FleetSweepReport",
    "SweepClusterResult",
    "binomial_tree",
    "fnf_tree",
    "CommTree",
    "run_collective",
    "BaselineStrategy",
    "HeuristicStrategy",
    "RPCAStrategy",
    "TopologyAwareStrategy",
    "__version__",
]
