"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An argument failed structural validation (shape, dtype, range)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver exhausted its iteration budget without converging.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual value (solver-specific meaning).
    """

    def __init__(self, message: str, *, iterations: int, residual: float) -> None:
        super().__init__(message)
        self.iterations = int(iterations)
        self.residual = float(residual)


class CalibrationError(ReproError, RuntimeError):
    """A calibration run could not produce a usable TP-matrix."""


class TopologyError(ReproError, ValueError):
    """A network topology description is inconsistent."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class MappingError(ReproError, ValueError):
    """A task-to-machine mapping request cannot be satisfied."""
