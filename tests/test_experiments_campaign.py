"""Tests for the week-long campaign protocol (paper Sec V-A)."""

import numpy as np
import pytest

from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.errors import ValidationError
from repro.experiments.campaign import CampaignResult, run_campaign

MB = 1024 * 1024


@pytest.fixture(scope="module")
def campaign():
    trace = generate_trace(TraceConfig(n_machines=16, n_snapshots=40), seed=31)
    return run_campaign(trace, time_step=10, solver="row_constant", seed=0)


class TestCampaign:
    def test_arm_names_and_runs(self, campaign):
        assert [a.name for a in campaign.arms] == ["Baseline", "Heuristics", "RPCA"]
        assert all(a.runs == 30 for a in campaign.arms)

    def test_rpca_beats_baseline_over_the_week(self, campaign):
        assert campaign.improvement("RPCA", "Baseline") > 0.1

    def test_overheads_charged_correctly(self, campaign):
        assert campaign.arm("Baseline").overhead_seconds == 0.0
        assert campaign.arm("Heuristics").overhead_seconds > 0.0
        assert campaign.arm("RPCA").overhead_seconds > 0.0

    def test_norm_ne_series_length(self, campaign):
        assert len(campaign.norm_ne_series) == 30
        assert all(0.0 <= v < 1.0 for v in campaign.norm_ne_series)

    def test_costs_positive_and_ordered(self, campaign):
        for a in campaign.arms:
            assert a.cost_usd > 0.0
        # Cost follows total time ordering under a fixed price sheet up to
        # billing rounding; at least RPCA should not cost more than Baseline
        # plus one billing quantum.
        assert campaign.arm("RPCA").cost_usd <= campaign.arm("Baseline").cost_usd + 16 * 0.12

    def test_rows_render(self, campaign):
        rows = campaign.as_rows()
        assert len(rows) == 3 and rows[0][0] == "Baseline"

    def test_unknown_arm(self, campaign):
        with pytest.raises(KeyError):
            campaign.arm("nope")

    def test_short_trace_rejected(self):
        trace = generate_trace(TraceConfig(n_machines=4, n_snapshots=10), seed=1)
        with pytest.raises(ValidationError):
            run_campaign(trace, time_step=10)

    def test_deterministic(self):
        trace = generate_trace(TraceConfig(n_machines=8, n_snapshots=20), seed=5)
        a = run_campaign(trace, time_step=8, solver="row_constant", seed=3)
        b = run_campaign(trace, time_step=8, solver="row_constant", seed=3)
        assert a.as_rows() == b.as_rows()
