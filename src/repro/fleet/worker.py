"""Worker-process side of the fleet scheduler.

A worker is a plain loop over a task queue. Each :class:`BatchTask` names a
cluster, carries a batch of :class:`~repro.runtime.session.OperationSpec`\\ s
and either the cluster's warm :class:`~repro.runtime.session.SessionCapsule`
(later batches) or the session constructor kwargs (first batch). The trace
itself never rides along — only a :class:`TraceBlockDescriptor`, which the
worker maps once per cluster and caches for the rest of its life.

Workers are deliberately stateless about *sessions*: the capsule goes back
to the scheduler with every :class:`BatchResult`, so the next batch for a
cluster can land on any worker. Because the capsule round-trip is lossless
(bit-identical resume), which worker serves which batch cannot change the
cluster's results — only its wall-clock.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from typing import Any

from ..cloudsim.trace import CalibrationTrace
from ..runtime.session import OperationSpec, SessionCapsule, TraceSession
from .shm import SharedTraceBlock, TraceBlockDescriptor

__all__ = ["BatchResult", "BatchTask", "worker_main"]


@dataclass(frozen=True, slots=True)
class BatchTask:
    """One scheduler tick's worth of work for one cluster."""

    cluster: str
    descriptor: TraceBlockDescriptor
    specs: tuple[OperationSpec, ...]
    capsule: SessionCapsule | None = None
    session_kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class BatchResult:
    """What a worker sends back after (attempting) a batch."""

    cluster: str
    capsule: SessionCapsule | None
    operations: int
    worker_pid: int
    error: str | None = None


def _run_batch(
    task: BatchTask, traces: dict[str, CalibrationTrace]
) -> SessionCapsule:
    trace = traces[task.descriptor.name]
    if task.capsule is None:
        session = TraceSession(trace, **task.session_kwargs)
    else:
        session = TraceSession.from_capsule(trace, task.capsule)
    for spec in task.specs:
        session.step(spec)
    session.instrumentation.count("fleet.worker.batches")
    return session.capture_capsule()


def worker_main(task_queue: Any, result_queue: Any) -> None:
    """Worker loop: consume :class:`BatchTask`\\ s until the ``None`` sentinel.

    Runs in a child process. Any exception inside a batch is caught and
    shipped back as text in :attr:`BatchResult.error` — exception *objects*
    don't survive process boundaries reliably, and a poisoned cluster must
    not take the worker (and every other cluster queued behind it) down.
    """
    pid = os.getpid()
    blocks: dict[str, SharedTraceBlock] = {}
    traces: dict[str, CalibrationTrace] = {}
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            try:
                if task.descriptor.name not in blocks:
                    block = SharedTraceBlock.attach(task.descriptor)
                    blocks[task.descriptor.name] = block
                    traces[task.descriptor.name] = block.trace()
                capsule = _run_batch(task, traces)
                result = BatchResult(
                    cluster=task.cluster,
                    capsule=capsule,
                    operations=len(task.specs),
                    worker_pid=pid,
                )
            except BaseException:
                result = BatchResult(
                    cluster=task.cluster,
                    capsule=None,
                    operations=0,
                    worker_pid=pid,
                    error=traceback.format_exc(),
                )
            result_queue.put(result)
    finally:
        for block in blocks.values():
            block.close()
