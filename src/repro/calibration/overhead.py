"""Calibration cost model (paper Fig 4).

One TP-matrix at time step T costs ``T`` snapshots; each snapshot walks
≈ 2N schedule rounds; each round runs the concurrent ping-pongs of one
matching. SKaMPI-style ping-pong measures the 1-byte latency and the 8 MB
bandwidth with a few repetitions, so a round's duration is the slowest
pair's repetition loop plus synchronization slack. The defaults reproduce
the paper's reported overheads — just under 4 minutes at 64 instances,
about 10 minutes at 196 — and the linear-in-N shape of Fig 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_nonnegative, check_positive

__all__ = ["CalibrationCostModel", "calibration_overhead_seconds"]


@dataclass(frozen=True, slots=True)
class CalibrationCostModel:
    """Parameters of the ping-pong round cost.

    Attributes
    ----------
    latency_msg_bytes, bandwidth_msg_bytes:
        Probe sizes (1 B and 8 MB per the paper's SKaMPI configuration).
    repetitions:
        Ping-pong repetitions per probe.
    expected_latency_s:
        Worst-tier one-way latency assumed for budgeting.
    expected_bandwidth_Bps:
        Worst-tier bandwidth assumed for budgeting (cross-rack, bytes/s).
    round_sync_s:
        Barrier/bookkeeping slack per round.
    """

    latency_msg_bytes: float = 1.0
    bandwidth_msg_bytes: float = 8.0 * 1024 * 1024
    repetitions: int = 1
    expected_latency_s: float = 5.0e-4
    expected_bandwidth_Bps: float = 110e6
    round_sync_s: float = 0.01

    def __post_init__(self) -> None:
        check_positive(self.latency_msg_bytes, "latency_msg_bytes")
        check_positive(self.bandwidth_msg_bytes, "bandwidth_msg_bytes")
        if int(self.repetitions) < 1:
            raise ValueError("repetitions must be >= 1")
        check_nonnegative(self.expected_latency_s, "expected_latency_s")
        check_positive(self.expected_bandwidth_Bps, "expected_bandwidth_Bps")
        check_nonnegative(self.round_sync_s, "round_sync_s")

    def round_seconds(self) -> float:
        """Duration of one schedule round (a full ping-pong on the slowest pair)."""
        one_way_latency = self.expected_latency_s + (
            self.latency_msg_bytes / self.expected_bandwidth_Bps
        )
        one_way_bandwidth = self.expected_latency_s + (
            self.bandwidth_msg_bytes / self.expected_bandwidth_Bps
        )
        # A ping-pong is there-and-back for both probe sizes, repeated.
        per_rep = 2.0 * one_way_latency + 2.0 * one_way_bandwidth
        return self.repetitions * per_rep + self.round_sync_s


def calibration_overhead_seconds(
    n_machines: int,
    time_step: int = 10,
    model: CalibrationCostModel | None = None,
) -> float:
    """Total wall-clock cost of calibrating one TP-matrix.

    Parameters
    ----------
    n_machines:
        Cluster size N. Rounds per snapshot follow the circle method:
        ``2(N−1)`` for even N, ``2N`` for odd N.
    time_step:
        Number of snapshot rows in the TP-matrix (paper default 10).
    model:
        Cost parameters (defaults reproduce the paper's numbers).
    """
    if n_machines < 2:
        raise ValueError("n_machines must be >= 2")
    if time_step < 1:
        raise ValueError("time_step must be >= 1")
    m = model if model is not None else CalibrationCostModel()
    rounds = 2 * (n_machines - 1) if n_machines % 2 == 0 else 2 * n_machines
    return time_step * rounds * m.round_seconds()
