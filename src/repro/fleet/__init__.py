"""Fleet-scale parallel decomposition service.

Runs many independent per-cluster calibration/maintenance sessions (paper
Algorithm 1) concurrently across a process pool, with traces shipped
zero-copy through shared memory and warm solver state round-tripped between
scheduler and workers as picklable session capsules. See
:class:`FleetScheduler` for the scheduling contract (bounded queue,
backpressure, round-robin fairness, deterministic per-cluster results).
"""

from .config import ClusterSpec, FleetConfig, ON_ERROR_POLICIES
from .report import (
    CLUSTER_STATUSES,
    ClusterReport,
    FleetReport,
    FleetSweepReport,
    SweepClusterResult,
)
from .scheduler import FleetScheduler, SweepShard
from .shm import (
    SharedStackBlock,
    SharedTraceBlock,
    StackBlockDescriptor,
    TraceBlockDescriptor,
)
from .worker import (
    BatchResult,
    BatchTask,
    SweepResult,
    SweepTask,
    TaskStarted,
    solve_shard,
    worker_main,
)

__all__ = [
    "BatchResult",
    "BatchTask",
    "CLUSTER_STATUSES",
    "ClusterReport",
    "ClusterSpec",
    "FleetConfig",
    "FleetReport",
    "FleetScheduler",
    "FleetSweepReport",
    "ON_ERROR_POLICIES",
    "SharedStackBlock",
    "SharedTraceBlock",
    "StackBlockDescriptor",
    "SweepClusterResult",
    "SweepResult",
    "SweepShard",
    "SweepTask",
    "TaskStarted",
    "TraceBlockDescriptor",
    "solve_shard",
    "worker_main",
]
