"""Fleet scheduler: shared-memory transport, parity, fairness, failures."""

import os
import pickle

import numpy as np
import pytest

from repro import run_fleet
from repro.cloudsim.tracegen import TraceConfig, generate_trace
from repro.errors import FleetError, ValidationError
from repro.fleet import (
    ClusterSpec,
    FleetConfig,
    FleetScheduler,
    SharedTraceBlock,
)
from repro.observability import Instrumentation
from repro.persistence import CheckpointStore
from repro.runtime import TraceSession

pytestmark = pytest.mark.fleet

# The CI fleet job runs this module under a worker matrix (2 and 4).
N_WORKERS = int(os.environ.get("REPRO_FLEET_WORKERS", "2"))


def _trace(seed, *, n_machines=6, n_snapshots=16, mask=False):
    trace = generate_trace(
        TraceConfig(n_machines=n_machines, n_snapshots=n_snapshots), seed=seed
    )
    if not mask:
        return trace
    rng = np.random.default_rng(seed)
    m = rng.random(trace.alpha.shape) > 0.1
    from repro.cloudsim.trace import CalibrationTrace

    return CalibrationTrace(
        alpha=trace.alpha, beta=trace.beta, timestamps=trace.timestamps, mask=m
    )


def _clusters(n, **kwargs):
    return [ClusterSpec(name=f"c{i}", trace=_trace(50 + i, **kwargs)) for i in range(n)]


CFG = dict(operations=12, batch_size=4, window=6)


class TestSharedTraceBlock:
    def test_round_trip_unmasked(self):
        trace = _trace(1)
        with SharedTraceBlock.create(trace) as block:
            attached = SharedTraceBlock.attach(block.descriptor)
            try:
                rebuilt = attached.trace()
                assert np.array_equal(rebuilt.alpha, trace.alpha)
                assert np.array_equal(rebuilt.beta, trace.beta)
                assert np.array_equal(rebuilt.timestamps, trace.timestamps)
                assert rebuilt.mask is None
            finally:
                attached.close()

    def test_round_trip_masked(self):
        trace = _trace(2, mask=True)
        assert trace.mask is not None
        with SharedTraceBlock.create(trace) as block:
            rebuilt = block.trace()
            assert np.array_equal(rebuilt.mask, trace.mask)

    def test_views_are_zero_copy(self):
        trace = _trace(3)
        with SharedTraceBlock.create(trace) as block:
            rebuilt = block.trace()
            # The trace's float arrays alias the shm buffer — no copies.
            for arr in (rebuilt.alpha, rebuilt.beta, rebuilt.timestamps):
                assert arr.base is not None
                assert not arr.flags.owndata

    def test_descriptor_is_small_and_picklable(self):
        trace = _trace(4)
        with SharedTraceBlock.create(trace) as block:
            blob = pickle.dumps(block.descriptor)
            assert len(blob) < 512  # the point of the descriptor
            assert pickle.loads(blob) == block.descriptor

    def test_attach_after_unlink_raises(self):
        block = SharedTraceBlock.create(_trace(5))
        desc = block.descriptor
        block.unlink()
        with pytest.raises(FleetError, match="gone"):
            SharedTraceBlock.attach(desc)


class TestConfigValidation:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValidationError):
            FleetConfig(n_workers=0)
        with pytest.raises(ValidationError):
            FleetConfig(batch_size=0)
        with pytest.raises(ValidationError):
            FleetConfig(queue_depth=-1)

    def test_rejects_bad_cluster_names(self):
        trace = _trace(6)
        with pytest.raises(ValidationError):
            ClusterSpec(name="", trace=trace)
        with pytest.raises(ValidationError):
            ClusterSpec(name="a/b", trace=trace)

    def test_rejects_duplicate_names(self):
        trace = _trace(7)
        specs = [ClusterSpec(name="x", trace=trace), ClusterSpec(name="x", trace=trace)]
        with pytest.raises(ValidationError, match="unique"):
            FleetScheduler(specs)

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValidationError, match="at least one"):
            FleetScheduler([])


class TestParity:
    def test_parallel_matches_serial_bit_for_bit(self):
        clusters = _clusters(3)
        cfg = FleetConfig(n_workers=N_WORKERS, **CFG)
        par = FleetScheduler(clusters, cfg).run()
        ser = FleetScheduler(clusters, cfg).run_serial()
        for name in sorted(par.clusters):
            p, s = par.clusters[name], ser.clusters[name]
            assert np.array_equal(p.constant_row, s.constant_row), name
            assert p.norm_ne == s.norm_ne
            assert p.verdict == s.verdict
            assert p.recalibrations == s.recalibrations

    def test_parallel_matches_plain_session(self):
        # The fleet path (shm views + capsule round-trips) against a plain
        # in-process session executing the same operations on the original
        # arrays: same P_D to the last bit.
        clusters = _clusters(2)
        cfg = FleetConfig(n_workers=N_WORKERS, **CFG)
        report = FleetScheduler(clusters, cfg).run()
        for spec in clusters:
            session = TraceSession(
                spec.trace, nbytes=cfg.nbytes, time_step=cfg.window,
                threshold=cfg.threshold, solver=cfg.solver,
            )
            for _ in range(cfg.operations):
                session.broadcast(root=0)
            assert np.array_equal(
                report.clusters[spec.name].constant_row,
                session.decomposition.constant.row,
            )

    def test_masked_cluster_round_trips(self):
        clusters = [ClusterSpec(name="m", trace=_trace(8, mask=True))]
        cfg = FleetConfig(n_workers=1, **CFG)
        par = FleetScheduler(clusters, cfg).run()
        ser = FleetScheduler(clusters, cfg).run_serial()
        assert np.array_equal(
            par.clusters["m"].constant_row, ser.clusters["m"].constant_row
        )


class TestScheduling:
    def test_per_cluster_operation_overrides(self):
        clusters = [
            ClusterSpec(name="short", trace=_trace(10), operations=4),
            ClusterSpec(name="long", trace=_trace(11), operations=20),
        ]
        report = FleetScheduler(
            clusters, FleetConfig(n_workers=2, operations=8, batch_size=4, window=6)
        ).run()
        assert report.clusters["short"].operations == 4
        assert report.clusters["long"].operations == 20
        assert report.total_operations == 24

    def test_straggler_does_not_starve_fleet(self):
        # One cluster has 10x the work; every other cluster must still
        # finish its own budget (single in-flight batch per cluster means
        # the straggler can hold at most one worker at a time).
        clusters = [ClusterSpec(name="straggler", trace=_trace(12), operations=40)]
        clusters += [
            ClusterSpec(name=f"quick{i}", trace=_trace(13 + i), operations=4)
            for i in range(3)
        ]
        report = FleetScheduler(
            clusters, FleetConfig(n_workers=2, operations=4, batch_size=4, window=6)
        ).run()
        assert report.clusters["straggler"].operations == 40
        for i in range(3):
            assert report.clusters[f"quick{i}"].operations == 4
        # Round-robin: the straggler's batches are interleaved, not front-
        # loaded — it needs 10 batches while the whole fleet needs 13.
        assert report.clusters["straggler"].worker_batches == 10
        assert report.total_batches == 13

    def test_worker_failure_surfaces_as_fleet_error(self):
        # A trace shorter than the window makes the worker-side session
        # constructor raise; the scheduler must convert that into a
        # FleetError naming the cluster and carrying the worker traceback.
        bad = ClusterSpec(name="bad", trace=_trace(20, n_snapshots=4))
        good = ClusterSpec(name="good", trace=_trace(21))
        with pytest.raises(FleetError) as exc_info:
            FleetScheduler(
                [good, bad], FleetConfig(n_workers=2, **CFG)
            ).run()
        assert exc_info.value.cluster == "bad"
        assert "trace too short" in exc_info.value.worker_traceback

    def test_instrumentation_aggregates_across_workers(self):
        sink = Instrumentation("fleet-test")
        clusters = _clusters(2)
        cfg = FleetConfig(n_workers=2, **CFG)
        FleetScheduler(clusters, cfg, instrumentation=sink).run()
        assert sink.counters["fleet.clusters"] == 2
        assert sink.counters["fleet.operations"] == 24
        assert sink.counters["fleet.workers"] == 2
        # Worker-side engine counters came home inside the capsules.
        assert sink.counters["fleet.worker.batches"] == 6
        assert sink.counters.get("engine.window.miss", 0) > 0
        assert sink.timers["fleet.elapsed"] > 0.0


class TestCheckpointing:
    def test_per_cluster_checkpoints_under_fleet_root(self, tmp_path):
        root = tmp_path / "fleet-root"
        clusters = _clusters(2)
        cfg = FleetConfig(n_workers=2, checkpoint_root=str(root), **CFG)
        report = FleetScheduler(clusters, cfg).run()
        assert sorted(os.listdir(root)) == ["c0", "c1", "fleet.json"]
        for spec in clusters:
            store = CheckpointStore(str(root / spec.name))
            ckpt = store.load_latest()
            assert ckpt is not None
            assert int(ckpt.meta["stats"]["operations"]) == 12
            assert np.array_equal(
                ckpt.arrays["dec_row"], report.clusters[spec.name].constant_row
            )

    def test_checkpointed_cluster_resumable_as_session(self, tmp_path):
        # A fleet checkpoint is a full session capsule: from_capsule on its
        # payload yields a live session that continues where the fleet left
        # the cluster.
        from repro.runtime.session import SessionCapsule

        root = tmp_path / "root"
        clusters = _clusters(1)
        cfg = FleetConfig(n_workers=1, checkpoint_root=str(root), **CFG)
        FleetScheduler(clusters, cfg).run()
        ckpt = CheckpointStore(str(root / "c0")).load_latest()
        capsule = SessionCapsule(arrays=ckpt.arrays, meta=ckpt.meta)
        session = TraceSession.from_capsule(
            clusters[0].trace, capsule, verify_trace=True
        )
        assert session.stats.operations == 12
        session.broadcast(root=0)
        assert session.stats.operations == 13


class TestFleetRegime:
    """Detector choice ships to workers; regime stats come back merged."""

    @staticmethod
    def _step_cluster(name, seed, *, shifted):
        from repro.cloudsim.dynamics import DynamicsConfig, apply_step_regime

        trace = generate_trace(
            TraceConfig(
                n_machines=6,
                n_snapshots=18,
                dynamics=DynamicsConfig(
                    volatility_sigma=0.02,
                    spike_probability=0.0,
                    hotspot_probability=0.0,
                    migration_rate=0.0,
                ),
            ),
            seed=seed,
        )
        if shifted:
            trace = apply_step_regime(trace, start=12, factor=3.0)
        return ClusterSpec(name=name, trace=trace)

    def _config(self, **kwargs):
        # threshold=10 parks ordinary maintenance so every recalibration in
        # the report is detector-forced; warmup=4 fits the short trace.
        return FleetConfig(
            operations=12, batch_size=4, window=6, threshold=10.0,
            regime_detector="cusum", regime_params={"warmup": 4}, **kwargs
        )

    def test_serial_reports_per_cluster_regime_stats(self):
        clusters = [
            self._step_cluster("calm", 60, shifted=False),
            self._step_cluster("step", 61, shifted=True),
        ]
        report = FleetScheduler(clusters, self._config(n_workers=1)).run_serial()
        assert report.clusters["step"].regime_shifts >= 1
        assert report.clusters["calm"].regime_shifts == 0
        health = report.health()
        assert health["regime_shifts"] >= 1
        assert health["forced_recalibrations"] >= 1
        step_summary = report.clusters["step"].summary()
        assert step_summary["regime_shifts"] >= 1
        assert "regime_spikes" in step_summary

    def test_parallel_regime_stats_match_serial(self):
        clusters = [
            self._step_cluster("calm", 60, shifted=False),
            self._step_cluster("step", 61, shifted=True),
        ]
        ser = FleetScheduler(clusters, self._config(n_workers=1)).run_serial()
        par = FleetScheduler(clusters, self._config(n_workers=N_WORKERS)).run()
        for name in ("calm", "step"):
            assert (
                par.clusters[name].regime_shifts
                == ser.clusters[name].regime_shifts
            )
            assert (
                par.clusters[name].regime_spikes
                == ser.clusters[name].regime_spikes
            )
            assert np.array_equal(
                par.clusters[name].constant_row, ser.clusters[name].constant_row
            )
        assert par.health() == ser.health()

    def test_config_rejects_unknown_detector(self):
        with pytest.raises(ValidationError, match="registered detectors"):
            FleetConfig(regime_detector="kalman")
        with pytest.raises(ValidationError, match="regime_detector"):
            FleetConfig(regime_params={"warmup": 4})


class TestRunFleetFacade:
    def test_accepts_pairs_and_bare_traces(self):
        t0, t1 = _trace(30), _trace(31)
        report = run_fleet(
            [("named", t0), t1], n_workers=1, serial=True, **CFG
        )
        assert sorted(report.clusters) == ["cluster-1", "named"]

    def test_rejects_junk(self):
        with pytest.raises(ValidationError, match="clusters must be"):
            run_fleet([object()], serial=True)

    def test_serial_flag_matches_parallel(self):
        t = _trace(32)
        par = run_fleet([("x", t)], n_workers=1, **CFG)
        ser = run_fleet([("x", t)], serial=True, **CFG)
        assert np.array_equal(
            par.clusters["x"].constant_row, ser.clusters["x"].constant_row
        )
